"""Community boundary detection by recursive minimum cuts.

Minimum cuts separate the most weakly connected group first, so
recursively splitting while the cut stays cheap relative to the cluster
recovers community structure — the classic min-cut clustering recipe,
here driven by the paper's parallel algorithm.

Run:  python examples/community_split.py
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro import Graph, minimum_cut
from repro.graphs import community_graph


def split_recursively(
    graph: Graph,
    vertices: np.ndarray,
    *,
    rng: np.random.Generator,
    max_cut_per_vertex: float = 0.8,
    min_size: int = 6,
) -> List[np.ndarray]:
    """Split while the relative cut cost stays below the threshold."""
    if len(vertices) < 2 * min_size:
        return [vertices]
    sub = induced_subgraph(graph, vertices)
    if not sub.is_connected():
        k, labels = sub.connected_components()
        return [vertices[labels == c] for c in range(k)]
    res = minimum_cut(sub, rng=rng)
    smaller = min(int(res.side.sum()), sub.n - int(res.side.sum()))
    if smaller < min_size or res.value / smaller > max_cut_per_vertex:
        return [vertices]  # cutting further would shred a real community
    left = vertices[res.side]
    right = vertices[~res.side]
    return split_recursively(graph, left, rng=rng) + split_recursively(
        graph, right, rng=rng
    )


def induced_subgraph(graph: Graph, vertices: np.ndarray) -> Graph:
    index = -np.ones(graph.n, dtype=np.int64)
    index[vertices] = np.arange(len(vertices))
    keep = (index[graph.u] >= 0) & (index[graph.v] >= 0)
    return Graph(
        len(vertices), index[graph.u[keep]], index[graph.v[keep]], graph.w[keep],
        validate=False,
    )


def main() -> None:
    sizes = (22, 18, 26)
    graph = community_graph(sizes, intra_degree=8, inter_edges=2, rng=5)
    print(f"graph with planted communities of sizes {sizes}: {graph}")

    rng = np.random.default_rng(0)
    parts = split_recursively(graph, np.arange(graph.n), rng=rng)
    parts.sort(key=lambda p: p.min())
    print(f"recovered {len(parts)} communities:")
    boundaries = np.cumsum((0,) + sizes)
    exact = 0
    for part in parts:
        lo, hi = part.min(), part.max()
        print(f"  vertices [{lo}..{hi}]  size={len(part)}")
        if any(lo == boundaries[i] and hi == boundaries[i + 1] - 1 for i in range(len(sizes))):
            exact += 1
    print(f"{exact}/{len(sizes)} planted communities recovered exactly")


if __name__ == "__main__":
    main()
