"""Network reliability: where does this network partition first?

A backbone/edge-site network's minimum cut is its weakest failure
surface — the smallest total link capacity whose loss disconnects some
site.  This example finds it exactly, then uses the Section 3
approximation as the cheap screening pass one would run on much larger
topologies.

Run:  python examples/network_reliability.py
"""

import numpy as np

from repro import Ledger, minimum_cut
from repro.approx import approximate_minimum_cut
from repro.graphs import reliability_network
from repro.sparsify import HierarchyParams


def main() -> None:
    # 60 core routers + 25 edge sites with light uplink bundles
    net = reliability_network(60, 25, rng=11, core_capacity=40, uplink_capacity=3)
    print(f"topology: {net}")

    # --- screening pass: (1 +- eps) approximation -----------------------
    approx = approximate_minimum_cut(
        net.with_weights(np.rint(net.w)),  # integer capacities
        params=HierarchyParams(scale=0.02),
        rng=np.random.default_rng(1),
    )
    print(f"approximate weakest capacity: ~{approx.estimate:.1f} "
          f"(bracket [{approx.low:.1f}, {approx.high:.1f}])")

    # --- exact pass ------------------------------------------------------
    ledger = Ledger()
    result = minimum_cut(net, rng=np.random.default_rng(2), ledger=ledger)
    weak_side, _ = result.partition()
    isolated = [int(v) for v in weak_side] if len(weak_side) <= net.n / 2 else [
        int(v) for v in result.partition()[1]
    ]
    print(f"exact weakest capacity      : {result.value:.1f}")
    print(f"first partition to fall     : vertices {isolated}")
    print(f"links crossing the cut      : {len(net.cut_edges(result.side))}")

    # the screening bracket must contain (or closely bound) the truth
    if approx.low <= result.value <= approx.high * 1.4:
        print("screening pass bracketed the exact answer ✓")

    # capacity planning: how much headroom does doubling the weakest
    # bundle buy?  Re-run on the reinforced network.
    cut_edges = net.cut_edges(result.side)
    w2 = net.w.copy()
    w2[cut_edges] *= 2.0
    reinforced = net.with_weights(w2)
    result2 = minimum_cut(reinforced, rng=np.random.default_rng(3))
    print(f"after doubling those links  : {result2.value:.1f} "
          f"({result2.value / result.value:.2f}x headroom)")


if __name__ == "__main__":
    main()
