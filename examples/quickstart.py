"""Quickstart: compute an exact minimum cut and inspect the result.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Ledger, minimum_cut
from repro.baselines import stoer_wagner
from repro.graphs import random_connected_graph


def main() -> None:
    # A reproducible random weighted graph: 200 vertices, ~800 edges.
    graph = random_connected_graph(200, 800, rng=7, max_weight=10)
    print(f"input: {graph}")

    # The paper's algorithm.  Passing a Ledger records the PRAM-style
    # work/depth accounting of every stage.
    ledger = Ledger()
    result = minimum_cut(graph, rng=np.random.default_rng(0), ledger=ledger)

    left, right = result.partition()
    print(f"minimum cut value : {result.value}")
    print(f"partition sizes   : {len(left)} | {len(right)}")
    print(f"witness tree edges: {result.witness_edges}")
    print(f"candidate trees   : {int(result.stats['num_trees'])}")
    print(f"total work        : {ledger.work:.3g}")
    print(f"total depth       : {ledger.depth:.3g}")

    # Sanity: the reported side mask really has that cut value, and the
    # sequential baseline agrees.
    assert abs(graph.cut_value(result.side) - result.value) < 1e-9
    baseline = stoer_wagner(graph)
    assert abs(baseline.value - result.value) < 1e-9
    print("verified against Stoer-Wagner ✓")


if __name__ == "__main__":
    main()
