"""Quickstart: compute an exact minimum cut and inspect the result.

Run:  python examples/quickstart.py [--deadline SECONDS]

With ``--deadline`` the run goes through the resilient driver
(:func:`repro.resilient_minimum_cut`): a wall-clock budget, verified
retries, and a Stoer–Wagner fallback — the result then also reports its
provenance (attempts / fallback / verification).
"""

import argparse

import numpy as np

from repro import Ledger, minimum_cut
from repro.baselines import stoer_wagner
from repro.graphs import random_connected_graph


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget; routes through the resilient driver",
    )
    args = parser.parse_args(argv)

    # A reproducible random weighted graph: 200 vertices, ~800 edges.
    graph = random_connected_graph(200, 800, rng=7, max_weight=10)
    print(f"input: {graph}")

    # The paper's algorithm.  Passing a Ledger records the PRAM-style
    # work/depth accounting of every stage.
    ledger = Ledger()
    if args.deadline is not None:
        from repro import resilient_minimum_cut

        result = resilient_minimum_cut(
            graph, deadline=args.deadline, seed=0, ledger=ledger
        )
        print(f"attempts          : {result.attempts}")
        print(f"fallback          : {result.fallback_used or 'none'}")
        print(f"verification      : {result.verification}")
    else:
        result = minimum_cut(graph, rng=np.random.default_rng(0), ledger=ledger)

    left, right = result.partition()
    print(f"minimum cut value : {result.value}")
    print(f"partition sizes   : {len(left)} | {len(right)}")
    print(f"witness tree edges: {result.witness_edges}")
    if "num_trees" in result.stats:
        print(f"candidate trees   : {int(result.stats['num_trees'])}")
    print(f"total work        : {ledger.work:.3g}")
    print(f"total depth       : {ledger.depth:.3g}")

    # Sanity: the reported side mask really has that cut value, and the
    # sequential baseline agrees.
    assert abs(graph.cut_value(result.side) - result.value) < 1e-9
    baseline = stoer_wagner(graph)
    assert abs(baseline.value - result.value) < 1e-9
    print("verified against Stoer-Wagner ✓")


if __name__ == "__main__":
    main()
