"""Work-depth profiling and Brent speedup projection.

The library's PRAM substitute (see DESIGN.md) records the work and
critical-path depth of every stage.  This example profiles one exact
min-cut run phase by phase, then projects p-processor running time via
Brent's theorem — the experiment behind the paper's work-optimality
claim: a work-optimal algorithm keeps near-p speedup against the *best
sequential* algorithm until p approaches W/D.

Run:  python examples/workdepth_profile.py
"""

import numpy as np

from repro import Ledger, minimum_cut
from repro.baselines import gg18_two_respecting, work_sequential_gmw
from repro.graphs import random_connected_graph
from repro.metrics import format_table
from repro.pram import parallelism, speedup_curve
from repro.primitives import root_tree, spanning_forest_graph
from repro.tworespect import two_respecting_min_cut


def main() -> None:
    graph = random_connected_graph(500, 4000, rng=3, max_weight=10)
    print(f"workload: {graph}\n")

    # ---- phase profile of the full pipeline ------------------------------
    ledger = Ledger()
    minimum_cut(graph, rng=np.random.default_rng(0), ledger=ledger)
    rows = [
        [name, rec.work, rec.depth]
        for name, rec in sorted(ledger.phases.items(), key=lambda kv: -kv[1].work)
        if name in ("approximate", "packing", "two-respecting")
    ]
    rows.append(["TOTAL", ledger.work, ledger.depth])
    print(format_table(["phase", "work", "depth"], rows, title="Phase profile"))
    print(f"\nparallelism W/D = {parallelism(ledger.work, ledger.depth):,.0f}\n")

    # ---- Brent projection: ours vs the GG18-style baseline ---------------
    ids, _ = spanning_forest_graph(graph)
    parent = root_tree(graph.n, graph.u[ids], graph.v[ids], 0)
    ours, gg18 = Ledger(), Ledger()
    two_respecting_min_cut(graph, parent, ledger=ours)
    gg18_two_respecting(graph, parent, ledger=gg18)

    processors = [1, 4, 16, 64, 256, 1024, 4096]
    seq = work_sequential_gmw(graph.m, graph.n)
    ours_curve = speedup_curve(ours.work, ours.depth, processors, baseline_sequential=ours.work)
    gg_curve = speedup_curve(gg18.work, gg18.depth, processors, baseline_sequential=ours.work)
    rows = [
        [p, f"{a.speedup:.1f}x", f"{b.speedup:.1f}x"]
        for p, a, b in zip(processors, ours_curve, gg_curve)
    ]
    print(
        format_table(
            ["p", "this paper (2-respect)", "GG18-style baseline"],
            rows,
            title="Projected speedup vs the work of our 2-respecting search "
            "(Brent: T_p = W/p + D)",
        )
    )
    print(
        f"\nbaseline work / our work = {gg18.work / ours.work:.1f}x "
        "(the Table 1 gap, measured)"
    )


if __name__ == "__main__":
    main()
