"""Enumerating every minimum cut (extension feature).

Karger's packing argument certifies more than one optimum: w.h.p. every
minimum cut 2-respects a packed tree, so scanning the packed trees for
ties enumerates all of them.  Cycles are the extreme case — every pair
of edges of an n-cycle is a minimum cut, n(n-1)/2 in total.

Run:  python examples/all_min_cuts.py
"""

import numpy as np

from repro.core import all_minimum_cuts
from repro.graphs import community_graph, cycle_graph


def main() -> None:
    # --- the combinatorial extreme -------------------------------------
    n = 8
    ring = cycle_graph(n)
    cuts = all_minimum_cuts(ring, rng=np.random.default_rng(0))
    print(f"C_{n}: found {len(cuts)} minimum cuts "
          f"(theory: n(n-1)/2 = {n * (n - 1) // 2}), value {cuts[0].value}")

    # --- a realistic tie structure --------------------------------------
    g = community_graph((12, 12, 12), intra_degree=8, inter_edges=1, rng=3)
    cuts = all_minimum_cuts(g, rng=np.random.default_rng(1))
    print(f"\n3-community graph: {len(cuts)} minimum cut(s) of value {cuts[0].value}")
    for i, cut in enumerate(cuts):
        small, _ = cut.partition()
        if len(small) > g.n // 2:
            small = cut.partition()[1]
        print(f"  cut {i}: isolates {len(small)} vertices "
              f"[{small.min()}..{small.max()}]")
    # each minimum cut splits off a whole community (the two 1-link
    # boundaries tie if the generator used equal bundles)


if __name__ == "__main__":
    main()
