"""The Section 4.3 dense-graph knob: range trees of degree n^eps.

Larger eps -> shallower range trees -> cheaper *preprocessing* per tree
level (O(m/eps) total) but pricier *queries* (O(n^{2eps}/eps^2)); on
dense graphs, where preprocessing touches m >> n points and queries only
O(n log n) of them, a larger eps wins.  This example measures the
structural work counters at several eps on the same dense graph.

Run:  python examples/epsilon_tradeoff.py
"""

from repro.core import branching_for_epsilon
from repro.graphs import random_connected_graph
from repro.metrics import format_table
from repro.pram import Ledger
from repro.primitives import root_tree, spanning_forest_graph
from repro.tworespect import two_respecting_min_cut


def main() -> None:
    graph = random_connected_graph(400, 50000, rng=9, max_weight=6)
    print(f"dense workload: {graph} (m/n = {graph.m / graph.n:.1f})\n")

    ids, _ = spanning_forest_graph(graph)
    parent = root_tree(graph.n, graph.u[ids], graph.v[ids], 0)

    rows = []
    values = set()
    for eps in (None, 0.15, 0.3, 0.45):
        b = branching_for_epsilon(graph.n, eps)
        ledger = Ledger()
        res = two_respecting_min_cut(graph, parent, branching=b, ledger=ledger)
        values.add(round(res.value, 6))
        rows.append(
            [
                "2 (eps -> 1/log n)" if eps is None else f"{eps}",
                b,
                res.stats["oracle_queries"],
                res.stats["oracle_nodes_visited"],
                ledger.work,
                ledger.depth,
            ]
        )
    print(
        format_table(
            ["eps", "tree degree", "oracle queries", "nodes visited", "work", "depth"],
            rows,
            title="Lemma 4.24/4.25 tradeoff on one dense graph",
        )
    )
    assert len(values) == 1, "every eps must find the same cut"
    print("\nall eps settings agree on the cut value ✓")


if __name__ == "__main__":
    main()
