"""E10 — Ablations of the paper's design choices.

Each ablation removes one ingredient of the Section 4.1 machinery (or
one Section 3/4.2 trick) and measures what it costs, confirming that
every piece the paper adds actually pays for itself:

A. *Interest filtering + Monge pruning* (Claims 4.8-4.15, Lemma 4.17):
   our centroid-guided SMAWK search vs the GG18-style all-pairs scan on
   identical (graph, tree) instances — the pruning factor must grow
   with n.
B. *Path decomposition flavour* (Lemma 4.4): heavy-path vs GG18 bough
   peeling — both satisfy Property 4.3 and must agree on the value with
   comparable work (the choice is free; the bench documents it).
C. *Capped binomial sampling* (Observation 4.22 / KS88): the work charge
   of skeleton sampling with the O(log n) cap vs the naive O(w_max)
   inverse transform.
D. *Candidate-tree selection*: multiplicity-weighted sampling vs taking
   every distinct tree — hit rate must survive the cheaper schedule.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.arena.solvers import stoer_wagner
from repro.baselines import gg18_two_respecting
from repro.graphs import planted_cut_graph, random_connected_graph
from repro.metrics import format_table
from repro.packing import pack_trees
from repro.pram import Ledger
from repro.primitives import capped_binomial, root_tree, spanning_forest_graph
from repro.tworespect import two_respecting_min_cut

_results: dict = {}


def _instance(n, density, seed):
    g = random_connected_graph(n, density * n, rng=seed, max_weight=6)
    ids, _ = spanning_forest_graph(g)
    return g, root_tree(g.n, g.u[ids], g.v[ids], 0)


def test_ablation_interest_pruning(once):
    def run():
        rows = []
        for n in (128, 256, 512):
            g, parent = _instance(n, 4, n + 5)
            la, lb = Ledger(), Ledger()
            a = two_respecting_min_cut(g, parent, ledger=la)
            b = gg18_two_respecting(g, parent, ledger=lb)
            assert a.value == pytest.approx(b.value)
            rows.append([n, g.m, la.work, lb.work, lb.work / la.work])
        return rows

    _results["pruning"] = once(run)


def test_ablation_decomposition(once):
    def run():
        rows = []
        for seed in (1, 2, 3):
            g, parent = _instance(300, 4, seed)
            lh, lb = Ledger(), Ledger()
            a = two_respecting_min_cut(g, parent, decomposition="heavy", ledger=lh)
            b = two_respecting_min_cut(g, parent, decomposition="bough", ledger=lb)
            assert a.value == pytest.approx(b.value)
            rows.append([seed, a.value, lh.work, lb.work, lb.work / lh.work])
        return rows

    _results["decomposition"] = once(run)


def test_ablation_capped_sampling(once):
    def run():
        rng = np.random.default_rng(0)
        n_edges = 20000
        w_max = 100_000
        trials = rng.integers(1, w_max, size=n_edges)
        cap_small = 64  # ~ c log n
        led_capped, led_naive = Ledger(), Ledger()
        capped_binomial(trials, 1e-3, cap_small, rng, ledger=led_capped)
        # the ablated sampler must walk the CDF up to the max weight
        capped_binomial(trials, 1e-3, w_max, rng, ledger=led_naive)
        return led_capped.work, led_naive.work

    _results["sampling"] = once(run)


def test_ablation_tree_selection(once):
    def run():
        hits_sampled = hits_all = 0
        trials = 6
        from repro.primitives import postorder
        from repro.trees import binarize_parent
        from repro.tworespect import brute_force_two_respecting

        for seed in range(trials):
            g = planted_cut_graph(10, 10, 2.0, rng=np.random.default_rng(seed))
            lam = stoer_wagner(g).value
            for max_trees, bucket in ((6, "sampled"), (None, "all")):
                result = pack_trees(
                    g, lam / 2, max_trees=max_trees, rng=np.random.default_rng(seed)
                )
                best = min(
                    brute_force_two_respecting(
                        g, postorder(binarize_parent(p).parent)
                    )[0]
                    for p in result.tree_parents
                )
                if abs(best - lam) < 1e-9:
                    if bucket == "sampled":
                        hits_sampled += 1
                    else:
                        hits_all += 1
        return hits_sampled, hits_all, trials

    _results["selection"] = once(run)


def test_ablations_report(once):
    once(_report)


def _report():
    print()
    rows = _results["pruning"]
    print(
        format_table(
            ["n", "m", "work (interest+SMAWK)", "work (all-pairs scan)", "pruning gain"],
            [[r[0], r[1], r[2], r[3], f"{r[4]:.1f}x"] for r in rows],
            title="Ablation A: interest filtering + Monge pruning",
        )
    )
    gains = [r[4] for r in rows]
    assert gains[-1] > gains[0], "pruning gain must grow with n"

    rows = _results["decomposition"]
    print()
    print(
        format_table(
            ["seed", "value", "work (heavy)", "work (bough)", "ratio"],
            [[r[0], r[1], r[2], r[3], f"{r[4]:.2f}"] for r in rows],
            title="Ablation B: heavy-path vs bough decomposition",
        )
    )
    assert all(0.4 <= r[4] <= 2.5 for r in rows), "both flavours comparable"

    capped, naive = _results["sampling"]
    print()
    print(
        f"Ablation C: skeleton sampling work — capped {capped:.3g} vs "
        f"uncapped {naive:.3g} ({naive / capped:.0f}x saved by Obs. 4.22)"
    )
    assert naive > 100 * capped

    hs, ha, trials = _results["selection"]
    print(
        f"Ablation D: packing hit rate — weighted sample of 6 trees "
        f"{hs}/{trials}, all distinct trees {ha}/{trials}"
    )
    assert ha == trials
    assert hs >= trials - 1
