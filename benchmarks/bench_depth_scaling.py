"""E3 — Theorem 4.1/4.26 depth claim: O(log^3 n) total depth.

Paper artifact: every Table 1 row claims O(log^3 n) depth; our Theorem
4.1 pipeline must exhibit polylogarithmic critical-path growth while n
grows geometrically.

What we measure: ledger depth of the full pipeline (and of the
2-respecting stage alone, whose claim is O(log^2 n)) over a geometric n
sweep at fixed density.

Shape claims asserted: depth / log^3 n bounded for the pipeline;
depth / log^2 n bounded for the cut-finding stage; both far below any
polynomial growth (depth ratio between the largest and smallest n stays
near the polylog prediction, not near the n ratio).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import minimum_cut
from repro.graphs import random_connected_graph
from repro.metrics import MeasuredPoint, format_table
from repro.pram import Ledger
from repro.primitives import root_tree, spanning_forest_graph
from repro.tworespect import two_respecting_min_cut

SIZES = [64, 128, 256, 512]
_full: list[MeasuredPoint] = []
_stage: list[MeasuredPoint] = []


@pytest.mark.parametrize("n", SIZES)
def test_depth_full_pipeline(once, n):
    g = random_connected_graph(n, 4 * n, rng=n + 3, max_weight=7)
    ledger = Ledger()
    once(minimum_cut, g, rng=np.random.default_rng(0), ledger=ledger)
    _full.append(MeasuredPoint(n=n, m=g.m, work=ledger.work, depth=ledger.depth))


@pytest.mark.parametrize("n", SIZES)
def test_depth_two_respecting_stage(once, n):
    g = random_connected_graph(n, 4 * n, rng=n + 4, max_weight=7)
    ids, _ = spanning_forest_graph(g)
    parent = root_tree(g.n, g.u[ids], g.v[ids], 0)
    ledger = Ledger()
    once(two_respecting_min_cut, g, parent, ledger=ledger)
    _stage.append(MeasuredPoint(n=n, m=g.m, work=ledger.work, depth=ledger.depth))


def test_depth_report(once):
    once(_report)


def _report():
    full = sorted(_full, key=lambda p: p.n)
    stage = sorted(_stage, key=lambda p: p.n)
    assert len(full) == len(SIZES) and len(stage) == len(SIZES)
    rows = []
    r3, r2 = [], []
    for pf, ps in zip(full, stage):
        lg = np.log2(pf.n)
        r3.append(pf.depth / lg**3)
        r2.append(ps.depth / lg**2)
        rows.append(
            [pf.n, pf.m, int(pf.depth), f"{r3[-1]:.1f}", int(ps.depth), f"{r2[-1]:.1f}"]
        )
    print()
    print(
        format_table(
            ["n", "m", "pipeline depth", "/log^3 n", "2-respect depth", "/log^2 n"],
            rows,
            title="Depth scaling (Theorems 4.1 / 4.2: O(log^3 n) and O(log^2 n))",
        )
    )
    # polylog shape: normalised ratios stay within a small band while n
    # grows 8x (a linear-depth algorithm would grow the ratio ~8x/1.7)
    assert max(r3) <= 3.0 * min(r3)
    assert max(r2) <= 3.0 * min(r2)
    # absolute sanity: at n = 512 the measured constant is ~27 log^3 n,
    # far below the sequential critical path W (and below n log^2 n)
    assert full[-1].depth < full[-1].n * np.log2(full[-1].n) ** 2
    assert full[-1].depth < full[-1].work / 100
