"""E11 — Theorem 4.26 end-to-end: the dense-graph configuration.

Paper artifact: Theorem 4.26 — with degree-n^eps range structures the
*whole pipeline* runs in O(m log n / eps + n^{1+2eps} log^2 n / eps^2 +
n log^5 n) work, i.e. O(m log n) on non-sparse inputs; Section 4.3's
closing remark ("readjusting eps") says the knob should be tuned to the
density.

What we measure: full `minimum_cut` work/depth on one dense instance
(m/n ~ 100) under eps in {None, 0.25, 0.4}, identical rng so the
packing/tree choices coincide and only the range-structure costs differ.

Shape claims asserted: all configurations return the same cut value;
depth falls as eps grows; the best eps > 0 configuration does not lose
to b = 2 on total work (on dense inputs it should win or tie).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import branching_for_epsilon, minimum_cut
from repro.graphs import random_connected_graph
from repro.metrics import MeasuredPoint, format_table
from repro.pram import Ledger

EPS = [None, 0.25, 0.4]
_points: list[MeasuredPoint] = []


def _workload():
    return random_connected_graph(300, 30000, rng=13, max_weight=6)


@pytest.mark.parametrize("eps", EPS)
def test_dense_pipeline(once, eps):
    g = _workload()
    ledger = Ledger()

    def run():
        return minimum_cut(
            g, epsilon=eps, rng=np.random.default_rng(7), ledger=ledger
        )

    res = once(run)
    _points.append(
        MeasuredPoint(
            n=g.n,
            m=g.m,
            work=ledger.work,
            depth=ledger.depth,
            extra={
                "eps": -1.0 if eps is None else eps,
                "branching": float(branching_for_epsilon(g.n, eps)),
                "value": res.value,
            },
        )
    )


def test_dense_report(once):
    once(_report)


def _report():
    pts = sorted(_points, key=lambda p: p.extra["eps"])
    assert len(pts) == len(EPS)
    rows = [
        [
            "b=2 (eps->1/log n)" if p.extra["eps"] < 0 else f"{p.extra['eps']:.2f}",
            int(p.extra["branching"]),
            p.work,
            int(p.depth),
            p.extra["value"],
        ]
        for p in pts
    ]
    print()
    print(
        format_table(
            ["eps", "degree", "total work", "total depth", "cut value"],
            rows,
            title="Theorem 4.26 end-to-end on a dense instance (n=300, m~30k)",
        )
    )
    values = {round(p.extra["value"], 6) for p in pts}
    assert len(values) == 1
    depths = [p.depth for p in pts]
    assert depths[-1] <= depths[0] + 1e-9, "depth must not grow with eps"
    base = pts[0].work
    assert min(p.work for p in pts[1:]) <= 1.1 * base, (
        "some eps > 0 must be competitive on dense inputs"
    )
