"""E9 — Section 3.1's separation claims (Claims 3.6-3.13).

Paper artifact: the layer-location argument — below the skeleton layer
the truncated hierarchy's min-cut exceeds 160 log n, at the skeleton
layer it lands in [75, 125] log n, above it drops below 67 log n (all
scaled by HierarchyParams.scale here; the windows keep their ratios).

What we measure: per-layer min-cuts of the truncated hierarchy and of
the cumulative certificates on heavy-weight graphs; whether a unique
dense->window->sparse transition exists; and the certificate hierarchy's
total weight (Claim 3.19's O(m log n) budget).

Shape claims asserted: layer cuts are non-increasing; the located layer
rescales to within 4x of the true min cut; certificate weight stays
within the per-edge budget.
"""

from __future__ import annotations

import numpy as np
from repro.approx import locate_skeleton_layer
from repro.arena.solvers import stoer_wagner
from repro.graphs import random_connected_graph
from repro.metrics import format_table
from repro.sparsify import (
    HierarchyParams,
    build_certificate_hierarchy,
    build_truncated_hierarchy,
)

PARAMS = HierarchyParams(scale=0.02)
_rows: list[list] = []
_summary: dict = {}


def test_hierarchy_layers(once):
    rng = np.random.default_rng(31)
    g = random_connected_graph(40, 170, rng=rng, max_weight=1)
    g = g.with_weights(g.w * 700.0)
    lam = stoer_wagner(g).value

    def run():
        h = build_truncated_hierarchy(g, params=PARAMS, rng=np.random.default_rng(0))
        certs = build_certificate_hierarchy(h)
        layer_cuts = {}
        for i in range(h.depth):
            cum = certs.cumulative(i)
            sup = h.layers[i].support_graph()
            true_cut = (
                stoer_wagner(sup).value
                if sup.m and sup.is_connected() and sup.n >= 2
                else 0.0
            )
            cert_cut = (
                stoer_wagner(cum).value
                if cum.m and cum.is_connected() and cum.n >= 2
                else 0.0
            )
            layer_cuts[i] = cert_cut
            _rows.append([i, int(true_cut), int(cert_cut)])
        return h, certs, layer_cuts

    h, certs, layer_cuts = once(run)
    s = locate_skeleton_layer(layer_cuts, g.n, PARAMS)
    estimate = layer_cuts[s] * 2**s
    _summary.update(
        dict(
            lam=lam,
            s=s,
            estimate=estimate,
            cert_weight=sum(c.total_copies for c in certs.certificates),
            budget=PARAMS.cert_edge_budget(g.n) * g.m,
            depth=h.depth,
        )
    )


def test_hierarchy_report(once):
    once(_report)


def _report():
    lo, hi = PARAMS.window(40)
    print()
    print(
        format_table(
            ["layer", "min-cut (truncated)", "min-cut (certificates)"],
            _rows,
            title=(
                f"Hierarchy layers (window [{lo:.1f}, {hi:.1f}], "
                f"located s = {_summary['s']})"
            ),
        )
    )
    print(
        f"lambda = {_summary['lam']:.0f}, rescaled estimate = "
        f"{_summary['estimate']:.0f} (ratio {_summary['estimate'] / _summary['lam']:.2f})"
    )
    print(
        f"certificate copies = {_summary['cert_weight']} "
        f"(budget {int(_summary['budget'])})"
    )
    # monotone decrease of the certificate layer cuts
    cert_cuts = [r[2] for r in _rows]
    assert all(cert_cuts[i + 1] <= cert_cuts[i] + 1e-9 for i in range(len(cert_cuts) - 1))
    # O(1)-approximation through the located layer
    assert 1 / 4 <= _summary["estimate"] / _summary["lam"] <= 4
    # Claim 3.19's participation budget bounds the certificate volume
    assert _summary["cert_weight"] <= _summary["budget"]
