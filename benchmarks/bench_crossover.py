"""E8 — Table 1's regime claim: who wins at which density.

Paper artifact: Table 1's "work-optimal on non-sparse graphs" (here) vs
"work-optimal on sparse graphs" ([AB21]), with footnote 4 locating the
handover around m ~ n log^2 n (against AB21) and the non-sparse
condition m >= c n log^3 n loglog n (against the sequential bound).

What we measure: our measured 2-respecting work over a density sweep at
fixed n, against the GG18/AB21 model curves normalised at the densest
point (constants are incomparable; the *shape* — whose curve flattens
per edge as density grows — is the claim).

Shape claims asserted: our measured work-per-edge *falls* as density
grows (the m log n term amortises the n polylog n terms) while the
AB21/GG18 models stay flat per edge; the model crossover density for a
large n sits in the polylog band the footnote predicts.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import crossover_density, work_ab21, work_gg18
from repro.graphs import random_connected_graph
from repro.metrics import MeasuredPoint, format_table
from repro.pram import Ledger
from repro.primitives import root_tree, spanning_forest_graph
from repro.tworespect import two_respecting_min_cut

N = 512
DENSITIES = [2, 4, 8, 16, 32, 64]
_points: list[MeasuredPoint] = []


@pytest.mark.parametrize("density", DENSITIES)
def test_density_sweep(once, density):
    g = random_connected_graph(N, density * N, rng=density, max_weight=6)
    ids, _ = spanning_forest_graph(g)
    parent = root_tree(g.n, g.u[ids], g.v[ids], 0)
    ledger = Ledger()
    once(two_respecting_min_cut, g, parent, ledger=ledger)
    _points.append(MeasuredPoint(n=N, m=g.m, work=ledger.work, depth=ledger.depth))


def test_crossover_report(once):
    once(_report)


def _report():
    pts = sorted(_points, key=lambda p: p.m)
    assert len(pts) == len(DENSITIES)
    rows = []
    per_edge = []
    for p in pts:
        per_edge.append(p.work / p.m)
        rows.append(
            [
                f"{p.m / p.n:.1f}",
                p.m,
                p.work,
                f"{per_edge[-1]:.0f}",
                f"{work_ab21(p.m, p.n) / p.m:.0f}",
                f"{work_gg18(p.m, p.n) / p.m:.0f}",
            ]
        )
    print()
    print(
        format_table(
            ["m/n", "m", "work (measured)", "work/m", "AB21 model/m", "GG18 model/m"],
            rows,
            title=f"Density sweep at n = {N}: per-edge work",
        )
    )
    # our per-edge work falls with density (the n polylog n terms
    # amortise), which is exactly why the algorithm wins on non-sparse
    # inputs; the AB21/GG18 models are flat per edge by construction.
    assert per_edge[-1] < 0.55 * per_edge[0]
    # the model crossover for a big n lands in the polylog band
    n_big = 1 << 16
    c = crossover_density(n_big)
    lg = np.log2(n_big)
    print(f"model crossover vs AB21 at n=2^16: m/n ~ {c:.0f} "
          f"(log^2 n = {lg**2:.0f}, log^3 n = {lg**3:.0f})")
    assert lg**2 <= c <= lg**3.5
