"""E4 — Theorem 3.1: the (1 +- eps)-approximation's quality and work.

Paper artifact: Theorem 3.1 claims a (1 +- eps)-approximation at
O(m log n + n log^5 n) work and O(log^3 n) depth.

What we measure: on heavy-weight workloads (where the sampled hierarchy
actually has many layers), the approximation estimate vs the exact
Stoer–Wagner value, plus the hierarchy work/depth counters over an m
sweep.

Shape claims asserted: every estimate within a constant factor (<= 4x)
of the truth and most within 2x; work grows ~linearly in total weight
handled; depth stays polylog.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.approx import approximate_minimum_cut
from repro.arena.solvers import stoer_wagner
from repro.graphs import random_connected_graph
from repro.metrics import MeasuredPoint, fit_power_law, format_table
from repro.pram import Ledger
from repro.sparsify import HierarchyParams

CASES = [(48, 3), (96, 4), (192, 4), (384, 5)]
_points: list[MeasuredPoint] = []


def _workload(n: int, deg: int):
    rng = np.random.default_rng(n * deg)
    g = random_connected_graph(n, deg * n, rng=rng, max_weight=1)
    scale = float(rng.integers(150, 900))
    return g.with_weights(g.w * scale)


@pytest.mark.parametrize("n,deg", CASES)
def test_approx_quality_and_work(once, n, deg):
    g = _workload(n, deg)
    lam = stoer_wagner(g).value
    ledger = Ledger()

    def run():
        return approximate_minimum_cut(
            g,
            params=HierarchyParams(scale=0.02),
            rng=np.random.default_rng(n),
            solver=lambda h: stoer_wagner(h).value,
            ledger=ledger,
        )

    res = once(run)
    _points.append(
        MeasuredPoint(
            n=n,
            m=g.m,
            work=ledger.work,
            depth=ledger.depth,
            extra={
                "lambda": lam,
                "estimate": res.estimate,
                "layer": float(res.skeleton_layer),
                "weight": g.total_weight,
            },
        )
    )


def test_approx_report(once):
    once(_report)


def _report():
    pts = sorted(_points, key=lambda p: p.n)
    assert len(pts) == len(CASES)
    rows = []
    ratios = []
    for p in pts:
        ratio = p.extra["estimate"] / p.extra["lambda"]
        ratios.append(ratio)
        rows.append(
            [
                p.n,
                p.m,
                p.extra["lambda"],
                p.extra["estimate"],
                f"{ratio:.2f}",
                int(p.extra["layer"]),
                p.work,
                int(p.depth),
            ]
        )
    print()
    print(
        format_table(
            ["n", "m", "lambda", "estimate", "ratio", "layer s", "work", "depth"],
            rows,
            title="Theorem 3.1 approximation on heavy-weight workloads",
        )
    )
    assert all(1 / 4 <= r <= 4 for r in ratios), ratios
    assert sum(1 / 2 <= r <= 2 for r in ratios) >= len(ratios) - 1
    # work scales near-linearly with the processed weight volume
    alpha, _ = fit_power_law([p.extra["weight"] for p in pts], [p.work for p in pts])
    print(f"approx work ~ weight^{alpha:.2f} (expected ~1 with polylog drift)")
    assert 0.5 <= alpha <= 1.6
    # depth stays polylog
    lg3 = np.log2(pts[-1].n) ** 3
    assert pts[-1].depth <= 60 * lg3
