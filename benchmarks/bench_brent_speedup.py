"""E7 — Brent speedups: what work-optimality buys on p processors.

Paper artifact: the motivation behind Table 1 — a work-optimal algorithm
at O(log^3 n) depth delivers speedup ~p against the best sequential
algorithm, while a work-suboptimal one (GG18's extra log^3 n factor)
wastes a constant fraction of every processor.

What we measure: Brent projections T_p = W/p + D from the measured
ledgers of (a) our 2-respecting search and (b) the GG18-style stand-in,
both normalised against *our* work as the sequential reference (it
matches the best sequential bound).

Shape claims asserted: our self-speedup at p=1024 exceeds 100x; the
baseline's absolute speedup stays below ours at every p; our efficiency
at small p stays near 1.
"""

from __future__ import annotations

from repro.baselines import gg18_two_respecting
from repro.graphs import random_connected_graph
from repro.metrics import format_table
from repro.pram import Ledger, TraceLedger, parallelism, speedup_curve
from repro.primitives import root_tree, spanning_forest_graph
from repro.tworespect import two_respecting_min_cut

PROCESSORS = [1, 4, 16, 64, 256, 1024, 4096]
_ledgers: dict[str, Ledger] = {}


def _workload():
    g = random_connected_graph(600, 6000, rng=21, max_weight=8)
    ids, _ = spanning_forest_graph(g)
    return g, root_tree(g.n, g.u[ids], g.v[ids], 0)


def test_measure_ours(once):
    g, parent = _workload()
    ledger = TraceLedger()  # records the SP shape for schedule bounds
    once(two_respecting_min_cut, g, parent, ledger=ledger)
    _ledgers["ours"] = ledger


def test_measure_gg18(once):
    g, parent = _workload()
    ledger = Ledger()
    once(gg18_two_respecting, g, parent, ledger=ledger)
    _ledgers["gg18"] = ledger


def test_brent_report(once):
    once(_report)


def _report():
    ours = _ledgers["ours"]
    gg = _ledgers["gg18"]
    seq_work = ours.work  # our work matches the best sequential bound
    ours_curve = speedup_curve(ours.work, ours.depth, PROCESSORS, seq_work)
    gg_curve = speedup_curve(gg.work, gg.depth, PROCESSORS, seq_work)
    rows = [
        [p, f"{a.speedup:.1f}x", f"{a.efficiency:.2f}", f"{b.speedup:.1f}x"]
        for p, a, b in zip(PROCESSORS, ours_curve, gg_curve)
    ]
    print()
    print(
        format_table(
            ["p", "here speedup", "here efficiency", "GG18-style speedup"],
            rows,
            title=(
                "Brent projection T_p = W/p + D vs sequential work "
                f"(W_here={ours.work:.3g}, D_here={ours.depth:.0f}, "
                f"W_gg={gg.work:.3g}, D_gg={gg.depth:.0f})"
            ),
        )
    )
    print(f"parallelism here: {parallelism(ours.work, ours.depth):,.0f}; "
          f"GG18-style: {parallelism(gg.work, gg.depth):,.0f}")
    # trace-based sandwich: the true makespan lies between the bounds,
    # and the upper bound never exceeds Brent
    rows = []
    for p in PROCESSORS:
        lo, hi = ours.bounds(p)
        bt = ours.work / p + ours.depth
        assert lo <= hi <= bt + 1e-6
        rows.append([p, f"{lo:,.0f}", f"{hi:,.0f}", f"{bt:,.0f}"])
    print()
    print(
        format_table(
            ["p", "schedule lower", "schedule upper", "Brent W/p + D"],
            rows,
            title="SP-trace schedule bounds (here, 2-respecting stage)",
        )
    )
    # work-optimality payoff
    assert ours_curve[0].efficiency > 0.95
    idx1024 = PROCESSORS.index(1024)
    assert ours_curve[idx1024].speedup > 100
    for a, b in zip(ours_curve, gg_curve):
        assert a.speedup > b.speedup
