"""E5 — Theorem 4.2 + Section 4.3: 2-respecting work optimality and the
eps (range-tree degree) tradeoff.

Paper artifacts: Theorem 4.2 (O(m log m + n log^3 n) work, O(log^2 n)
depth per tree with the b=2 structure) and Lemmas 4.24/4.25 (degree
n^eps structures trade O(m/eps) preprocessing against O(n^eps/eps)
queries, giving Theorem 4.26's dense-graph bound).

What we measure: (a) structural work (ledger + oracle node visits) over
an m sweep at fixed n — near-linear growth in m; (b) an eps sweep on a
dense instance — query work grows with the degree while tree depth (and
hence ledger depth) falls, with total work minimised at an interior eps
on dense inputs.

Shape claims asserted: work vs m exponent ~1; depth decreases
monotonically with eps; all eps agree on the cut value.
"""

from __future__ import annotations

import pytest

from repro.core import branching_for_epsilon
from repro.graphs import random_connected_graph
from repro.metrics import MeasuredPoint, fit_power_law, format_table
from repro.pram import Ledger
from repro.primitives import root_tree, spanning_forest_graph
from repro.tworespect import two_respecting_min_cut

M_SWEEP = [1500, 3000, 6000, 12000, 24000]
EPS_SWEEP = [None, 0.15, 0.3, 0.45]
_m_points: list[MeasuredPoint] = []
_eps_points: list[MeasuredPoint] = []


def _tree(g):
    ids, _ = spanning_forest_graph(g)
    return root_tree(g.n, g.u[ids], g.v[ids], 0)


@pytest.mark.parametrize("m", M_SWEEP)
def test_work_scales_with_m(once, m):
    g = random_connected_graph(500, m, rng=m, max_weight=6)
    parent = _tree(g)
    ledger = Ledger()
    res = once(two_respecting_min_cut, g, parent, ledger=ledger)
    _m_points.append(
        MeasuredPoint(
            n=g.n, m=g.m, work=ledger.work, depth=ledger.depth,
            extra={"visits": res.stats["oracle_nodes_visited"]},
        )
    )


@pytest.mark.parametrize("eps", EPS_SWEEP)
def test_eps_tradeoff(once, eps):
    g = random_connected_graph(400, 50000, rng=77, max_weight=6)
    parent = _tree(g)
    b = branching_for_epsilon(g.n, eps)
    ledger = Ledger()
    res = once(two_respecting_min_cut, g, parent, branching=b, ledger=ledger)
    _eps_points.append(
        MeasuredPoint(
            n=g.n, m=g.m, work=ledger.work, depth=ledger.depth,
            extra={
                "eps": -1.0 if eps is None else eps,
                "branching": float(b),
                "visits": res.stats["oracle_nodes_visited"],
                "value": res.value,
            },
        )
    )


def test_tworespect_report(once):
    once(_report)


def _report():
    mpts = sorted(_m_points, key=lambda p: p.m)
    assert len(mpts) == len(M_SWEEP)
    rows = [[p.m, p.work, int(p.extra["visits"]), int(p.depth)] for p in mpts]
    print()
    print(
        format_table(
            ["m", "ledger work", "oracle node visits", "depth"],
            rows,
            title="Theorem 4.2: 2-respecting work vs m at n = 500",
        )
    )
    alpha, _ = fit_power_law([p.m for p in mpts], [p.work for p in mpts])
    print(
        f"work ~ m^{alpha:.2f} (work-optimality: must not exceed ~1; "
        "sub-linear exponents mean the n polylog n terms still dominate at n=500)"
    )
    assert alpha < 1.3
    # depth must NOT grow with m (it is a function of n only)
    assert mpts[-1].depth <= 1.6 * mpts[0].depth

    epts = sorted(_eps_points, key=lambda p: p.extra["eps"])
    assert len(epts) == len(EPS_SWEEP)
    rows = [
        [
            "2 (b=2)" if p.extra["eps"] < 0 else f"{p.extra['eps']:.2f}",
            int(p.extra["branching"]),
            int(p.extra["visits"]),
            p.work,
            int(p.depth),
        ]
        for p in epts
    ]
    print()
    print(
        format_table(
            ["eps", "degree n^eps", "node visits", "ledger work", "depth"],
            rows,
            title="Section 4.3 tradeoff on a dense instance (n=400, m=50k)",
        )
    )
    values = {round(p.extra["value"], 6) for p in epts}
    assert len(values) == 1, "all eps must agree on the cut"
    depths = [p.depth for p in epts]
    assert all(depths[i + 1] <= depths[i] + 1e-9 for i in range(len(depths) - 1)), (
        "depth must fall as the trees get shallower"
    )
    # on this dense instance some eps > 0 beats b = 2 on total work
    assert min(p.work for p in epts[1:]) < epts[0].work
