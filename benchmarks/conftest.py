"""Benchmark-suite configuration.

Every bench measures *one* run (``pedantic`` with a single round): the
quantities of interest are the deterministic ledger counters (work,
depth, structural visits), not wall-clock statistics — see DESIGN.md's
substitution table.  Tables are printed to stdout; run with ``-s`` (or
rely on pytest's captured-output-on-demand) to see them, e.g.::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, iterations=1, rounds=1)


@pytest.fixture
def once(benchmark):
    """Fixture form of :func:`run_once`."""

    def _run(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return _run
