"""E1 — Table 1: total work of the full min-cut pipeline vs baselines.

Paper artifact: Table 1 ("Bounds for randomized parallel algorithms
computing the minimum cut"): [GG18] O(m log^4 n) (old record), here
O(m log n + n^{1+eps}) (work-optimal non-sparse), [AB21] O(m log^2 n)
(work-optimal sparse).  All at O(log^3 n) depth.

What we measure: the ledger work of our full pipeline on non-sparse
workloads (m ~ n^1.5), our GG18-style executable stand-in on the same
instances, and the GG18/AB21 model curves normalised at the smallest
instance (constants are not comparable; shapes and gaps are).

Shape claims asserted:
* our measured work grows ~linearly in m (power-law exponent vs m < 1.35),
* the measured GG18-style work exceeds ours by a factor that *grows*
  with n (the log^3 n gap of Table 1).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import gg18_two_respecting, work_ab21, work_gg18
from repro.baselines.models import work_here_best
from repro.core import minimum_cut
from repro.graphs import random_connected_graph
from pathlib import Path

from repro.metrics import (
    MeasuredPoint,
    dump_records,
    fit_power_law,
    format_table,
    normalised_curve,
    points_to_records,
)

RESULTS_DIR = Path(__file__).resolve().parent / "results"
from repro.pram import Ledger
from repro.primitives import root_tree, spanning_forest_graph

SIZES = [96, 160, 256, 420]
_points: dict[str, list[MeasuredPoint]] = {"ours": [], "gg18": []}


def _workload(n: int):
    m = int(round(n**1.5))
    return random_connected_graph(n, m, rng=n, max_weight=8)


@pytest.mark.parametrize("n", SIZES)
def test_table1_ours_full_pipeline(once, n):
    g = _workload(n)
    ledger = Ledger()

    def run():
        return minimum_cut(g, rng=np.random.default_rng(1), ledger=ledger)

    res = once(run)
    assert res.value > 0
    _points["ours"].append(
        MeasuredPoint(n=g.n, m=g.m, work=ledger.work, depth=ledger.depth)
    )


@pytest.mark.parametrize("n", SIZES)
def test_table1_gg18_baseline(once, n):
    g = _workload(n)
    ids, _ = spanning_forest_graph(g)
    parent = root_tree(g.n, g.u[ids], g.v[ids], 0)
    ledger = Ledger()
    once(gg18_two_respecting, g, parent, ledger=ledger)
    # GG18's full pipeline runs O(log n) trees; scale the single-tree
    # measurement accordingly (same convention as eq. (1) of the paper)
    trees = int(np.ceil(np.log2(g.n)))
    _points["gg18"].append(
        MeasuredPoint(n=g.n, m=g.m, work=ledger.work * trees, depth=ledger.depth)
    )


def test_table1_report(once):
    once(_report)


def _report():
    ours = sorted(_points["ours"], key=lambda p: p.n)
    gg = sorted(_points["gg18"], key=lambda p: p.n)
    assert len(ours) == len(SIZES) and len(gg) == len(SIZES)

    model_here = normalised_curve([work_here_best(p.m, p.n) for p in ours])
    model_gg = normalised_curve([work_gg18(p.m, p.n) for p in ours])
    model_ab = normalised_curve([work_ab21(p.m, p.n) for p in ours])
    meas_ours = normalised_curve([p.work for p in ours])
    meas_gg = normalised_curve([p.work for p in gg])

    rows = []
    for i, p in enumerate(ours):
        rows.append(
            [
                p.n,
                p.m,
                p.work,
                gg[i].work,
                f"{gg[i].work / p.work:.1f}x",
                f"{meas_ours[i]:.1f}",
                f"{model_here[i]:.1f}",
                f"{meas_gg[i]:.1f}",
                f"{model_gg[i]:.1f}",
                f"{model_ab[i]:.1f}",
            ]
        )
    print()
    print(
        format_table(
            [
                "n",
                "m",
                "work(here)",
                "work(GG18-style)",
                "gap",
                "here norm",
                "here model",
                "GG18 norm",
                "GG18 model",
                "AB21 model",
            ],
            rows,
            title="Table 1 (measured work vs normalised model curves, m ~ n^1.5)",
        )
    )

    # shape claim 1: our work is near-linear in m
    alpha, _ = fit_power_law([p.m for p in ours], [p.work for p in ours])
    print(f"measured work ~ m^{alpha:.2f} (paper: m log n => exponent ~1)")
    assert alpha < 1.45

    # shape claim 2: the GG18 gap grows with n (Table 1's log^3 n factor;
    # at laptop sizes the onset is gradual because our pipeline carries
    # the additive n polylog n terms with real constants)
    gaps = [gg[i].work / ours[i].work for i in range(len(ours))]
    print(f"GG18-style / here work gaps: {[f'{g:.1f}' for g in gaps]}")
    assert all(gaps[i + 1] > gaps[i] for i in range(len(gaps) - 1))
    assert gaps[-1] > 1.8

    dump_records(
        RESULTS_DIR / "table1.json",
        "E1-table1",
        points_to_records(ours),
        meta={"baseline_gaps": gaps, "work_exponent_vs_m": alpha},
    )
