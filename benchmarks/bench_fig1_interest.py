"""E2 — Figure 1: the interest relation, and the Section 4.1.3 claim
that the interest machinery stays near-linear.

Paper artifact: Figure 1 illustrates cross- and down-interest on a small
example; the surrounding text proves (via Property 4.3 + Claim 4.8) that
every edge is interested in O(log n) paths, so there are O(n log n)
interest tuples and interested path pairs in total.

What we measure: (a) the Figure 1 relations verified on the bundled
reconstruction, (b) the number of interest tuples / mutual pairs on
random graphs of growing size.

Shape claims asserted: tuples / (n log n) stays bounded as n grows.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import figure1_graph, random_connected_graph
from repro.metrics import MeasuredPoint, format_table
from repro.primitives import postorder, root_tree, spanning_forest_graph
from repro.rangesearch import CutOracle
from repro.trees import binarize_parent
from repro.tworespect import two_respecting_min_cut

SIZES = [128, 256, 512, 1024]
_points: list[MeasuredPoint] = []


def test_fig1_relations(once):
    def check():
        g, parent, lab = figure1_graph()
        rt = postorder(binarize_parent(parent).parent)
        oracle = CutOracle(g, rt)
        e, f, ep = lab["e"], lab["f"], lab["e_prime"]
        assert oracle.cross_interested(e, f)
        assert oracle.cross_interested(f, e)
        assert oracle.down_interested(ep, f)
        return oracle

    oracle = once(check)
    print("\nFigure 1 relations hold on the bundled reconstruction:")
    print("  e cross-interested in f, f cross-interested in e,")
    print("  e' down-interested in f  ✓")


@pytest.mark.parametrize("n", SIZES)
def test_interest_tuple_counts(once, n):
    g = random_connected_graph(n, 4 * n, rng=n + 1, max_weight=6)
    ids, _ = spanning_forest_graph(g)
    parent = root_tree(g.n, g.u[ids], g.v[ids], 0)
    res = once(two_respecting_min_cut, g, parent)
    _points.append(
        MeasuredPoint(
            n=n,
            m=g.m,
            work=res.stats["num_interest_tuples"],
            depth=res.stats["num_interested_pairs"],
            extra={"n_bin": res.stats["tree_size_binarized"]},
        )
    )


def test_fig1_report(once):
    once(_report)


def _report():
    pts = sorted(_points, key=lambda p: p.n)
    assert len(pts) == len(SIZES)
    rows = []
    ratios = []
    for p in pts:
        nb = p.extra["n_bin"]
        ratio = p.work / (nb * np.log2(nb))
        ratios.append(ratio)
        rows.append([p.n, p.m, int(p.work), int(p.depth), f"{ratio:.3f}"])
    print()
    print(
        format_table(
            ["n", "m", "interest tuples", "mutual pairs", "tuples/(n log n)"],
            rows,
            title="Section 4.1.3: interest machinery stays near-linear",
        )
    )
    # the O(n log n) claim: the normalised ratio must not grow
    assert max(ratios) <= 2.5 * min(ratios)
    assert ratios[-1] < 4.0
