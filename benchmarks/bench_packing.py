"""E6 — Theorem 4.18: skeleton sparsity and packing hit rate.

Paper artifact: Theorem 4.18 packs O(log n) trees (by weight) on a
skeleton of total weight O(n log n / eps^2) such that w.h.p. the minimum
cut 2-respects one of them.

What we measure: skeleton weight / (n log n) across sizes, the number of
distinct packed trees, and the *hit rate* — on planted-cut graphs, the
fraction of instances where some sampled candidate tree 2-constrains the
minimum cut (verified by brute-force 2-respecting).

Shape claims asserted: skeleton weight ratio bounded; hit rate = 100%
on the corpus (thorough candidate set).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.arena.solvers import stoer_wagner
from repro.graphs import planted_cut_graph, random_connected_graph
from repro.metrics import MeasuredPoint, format_table
from repro.packing import pack_trees
from repro.primitives import postorder
from repro.trees import binarize_parent
from repro.tworespect import brute_force_two_respecting

SIZES = [64, 128, 256, 512]
_skeleton_points: list[MeasuredPoint] = []
_hits: list[tuple[int, bool, int]] = []


@pytest.mark.parametrize("n", SIZES)
def test_skeleton_sparsity(once, n):
    g = random_connected_graph(n, 6 * n, rng=n + 9, max_weight=50)
    lam = stoer_wagner(g).value

    def run():
        return pack_trees(g, lam / 2, rng=np.random.default_rng(n))

    result = once(run)
    _skeleton_points.append(
        MeasuredPoint(
            n=n,
            m=g.m,
            work=result.skeleton.skeleton.total_weight,
            depth=float(result.packing.num_distinct),
            extra={"p": result.skeleton.p},
        )
    )


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
def test_packing_hit_rate(once, seed):
    rng = np.random.default_rng(seed)
    g = planted_cut_graph(12, 12, 2.0, rng=rng)
    lam = stoer_wagner(g).value

    def run():
        result = pack_trees(g, lam / 2, rng=np.random.default_rng(seed + 100))
        best = min(
            brute_force_two_respecting(g, postorder(binarize_parent(p).parent))[0]
            for p in result.tree_parents
        )
        return best, result.num_trees

    best, trees = once(run)
    _hits.append((seed, abs(best - lam) < 1e-9, trees))


def test_packing_report(once):
    once(_report)


def _report():
    pts = sorted(_skeleton_points, key=lambda p: p.n)
    assert len(pts) == len(SIZES)
    rows = []
    ratios = []
    for p in pts:
        ratio = p.work / (p.n * np.log2(p.n))
        ratios.append(ratio)
        rows.append([p.n, p.m, p.work, f"{ratio:.2f}", f"{p.extra['p']:.3f}", int(p.depth)])
    print()
    print(
        format_table(
            ["n", "m", "skeleton weight", "/(n log n)", "sample p", "distinct trees"],
            rows,
            title="Theorem 4.18: skeleton weight O(n log n), O(log^2 n) MSTs",
        )
    )
    assert max(ratios) <= 4 * min(ratios) + 1.0

    hit_rate = sum(h for _, h, _ in _hits) / len(_hits)
    print(f"packing hit rate on planted-cut corpus: {hit_rate:.0%} "
          f"(candidates per instance: {[t for _, _, t in _hits]})")
    assert hit_rate == 1.0
