"""Setuptools shim: lets ``python setup.py develop`` work on minimal
environments without the ``wheel`` package (all metadata lives in
pyproject.toml)."""

from setuptools import setup

setup()
