"""Sparsification: skeletons, NI certificates, hierarchies (Sections 2.4,
3.1, 4.2.1)."""

import numpy as np
import pytest

from repro.arena.solvers import stoer_wagner
from repro.graphs import Graph, MultiGraph, planted_cut_graph, random_connected_graph
from repro.pram import Ledger
from repro.sparsify import (
    HierarchyParams,
    SkeletonParams,
    build_certificate_hierarchy,
    build_skeleton,
    build_truncated_hierarchy,
    certificate_forests,
    connectivity_certificate,
)

from tests.conftest import make_graph


class TestCertificate:
    def test_weight_bound(self):
        """Theorem 2.6 / Definition 2.5.1: total weight <= k(n-1)."""
        g = make_graph(40, 300, 1, max_weight=9)
        for k in (1, 3, 8):
            cert = connectivity_certificate(g, k)
            assert cert.total_weight <= k * (g.n - 1) + 1e-9

    def test_small_cuts_preserved_exactly(self):
        """Definition 2.5.2: every cut of value <= k keeps its value."""
        rng = np.random.default_rng(2)
        for trial in range(6):
            g = random_connected_graph(18, 60, rng=rng, max_weight=4)
            lam = stoer_wagner(g).value
            k = int(lam) + 3
            cert = connectivity_certificate(g, k)
            # check many random bipartitions with small cut values
            for _ in range(40):
                side = rng.random(g.n) < 0.5
                if not side.any() or side.all():
                    continue
                val = g.cut_value(side)
                if val <= k:
                    assert cert.cut_value(side) == pytest.approx(val)

    def test_min_cut_preserved(self):
        g = planted_cut_graph(12, 12, 2.0, rng=3)
        cert = connectivity_certificate(g, 10)
        assert stoer_wagner(cert).value == pytest.approx(stoer_wagner(g).value)

    def test_larger_cuts_at_least_k(self):
        g = make_graph(20, 190, 4, max_weight=1)  # dense unweighted
        k = 3
        cert = connectivity_certificate(g, k)
        assert stoer_wagner(cert).value >= min(stoer_wagner(g).value, k) - 1e-9

    def test_rounds_stop_early_on_forest(self):
        g = make_graph(20, 19, 5, max_weight=1)  # unit-weight tree
        cert, rounds = certificate_forests(g, 10)
        assert rounds == 1
        assert cert.m == g.m

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            connectivity_certificate(make_graph(5, 8, 6), 0)

    def test_charges_ledger(self):
        led = Ledger()
        connectivity_certificate(make_graph(30, 120, 7), 4, ledger=led)
        assert led.work > 0 and led.depth > 0


class TestSkeleton:
    def test_p_one_keeps_connectivity_and_cut(self):
        """At test scale p caps at 1: skeleton == weight-capped input and
        the min cut value is unchanged (Observation 4.22)."""
        g = make_graph(30, 120, 8, max_weight=5)
        lam = stoer_wagner(g).value
        skel = build_skeleton(g, lam / 2, rng=np.random.default_rng(0))
        assert skel.p == 1.0
        assert skel.skeleton.is_connected()
        assert stoer_wagner(skel.skeleton).value == pytest.approx(lam)

    def test_sampling_kicks_in_for_huge_cuts(self):
        """A graph of very heavy parallel mass samples at p < 1 and the
        skeleton min-cut lands near p * lambda."""
        rng = np.random.default_rng(9)
        g = random_connected_graph(24, 120, rng=rng, max_weight=1)
        g = g.with_weights(g.w * 4000.0)  # lambda ~ thousands
        lam = stoer_wagner(g).value
        params = SkeletonParams(certify=False)
        skel = build_skeleton(g, lam, params=params, rng=rng)
        assert skel.p < 1.0
        sk_cut = stoer_wagner(skel.skeleton).value
        expect = skel.p * lam
        assert 0.4 * expect <= sk_cut <= 2.5 * expect + params.weight_cap(g.n)

    def test_cap_applied(self):
        g = Graph.from_edges(3, [(0, 1, 1e9), (1, 2, 1e9), (0, 2, 1.0)])
        skel = build_skeleton(g, 2.0, rng=np.random.default_rng(1))
        assert skel.skeleton.w.max() <= skel.cap

    def test_rescale(self):
        g = make_graph(20, 60, 10)
        skel = build_skeleton(g, 2.0, rng=np.random.default_rng(2))
        assert skel.rescale_cut_value(5.0) == pytest.approx(5.0 / skel.p)

    def test_poisson_path_for_float_weights(self):
        g = Graph.from_edges(4, [(0, 1, 2000.5), (1, 2, 1500.25), (2, 3, 1800.75), (0, 3, 900.5)])
        skel = build_skeleton(
            g, 2000.0, params=SkeletonParams(certify=False), rng=np.random.default_rng(3)
        )
        assert skel.p < 1.0
        assert skel.skeleton.m <= g.m


def small_params():
    """Hierarchy constants scaled for test-size graphs."""
    return HierarchyParams(scale=0.02)


class TestHierarchy:
    def _heavy_graph(self, seed, n=16, wmax=800):
        rng = np.random.default_rng(seed)
        g = random_connected_graph(n, n * 4, rng=rng, max_weight=wmax)
        return g

    def test_structure_validates(self):
        g = self._heavy_graph(1)
        h = build_truncated_hierarchy(g, params=small_params(), rng=np.random.default_rng(0))
        h.validate()

    def test_depth_tracks_total_weight(self):
        g = self._heavy_graph(2)
        h = build_truncated_hierarchy(g, params=small_params(), rng=np.random.default_rng(1))
        assert h.depth == int(np.ceil(np.log2(g.total_weight))) + 1

    def test_layer_zero_counts_near_critical(self):
        """Claim 3.10 analogue: the entry count of every edge sits near
        its critical multiplicity window."""
        params = small_params()
        g = self._heavy_graph(3, n=12, wmax=3000)
        h = build_truncated_hierarchy(g, params=params, rng=np.random.default_rng(2))
        thresh = params.crit_threshold(g.n)
        w = g.require_integer_weights()
        for e in range(g.m):
            expected = w[e] / (2.0 ** h.t_e[e])
            assert thresh <= expected + 1e-9 or h.t_e[e] == 0
            if h.t_e[e] > 0:
                assert expected < 2 * thresh + 1e-9

    def test_counts_decrease_along_layers(self):
        g = self._heavy_graph(4)
        h = build_truncated_hierarchy(g, params=small_params(), rng=np.random.default_rng(3))
        for i in range(h.depth - 1):
            assert (h.layers[i + 1].counts <= h.layers[i].counts).all()

    def test_integer_weights_required(self):
        g = Graph.from_edges(2, [(0, 1, 1.5)])
        from repro.errors import IntegerWeightsRequired

        with pytest.raises(IntegerWeightsRequired):
            build_truncated_hierarchy(g, rng=np.random.default_rng(0))

    def test_charges_ledger(self):
        led = Ledger()
        build_truncated_hierarchy(
            self._heavy_graph(5), params=small_params(),
            rng=np.random.default_rng(4), ledger=led,
        )
        assert led.work > 0


class TestCertificateHierarchy:
    def test_cumulative_preserves_small_cuts(self):
        """Claim 3.18 at test scale: cuts below the certificate budget
        survive in the cumulative certificates."""
        params = small_params()
        rng = np.random.default_rng(6)
        g = random_connected_graph(14, 50, rng=rng, max_weight=400)
        h = build_truncated_hierarchy(g, params=params, rng=rng)
        certs = build_certificate_hierarchy(h)
        k_budget = params.cert_k(g.n)
        for i in range(h.depth):
            layer_graph = h.layers[i].support_graph()
            if layer_graph.m == 0 or not layer_graph.is_connected():
                continue
            lam_layer = stoer_wagner(layer_graph).value
            cum = certs.cumulative(i)
            if lam_layer < k_budget and cum.m > 0 and cum.is_connected():
                assert stoer_wagner(cum).value <= lam_layer + 1e-9

    def test_forest_budget_respected(self):
        params = small_params()
        rng = np.random.default_rng(7)
        g = random_connected_graph(12, 40, rng=rng, max_weight=300)
        h = build_truncated_hierarchy(g, params=params, rng=rng)
        certs = build_certificate_hierarchy(h)
        assert all(f <= params.cert_k(g.n) for f in certs.forests_per_layer)

    def test_certificates_within_layers(self):
        params = small_params()
        rng = np.random.default_rng(8)
        g = random_connected_graph(12, 40, rng=rng, max_weight=300)
        h = build_truncated_hierarchy(g, params=params, rng=rng)
        certs = build_certificate_hierarchy(h)
        for i in range(h.depth):
            assert (certs.certificates[i].counts <= h.exclusive[i].counts).all()
