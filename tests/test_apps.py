"""Application workflows (repro.apps) and the 2-out baseline."""

import numpy as np
import pytest

from repro.apps import (
    ClusteringParams,
    ReliabilityReport,
    induced_subgraph,
    min_cut_clusters,
    reinforce,
    weakest_partition,
)
from repro.arena.solvers import stoer_wagner, two_out_contraction_min_cut
from repro.errors import GraphFormatError
from repro.graphs import (
    Graph,
    community_graph,
    random_connected_graph,
    reliability_network,
)


class TestInducedSubgraph:
    def test_basic(self):
        g = Graph.from_edges(4, [(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0)])
        sub = induced_subgraph(g, np.array([1, 2]))
        assert sub.n == 2
        assert sub.m == 1
        assert sub.w[0] == 2.0

    def test_empty_selection(self):
        g = Graph.from_edges(3, [(0, 1), (1, 2)])
        assert induced_subgraph(g, np.array([], dtype=np.int64)).n == 0

    def test_preserves_weights(self):
        g = random_connected_graph(20, 60, rng=1, max_weight=5)
        sub = induced_subgraph(g, np.arange(20))
        assert sub.total_weight == pytest.approx(g.total_weight)


class TestClustering:
    def test_recovers_planted_communities(self):
        sizes = (14, 12, 16)
        g = community_graph(sizes, intra_degree=8, inter_edges=2, rng=5)
        parts = min_cut_clusters(g, rng=np.random.default_rng(0))
        assert sorted(len(p) for p in parts) == sorted(sizes)
        # parts form a partition
        allv = np.concatenate(parts)
        assert sorted(allv.tolist()) == list(range(g.n))

    def test_dense_graph_stays_whole(self):
        from repro.graphs import complete_graph

        g = complete_graph(16)
        parts = min_cut_clusters(g, rng=np.random.default_rng(1))
        assert len(parts) == 1

    def test_disconnected_splits_by_component(self):
        g = Graph.from_edges(8, [(i, i + 1, 1.0) for i in (0, 1, 2)] + [(i, i + 1, 1.0) for i in (4, 5, 6)])
        parts = min_cut_clusters(
            g, params=ClusteringParams(min_size=1), rng=np.random.default_rng(2)
        )
        part_sets = [set(p.tolist()) for p in parts]
        assert not any({0, 4} <= s for s in part_sets)  # never merged

    def test_min_size_respected(self):
        g = community_graph((10, 10), rng=3)
        parts = min_cut_clusters(
            g, params=ClusteringParams(min_size=15), rng=np.random.default_rng(3)
        )
        assert len(parts) == 1  # any split would violate min_size

    def test_empty_graph(self):
        assert min_cut_clusters(Graph.empty(0)) == []


class TestReliability:
    def test_weakest_partition_matches_min_cut(self):
        net = reliability_network(20, 6, rng=4)
        rep = weakest_partition(net, rng=np.random.default_rng(0))
        assert rep.cut_value == pytest.approx(stoer_wagner(net).value)
        assert rep.isolated.shape[0] <= net.n // 2
        assert rep.crossing_edges.shape[0] >= 1

    def test_reinforce_monotone(self):
        net = reliability_network(22, 7, rng=5)
        reports = reinforce(net, rounds=3, rng=np.random.default_rng(1))
        vals = [r.cut_value for r in reports]
        assert all(vals[i + 1] >= vals[i] - 1e-9 for i in range(len(vals) - 1))

    def test_reinforce_validates(self):
        net = reliability_network(15, 4, rng=6)
        with pytest.raises(ValueError):
            reinforce(net, rounds=0)
        with pytest.raises(ValueError):
            reinforce(net, rounds=1, factor=1.0)


class TestTwoOutContraction:
    def _simple(self, n, m, seed):
        g = random_connected_graph(n, m, rng=seed, max_weight=1)
        return g.with_weights(np.ones(g.m))

    def test_exact_whp_on_corpus(self):
        hits = 0
        for t in range(8):
            g = self._simple(40, 130, t)
            res = two_out_contraction_min_cut(g, rng=np.random.default_rng(t + 50))
            sw = stoer_wagner(g)
            assert res.value >= sw.value - 1e-9
            assert g.cut_value(res.side) == pytest.approx(res.value)
            hits += abs(res.value - sw.value) < 1e-9
        assert hits >= 7

    def test_rejects_weighted(self):
        g = random_connected_graph(10, 30, rng=1, max_weight=5)
        with pytest.raises(GraphFormatError):
            two_out_contraction_min_cut(g)

    def test_disconnected(self):
        g = Graph.from_edges(4, [(0, 1), (2, 3)])
        assert two_out_contraction_min_cut(g).value == 0.0

    def test_min_degree_cut_found(self):
        """Star graph: min cut is any leaf's single edge."""
        g = Graph.from_edges(6, [(0, i) for i in range(1, 6)])
        res = two_out_contraction_min_cut(g, rng=np.random.default_rng(2))
        assert res.value == pytest.approx(1.0)


class TestEngineMigrationIdentity:
    """The apps now route through repro.engine.CutEngine; these tests pin
    their outputs to the pre-migration direct-minimum_cut recursions."""

    def _legacy_clusters(self, graph, params, rng, ledger=None):
        # the pre-migration body of min_cut_clusters, verbatim
        from repro.core.mincut import minimum_cut
        from repro.pram.ledger import NULL_LEDGER

        ledger = ledger if ledger is not None else NULL_LEDGER
        if graph.n == 0:
            return []

        def split(vertices):
            if vertices.shape[0] < 2 * params.min_size:
                return [vertices]
            sub = induced_subgraph(graph, vertices)
            k, labels = sub.connected_components()
            if k > 1:
                parts = []
                for c in range(k):
                    parts.extend(split(vertices[labels == c]))
                return parts
            res = minimum_cut(sub, rng=rng, ledger=ledger)
            smaller = min(int(res.side.sum()), sub.n - int(res.side.sum()))
            if smaller < params.min_size:
                return [vertices]
            if res.value / smaller > params.max_cut_per_vertex:
                return [vertices]
            return split(vertices[res.side]) + split(vertices[~res.side])

        parts = split(np.arange(graph.n, dtype=np.int64))
        parts = [np.sort(p) for p in parts]
        parts.sort(key=lambda p: int(p[0]))
        return parts

    def test_clusters_identical_to_premigration(self):
        g = community_graph((10, 12, 9), intra_degree=7, inter_edges=2, rng=11)
        params = ClusteringParams()
        got = min_cut_clusters(g, params, rng=np.random.default_rng(7))
        want = self._legacy_clusters(g, params, np.random.default_rng(7))
        assert len(got) == len(want)
        for a, b in zip(got, want):
            assert np.array_equal(a, b)

    def test_clusters_ledger_identical_to_premigration(self):
        from repro.pram.ledger import Ledger

        g = community_graph((8, 9), intra_degree=6, inter_edges=2, rng=3)
        led_new, led_old = Ledger(), Ledger()
        min_cut_clusters(g, rng=np.random.default_rng(5), ledger=led_new)
        self._legacy_clusters(
            g, ClusteringParams(), np.random.default_rng(5), ledger=led_old
        )
        assert (led_new.work, led_new.depth) == (led_old.work, led_old.depth)

    def test_weakest_partition_identical_to_premigration(self):
        from repro.core.mincut import minimum_cut

        g = reliability_network(16, 6, rng=9)
        rep = weakest_partition(g, rng=np.random.default_rng(2))
        res = minimum_cut(g, rng=np.random.default_rng(2))
        assert rep.cut_value == res.value
        side = res.side if res.side.sum() * 2 <= g.n else ~res.side
        assert np.array_equal(rep.isolated, np.flatnonzero(side))
        assert np.array_equal(rep.crossing_edges, g.cut_edges(res.side))

    def test_reinforce_identical_to_premigration(self):
        from repro.core.mincut import minimum_cut

        g = reliability_network(14, 5, rng=4)
        got = reinforce(g, rounds=3, rng=np.random.default_rng(8))

        rng = np.random.default_rng(8)
        current = g
        want = []
        for _ in range(3):
            res = minimum_cut(current, rng=rng)
            side = res.side if res.side.sum() * 2 <= current.n else ~res.side
            want.append(
                ReliabilityReport(
                    cut_value=res.value,
                    isolated=np.flatnonzero(side),
                    crossing_edges=current.cut_edges(res.side),
                )
            )
            w = current.w.copy()
            w[want[-1].crossing_edges] *= 2.0
            current = current.with_weights(w)

        assert len(got) == len(want)
        for a, b in zip(got, want):
            assert a.cut_value == b.cut_value
            assert np.array_equal(a.isolated, b.isolated)
            assert np.array_equal(a.crossing_edges, b.crossing_edges)

    def test_reinforce_requery_matches_ground_truth(self):
        # the fast path reuses packed trees across rounds; every round's
        # report must still be the true minimum cut of that round's graph
        g = reliability_network(12, 4, rng=6)
        reports = reinforce(g, rounds=4, rng=np.random.default_rng(1), requery=True)
        w = np.array(g.w, copy=True)
        for rep in reports:
            truth = stoer_wagner(g.with_weights(w, drop_zero=False))
            assert rep.cut_value == pytest.approx(truth.value)
            w[rep.crossing_edges] *= 2.0
        values = [r.cut_value for r in reports]
        assert values == sorted(values)
