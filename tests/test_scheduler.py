"""Brent projections (repro.pram.scheduler)."""

import pytest

from repro.pram import Ledger, brent_time, ledger_curve, parallelism, speedup_curve


class TestBrentTime:
    def test_single_processor_is_work_plus_depth(self):
        assert brent_time(100, 10, 1) == 110

    def test_many_processors_floor_at_depth(self):
        assert brent_time(100, 10, 10**9) == pytest.approx(10, rel=1e-3)

    def test_invalid_processors(self):
        with pytest.raises(ValueError):
            brent_time(1, 1, 0)


class TestParallelism:
    def test_ratio(self):
        assert parallelism(1000, 10) == 100

    def test_zero_depth(self):
        assert parallelism(1000, 0) == float("inf")


class TestSpeedupCurve:
    def test_self_relative_speedup_monotone(self):
        curve = speedup_curve(1_000_000, 100, [1, 2, 4, 8, 16])
        speeds = [p.speedup for p in curve]
        assert speeds == sorted(speeds)
        assert curve[0].speedup == pytest.approx(1_000_000 / 1_000_100)

    def test_efficiency_at_one_processor(self):
        curve = speedup_curve(1000, 1, [1])
        assert curve[0].efficiency == pytest.approx(curve[0].speedup)

    def test_absolute_baseline(self):
        # work-optimal parallel algorithm: speedup vs sequential ~ p
        curve = speedup_curve(1000, 1, [10], baseline_sequential=1000)
        assert curve[0].speedup == pytest.approx(1000 / 101)

    def test_speedup_saturates_at_parallelism(self):
        w, d = 10000, 10
        curve = speedup_curve(w, d, [1, 10**6])
        assert curve[-1].speedup <= parallelism(w, d) + 1

    def test_ledger_curve(self):
        led = Ledger()
        led.charge(500, 5)
        curve = ledger_curve(led, [5])
        assert curve[0].time == pytest.approx(105)
