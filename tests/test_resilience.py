"""Resilient execution layer: budgets, verified retries, fault plans,
fallback provenance (repro.resilience)."""

import math

import numpy as np
import pytest

from repro.arena.solvers import stoer_wagner
from repro.core import minimum_cut
from repro.errors import (
    BranchErrors,
    BudgetExceeded,
    FaultInjected,
    GraphFormatError,
    InvalidParameterError,
)
from repro.graphs import Graph, random_connected_graph
from repro.graphs.validate import ensure_finite_weights
from repro.pram import Ledger, parallel_map
from repro.resilience import (
    ALL_SITES,
    Budget,
    Fault,
    FaultPlan,
    budget_scope,
    canonical_plans,
    checkpoint,
    escalated_params,
    inject,
    resilient_minimum_cut,
    verify_cut,
)
from repro.resilience.faults import (
    SITE_BUDGET_BLOWOUT,
    SITE_CORRUPT_VALUE,
    SITE_EXECUTOR_BRANCH,
)
from repro.resilience.verify import one_respecting_upper_bound
from repro.sparsify.skeleton import SkeletonParams

from tests.conftest import assert_valid_cut, make_graph


class FakeClock:
    """Deterministic monotonic clock for budget tests."""

    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


# ---------------------------------------------------------------------------
# Budget
# ---------------------------------------------------------------------------
class TestBudget:
    def test_deadline_checkpoint_raises(self):
        clock = FakeClock()
        budget = Budget(deadline=10.0, clock=clock).start()
        budget.checkpoint("here")  # within budget: no-op
        clock.advance(10.5)
        with pytest.raises(BudgetExceeded) as ei:
            budget.checkpoint("here")
        assert ei.value.reason == "deadline"
        assert ei.value.site == "here"

    def test_deadline_expiry_exactly_at_checkpoint_boundary(self):
        # the boundary is inclusive: a checkpoint reached at *exactly*
        # the deadline must raise, not slip through and return a partial
        # result one instant past its budget (the serving daemon's
        # shedding contract leans on this)
        clock = FakeClock()
        budget = Budget(deadline=5.0, clock=clock).start()
        clock.advance(5.0 - 1e-9)
        budget.checkpoint("just-inside")  # strictly before: no-op
        clock.advance(1e-9)  # now exactly at the deadline
        with budget_scope(budget):
            with pytest.raises(BudgetExceeded) as ei:
                checkpoint("at-boundary")
        assert ei.value.reason == "deadline"
        assert ei.value.site == "at-boundary"
        # and it keeps raising on every later checkpoint too
        clock.advance(0.0)
        with pytest.raises(BudgetExceeded):
            budget.checkpoint("after")

    def test_work_budget(self):
        led = Ledger()
        budget = Budget(max_work=100.0, ledger=led).start()
        led.charge(50, depth=1)
        budget.checkpoint()
        led.charge(51, depth=1)
        with pytest.raises(BudgetExceeded) as ei:
            budget.checkpoint()
        assert ei.value.reason == "work"

    def test_work_budget_needs_ledger(self):
        with pytest.raises(InvalidParameterError):
            Budget(max_work=5.0)

    def test_invalid_values(self):
        with pytest.raises(InvalidParameterError):
            Budget(deadline=0.0)
        with pytest.raises(InvalidParameterError):
            Budget(deadline=-1.0)

    def test_scope_arms_contextvar(self):
        clock = FakeClock()
        budget = Budget(deadline=1.0, clock=clock)
        checkpoint("outside")  # no active budget: no-op
        with budget_scope(budget):
            checkpoint("inside")
            clock.advance(2.0)
            with pytest.raises(BudgetExceeded):
                checkpoint("inside")
        checkpoint("outside-again")  # disarmed on exit

    def test_remaining_time(self):
        clock = FakeClock()
        budget = Budget(deadline=5.0, clock=clock).start()
        clock.advance(2.0)
        assert budget.remaining_time() == pytest.approx(3.0)
        assert Budget().remaining_time() is None

    def test_deadline_cancels_pipeline(self):
        # an already-expired budget stops the exact pipeline at the next
        # checkpoint, well before it completes
        g = make_graph(40, 150, seed=5)
        clock = FakeClock()
        budget = Budget(deadline=1.0, clock=clock).start()
        clock.advance(5.0)
        with budget_scope(budget):
            with pytest.raises(BudgetExceeded):
                minimum_cut(g, rng=np.random.default_rng(0))


class TestAccountingUnperturbed:
    def test_checkpoints_charge_nothing(self):
        # ledger work/depth of the unfaulted path must be bit-identical
        # with and without an (ample) active budget
        g = make_graph(35, 120, seed=9)
        led_plain = Ledger()
        minimum_cut(g, rng=np.random.default_rng(4), ledger=led_plain)
        led_budget = Ledger()
        clock = FakeClock()
        with budget_scope(Budget(deadline=1e9, clock=clock)):
            minimum_cut(g, rng=np.random.default_rng(4), ledger=led_budget)
        assert led_plain.work == led_budget.work
        assert led_plain.depth == led_budget.depth
        assert {n: (r.work, r.depth) for n, r in led_plain.phases.items()} == {
            n: (r.work, r.depth) for n, r in led_budget.phases.items()
        }


# ---------------------------------------------------------------------------
# Fault plans
# ---------------------------------------------------------------------------
class TestFaultPlan:
    def test_fires_once_at_requested_hit(self):
        plan = FaultPlan([Fault(SITE_BUDGET_BLOWOUT, at=1)])
        assert plan.poll(SITE_BUDGET_BLOWOUT) is None  # hit 0
        assert plan.poll(SITE_BUDGET_BLOWOUT) is not None  # hit 1: fires
        assert plan.poll(SITE_BUDGET_BLOWOUT) is None  # spent
        assert plan.exhausted
        assert plan.fired == [(SITE_BUDGET_BLOWOUT, 1)]

    def test_unknown_site_rejected(self):
        with pytest.raises(InvalidParameterError):
            Fault("no.such.site")

    def test_unknown_site_rejected_at_plan_construction(self):
        # a duck-typed descriptor bypasses Fault.__post_init__; the plan
        # itself must still reject it instead of silently never firing
        class Duck:
            site = "typo.site"
            at = 0

        with pytest.raises(InvalidParameterError):
            FaultPlan([Duck()])

    def test_reset(self):
        plan = FaultPlan([Fault(SITE_BUDGET_BLOWOUT)])
        assert plan.poll(SITE_BUDGET_BLOWOUT) is not None
        plan.reset()
        assert not plan.fired
        assert plan.poll(SITE_BUDGET_BLOWOUT) is not None

    def test_canonical_plans_cover_every_site(self):
        plans = canonical_plans()
        covered = {f.site for p in plans.values() for f in p.faults}
        assert covered == set(ALL_SITES)

    def test_inject_scoped(self):
        from repro.resilience.faults import active_plan

        plan = FaultPlan([Fault(SITE_CORRUPT_VALUE)])
        assert active_plan() is None
        with inject(plan):
            assert active_plan() is plan
        assert active_plan() is None


# ---------------------------------------------------------------------------
# Verification certificates
# ---------------------------------------------------------------------------
class TestVerifyCut:
    def test_correct_cut_passes_all_checks(self):
        g = make_graph(30, 100, seed=1)
        res = stoer_wagner(g)
        report = verify_cut(g, res)
        assert report.ok
        names = [n for n, _ in report.checks]
        assert names == [
            "finite-value",
            "side-consistency",
            "degree-bound",
            "one-respecting",
            "stoer-wagner",
        ]

    def test_inconsistent_value_caught(self):
        import dataclasses

        g = make_graph(30, 100, seed=2)
        res = stoer_wagner(g)
        bad = dataclasses.replace(res, value=res.value + 5.0)
        report = verify_cut(g, bad)
        assert not report.ok
        assert report.passed("side-consistency") is False

    def test_too_high_value_caught_without_spot_check(self):
        # a genuine-but-suboptimal cut (isolate vertex of max degree) is
        # caught by the cheap upper bounds alone on this star-ish graph
        g = Graph.from_edges(
            5, [(0, 1, 10.0), (0, 2, 10.0), (0, 3, 10.0), (0, 4, 1.0)]
        )
        side = np.zeros(5, dtype=bool)
        side[0] = True  # cut value 31, but min cut is 1 (vertex 4)
        from repro.results import CutResult

        report = verify_cut(g, CutResult(value=31.0, side=side), spot_check_max_n=0)
        assert not report.ok
        assert report.passed("degree-bound") is False
        assert report.upper_bound <= 31.0

    def test_non_finite_value_caught(self):
        from repro.results import CutResult

        g = make_graph(10, 30, seed=3)
        side = np.zeros(10, dtype=bool)
        side[0] = True
        report = verify_cut(g, CutResult(value=float("nan"), side=side))
        assert not report.ok
        assert report.checks[0] == ("finite-value", False)

    def test_one_respecting_bound_is_valid_upper_bound(self):
        g = make_graph(40, 160, seed=4)
        bound = one_respecting_upper_bound(g)
        assert stoer_wagner(g).value <= bound + 1e-9

    def test_verification_charges_ledger_optionally(self):
        g = make_graph(20, 60, seed=5)
        led = Ledger()
        verify_cut(g, stoer_wagner(g), ledger=led, spot_check_max_n=0)
        assert led.work > 0


# ---------------------------------------------------------------------------
# The resilient driver: fault plans x recovery paths
# ---------------------------------------------------------------------------
class TestResilientDriver:
    @pytest.mark.parametrize("n,m,gseed", [(30, 90, 11), (60, 240, 12)])
    @pytest.mark.parametrize("plan_name", sorted(canonical_plans()))
    def test_every_fault_plan_recovers(self, n, m, gseed, plan_name):
        g = make_graph(n, m, seed=gseed)
        exact = stoer_wagner(g).value
        plan = canonical_plans(seed=7)[plan_name]
        with inject(plan):
            res = resilient_minimum_cut(g, seed=3)
        # never a silent wrong answer: either the exact value, or an
        # explicitly-marked fallback (whose SW value is exact anyway)
        if res.fallback_used is None:
            assert res.value == pytest.approx(exact)
        else:
            assert res.fallback_used == "stoer_wagner"
        assert_valid_cut(g, res.value, res.side)
        assert res.verification is not None and res.verification.ok
        assert res.attempts >= 1

    def test_unfaulted_provenance(self):
        g = make_graph(40, 150, seed=13)
        res = resilient_minimum_cut(g, seed=0)
        assert res.attempts == 1
        assert res.fallback_used is None
        assert res.verification.ok
        assert res.value == pytest.approx(stoer_wagner(g).value)

    def test_deterministic_under_fixed_seed(self):
        g = make_graph(40, 150, seed=14)
        plan = lambda: canonical_plans(seed=5)["corrupt_value"]  # noqa: E731
        with inject(plan()):
            a = resilient_minimum_cut(g, seed=42)
        with inject(plan()):
            b = resilient_minimum_cut(g, seed=42)
        assert a.value == b.value
        assert a.attempts == b.attempts
        assert np.array_equal(a.side, b.side)

    def test_corrupt_value_retries_with_escalation(self):
        g = make_graph(30, 90, seed=15)
        plan = canonical_plans(seed=1)["corrupt_value"]
        with inject(plan):
            res = resilient_minimum_cut(g, seed=2)
        assert res.attempts == 2  # first attempt suspect, second verified
        assert res.stats["resilience_suspect_values"] == 1.0
        assert res.value == pytest.approx(stoer_wagner(g).value)

    def test_persistent_corruption_falls_back(self):
        # corrupt every attempt's value: the driver must exhaust its
        # attempts and degrade to Stoer-Wagner, marked in provenance
        g = make_graph(25, 80, seed=16)
        plan = FaultPlan([Fault(SITE_CORRUPT_VALUE, at=i) for i in range(3)])
        with inject(plan):
            res = resilient_minimum_cut(g, seed=1, max_attempts=3)
        assert res.attempts == 3
        assert res.fallback_used == "stoer_wagner"
        assert res.value == pytest.approx(stoer_wagner(g).value)
        assert res.verification.ok

    def test_expired_deadline_terminates_quickly_with_fallback(self):
        import time

        g = make_graph(60, 240, seed=17)
        deadline = 1e-6  # expires essentially immediately
        t0 = time.monotonic()
        res = resilient_minimum_cut(g, deadline=deadline, seed=0)
        elapsed = time.monotonic() - t0
        assert res.fallback_used == "stoer_wagner"
        assert res.stats["resilience_budget_exhausted"] == 1.0
        assert res.value == pytest.approx(stoer_wagner(g).value)
        # terminates within 2x the deadline plus the (fast) fallback cost;
        # generous absolute cap keeps this robust on slow CI
        assert elapsed < max(2 * deadline, 5.0)

    def test_deadline_fallback_provenance_with_fake_clock(self):
        g = make_graph(40, 150, seed=18)
        clock = FakeClock()

        # expire the budget as soon as the driver starts attempt 1
        class ExpiringClock(FakeClock):
            def __call__(self) -> float:
                self.t += 1.0
                return self.t

        res = resilient_minimum_cut(
            g, deadline=0.5, seed=0, clock=ExpiringClock()
        )
        assert res.attempts == 0 or res.fallback_used == "stoer_wagner"
        assert res.fallback_used == "stoer_wagner"
        assert res.verification.ok

    def test_work_budget_exhaustion_falls_back(self):
        g = make_graph(40, 150, seed=19)
        led = Ledger()
        res = resilient_minimum_cut(g, max_work=10.0, ledger=led, seed=0)
        assert res.fallback_used == "stoer_wagner"
        assert res.stats["resilience_budget_exhausted"] == 1.0
        assert res.value == pytest.approx(stoer_wagner(g).value)

    def test_escalated_params(self):
        base = SkeletonParams(sample_constant=12.0)
        assert escalated_params(base, 0) is base
        assert escalated_params(base, 1).sample_constant == 24.0
        assert escalated_params(base, 2).sample_constant == 48.0

    def test_invalid_max_attempts(self):
        with pytest.raises(InvalidParameterError):
            resilient_minimum_cut(make_graph(10, 30, seed=1), max_attempts=0)

    def test_rejects_non_finite_weights(self):
        g = make_graph(10, 30, seed=20)
        bad = Graph(g.n, g.u, g.v, np.where(np.arange(g.m) == 0, np.nan, g.w),
                    validate=False)
        with pytest.raises(GraphFormatError):
            resilient_minimum_cut(bad)

    def test_trivial_graphs(self):
        two = Graph.from_edges(2, [(0, 1, 3.5)])
        res = resilient_minimum_cut(two, seed=0)
        assert res.value == pytest.approx(3.5)
        assert res.verification.ok


# ---------------------------------------------------------------------------
# Hardened parallel_map (fault-injected executor branches)
# ---------------------------------------------------------------------------
class TestParallelMapResilience:
    def test_injected_branch_failure_recovers_with_retry(self):
        plan = canonical_plans(seed=0)["executor_branch"]
        with inject(plan):
            out = parallel_map(lambda x: x * 2, [1, 2, 3], retries=1)
        assert out == [2, 4, 6]
        assert plan.fired  # the fault really fired and was retried over

    def test_injected_branch_failure_aggregates(self):
        plan = canonical_plans(seed=0)["executor_branch"]
        with inject(plan):
            with pytest.raises(BranchErrors) as ei:
                parallel_map(lambda x: x * 2, [1, 2, 3], on_error="aggregate")
        (idx, exc), = ei.value.failures
        assert idx == 0
        assert isinstance(exc, FaultInjected)


# ---------------------------------------------------------------------------
# graphs.validate hardening
# ---------------------------------------------------------------------------
class TestFiniteWeightValidation:
    def _with_bad_weight(self, bad):
        g = make_graph(8, 20, seed=21)
        w = g.w.copy()
        w[3] = bad
        return Graph(g.n, g.u, g.v, w, validate=False)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), -float("inf")])
    def test_rejects_non_finite_weight(self, bad):
        with pytest.raises(GraphFormatError):
            ensure_finite_weights(self._with_bad_weight(bad))

    def test_rejects_non_finite_total(self):
        g = make_graph(8, 20, seed=22)
        w = np.full(g.m, np.finfo(np.float64).max / 2)
        big = Graph(g.n, g.u, g.v, w, validate=False)
        with pytest.raises(GraphFormatError):
            ensure_finite_weights(big)

    def test_accepts_finite(self):
        g = make_graph(8, 20, seed=23)
        assert ensure_finite_weights(g) is g

    def test_minimum_cut_rejects_nan(self):
        with pytest.raises(GraphFormatError):
            minimum_cut(self._with_bad_weight(float("nan")))

    def test_validate_cut_rejects_non_finite_value(self):
        from repro.graphs.validate import validate_cut

        g = make_graph(8, 20, seed=24)
        side = np.zeros(g.n, dtype=bool)
        side[0] = True
        with pytest.raises(GraphFormatError):
            validate_cut(g, side, float("nan"))
