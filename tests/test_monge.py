"""Monge machinery: SMAWK, triangle minimum, property verifiers — and the
structural Monge facts the 2-respecting search relies on."""

import numpy as np
import pytest

from repro.errors import MongeViolation
from repro.monge import (
    check_inverse_monge,
    check_monge,
    materialize,
    matrix_minimum,
    smawk_row_minima,
    triangle_minimum,
)
from repro.pram import Ledger
from repro.rangesearch import CutOracle
from repro.trees import heavy_path_decomposition

from tests.conftest import make_graph, make_rooted


def random_monge(nr, nc, rng, integer=False):
    """Submodular matrix built from a cumulative nonnegative density."""
    if integer:
        density = rng.integers(0, 3, (nr, nc)).astype(float)
        r = rng.integers(0, 5, nr)[:, None].astype(float)
        c = rng.integers(0, 5, nc)[None, :].astype(float)
    else:
        density = rng.random((nr, nc))
        r = rng.random(nr)[:, None] * 10
        c = rng.random(nc)[None, :] * 10
    return r + c - density.cumsum(0).cumsum(1)


class TestVerifiers:
    def test_check_monge_accepts(self, rng):
        check_monge(random_monge(8, 9, rng))

    def test_check_monge_rejects(self):
        bad = np.array([[5.0, 0.0], [0.0, 5.0]])  # supermodular diagonal
        with pytest.raises(MongeViolation):
            check_monge(bad)

    def test_check_inverse_monge(self):
        check_inverse_monge(np.array([[5.0, 0.0], [0.0, 5.0]]))
        with pytest.raises(MongeViolation):
            check_inverse_monge(np.array([[0.0, 5.0], [5.0, 0.0]]))

    def test_degenerate_shapes_pass(self):
        check_monge(np.zeros((1, 5)))
        check_monge(np.zeros((5, 1)))
        check_monge(np.zeros((0, 0)))

    def test_materialize(self):
        m = materialize([0, 1], [0, 1, 2], lambda i, j: i * 10 + j)
        assert m.tolist() == [[0, 1, 2], [10, 11, 12]]


class TestSmawk:
    @pytest.mark.parametrize("shape", [(1, 1), (1, 8), (8, 1), (5, 5), (9, 4), (4, 13)])
    def test_row_minima_match_brute(self, shape, rng):
        for _ in range(10):
            m = random_monge(*shape, rng)
            res = smawk_row_minima(range(shape[0]), range(shape[1]), lambda i, j: m[i, j])
            for i in range(shape[0]):
                assert res[i][0] == pytest.approx(m[i].min())

    def test_ties_handled(self, rng):
        for _ in range(25):
            m = random_monge(7, 7, rng, integer=True)
            check_monge(m)
            res = smawk_row_minima(range(7), range(7), lambda i, j: m[i, j])
            for i in range(7):
                assert res[i][0] == pytest.approx(m[i].min())

    def test_entry_evaluations_linear(self, rng):
        """SMAWK inspects O(rows + cols) entries, not rows * cols."""
        n = 256
        m = random_monge(n, n, rng)
        calls = 0

        def lookup(i, j):
            nonlocal calls
            calls += 1
            return m[i, j]

        smawk_row_minima(range(n), range(n), lookup)
        assert calls <= 8 * n  # comfortably below n^2 = 65536

    def test_matrix_minimum(self, rng):
        m = random_monge(6, 11, rng)
        val, r, c = matrix_minimum(range(6), range(11), lambda i, j: m[i, j])
        assert val == pytest.approx(m.min())
        assert m[r, c] == pytest.approx(val)

    def test_matrix_minimum_empty(self):
        assert matrix_minimum([], [1], lambda i, j: 0)[0] == float("inf")

    def test_labels_passed_through(self, rng):
        m = random_monge(3, 3, rng)
        rows = [10, 20, 30]
        cols = [7, 8, 9]
        res = smawk_row_minima(rows, cols, lambda a, b: m[a // 10 - 1, b - 7])
        assert set(res) == set(rows)
        assert all(c in cols for _, c in res.values())

    def test_charges_ledger(self, rng):
        led = Ledger()
        m = random_monge(8, 8, rng)
        matrix_minimum(range(8), range(8), lambda i, j: m[i, j], ledger=led)
        assert led.work > 0


class TestTriangleMinimum:
    def test_matches_brute_on_supermodular(self, rng):
        for _ in range(20):
            n = int(rng.integers(2, 16))
            m = -random_monge(n, n, rng)  # supermodular everywhere
            val, a, b = triangle_minimum(range(n), lambda i, j: m[i, j])
            brute = min(m[i, j] for i in range(n) for j in range(i + 1, n))
            assert val == pytest.approx(brute)
            assert a < b

    def test_short_inputs(self):
        assert triangle_minimum([], lambda i, j: 0)[0] == float("inf")
        assert triangle_minimum([5], lambda i, j: 0)[0] == float("inf")
        val, a, b = triangle_minimum([3, 9], lambda i, j: 42.0)
        assert (val, a, b) == (42.0, 3, 9)

    def test_query_count_n_log_n(self, rng):
        n = 128
        m = -random_monge(n, n, rng)
        calls = 0

        def lookup(i, j):
            nonlocal calls
            calls += 1
            return m[i, j]

        triangle_minimum(range(n), lookup)
        assert calls <= 10 * n * np.log2(n)
        assert calls < n * (n - 1) / 2  # strictly below brute force


class TestCutMatrixStructure:
    """The structural facts pinning the SMAWK orientation (DESIGN.md):
    nested blocks are inverse-Monge, cross blocks are Monge."""

    def _oracle(self, n, seed):
        g = make_graph(n, 4 * n, seed, max_weight=7)
        _, rt = make_rooted(g)
        return rt, CutOracle(g, rt)

    def test_single_path_blocks_inverse_monge(self):
        for seed in range(4):
            rt, oracle = self._oracle(60, seed)
            dec = heavy_path_decomposition(rt)
            for arr in dec.paths:
                if len(arr) < 4:
                    continue
                mid = len(arr) // 2
                m = materialize(
                    arr[:mid], arr[mid:], lambda a, b: oracle.cut(int(a), int(b))
                )
                check_inverse_monge(m, atol=1e-6)

    def test_disjoint_path_blocks_monge(self):
        for seed in range(4):
            rt, oracle = self._oracle(60, seed + 10)
            dec = heavy_path_decomposition(rt)
            checked = 0
            for i in range(dec.num_paths):
                for j in range(i + 1, dec.num_paths):
                    p, q = dec.paths[i], dec.paths[j]
                    hp, hq = int(p[0]), int(q[0])
                    if rt.is_ancestor(hp, hq) or rt.is_ancestor(hq, hp):
                        continue
                    m = materialize(
                        [int(x) for x in p],
                        [int(x) for x in q],
                        lambda a, b: oracle.cut(a, b),
                    )
                    check_monge(m, atol=1e-6)
                    checked += 1
                    if checked > 30:
                        return
            assert checked > 0
