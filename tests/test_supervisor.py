"""Health-aware execution supervision: backoff, degradation chain,
recovery probes, executor routing, and the donated-budget attempt slices
(repro.resilience.supervisor + the supervised parts of pram.executor and
resilience.driver)."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.pram import parallel_map, shutdown_shared_pools
from repro.pram.executor import force_executor
from repro.resilience import (
    DEGRADATION_CHAIN,
    DegradationEvent,
    Supervisor,
    active_supervisor,
    canonical_plans,
    inject,
    resilient_minimum_cut,
    supervised_scope,
)
from repro.resilience.driver import _attempt_slice

from tests.conftest import make_graph


class FakeClock:
    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


def _probe(x):
    """Module-level (picklable) workload for executor integration tests."""
    return x * 2


# ---------------------------------------------------------------------------
# Supervisor unit behaviour
# ---------------------------------------------------------------------------
class TestSupervisorModel:
    def test_healthy_backend_selected_unchanged(self):
        sup = Supervisor(clock=FakeClock())
        assert sup.select("process") == "process"
        assert sup.select("thread") == "thread"
        assert sup.events == []

    def test_failure_enters_backoff_and_degrades(self):
        clock = FakeClock()
        sup = Supervisor(clock=clock, base_backoff=1.0, jitter=0.0)
        sup.record_failure("process", "broken_pool")
        assert not sup.healthy("process")
        assert sup.select("process") == "thread"
        (event,) = sup.events
        assert isinstance(event, DegradationEvent)
        assert (event.backend_from, event.backend_to) == ("process", "thread")
        assert event.reason == "broken_pool"

    def test_backoff_is_exponential(self):
        clock = FakeClock()
        sup = Supervisor(clock=clock, base_backoff=1.0, jitter=0.0)
        sup.record_failure("process", "timeout")
        first = sup.health["process"].blocked_until - clock()
        sup.record_failure("process", "timeout")
        second = sup.health["process"].blocked_until - clock()
        assert second == pytest.approx(2.0 * first)

    def test_backoff_caps_at_max(self):
        clock = FakeClock()
        sup = Supervisor(clock=clock, base_backoff=1.0, max_backoff=4.0, jitter=0.0)
        for _ in range(10):
            sup.record_failure("process", "timeout")
        assert sup.health["process"].blocked_until - clock() == pytest.approx(4.0)

    def test_jitter_is_deterministic_under_seed(self):
        def schedule(seed):
            clock = FakeClock()
            sup = Supervisor(clock=clock, seed=seed)
            out = []
            for _ in range(5):
                sup.record_failure("process", "timeout")
                out.append(sup.health["process"].blocked_until)
            return out

        assert schedule(7) == schedule(7)
        assert schedule(7) != schedule(8)

    def test_probe_after_backoff_and_recovery(self):
        clock = FakeClock()
        sup = Supervisor(clock=clock, base_backoff=1.0, jitter=0.0)
        sup.record_failure("process", "broken_pool")
        assert sup.select("process") == "thread"  # still blocked
        clock.advance(1.5)  # backoff expired: next selection is a probe
        assert sup.select("process") == "process"
        assert sup.health["process"].probing
        sup.record_success("process")
        assert not sup.health["process"].probing
        assert sup.health["process"].consecutive == 0
        assert sup.healthy("process")

    def test_failed_probe_reenters_longer_backoff(self):
        clock = FakeClock()
        sup = Supervisor(clock=clock, base_backoff=1.0, jitter=0.0)
        sup.record_failure("process", "timeout")
        clock.advance(1.5)
        sup.select("process")  # probe allowed through
        sup.record_failure("process", "timeout")  # probe failed
        assert sup.health["process"].blocked_until - clock() == pytest.approx(2.0)

    def test_last_stage_never_blocked(self):
        clock = FakeClock()
        sup = Supervisor(clock=clock)
        for _ in range(5):
            sup.record_failure("sync", "timeout")
        assert sup.healthy("sync")
        assert sup.select("sync") == "sync"

    def test_full_chain_degradation(self):
        clock = FakeClock()
        sup = Supervisor(clock=clock, jitter=0.0)
        sup.record_failure("process", "broken_pool")
        sup.record_failure("thread", "timeout")
        assert sup.select("process") == "sync"

    def test_events_since(self):
        clock = FakeClock()
        sup = Supervisor(clock=clock, jitter=0.0)
        sup.record_failure("process", "broken_pool")
        sup.select("process")
        mark = len(sup.events)
        assert sup.events_since(mark) == ()
        sup.select("process")
        assert len(sup.events_since(mark)) == 1

    def test_unsupervised_backend_passthrough(self):
        sup = Supervisor(clock=FakeClock())
        assert sup.select("weird") == "weird"
        sup.record_failure("weird", "timeout")  # no-op, no crash
        assert sup.healthy("weird")

    def test_invalid_construction(self):
        with pytest.raises(InvalidParameterError):
            Supervisor(chain=())
        with pytest.raises(InvalidParameterError):
            Supervisor(base_backoff=0.0)
        with pytest.raises(InvalidParameterError):
            Supervisor(jitter=-0.1)

    def test_scope_arms_contextvar(self):
        sup = Supervisor(clock=FakeClock())
        assert active_supervisor() is None
        with supervised_scope(sup):
            assert active_supervisor() is sup
        assert active_supervisor() is None

    def test_chain_constant(self):
        assert DEGRADATION_CHAIN == ("shm", "process", "thread", "sync")


# ---------------------------------------------------------------------------
# parallel_map integration: injected substrate faults route the chain
# ---------------------------------------------------------------------------
class TestSupervisedExecutor:
    def teardown_method(self):
        shutdown_shared_pools()

    def test_pool_break_degrades_and_recovers_results(self):
        sup = Supervisor(clock=FakeClock(), jitter=0.0)
        plan = canonical_plans(seed=0)["pool_break"]
        with force_executor("process"), supervised_scope(sup), inject(plan):
            out = parallel_map(_probe, [1, 2, 3], retries=1)
        assert out == [2, 4, 6]
        assert plan.fired == [("executor.pool_break", 0)]
        assert sup.health["process"].failures == 1
        assert [(e.backend_from, e.backend_to) for e in sup.events] == [
            ("process", "thread")
        ]

    def test_worker_hang_recorded_as_timeout(self):
        sup = Supervisor(clock=FakeClock(), jitter=0.0)
        plan = canonical_plans(seed=0)["worker_hang"]
        with force_executor("thread"), supervised_scope(sup), inject(plan):
            out = parallel_map(_probe, [1, 2, 3], retries=1)
        assert out == [2, 4, 6]
        assert sup.health["thread"].last_reason == "timeout"
        assert [(e.backend_from, e.backend_to) for e in sup.events] == [
            ("thread", "sync")
        ]

    def test_unsupervised_behaviour_unchanged(self):
        plan = canonical_plans(seed=0)["pool_break"]
        with force_executor("process"), inject(plan):
            out = parallel_map(_probe, [1, 2, 3], retries=1)
        assert out == [2, 4, 6]  # eviction + same-backend retry still works

    def test_degraded_backend_skipped_on_fresh_call(self):
        clock = FakeClock()
        sup = Supervisor(clock=clock, jitter=0.0)
        sup.record_failure("process", "broken_pool")
        with force_executor("process"), supervised_scope(sup):
            out = parallel_map(_probe, [5], retries=0)
        assert out == [10]
        # the dispatch ran on the degraded stage, recorded as an event
        assert sup.events[-1].backend_to == "thread"


# ---------------------------------------------------------------------------
# Driver integration: degradations surface on CutResult
# ---------------------------------------------------------------------------
class TestSupervisedDriver:
    def teardown_method(self):
        shutdown_shared_pools()

    @pytest.mark.parametrize("plan_name,backend", [
        ("pool_break", "process"),
        ("worker_hang", "process"),
        ("worker_hang", "thread"),
    ])
    def test_substrate_fault_yields_verified_cut_with_events(
        self, plan_name, backend
    ):
        g = make_graph(30, 100, seed=31)
        plan = canonical_plans(seed=3)[plan_name]
        with force_executor(backend), inject(plan):
            res = resilient_minimum_cut(g, seed=7)
        assert plan.fired  # the substrate fault really fired
        assert res.verification is not None and res.verification.ok
        assert len(res.degradations) >= 1
        assert res.degradations[0].backend_from == backend
        assert res.stats["resilience_degradations"] == float(len(res.degradations))

    def test_clean_run_has_no_degradations(self):
        g = make_graph(25, 80, seed=32)
        res = resilient_minimum_cut(g, seed=1)
        assert res.degradations == ()
        assert res.stats["resilience_degradations"] == 0.0

    def test_caller_supplied_supervisor_collects_events(self):
        g = make_graph(25, 80, seed=33)
        sup = Supervisor(jitter=0.0)
        plan = canonical_plans(seed=3)["pool_break"]
        with force_executor("process"), inject(plan):
            res = resilient_minimum_cut(g, seed=7, supervisor=sup)
        assert sup.events  # the caller's instance was the one used
        assert len(res.degradations) == len(sup.events)

    def test_degradations_deterministic_under_seed(self):
        g = make_graph(25, 80, seed=34)
        def run():
            plan = canonical_plans(seed=3)["pool_break"]
            with force_executor("process"), inject(plan):
                return resilient_minimum_cut(g, seed=7)
        a, b = run(), run()
        assert a.value == b.value
        assert a.attempts == b.attempts
        assert len(a.degradations) == len(b.degradations)
        assert [(e.backend_from, e.backend_to, e.reason) for e in a.degradations] == [
            (e.backend_from, e.backend_to, e.reason) for e in b.degradations
        ]


# ---------------------------------------------------------------------------
# Satellite (a): attempt slices donate unused budget forward
# ---------------------------------------------------------------------------
class TestAttemptSlices:
    def test_none_budget_stays_unbounded(self):
        assert _attempt_slice(None, 0, 3) is None

    def test_last_attempt_gets_everything_left(self):
        assert _attempt_slice(5.0, 2, 3) == pytest.approx(5.0)

    def test_slices_grow_geometrically_over_static_remainder(self):
        # with the remainder held fixed the weights are 2^a / (2^A - 2^a)
        assert _attempt_slice(7.0, 0, 3) == pytest.approx(7.0 * 1 / 7)
        assert _attempt_slice(7.0, 1, 3) == pytest.approx(7.0 * 2 / 6)

    def test_fast_failure_donates_unused_budget(self):
        # attempt 0 gets 1/7 of a 7s budget; if it fails instantly the
        # full ~6s remainder flows into attempt 1's slice — strictly more
        # than the static split (2/7 * 7 = 2s) would have granted
        total = 7.0
        first = _attempt_slice(total, 0, 3)
        spent = 0.1  # attempt 0 failed fast
        donated = _attempt_slice(total - spent, 1, 3)
        static = total * 2 / 7
        assert first == pytest.approx(1.0)
        assert donated == pytest.approx((total - spent) / 3)
        assert donated > static

    def test_exhausted_remainder_clamps_positive(self):
        assert _attempt_slice(0.0, 1, 3) > 0.0
        assert _attempt_slice(-5.0, 1, 3) > 0.0
