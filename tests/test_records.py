"""JSON experiment records (repro.metrics.records)."""

import json

from repro.metrics import MeasuredPoint, dump_records, load_records, points_to_records


class TestRecords:
    def test_points_to_records_flattens_extra(self):
        pts = [MeasuredPoint(n=4, m=8, work=1.5, depth=2.0, extra={"z": 3.0})]
        recs = points_to_records(pts)
        assert recs == [{"n": 4, "m": 8, "work": 1.5, "depth": 2.0, "z": 3.0}]

    def test_roundtrip(self, tmp_path):
        path = tmp_path / "sub" / "exp.json"
        dump_records(path, "E-test", [{"a": 1}], meta={"seed": 7})
        data = load_records(path)
        assert data["experiment"] == "E-test"
        assert data["meta"]["seed"] == 7
        assert data["records"] == [{"a": 1}]

    def test_creates_directories(self, tmp_path):
        path = dump_records(tmp_path / "x" / "y" / "z.json", "E", [])
        assert path.exists()

    def test_valid_json_on_disk(self, tmp_path):
        path = dump_records(tmp_path / "r.json", "E", [{"k": 2.5}])
        raw = json.loads(path.read_text())
        assert raw["records"][0]["k"] == 2.5
