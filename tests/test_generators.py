"""Workload generators (repro.graphs.generators / generators_extra)."""

import numpy as np
import pytest

from repro.graphs import (
    barbell_graph,
    community_graph,
    complete_graph,
    cycle_graph,
    figure1_graph,
    gnp_graph,
    grid_graph,
    planted_cut_graph,
    power_law_graph,
    random_connected_graph,
    random_graph_density,
    random_spanning_tree_edges,
    reliability_network,
)
from repro.arena.solvers import stoer_wagner


class TestRandomConnected:
    def test_connected_and_sized(self):
        g = random_connected_graph(50, 200, rng=0)
        assert g.n == 50
        assert g.is_connected()
        assert 49 <= g.m <= 200

    def test_deterministic_given_seed(self):
        a = random_connected_graph(30, 90, rng=7, max_weight=5)
        b = random_connected_graph(30, 90, rng=7, max_weight=5)
        assert a == b

    def test_weights_in_range(self):
        # coalescing may sum a few parallel duplicates above max_weight
        g = random_connected_graph(30, 90, rng=1, max_weight=4, coalesce=False)
        assert g.w.min() >= 1 and g.w.max() <= 4

    def test_single_vertex(self):
        g = random_connected_graph(1, 0, rng=0)
        assert g.n == 1 and g.m == 0

    def test_density_exponent(self):
        g = random_graph_density(64, 1.5, rng=0)
        assert g.is_connected()
        assert g.m >= 64 ** 1.4  # coalescing only removes a few


class TestSpanningTree:
    def test_tree_edge_count(self):
        u, v = random_spanning_tree_edges(20, 1)
        assert u.shape == (19,)

    def test_spans(self):
        from repro.graphs import Graph

        u, v = random_spanning_tree_edges(40, 2)
        assert Graph(40, u, v).is_connected()


class TestStructured:
    def test_cycle_min_cut_is_two(self):
        g = cycle_graph(9, weight=1.5)
        assert stoer_wagner(g).value == pytest.approx(3.0)

    def test_barbell_min_cut_is_bridge(self):
        g = barbell_graph(6, bridge_weight=2.5)
        res = stoer_wagner(g)
        assert res.value == pytest.approx(2.5)
        assert res.side.sum() in (6, 6)

    def test_grid_shape(self):
        g = grid_graph(4, 5)
        assert g.n == 20
        assert g.m == 4 * 4 + 3 * 5
        assert g.is_connected()

    def test_complete_graph(self):
        g = complete_graph(6)
        assert g.m == 15
        assert stoer_wagner(g).value == 5.0

    def test_gnp_p1_is_complete(self):
        g = gnp_graph(5, 1.0, rng=0)
        assert g.m == 10

    def test_gnp_p0_is_empty(self):
        assert gnp_graph(5, 0.0, rng=0).m == 0


class TestPlantedCut:
    def test_planted_side_value(self):
        g = planted_cut_graph(15, 20, 3.0, rng=4)
        side = np.arange(g.n) < 15
        assert g.cut_value(side) == pytest.approx(3.0)

    def test_planted_is_minimum(self):
        g = planted_cut_graph(15, 15, 2.0, inside_degree=10, rng=5)
        assert stoer_wagner(g).value == pytest.approx(2.0)


class TestFigure1:
    def test_shape_and_tree(self):
        g, parent, labels = figure1_graph()
        assert g.is_connected()
        assert (parent < 0).sum() == 1
        assert set(labels) == {"r", "e", "f", "e_prime"}

    def test_caption_interest_relations(self):
        """The caption's three relations: e<->f cross-interested both
        ways, e' down-interested in f."""
        from repro.primitives import postorder
        from repro.rangesearch import CutOracle
        from repro.trees import binarize_parent

        g, parent, lab = figure1_graph()
        rt = postorder(binarize_parent(parent).parent)
        oracle = CutOracle(g, rt)
        e, f, ep = lab["e"], lab["f"], lab["e_prime"]
        assert oracle.cross_interested(e, f)
        assert oracle.cross_interested(f, e)
        assert oracle.down_interested(ep, f)


class TestExtraGenerators:
    def test_community_graph_connected(self):
        g = community_graph((10, 12, 8), rng=0)
        assert g.is_connected()
        assert g.n == 30

    def test_community_min_cut_is_between_communities(self):
        g = community_graph((12, 12), intra_degree=8, inter_edges=2, rng=1)
        res = stoer_wagner(g)
        side_sizes = sorted([int(res.side.sum()), g.n - int(res.side.sum())])
        assert side_sizes == [12, 12]

    def test_power_law_connected(self):
        g = power_law_graph(80, 300, rng=2)
        assert g.is_connected()

    def test_power_law_has_hubs(self):
        g = power_law_graph(200, 1200, rng=3)
        deg = np.zeros(g.n)
        np.add.at(deg, g.u, 1)
        np.add.at(deg, g.v, 1)
        assert deg.max() > 4 * deg.mean()

    def test_reliability_network(self):
        g = reliability_network(20, 6, rng=4)
        assert g.is_connected()
        res = stoer_wagner(g)
        # the cut isolates a single edge site
        assert min(int(res.side.sum()), g.n - int(res.side.sum())) == 1
