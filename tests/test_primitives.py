"""Parallel primitives: DSU, sorting, spanning forest, MST, Euler tour,
binomial sampling."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graphs import Graph, random_connected_graph
from repro.pram import Ledger
from repro.primitives import (
    DisjointSets,
    capped_binomial,
    binomial_layer_counts,
    minimum_spanning_forest,
    parallel_argsort,
    parallel_sort_ranks,
    postorder,
    root_tree,
    spanning_forest,
    spanning_forest_graph,
    tree_depths,
)


class TestDSU:
    def test_union_find(self):
        d = DisjointSets(5)
        assert d.union(0, 1)
        assert not d.union(1, 0)
        assert d.find(0) == d.find(1)
        assert d.find(2) != d.find(0)

    def test_labels_fully_compressed(self):
        d = DisjointSets(6)
        for a, b in [(0, 1), (1, 2), (3, 4)]:
            d.union(a, b)
        lab = d.labels()
        assert lab[0] == lab[1] == lab[2]
        assert lab[3] == lab[4]
        assert lab[5] == 5

    def test_union_by_size(self):
        d = DisjointSets(4)
        d.union(0, 1)
        d.union(0, 2)
        d.union(3, 0)  # size-1 root merges under size-3 root
        assert d.find(3) == d.find(0)


class TestSort:
    def test_argsort_stable(self):
        keys = np.array([2, 1, 2, 0])
        order = parallel_argsort(keys)
        assert order.tolist() == [3, 1, 0, 2]

    def test_ranks_are_permutation(self):
        ranks = parallel_sort_ranks(np.array([5.0, 5.0, 1.0]))
        assert sorted(ranks.tolist()) == [0, 1, 2]
        assert ranks[2] == 0  # smallest key gets rank 0

    def test_charges_linear_work(self):
        led = Ledger()
        parallel_argsort(np.arange(64), ledger=led)
        assert led.work == 64
        assert led.depth == 6


class TestSpanningForest:
    def test_tree_on_connected(self):
        g = random_connected_graph(60, 200, rng=1)
        ids, labels = spanning_forest_graph(g)
        assert ids.shape[0] == g.n - 1
        assert len(np.unique(labels)) == 1

    def test_forest_on_disconnected(self):
        g = Graph.from_edges(6, [(0, 1), (1, 2), (3, 4)])
        ids, labels = spanning_forest(g.n, g.u, g.v)
        assert ids.shape[0] == 3
        assert len(np.unique(labels)) == 3

    def test_forest_is_acyclic_and_spanning(self):
        g = random_connected_graph(40, 150, rng=2)
        ids, _ = spanning_forest_graph(g)
        sub = g.subgraph_edges(ids)
        assert sub.is_connected()

    def test_empty_edges(self):
        ids, labels = spanning_forest(4, np.empty(0, np.int64), np.empty(0, np.int64))
        assert ids.size == 0
        assert labels.tolist() == [0, 1, 2, 3]

    def test_rounds_charged(self):
        led = Ledger()
        g = random_connected_graph(100, 300, rng=3)
        spanning_forest_graph(g, ledger=led)
        assert led.work > 0
        # Boruvka: at most ceil(log2 n) rounds, each O(log n) depth
        assert led.depth <= (np.log2(100) + 1) ** 2 + 10


class TestMST:
    def test_matches_networkx(self):
        import networkx as nx

        for seed in range(5):
            g = random_connected_graph(50, 180, rng=seed, max_weight=9)
            ids, _ = minimum_spanning_forest(g.n, g.u, g.v, g.w)
            expect = nx.minimum_spanning_tree(g.to_networkx()).size(weight="weight")
            assert g.w[ids].sum() == pytest.approx(expect)

    def test_deterministic_tie_break(self):
        g = random_connected_graph(30, 120, rng=4, max_weight=1)
        a, _ = minimum_spanning_forest(g.n, g.u, g.v, g.w)
        b, _ = minimum_spanning_forest(g.n, g.u, g.v, g.w)
        assert a.tolist() == b.tolist()

    def test_respects_keys_not_weights(self):
        g = Graph.from_edges(3, [(0, 1, 10.0), (1, 2, 10.0), (0, 2, 10.0)])
        keys = np.array([5.0, 1.0, 0.5])
        ids, _ = minimum_spanning_forest(g.n, g.u, g.v, keys)
        assert sorted(ids.tolist()) == [1, 2]


class TestEuler:
    def test_root_tree_orients_away_from_root(self):
        g = random_connected_graph(30, 29, rng=5)  # a tree
        ids, _ = spanning_forest_graph(g)
        parent = root_tree(g.n, g.u[ids], g.v[ids], root=7)
        assert parent[7] == -1
        assert (parent >= 0).sum() == g.n - 1

    def test_root_tree_rejects_wrong_edge_count(self):
        with pytest.raises(GraphFormatError):
            root_tree(3, np.array([0]), np.array([1]), 0)

    def test_root_tree_rejects_disconnected(self):
        with pytest.raises(GraphFormatError):
            root_tree(4, np.array([0, 2]), np.array([1, 3]), 0)

    def test_postorder_contract(self):
        """start(u) = post(u) - size(u) + 1 and subtree = contiguous range."""
        g = random_connected_graph(80, 240, rng=6)
        ids, _ = spanning_forest_graph(g)
        parent = root_tree(g.n, g.u[ids], g.v[ids], 0)
        rt = postorder(parent)
        assert rt.post[rt.root] == g.n - 1
        assert rt.size[rt.root] == g.n
        for u in range(g.n):
            s, p = int(rt.start(u)), int(rt.post[u])
            members = set(rt.order[s : p + 1].tolist())
            # verify by parent walk
            for x in range(g.n):
                walk = x
                inside = False
                while walk != -1:
                    if walk == u:
                        inside = True
                        break
                    walk = int(parent[walk])
                assert inside == (x in members)

    def test_is_ancestor(self):
        parent = np.array([-1, 0, 1, 1, 0])
        rt = postorder(parent)
        assert rt.is_ancestor(0, 3)
        assert rt.is_ancestor(1, 2)
        assert not rt.is_ancestor(4, 1)
        assert rt.is_ancestor(2, 2)

    def test_depths(self):
        parent = np.array([-1, 0, 1, 2])
        assert tree_depths(parent).tolist() == [0, 1, 2, 3]

    def test_postorder_rejects_multiple_roots(self):
        with pytest.raises(GraphFormatError):
            postorder(np.array([-1, -1, 0]))

    def test_postorder_rejects_cycle(self):
        with pytest.raises(GraphFormatError):
            postorder(np.array([-1, 2, 1]))

    def test_tree_edges_and_children(self):
        parent = np.array([-1, 0, 0, 1])
        rt = postorder(parent)
        assert sorted(rt.tree_edges().tolist()) == [1, 2, 3]
        assert rt.children_lists()[0] == [1, 2]


class TestBinomial:
    def test_capped_binomial_bounds(self, rng):
        trials = np.array([100, 5, 0, 1000])
        x = capped_binomial(trials, 0.5, cap=10, rng=rng)
        assert (x <= 10).all()
        assert (x >= 0).all()
        assert x[2] == 0

    def test_capped_binomial_p_zero_one(self, rng):
        trials = np.array([7, 3])
        assert capped_binomial(trials, 0.0, 5, rng).tolist() == [0, 0]
        assert capped_binomial(trials, 1.0, 5, rng).tolist() == [5, 3]

    def test_capped_binomial_validates(self, rng):
        with pytest.raises(ValueError):
            capped_binomial(np.array([1]), 2.0, 5, rng)
        with pytest.raises(ValueError):
            capped_binomial(np.array([1]), 0.5, -1, rng)

    def test_capped_binomial_mean(self):
        rng = np.random.default_rng(0)
        trials = np.full(4000, 20)
        x = capped_binomial(trials, 0.5, cap=50, rng=rng)  # cap inactive
        assert abs(x.mean() - 10.0) < 0.3

    def test_layer_counts_halve_in_expectation(self):
        rng = np.random.default_rng(1)
        counts = np.full(3000, 100)
        x = binomial_layer_counts(counts, rng)
        assert abs(x.mean() - 50.0) < 1.0
        assert (x <= counts).all()

    def test_layer_counts_charges_live_copies(self):
        led = Ledger()
        rng = np.random.default_rng(2)
        binomial_layer_counts(np.array([10, 20]), rng, ledger=led)
        assert led.work == 30
