"""The mutation surface: deltas, ``CutEngine.update``, epochs, rebase
triggers, and the serve-layer ``update``/``graph_info`` ops.

The headline suite is the randomized parity property: for sequences of
50 mixed add/remove/reweight updates, every post-update ``update()``
answer must be bit-identical in value to a cold engine built on the
mutated graph, and must carry a passing exactness certificate — across
executor backends and with a ``delta.force_rebase`` fault injected
mid-sequence.
"""

import numpy as np
import pytest

import repro
from repro.engine import CutEngine, DeltaLog, GraphDelta, UpdateResult, as_delta
from repro.engine.deltas import random_delta
from repro.errors import GraphFormatError
from repro.graphs import Graph, random_connected_graph
from repro.obs import CounterRegistry, counting_scope
from repro.pram.executor import force_executor
from repro.pram.ledger import Ledger
from repro.resilience.faults import SITE_DELTA_FORCE_REBASE, Fault, FaultPlan, inject


@pytest.fixture
def graph():
    return random_connected_graph(24, 60, rng=5, max_weight=5)


def _cold_value(graph):
    return CutEngine(graph, seed=0).min_cut().value


# ---------------------------------------------------------------------------
# delta primitives
# ---------------------------------------------------------------------------
class TestAsDelta:
    def test_mutation_order_reweight_remove_append(self, graph):
        delta = as_delta(
            graph,
            add_edges=[(0, 7, 2.5)],
            remove_edges=[3],
            reweight={1: 9.0},
        )
        out = delta.apply(graph)
        assert out.m == graph.m  # one removed, one appended
        assert out.w[1] == 9.0  # reweight lands before the removal shift
        # survivors keep their relative order; the addition is appended
        keep = np.ones(graph.m, dtype=bool)
        keep[3] = False
        assert np.array_equal(out.u[: graph.m - 1], graph.u[keep])
        assert (int(out.u[-1]), int(out.v[-1]), float(out.w[-1])) == (0, 7, 2.5)

    def test_restated_weight_is_noop(self, graph):
        assert as_delta(graph, reweight={0: float(graph.w[0])}).is_noop
        assert as_delta(graph, reweight=graph.w.copy()).is_noop
        assert as_delta(graph).is_noop

    def test_weight_delta_tracks_all_three_mutations(self, graph):
        delta = as_delta(
            graph,
            add_edges=[(0, 1, 4.0)],
            remove_edges=[2],
            reweight={5: float(graph.w[5]) + 1.5},
        )
        expected = 4.0 + float(graph.w[2]) + 1.5
        assert delta.weight_delta == pytest.approx(expected)
        counts = delta.counts()
        assert (counts["added"], counts["removed"], counts["reweighted"]) == (1, 1, 1)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"add_edges": [(0, 0, 1.0)]},  # self-loop
            {"add_edges": [(0, 99, 1.0)]},  # endpoint out of range
            {"add_edges": [(0, 1, 0.0)]},  # nonpositive weight
            {"add_edges": [(0, 1, float("nan"))]},  # nonfinite weight
            {"remove_edges": [999]},  # edge index out of range
            {"reweight": {0: -1.0}},  # nonpositive reweight
            {"reweight": [1.0, 2.0]},  # full-vector shape mismatch
        ],
    )
    def test_malformed_mutations_rejected(self, graph, kwargs):
        with pytest.raises(GraphFormatError):
            as_delta(graph, **kwargs)

    def test_fingerprint_distinguishes_deltas(self, graph):
        a = as_delta(graph, reweight={0: 7.0})
        b = as_delta(graph, reweight={0: 8.0})
        assert a.fingerprint() != b.fingerprint()
        assert a.fingerprint() == as_delta(graph, reweight={0: 7.0}).fingerprint()


class TestDeltaLog:
    def test_chain_and_staleness_ratio(self, graph):
        log = DeltaLog("base-fp", graph.total_weight)
        assert len(log) == 0 and log.staleness_ratio() == 0.0
        d = as_delta(graph, reweight={0: float(graph.w[0]) + 2.0})
        fp1 = log.append(d)
        fp2 = log.append(as_delta(graph, add_edges=[(0, 3, 1.0)]))
        assert fp1 != fp2 and len(log) == 2
        assert log.staleness_ratio() == pytest.approx(3.0 / graph.total_weight)


# ---------------------------------------------------------------------------
# the parity property: update() ≡ cold rebuild, every step
# ---------------------------------------------------------------------------
class TestUpdateParity:
    # the 50-step sequences pay a full cold rebuild per step as the
    # oracle; a smaller graph keeps the property suite fast without
    # weakening the per-step bit-identical demand
    @pytest.fixture
    def graph(self):
        return random_connected_graph(14, 34, rng=9, max_weight=4)

    def _run_sequence(self, graph, steps, seed, fault_at=None, oracle=None):
        """Drive ``steps`` random updates; return the value trajectory.

        ``oracle=None`` checks every post-update answer against a true
        cold rebuild of the mutated graph.  Passing a recorded
        trajectory instead replays the same delta sequence and demands
        the identical values — the cross-backend runs chain through the
        cold-checked sync trajectory rather than paying the rebuild
        oracle twice.
        """
        rng = np.random.default_rng(seed)
        engine = CutEngine(graph, seed=7)
        engine.min_cut()
        values = []
        for step in range(steps):
            kwargs = random_delta(engine.graph, rng)
            if step == fault_at:
                plan = FaultPlan(
                    [Fault(SITE_DELTA_FORCE_REBASE)], name="force_rebase"
                )
                with inject(plan):
                    upd = engine.update(**kwargs)
                if not upd.noop:
                    assert plan.exhausted
                    assert upd.rebased and upd.rebase_reason == "fault"
            else:
                upd = engine.update(**kwargs)
            assert isinstance(upd, UpdateResult)
            # bit-identical to a cold engine on the mutated graph
            if oracle is None:
                assert upd.value == _cold_value(engine.graph)
            else:
                assert upd.value == oracle[step]
            values.append(upd.value)
            # every applied update carries a passing exactness certificate
            if not upd.noop:
                assert upd.verification is not None and upd.verification.ok
            assert upd.staleness == engine.staleness
            assert upd.epoch == engine.epoch
        return values

    def test_fifty_mixed_updates_match_cold_rebuild(self, graph):
        with force_executor("sync"):
            trajectory = self._run_sequence(graph, steps=50, seed=100, fault_at=25)
        # the thread backend must reproduce the cold-checked trajectory
        # bit for bit over the identical delta sequence
        with force_executor("thread"):
            self._run_sequence(
                graph, steps=50, seed=100, fault_at=25, oracle=trajectory
            )

    def test_forced_rebase_mid_sequence_keeps_parity(self, graph):
        # a second seed, fault early: the post-fault artifacts must keep
        # answering later updates exactly
        self._run_sequence(graph, steps=12, seed=3, fault_at=4)

    def test_update_then_batch_is_consistent(self, graph):
        engine = CutEngine(graph, seed=7)
        engine.min_cut()
        upd = engine.update(add_edges=[(0, 9, 2.0), (4, 11, 1.0)])
        batch = engine.min_cut_batch([1, 2, 3])
        truth = _cold_value(engine.graph)
        assert upd.value == truth
        assert all(b.value == truth for b in batch)


# ---------------------------------------------------------------------------
# no-op updates are charge-free
# ---------------------------------------------------------------------------
class TestUpdateNoop:
    def test_zero_delta_short_circuit(self, graph):
        reg = CounterRegistry()
        led = Ledger()
        engine = CutEngine(graph, seed=7, ledger=led)
        base = engine.min_cut()
        work_before, depth_before = led.work, led.depth
        with counting_scope(reg):
            upd_empty = engine.update(reweight={})
            upd_same = engine.update(reweight=graph.w.copy())
        for upd in (upd_empty, upd_same):
            assert upd.noop and not upd.rebased
            assert upd.value == base.value
            assert upd.staleness == 0 and upd.epoch == 0
            assert dict(upd.result.stats)["update"] == 1.0
        assert reg.get("engine.update_noops") == 2.0
        assert reg.get("engine.rebases") == 0.0
        # nothing was recomputed: the ledger did not move at all
        assert (led.work, led.depth) == (work_before, depth_before)

    def test_noop_before_any_query_still_answers(self, graph):
        engine = CutEngine(graph, seed=7)
        upd = engine.update(reweight={})
        assert upd.noop
        assert upd.value == CutEngine(graph, seed=7).min_cut().value


# ---------------------------------------------------------------------------
# rebase triggers and epoch bookkeeping
# ---------------------------------------------------------------------------
class TestRebaseTriggers:
    def test_staleness_trigger(self, graph):
        reg = CounterRegistry()
        engine = CutEngine(graph, seed=7)
        engine.min_cut()
        with counting_scope(reg):
            upd = engine.update(reweight=graph.w * 2.0)  # |Δw| = total weight
        assert upd.rebased and upd.rebase_reason == "staleness"
        assert reg.get("engine.rebases") == 1.0
        assert reg.get("engine.rebase.staleness") == 1.0
        assert upd.value == _cold_value(engine.graph)

    def test_uncovered_edge_trigger(self, graph):
        reg = CounterRegistry()
        engine = CutEngine(graph, seed=7)
        base = engine.min_cut()
        heavy = float(base.value) * 1000.0
        with counting_scope(reg):
            # staleness is checked first by design; disable it so the
            # uncovered-new-edge trigger is the one that fires
            upd = engine.update(add_edges=[(0, 1, heavy)], max_staleness=None)
        assert upd.rebased and upd.rebase_reason == "uncovered_edge"
        assert reg.get("engine.rebase.uncovered_edge") == 1.0
        assert upd.value == _cold_value(engine.graph)

    def test_fault_trigger_counts(self, graph):
        reg = CounterRegistry()
        engine = CutEngine(graph, seed=7)
        engine.min_cut()
        plan = FaultPlan([Fault(SITE_DELTA_FORCE_REBASE)], name="forced")
        with counting_scope(reg), inject(plan):
            upd = engine.update(reweight={0: float(graph.w[0]) + 0.5})
        assert plan.exhausted
        assert upd.rebased and upd.rebase_reason == "fault"
        assert reg.get("engine.rebase.fault") == 1.0

    def test_small_update_stays_incremental(self, graph):
        reg = CounterRegistry()
        led = Ledger()
        engine = CutEngine(graph, seed=7, ledger=led)
        engine.min_cut()
        phases_before = {n: p.work for n, p in led._phases.items()}
        with counting_scope(reg):
            upd = engine.update(reweight={0: float(graph.w[0]) * 1.01})
        assert not upd.rebased and upd.rebase_reason is None
        assert reg.get("engine.rebases") == 0.0
        # the packing is reused: only validate/search/verify moved
        phases_after = {n: p.work for n, p in led._phases.items()}
        for ph in ("approximate", "skeleton", "greedy-packing"):
            assert phases_after[ph] == phases_before[ph], ph

    def test_disconnecting_update_answers_zero(self):
        g = Graph.from_edges(4, [(0, 1, 2.0), (1, 2, 1.0), (2, 3, 2.0)])
        engine = CutEngine(g, seed=0)
        engine.min_cut()
        upd = engine.update(remove_edges=[1])
        assert upd.value == 0.0
        assert upd.value == _cold_value(engine.graph)


class TestEpochSemantics:
    def test_epoch_and_staleness_lifecycle(self, graph):
        engine = CutEngine(graph, seed=7)
        engine.min_cut()
        assert (engine.epoch, engine.staleness) == (0, 0)
        upd1 = engine.update(reweight={0: float(graph.w[0]) * 1.01})
        assert (upd1.epoch, upd1.staleness) == (0, 1)
        upd2 = engine.update(add_edges=[(2, 5, 1.0)])
        assert (upd2.epoch, upd2.staleness) == (0, 2)
        # a rebase advances the epoch and clears the delta log
        upd3 = engine.update(reweight=engine.graph.w * 2.0)
        assert upd3.rebased
        assert upd3.epoch == 1 and upd3.staleness == 0
        assert (engine.epoch, engine.staleness) == (1, 0)

    def test_fingerprint_chain_carries_epoch(self, graph):
        engine = CutEngine(graph, seed=7)
        engine.min_cut()
        chain = engine.fingerprint_chain()
        assert set(chain) >= {"validate", "approximate", "forest", "index",
                              "result", "current"}
        assert all(entry["epoch"] == 0 for entry in chain.values())
        fp0 = chain["current"]["fingerprint"]
        engine.update(reweight={0: float(graph.w[0]) * 1.01})
        chain1 = engine.fingerprint_chain()
        assert chain1["current"]["fingerprint"] != fp0
        # the base artifacts did not move — only the delta head did
        assert chain1["forest"]["fingerprint"] == chain["forest"]["fingerprint"]

    def test_delta_path_stats_expose_epoch(self, graph):
        engine = CutEngine(graph, seed=7)
        cold = engine.min_cut()
        # cold parity guard: the plain query's stats stay epoch-free
        assert "epoch" not in dict(cold.stats)
        upd = engine.update(reweight={0: float(graph.w[0]) * 1.01})
        stats = dict(upd.result.stats)
        assert stats["update"] == 1.0
        assert stats["epoch"] == 0.0 and stats["staleness"] == 1.0

    def test_base_graph_vs_current_graph(self, graph):
        engine = CutEngine(graph, seed=7)
        engine.min_cut()
        engine.update(add_edges=[(0, 9, 1.0)])
        assert engine.base_graph.m == graph.m
        assert engine.graph.m == graph.m + 1
        engine.rebase()
        assert engine.base_graph.m == graph.m + 1


class TestRequeryRemoved:
    def test_requery_shim_expired(self, graph):
        # the deprecated shim's one-release runway ended with the
        # durable-state release: no attribute, no silent fallback
        engine = CutEngine(graph, seed=7)
        assert not hasattr(engine, "requery")
        # its weight-only semantics live on as the documented spelling
        engine.min_cut()
        reg = CounterRegistry()
        with counting_scope(reg):
            res = engine.update(reweight=graph.w * 1.25, max_staleness=None)
        assert reg.get("engine.updates") == 1.0
        assert dict(res.result.stats)["update"] == 1.0


# ---------------------------------------------------------------------------
# the serve layer's mutation surface
# ---------------------------------------------------------------------------
class TestServeUpdate:
    @pytest.fixture
    def edges(self, graph):
        return [[int(u), int(v), float(w)] for u, v, w in graph.edges()]

    def _server(self):
        from repro.serve import InProcServer, ServerConfig

        return InProcServer(ServerConfig(queue_depth=16, workers=2))

    def _register(self, srv, graph, edges, **tenant_kwargs):
        srv.request({"op": "register_tenant", "tenant": "t", **tenant_kwargs})
        srv.request({
            "op": "register_graph", "tenant": "t", "graph": "g",
            "n": graph.n, "edges": edges, "seed": 7,
        })

    def test_update_op_round_trip(self, graph, edges):
        with self._server() as srv:
            self._register(srv, graph, edges)
            cold = srv.request({"op": "min_cut", "tenant": "t", "graph": "g"})
            assert cold["type"] == "result"
            assert (cold["epoch"], cold["staleness"]) == (0, 0)
            resp = srv.request({
                "op": "update", "tenant": "t", "graph": "g",
                "add_edges": [[0, 9, 2.0]], "reweight": {"0": 3.5},
            })
            assert resp["type"] == "result"
            assert resp["update"] == 1.0 and resp["noop"] is False
            assert resp["staleness"] == 1 and resp["epoch"] == 0
            assert resp["verified"] is True
            assert resp["applied"]["added"] == 1
            # later reads echo the mutated epoch state
            warm = srv.request({"op": "min_cut", "tenant": "t", "graph": "g"})
            assert warm["value"] == resp["value"]
            assert warm["staleness"] == 1
            batch = srv.request({
                "op": "min_cut_batch", "tenant": "t", "graph": "g",
                "seeds": [1, 2],
            })
            assert batch["epoch"] == 0

    def test_graph_info_reports_epoch_and_writability(self, graph, edges):
        with self._server() as srv:
            self._register(srv, graph, edges)
            info = srv.request({"op": "graph_info", "tenant": "t", "graph": "g"})
            assert info["type"] == "result"
            assert (info["n"], info["m"]) == (graph.n, graph.m)
            assert (info["epoch"], info["staleness"]) == (0, 0)
            assert info["writable"] is True
            assert info["protocol"] == 3
            assert info["durable"] is False  # no --state-dir configured
            fp0 = info["fingerprint"]
            srv.request({
                "op": "update", "tenant": "t", "graph": "g",
                "remove_edges": [0],
            })
            info2 = srv.request({"op": "graph_info", "tenant": "t", "graph": "g"})
            assert info2["staleness"] == 1 or info2["epoch"] > 0
            assert info2["fingerprint"] != fp0
            assert info2["m"] == graph.m - 1

    def test_readonly_class_cannot_mutate(self, graph, edges):
        with self._server() as srv:
            self._register(srv, graph, edges, budget_class="interactive")
            resp = srv.request({
                "op": "update", "tenant": "t", "graph": "g",
                "reweight": {"0": 9.0},
            })
            assert resp["type"] == "error"
            assert resp["error"] == "mutation_forbidden"
            # reads still work for the same tenant
            assert srv.request(
                {"op": "min_cut", "tenant": "t", "graph": "g"}
            )["type"] == "result"
            info = srv.request({"op": "graph_info", "tenant": "t", "graph": "g"})
            assert info["writable"] is False
            m = srv.request({"op": "metrics"})
            assert m["counters"]["serve.rejected_readonly"] == 1.0

    def test_update_without_mutations_is_bad_request(self, graph, edges):
        with self._server() as srv:
            self._register(srv, graph, edges)
            resp = srv.request({"op": "update", "tenant": "t", "graph": "g"})
            assert resp["type"] == "error"
            assert resp["error"] == "bad_request"

    def test_ping_advertises_protocol_version(self, graph, edges):
        from repro.serve.protocol import OP_VOCABULARY, PROTOCOL_VERSION

        with self._server() as srv:
            resp = srv.request({"op": "ping"})
            assert resp["protocol"] == PROTOCOL_VERSION == 3
        assert OP_VOCABULARY["update"] == 2
        assert OP_VOCABULARY["graph_info"] == 2
        assert OP_VOCABULARY["min_cut"] == 1
        assert "requery" not in OP_VOCABULARY  # runway expired in v3


class TestTopLevelExports:
    def test_update_types_exported(self):
        assert repro.UpdateResult is UpdateResult
        assert repro.GraphDelta is GraphDelta
