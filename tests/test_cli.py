"""Command-line interface (python -m repro)."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.graphs import random_connected_graph, write_dimacs, write_edgelist
from repro.arena.solvers import stoer_wagner


@pytest.fixture
def graph_file(tmp_path):
    g = random_connected_graph(20, 60, rng=1, max_weight=4)
    path = tmp_path / "g.el"
    write_edgelist(g, path)
    return g, str(path)


class TestCut:
    def test_value_matches_baseline(self, graph_file, capsys):
        g, path = graph_file
        assert main(["cut", path, "--seed", "3"]) == 0
        out = dict(
            line.split(" ", 1) for line in capsys.readouterr().out.strip().split("\n")
        )
        assert float(out["value"]) == pytest.approx(stoer_wagner(g).value)
        assert float(out["work"]) > 0
        side = [int(x) for x in out["side"].split()]
        assert 0 < len(side) < g.n

    def test_epsilon_flag(self, graph_file, capsys):
        g, path = graph_file
        assert main(["cut", path, "--epsilon", "0.4", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "value" in out

    def test_dimacs_format(self, tmp_path, capsys):
        g = random_connected_graph(12, 30, rng=2, max_weight=3)
        path = tmp_path / "g.dimacs"
        write_dimacs(g, path)
        assert main(["cut", str(path), "--format", "dimacs"]) == 0
        out = capsys.readouterr().out
        assert float(out.split("\n")[0].split()[1]) == pytest.approx(
            stoer_wagner(g).value
        )


class TestApprox:
    def test_outputs_bracket(self, graph_file, capsys):
        _, path = graph_file
        assert main(["approx", path, "--seed", "5"]) == 0
        out = dict(
            line.split(" ", 1) for line in capsys.readouterr().out.strip().split("\n")
        )
        assert float(out["low"]) <= float(out["estimate"]) <= float(out["high"])
        assert "layer" in out


class TestBench:
    def test_prints_profile(self, capsys):
        assert main(["bench", "30", "90", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "phase.packing.work" in out
        assert "value" in out


class TestResilience:
    def test_deadline_flag_prints_provenance(self, graph_file, capsys):
        g, path = graph_file
        assert main(["cut", path, "--deadline", "60", "--seed", "3"]) == 0
        out = dict(
            line.split(" ", 1) for line in capsys.readouterr().out.strip().split("\n")
        )
        assert float(out["value"]) == pytest.approx(stoer_wagner(g).value)
        assert int(out["attempts"]) >= 1
        assert out["fallback"] == "none"
        assert out["verified"] == "1"

    def test_expired_deadline_falls_back_not_crashes(self, graph_file, capsys):
        _, path = graph_file
        assert main(["cut", path, "--deadline", "1e-9", "--seed", "3"]) == 0
        out = dict(
            line.split(" ", 1) for line in capsys.readouterr().out.strip().split("\n")
        )
        assert out["fallback"] == "stoer_wagner"

    def test_max_attempts_flag(self, graph_file, capsys):
        g, path = graph_file
        assert main(["cut", path, "--max-attempts", "2", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "attempts" in out


class TestErrorHandling:
    def test_repro_error_exits_2_with_one_line_message(self, tmp_path, capsys):
        bad = tmp_path / "bad.el"
        bad.write_text("0 1 nan\n1 2 1.0\n")
        code = main(["cut", str(bad)])
        err = capsys.readouterr().err
        assert code == 2
        assert err.count("\n") == 1  # one line, no traceback
        assert "error:" in err

    def test_missing_file_is_oserror_not_swallowed(self):
        # only library errors are converted; a bad path still raises
        with pytest.raises(OSError):
            main(["cut", "/no/such/file.el"])

    def test_invalid_epsilon_exits_2(self, graph_file, capsys):
        _, path = graph_file
        code = main(["cut", path, "--epsilon", "-1"])
        assert code == 2
        assert "InvalidParameterError" in capsys.readouterr().err


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_auto_format_detection(self, tmp_path):
        from repro.cli import _load

        g = random_connected_graph(8, 20, rng=3)
        p1 = tmp_path / "a.el"
        write_edgelist(g, p1)
        p2 = tmp_path / "a.dimacs"
        write_dimacs(g, p2)
        assert _load(str(p1), "auto").m == g.m
        assert _load(str(p2), "auto").m == g.m


class TestEngine:
    def test_matches_cut_value(self, graph_file, capsys):
        g, path = graph_file
        assert main(["engine", path, "--seed", "3"]) == 0
        out = dict(
            line.split(" ", 1) for line in capsys.readouterr().out.strip().split("\n")
        )
        assert float(out["value"]) == pytest.approx(stoer_wagner(g).value)
        assert float(out["cache.misses"]) == 4.0
        assert float(out["engine.stage_runs"]) == 4.0

    def test_batch_reuses_preprocessing(self, graph_file, capsys):
        g, path = graph_file
        assert main(["engine", path, "--seed", "3", "--batch", "4"]) == 0
        out = dict(
            line.split(" ", 1) for line in capsys.readouterr().out.strip().split("\n")
        )
        assert out["batch.queries"] == "4"
        truth = stoer_wagner(g).value
        for v in out["batch.values"].split():
            assert float(v) == pytest.approx(truth)
        # four warm queries still ran only the four cold stage builds
        assert float(out["engine.stage_runs"]) == 4.0
        assert float(out["batch.extra_work"]) > 0
        # amortization: 4 warm queries cost less work than 4 cold runs
        assert float(out["batch.extra_work"]) < 4 * float(out["cold.work"])

    def test_trace_export(self, graph_file, tmp_path, capsys):
        _, path = graph_file
        trace = tmp_path / "engine_trace.json"
        assert main(["engine", path, "--trace", str(trace)]) == 0
        assert trace.exists()
        assert "trace.spans" in capsys.readouterr().out


class TestServeCommand:
    def test_serve_flags_parse(self):
        args = build_parser().parse_args(
            ["serve", "--port", "0", "--queue-depth", "8", "--workers", "2",
             "--budget-class", "interactive", "--no-shutdown-op"]
        )
        assert args.port == 0
        assert args.queue_depth == 8
        assert args.workers == 2
        assert args.budget_class == "interactive"
        assert args.no_shutdown_op is True

    def test_serve_daemon_round_trip(self):
        # the real entry point: spawn `python -m repro serve`, parse the
        # printed ephemeral port, ping it, shut it down over the wire
        import os
        import re
        import subprocess
        import sys

        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--workers", "1", "--queue-depth", "4"],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=env,
            text=True,
        )
        try:
            line = proc.stdout.readline()
            match = re.search(r"listening on .+:(\d+)", line)
            assert match, f"no listening line: {line!r}"
            port = int(match.group(1))
            from repro.serve import ServiceClient

            with ServiceClient("127.0.0.1", port, timeout=30) as client:
                assert client.call({"op": "ping"})["pong"] is True
                resp = client.request({"op": "shutdown"})
                assert resp["type"] == "result" and resp["stopping"] is True
            assert proc.wait(timeout=30) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)
