"""Tree machinery: binarization, path decompositions, Root-paths,
centroid decomposition and the interest-path search."""

from collections import Counter

import numpy as np
import pytest

from repro.graphs import random_connected_graph
from repro.pram import Ledger
from repro.primitives import postorder, root_tree, spanning_forest_graph
from repro.trees import (
    CentroidDecomposition,
    RootPaths,
    binarize_parent,
    bough_decomposition,
    centroid_decomposition,
    deepest_on_interest_path,
    heavy_path_decomposition,
    max_paths_on_root_leaf_route,
)

from tests.conftest import make_graph


def random_parent(n, seed, root=0):
    g = make_graph(n, 3 * n, seed)
    ids, _ = spanning_forest_graph(g)
    return root_tree(g.n, g.u[ids], g.v[ids], root)


def star_parent(n):
    parent = np.zeros(n, dtype=np.int64)
    parent[0] = -1
    return parent


def path_parent(n):
    parent = np.arange(-1, n - 1, dtype=np.int64)
    return parent


class TestBinarize:
    def test_max_degree_two(self):
        for seed in range(4):
            bt = binarize_parent(random_parent(120, seed))
            counts = Counter(int(p) for p in bt.parent if p >= 0)
            assert max(counts.values(), default=0) <= 2

    def test_star_tree(self):
        bt = binarize_parent(star_parent(50))
        counts = Counter(int(p) for p in bt.parent if p >= 0)
        assert max(counts.values()) <= 2
        assert bt.n_real == 50
        assert bt.n < 2 * 50  # O(d) virtual vertices

    def test_path_tree_unchanged(self):
        bt = binarize_parent(path_parent(30))
        assert bt.n == 30  # already binary

    def test_real_vertex_ids_preserved(self):
        parent = random_parent(60, 9)
        bt = binarize_parent(parent)
        rt = postorder(bt.parent)
        # real vertex subtree membership must match the original tree
        rt0 = postorder(parent)
        for u in range(60):
            for x in range(0, 60, 7):
                assert rt.is_ancestor(u, x) == rt0.is_ancestor(u, x)

    def test_virtual_flag(self):
        bt = binarize_parent(star_parent(10))
        assert not bt.is_virtual(9)
        assert bt.is_virtual(10)

    def test_gadget_depth_logarithmic(self):
        bt = binarize_parent(star_parent(512))
        rt = postorder(bt.parent)
        assert rt.depth.max() <= np.ceil(np.log2(512)) + 2


@pytest.mark.parametrize("decompose", [heavy_path_decomposition, bough_decomposition])
class TestPathDecomposition:
    def test_validates(self, decompose):
        for seed in range(4):
            rt = postorder(binarize_parent(random_parent(100, seed)).parent)
            decompose(rt).validate(rt)

    def test_property_4_3(self, decompose):
        """Any root-to-leaf route meets O(log n) paths."""
        for seed in range(4):
            rt = postorder(binarize_parent(random_parent(150, seed + 10)).parent)
            dec = decompose(rt)
            assert max_paths_on_root_leaf_route(rt, dec) <= 2 * np.log2(rt.n) + 2

    def test_path_tree_single_chain(self, decompose):
        rt = postorder(path_parent(20))
        dec = decompose(rt)
        assert dec.num_paths == 1
        assert len(dec.paths[0]) == 19

    def test_star_tree(self, decompose):
        rt = postorder(star_parent(12))
        dec = decompose(rt)
        dec.validate(rt)
        assert dec.num_paths == 11

    def test_paths_are_descending(self, decompose):
        rt = postorder(binarize_parent(random_parent(80, 3)).parent)
        dec = decompose(rt)
        for arr in dec.paths:
            for i in range(1, len(arr)):
                assert rt.parent[arr[i]] == arr[i - 1]

    def test_head_is_shallowest(self, decompose):
        rt = postorder(binarize_parent(random_parent(80, 4)).parent)
        dec = decompose(rt)
        for pid, arr in enumerate(dec.paths):
            assert dec.head(pid) == arr[0]
            depths = rt.depth[arr]
            assert (np.diff(depths) == 1).all()


class TestRootPaths:
    def test_query_matches_parent_walk(self):
        for seed in range(3):
            rt = postorder(binarize_parent(random_parent(120, seed + 20)).parent)
            dec = heavy_path_decomposition(rt)
            rp = RootPaths.build(rt, dec)
            rng = np.random.default_rng(seed)
            for u in rng.integers(0, rt.n, size=15):
                u = int(u)
                expect = []
                x = u
                while rt.parent[x] >= 0:
                    pid = int(dec.path_of[x])
                    if pid not in expect:
                        expect.append(pid)
                    x = int(rt.parent[x])
                assert rp.query(u) == expect

    def test_root_returns_empty(self):
        rt = postorder(path_parent(5))
        rp = RootPaths.build(rt, heavy_path_decomposition(rt))
        assert rp.query(rt.root) == []

    def test_query_length_logarithmic(self):
        rt = postorder(binarize_parent(random_parent(300, 8)).parent)
        rp = RootPaths.build(rt, heavy_path_decomposition(rt))
        for u in range(0, rt.n, 13):
            assert len(rp.query(u)) <= 2 * np.log2(rt.n) + 2

    def test_query_charges_ledger(self):
        rt = postorder(path_parent(10))
        rp = RootPaths.build(rt, heavy_path_decomposition(rt))
        led = Ledger()
        rp.query(9, ledger=led)
        assert led.work >= 1


class TestCentroid:
    def test_height_logarithmic(self):
        for seed in range(3):
            rt = postorder(binarize_parent(random_parent(200, seed + 30)).parent)
            cd = centroid_decomposition(rt)
            assert cd.height <= np.log2(rt.n) + 2

    def test_every_vertex_once(self):
        rt = postorder(binarize_parent(random_parent(90, 2)).parent)
        cd = centroid_decomposition(rt)
        assert (cd.cent_parent == -1).sum() == 1
        assert cd.cent_root >= 0

    def test_path_tree_centroid_is_middle(self):
        rt = postorder(path_parent(15))
        cd = centroid_decomposition(rt)
        assert cd.cent_depth[cd.cent_root] == 0
        # root centroid of a path is its midpoint
        assert 6 <= cd.cent_root <= 8

    def test_child_component_toward(self):
        rt = postorder(path_parent(7))
        cd = centroid_decomposition(rt)
        c = cd.cent_root
        for y in range(7):
            if y == c:
                continue
            child = cd.child_component_toward(c, y)
            assert cd.cent_parent[child] == c


class TestInterestPathSearch:
    """deepest_on_interest_path with synthetic membership oracles."""

    def _setup(self, n, seed):
        parent = random_parent(n, seed)
        bt = binarize_parent(parent)
        rt = postorder(bt.parent)
        cd = centroid_decomposition(rt)
        return rt, cd

    def test_finds_deepest_of_explicit_path(self):
        rt, cd = self._setup(70, 1)
        rng = np.random.default_rng(3)
        for _ in range(25):
            # build a random root-descending path: walk down from root
            members = {rt.root}
            x = rt.root
            kids = rt.children_lists()
            while True:
                ch = kids[x]
                if not ch or rng.random() < 0.25:
                    break
                x = int(ch[int(rng.integers(0, len(ch)))])
                members.add(x)
            found = deepest_on_interest_path(
                rt, cd, top=rt.root, member=lambda v: v in members
            )
            assert found == x

    def test_descending_from_inner_top(self):
        rt, cd = self._setup(70, 2)
        rng = np.random.default_rng(5)
        kids = rt.children_lists()
        for top in range(0, rt.n, 11):
            members = {top}
            x = top
            while True:
                ch = kids[x]
                if not ch or rng.random() < 0.3:
                    break
                x = int(ch[0])
                members.add(x)
            found = deepest_on_interest_path(
                rt, cd, top=top, member=lambda v: v in members
            )
            assert found == x

    def test_trivial_path(self):
        rt, cd = self._setup(40, 3)
        assert (
            deepest_on_interest_path(rt, cd, top=rt.root, member=lambda v: v == rt.root)
            == rt.root
        )

    def test_probe_count_logarithmic(self):
        rt, cd = self._setup(250, 4)
        probes = []
        kids = rt.children_lists()
        # deepest chain: follow first children all the way
        members = {rt.root}
        x = rt.root
        while kids[x]:
            x = kids[x][0]
            members.add(x)
        calls = 0

        def member(v):
            nonlocal calls
            calls += 1
            return v in members

        found = deepest_on_interest_path(rt, cd, top=rt.root, member=member)
        assert found == x
        assert calls <= 6 * (np.log2(rt.n) + 1)
