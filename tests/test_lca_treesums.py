"""Batched LCA and the all-subtree-costs aggregation."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graphs import Graph, random_connected_graph
from repro.pram import Ledger
from repro.primitives import LCA, all_subtree_costs, postorder, root_tree, spanning_forest_graph
from repro.rangesearch import CutOracle, NaiveCutOracle
from repro.trees import binarize_parent

from tests.conftest import make_graph, make_rooted


def naive_lca(rt, a, b):
    anc = set()
    x = int(a)
    while x != -1:
        anc.add(x)
        x = int(rt.parent[x])
    x = int(b)
    while x not in anc:
        x = int(rt.parent[x])
    return x


class TestLCA:
    def test_matches_naive_walk(self):
        rng = np.random.default_rng(1)
        for t in range(5):
            g = make_graph(int(rng.integers(3, 100)), 200, t)
            _, rt = make_rooted(g)
            lca = LCA(rt)
            qa = rng.integers(0, rt.n, 40)
            qb = rng.integers(0, rt.n, 40)
            out = lca.query(qa, qb)
            for a, b, c in zip(qa, qb, out):
                assert c == naive_lca(rt, a, b)

    def test_self_and_ancestor_queries(self):
        parent = np.array([-1, 0, 1, 2, 2])
        rt = postorder(parent)
        lca = LCA(rt)
        assert lca.query(np.array([3]), np.array([3]))[0] == 3
        assert lca.query(np.array([3]), np.array([1]))[0] == 1
        assert lca.query(np.array([3]), np.array([4]))[0] == 2
        assert lca.query(np.array([0]), np.array([4]))[0] == 0

    def test_path_tree(self):
        parent = np.arange(-1, 19, dtype=np.int64)
        rt = postorder(parent)
        lca = LCA(rt)
        out = lca.query(np.array([19, 5]), np.array([7, 19]))
        assert out.tolist() == [7, 5]

    def test_shape_mismatch(self):
        _, rt = make_rooted(make_graph(10, 25, 2))
        with pytest.raises(GraphFormatError):
            LCA(rt).query(np.array([1, 2]), np.array([1]))

    def test_charges_ledger(self):
        _, rt = make_rooted(make_graph(30, 80, 3))
        led = Ledger()
        lca = LCA(rt, ledger=led)
        lca.query(np.array([1]), np.array([2]), ledger=led)
        assert led.work > 0


class TestAllSubtreeCosts:
    def test_matches_oracle_cost(self):
        rng = np.random.default_rng(2)
        for t in range(6):
            n = int(rng.integers(3, 90))
            g = random_connected_graph(n, 3 * n, rng=rng, max_weight=6)
            _, rt = make_rooted(g)
            costs = all_subtree_costs(g, rt)
            naive = NaiveCutOracle(g, rt)
            for u in range(rt.n):
                if rt.parent[u] < 0:
                    assert costs[u] == pytest.approx(0.0)
                else:
                    assert costs[u] == pytest.approx(naive.cost(u))

    def test_root_cost_zero(self):
        g = make_graph(20, 60, 4)
        _, rt = make_rooted(g)
        costs = all_subtree_costs(g, rt)
        assert costs[rt.root] == pytest.approx(0.0)

    def test_leaf_cost_is_degree(self):
        g = Graph.from_edges(3, [(0, 1, 2.0), (1, 2, 3.0), (0, 2, 5.0)])
        parent = np.array([-1, 0, 1])
        rt = postorder(parent)
        costs = all_subtree_costs(g, rt)
        assert costs[2] == pytest.approx(8.0)  # leaf 2: edges (1,2)+(0,2)

    def test_prefill_makes_oracle_cost_queryless(self):
        g = make_graph(30, 100, 5)
        _, rt = make_rooted(g)
        oracle = CutOracle(g, rt)
        oracle.prefill_costs()
        q_before = oracle.points.stats.queries
        for u in range(rt.n):
            if rt.parent[u] >= 0:
                oracle.cost(u)
        assert oracle.points.stats.queries == q_before

    def test_prefilled_values_match_queries(self):
        g = make_graph(25, 80, 6)
        _, rt = make_rooted(g)
        a = CutOracle(g, rt)
        b = CutOracle(g, rt)
        b.prefill_costs()
        for u in range(rt.n):
            if rt.parent[u] >= 0:
                assert a.cost(u) == pytest.approx(b.cost(u))


class TestContract:
    def test_quotient_shape(self):
        g = Graph.from_edges(4, [(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0), (0, 3, 4.0)])
        q, dense = g.contract(np.array([0, 0, 1, 1]))
        assert q.n == 2
        assert q.m == 1
        assert q.w[0] == pytest.approx(2.0 + 4.0)

    def test_identity_labels(self):
        g = make_graph(10, 30, 7)
        q, dense = g.contract(np.arange(10))
        assert q.n == 10
        assert q.total_weight == pytest.approx(g.coalesced().total_weight)

    def test_cut_values_preserved_across_classes(self):
        g = make_graph(12, 40, 8)
        labels = np.arange(12) % 3
        q, dense = g.contract(labels)
        side_q = np.array([True, False, False])
        side_g = side_q[dense]
        assert q.cut_value(side_q) == pytest.approx(g.cut_value(side_g))

    def test_bad_label_length(self):
        with pytest.raises(GraphFormatError):
            make_graph(5, 10, 9).contract(np.array([0, 1]))


class TestMatula:
    def test_upper_bound_and_factor(self):
        from repro.arena.solvers import matula_approx, stoer_wagner

        rng = np.random.default_rng(3)
        for t in range(10):
            n = int(rng.integers(4, 50))
            g = random_connected_graph(n, 3 * n, rng=rng, max_weight=7)
            lam = stoer_wagner(g).value
            res = matula_approx(g, epsilon=0.5)
            assert lam - 1e-9 <= res.value <= 2.5 * lam + 1e-9
            assert g.cut_value(res.side) == pytest.approx(res.value)

    def test_disconnected(self):
        from repro.arena.solvers import matula_approx

        g = Graph.from_edges(4, [(0, 1), (2, 3)])
        assert matula_approx(g).value == 0.0

    def test_bad_epsilon(self):
        from repro.arena.solvers import matula_approx

        with pytest.raises(ValueError):
            matula_approx(make_graph(5, 12, 10), epsilon=0.0)

    def test_barbell_exact(self):
        from repro.arena.solvers import matula_approx
        from repro.graphs import barbell_graph

        res = matula_approx(barbell_graph(6, 1.0))
        assert res.value <= 2.5
