"""The solver arena: registry, contenders, baselines (repro.arena)."""

import warnings

import numpy as np
import pytest

import repro
from repro.arena import (
    ArenaResult,
    Contender,
    contender_names,
    get_contender,
    register,
)
from repro.arena.registry import _REGISTRY
from repro.arena.solvers import (
    matula_approx,
    stoer_wagner,
    viecut_minimum_cut,
)
from repro.errors import InvalidParameterError
from repro.graphs import Graph, barbell_graph, planted_cut_graph, random_connected_graph

from tests.conftest import assert_valid_cut

EXPECTED_CONTENDERS = {
    "approx-s3",
    "engine",
    "karger-stein",
    "matula",
    "paper",
    "resilient",
    "stoer-wagner",
    "two-out",
    "viecut-reduce",
}


def unweighted_simple(n, p, rng):
    iu, iv = np.triu_indices(n, k=1)
    keep = rng.random(iu.size) < p
    u = np.concatenate([iu[keep], np.arange(n)])
    v = np.concatenate([iv[keep], (np.arange(n) + 1) % n])
    pairs = np.unique(np.stack([np.minimum(u, v), np.maximum(u, v)], axis=1), axis=0)
    return Graph(n, pairs[:, 0], pairs[:, 1], np.ones(pairs.shape[0]))


class TestRegistry:
    def test_builtin_roster(self):
        assert EXPECTED_CONTENDERS <= set(contender_names())

    def test_get_contender_instantiates(self):
        c = get_contender("stoer-wagner")
        assert isinstance(c, Contender)
        assert c.name == "stoer-wagner" and c.kind == "exact"

    def test_unknown_name_is_typed_error(self):
        with pytest.raises(InvalidParameterError, match="unknown contender"):
            get_contender("nope")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(InvalidParameterError, match="already registered"):

            @register
            class Dupe(Contender):
                name = "stoer-wagner"

    def test_custom_registration(self):
        @register(name="test-custom")
        class Custom(Contender):
            name = "test-custom"
            kind = "exact"

            def _run(self, graph, *, seed, budget, ledger):
                return 1.0, None, {}

        try:
            assert get_contender("test-custom").solve(
                Graph.from_edges(2, [(0, 1)])
            ).value == 1.0
        finally:
            del _REGISTRY["test-custom"]

    def test_top_level_reexports(self):
        assert repro.get_contender is get_contender
        assert repro.ArenaResult is ArenaResult


class TestArenaResult:
    def test_kind_validated(self):
        with pytest.raises(ValueError, match="kind"):
            ArenaResult(contender="x", kind="magic", value=1.0, side=None,
                        wall_s=0.0, work=0.0, depth=0.0, seed=0, n=2, m=1)

    def test_stats_read_only(self):
        g = random_connected_graph(10, 25, rng=0, max_weight=3)
        res = get_contender("stoer-wagner").solve(g)
        with pytest.raises(TypeError):
            res.stats["x"] = 1.0

    def test_to_json_reduces_side(self):
        g = random_connected_graph(10, 25, rng=0, max_weight=3)
        res = get_contender("stoer-wagner").solve(g, seed=5)
        d = res.to_json()
        assert sum(d["side_sizes"]) == g.n
        assert d["seed"] == 5 and d["n"] == g.n and d["m"] == g.m
        import json

        json.dumps(d)  # JSON-safe end to end


class TestContendersAgree:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_exact_contenders_match_stoer_wagner(self, seed):
        rng = np.random.default_rng(seed)
        g = random_connected_graph(
            int(rng.integers(8, 30)), int(rng.integers(20, 80)),
            rng=rng, max_weight=5,
        )
        truth = stoer_wagner(g).value
        for name in ("paper", "engine", "resilient", "viecut-reduce"):
            res = get_contender(name).solve(g, seed=seed)
            assert res.value == truth, name
            assert_valid_cut(g, res.value, res.side)

    def test_montecarlo_never_undershoots(self):
        g = random_connected_graph(15, 45, rng=3, max_weight=4)
        truth = stoer_wagner(g).value
        res = get_contender("karger-stein").solve(g, seed=1)
        assert res.value >= truth - 1e-9
        assert_valid_cut(g, res.value, res.side)

    def test_two_out_supports_only_unweighted(self):
        weighted = random_connected_graph(12, 30, rng=4, max_weight=5)
        c = get_contender("two-out")
        assert not c.supports(weighted)
        simple = unweighted_simple(20, 0.3, np.random.default_rng(2))
        assert c.supports(simple)
        res = c.solve(simple, seed=0)
        assert res.value >= stoer_wagner(simple).value - 1e-9

    def test_approx_bracket_contains_truth(self):
        g = random_connected_graph(20, 60, rng=6, max_weight=4)
        truth = stoer_wagner(g).value
        for name in ("matula", "approx-s3"):
            res = get_contender(name).solve(g, seed=0)
            assert res.kind == "approx"
            assert res.lower_bound <= truth + 1e-9, name
            assert truth - 1e-9 <= res.value <= res.claimed_ratio * truth + 1e-9, name

    def test_deterministic_given_seed(self):
        g = random_connected_graph(14, 40, rng=8, max_weight=4)
        for name in ("karger-stein", "paper", "matula"):
            a = get_contender(name).solve(g, seed=42)
            b = get_contender(name).solve(g, seed=42)
            assert a.value == b.value, name

    def test_ledger_charges_recorded(self):
        g = random_connected_graph(12, 30, rng=9, max_weight=3)
        res = get_contender("stoer-wagner").solve(g)
        assert res.work > 0 and res.depth > 0 and res.wall_s >= 0


class TestViecutReductions:
    @pytest.mark.parametrize("seed", range(6))
    def test_exact_on_random_graphs(self, seed):
        rng = np.random.default_rng(seed)
        g = random_connected_graph(
            int(rng.integers(6, 40)), int(rng.integers(10, 120)),
            rng=rng, max_weight=6,
        )
        res = viecut_minimum_cut(g)
        assert res.value == pytest.approx(stoer_wagner(g).value)
        assert_valid_cut(g, res.value, res.side)

    def test_barbell(self):
        g = barbell_graph(20, 1.0)
        res = viecut_minimum_cut(g)
        assert res.value == pytest.approx(1.0)

    def test_degree_one_rule_collapses_path(self):
        # a path is all degree-one endpoints: kernelization alone
        # solves it (kernel collapses, answer = lightest edge)
        w = [5.0, 2.0, 7.0, 3.0, 9.0]
        g = Graph.from_edges(6, [(i, i + 1, w[i]) for i in range(5)])
        res = viecut_minimum_cut(g)
        assert res.value == pytest.approx(2.0)
        assert res.stats["kernel_n"] <= 2

    def test_heavy_edge_rule_shrinks_kernel(self):
        # cycle of weight-5 edges (min degree cut = 10) plus one
        # weight-100 chord: the chord is heavier than the candidate,
        # so its endpoints contract before Stoer-Wagner runs
        n = 12
        edges = [(i, (i + 1) % n, 5.0) for i in range(n)] + [(0, 6, 100.0)]
        g = Graph.from_edges(n, edges)
        res = viecut_minimum_cut(g)
        assert res.value == pytest.approx(stoer_wagner(g).value)
        assert res.stats["kernel_n"] < n

    def test_planted_cut_found(self):
        g = planted_cut_graph(30, 30, 2.0, cut_edges=2, rng=1)
        res = viecut_minimum_cut(g)
        assert res.value == pytest.approx(2.0)

    def test_disconnected(self):
        g = Graph.from_edges(4, [(0, 1), (2, 3)])
        assert viecut_minimum_cut(g).value == 0.0


class TestMatula:
    @pytest.mark.parametrize("seed", range(4))
    def test_ratio_certified(self, seed):
        rng = np.random.default_rng(seed)
        g = random_connected_graph(
            int(rng.integers(8, 35)), int(rng.integers(15, 100)),
            rng=rng, max_weight=5,
        )
        truth = stoer_wagner(g).value
        res = matula_approx(g, epsilon=0.5)
        ratio = res.stats["ratio"]
        assert ratio == pytest.approx(2.5)  # cap never binds uncapped
        assert truth - 1e-9 <= res.value <= ratio * truth + 1e-9
        assert_valid_cut(g, res.value, res.side)

    def test_cap_inflates_ratio_honestly(self):
        # heavy weights force k_exact >> 1; a 1-round cap must be
        # reported in the certified ratio, not hidden
        g = random_connected_graph(20, 100, rng=5, max_weight=50)
        res = matula_approx(g, epsilon=0.5, max_certificate_rounds=1)
        truth = stoer_wagner(g).value
        assert res.value <= res.stats["ratio"] * truth + 1e-9
        assert res.value >= truth - 1e-9

    def test_rejects_bad_params(self):
        g = Graph.from_edges(2, [(0, 1)])
        with pytest.raises(ValueError):
            matula_approx(g, epsilon=0.0)
        with pytest.raises(ValueError):
            matula_approx(g, max_certificate_rounds=0)


class TestDeprecationShims:
    def test_module_getattr_warns_and_aliases(self):
        import repro.baselines as baselines

        with warnings.catch_warnings(record=True) as rec:
            warnings.simplefilter("always")
            sw = baselines.stoer_wagner
        assert any(issubclass(w.category, DeprecationWarning) for w in rec)
        assert sw is stoer_wagner

    def test_submodule_import_warns(self):
        import importlib
        import sys

        sys.modules.pop("repro.baselines.karger_stein", None)
        with warnings.catch_warnings(record=True) as rec:
            warnings.simplefilter("always")
            mod = importlib.import_module("repro.baselines.karger_stein")
        assert any(issubclass(w.category, DeprecationWarning) for w in rec)
        from repro.arena.solvers.karger_stein import karger_stein

        assert mod.karger_stein is karger_stein

    def test_gg18_and_models_not_deprecated(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            from repro.baselines import gg18_two_respecting, work_here  # noqa: F401
