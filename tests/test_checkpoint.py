"""Phase-level checkpoint/resume: file format guarantees, kill/resume
bit-identity, fault-exact resume, cross-backend determinism, and the CLI
``--checkpoint``/``--no-resume`` flags (repro.resilience.checkpointing)."""

import os
import pickle

import numpy as np
import pytest

from repro.errors import CheckpointError, SimulatedCrash
from repro.graphs.io import write_edgelist
from repro.pram.executor import force_executor, shutdown_shared_pools
from repro.resilience import (
    Fault,
    FaultPlan,
    canonical_plans,
    inject,
    resilient_minimum_cut,
)
from repro.resilience.checkpointing import (
    CHECKPOINT_VERSION,
    DriverCheckpoint,
    PipelineHooks,
    run_fingerprint,
)
from repro.resilience.faults import (
    SITE_CHECKPOINT_CORRUPT,
    SITE_CHECKPOINT_KILL,
    SITE_CORRUPT_VALUE,
)

from tests.conftest import make_graph


def _result_key(res):
    """Everything the bit-identical contract covers: value, side,
    provenance, and the full stats mapping."""
    return (
        res.value,
        res.side.tobytes(),
        res.attempts,
        res.fallback_used,
        dict(res.stats),
    )


def _kill_plan(at, *extra):
    return FaultPlan(faults=(*extra, Fault(SITE_CHECKPOINT_KILL, at=at)))


# ---------------------------------------------------------------------------
# File format: versioned, hash-verified, fingerprint-bound, atomic
# ---------------------------------------------------------------------------
class TestCheckpointFile:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "a.ckpt"
        store = DriverCheckpoint.open(path, "fp", resume=True)
        store.record_outcome("suspect", 41.5)
        store.stage_hooks(1).save_stage("approx", {"approx_value": 3.0})
        again = DriverCheckpoint.open(path, "fp", resume=True)
        assert again.resumed
        assert again.outcomes == [("suspect", 41.5)]
        assert again.stage_hooks(1).load_stage("approx")["approx_value"] == 3.0

    def test_stage_hooks_reset_between_attempts(self, tmp_path):
        store = DriverCheckpoint.open(tmp_path / "a.ckpt", "fp")
        store.stage_hooks(0).save_stage("approx", {"approx_value": 3.0})
        assert store.stage_hooks(0).load_stage("approx") is not None
        assert store.stage_hooks(1).load_stage("approx") is None  # new attempt

    def test_rng_state_snapshot_roundtrip(self, tmp_path):
        store = DriverCheckpoint.open(tmp_path / "a.ckpt", "fp")
        rng = np.random.default_rng(5)
        rng.random(7)
        store.stage_hooks(0).save_stage("packing", {"x": 1}, rng=rng)
        expect = rng.random()
        loaded = DriverCheckpoint.open(tmp_path / "a.ckpt", "fp", resume=True)
        payload = loaded.stage_hooks(0).load_stage("packing")
        fresh = np.random.default_rng(0)
        fresh.bit_generator.state = payload["rng_state"]
        assert fresh.random() == expect

    def test_flipped_byte_fails_hash_check(self, tmp_path):
        path = tmp_path / "a.ckpt"
        DriverCheckpoint.open(path, "fp").record_outcome("budget")
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(CheckpointError, match="corrupt|unreadable"):
            DriverCheckpoint.open(path, "fp", resume=True)

    def test_unknown_version_rejected(self, tmp_path):
        path = tmp_path / "a.ckpt"
        path.write_bytes(pickle.dumps({"version": CHECKPOINT_VERSION + 1}))
        with pytest.raises(CheckpointError, match="version"):
            DriverCheckpoint.open(path, "fp", resume=True)

    def test_garbage_file_rejected(self, tmp_path):
        path = tmp_path / "a.ckpt"
        path.write_bytes(b"not a checkpoint at all")
        with pytest.raises(CheckpointError, match="unreadable"):
            DriverCheckpoint.open(path, "fp", resume=True)

    def test_fingerprint_mismatch_rejected(self, tmp_path):
        path = tmp_path / "a.ckpt"
        DriverCheckpoint.open(path, "fp-one").record_outcome("budget")
        with pytest.raises(CheckpointError, match="fingerprint"):
            DriverCheckpoint.open(path, "fp-two", resume=True)

    def test_resume_false_ignores_existing(self, tmp_path):
        path = tmp_path / "a.ckpt"
        DriverCheckpoint.open(path, "fp-one").record_outcome("budget")
        fresh = DriverCheckpoint.open(path, "fp-two", resume=False)
        assert not fresh.resumed
        assert fresh.outcomes == []

    def test_finalize_removes_file(self, tmp_path):
        path = tmp_path / "a.ckpt"
        store = DriverCheckpoint.open(path, "fp")
        store.record_outcome("budget")
        assert path.exists()
        store.finalize()
        assert not path.exists()
        store.finalize()  # idempotent

    def test_no_tmp_residue_after_save(self, tmp_path):
        path = tmp_path / "a.ckpt"
        DriverCheckpoint.open(path, "fp").record_outcome("budget")
        assert os.listdir(tmp_path) == ["a.ckpt"]

    def test_base_hooks_are_noops(self):
        hooks = PipelineHooks()
        assert hooks.load_stage("approx") is None
        hooks.save_stage("approx", {"x": 1})  # no crash, no effect

    def test_fingerprint_sensitivity(self):
        g1, g2 = make_graph(12, 30, seed=1), make_graph(12, 30, seed=2)
        base = run_fingerprint(g1, 0, "params", 3, 200)
        assert base == run_fingerprint(g1, 0, "params", 3, 200)
        assert base != run_fingerprint(g2, 0, "params", 3, 200)
        assert base != run_fingerprint(g1, 1, "params", 3, 200)
        assert base != run_fingerprint(g1, 0, "params", 4, 200)


# ---------------------------------------------------------------------------
# Kill/resume bit-identity through the driver
# ---------------------------------------------------------------------------
class TestKillResume:
    @pytest.mark.parametrize("kill_at", [0, 1, 3, 7])
    def test_resume_is_bit_identical(self, tmp_path, kill_at):
        g = make_graph(24, 80, seed=41)
        base = resilient_minimum_cut(g, seed=7)
        ck = tmp_path / "run.ckpt"
        with pytest.raises(SimulatedCrash):
            with inject(_kill_plan(kill_at)):
                resilient_minimum_cut(g, seed=7, checkpoint=ck)
        assert ck.exists()  # progress survived the crash
        resumed = resilient_minimum_cut(g, seed=7, checkpoint=ck)
        assert _result_key(resumed) == _result_key(base)
        assert not ck.exists()  # finalized on success

    def test_resume_with_injected_faults_is_exact(self, tmp_path):
        # a suspect first attempt (corrupt_value) plus a kill: the
        # checkpoint persists the fault plan's firing record, so the
        # resumed run (re-armed with the same plan, as a restarted
        # process would) neither re-fires the kill nor double-fires the
        # corruption — provenance matches the uninterrupted faulted run
        g = make_graph(24, 80, seed=42)
        with inject(FaultPlan(faults=(Fault(SITE_CORRUPT_VALUE),))):
            base = resilient_minimum_cut(g, seed=7)
        assert base.attempts == 2  # suspect then verified
        for kill_at in (0, 4, 16):
            ck = tmp_path / f"k{kill_at}.ckpt"
            try:
                with inject(_kill_plan(kill_at, Fault(SITE_CORRUPT_VALUE))):
                    resilient_minimum_cut(g, seed=7, checkpoint=ck)
                continue  # kill point beyond the run's last save
            except SimulatedCrash:
                pass
            with inject(_kill_plan(kill_at, Fault(SITE_CORRUPT_VALUE))):
                resumed = resilient_minimum_cut(g, seed=7, checkpoint=ck)
            assert _result_key(resumed) == _result_key(base)

    def test_corrupted_checkpoint_is_loud_then_recoverable(self, tmp_path):
        g = make_graph(20, 60, seed=43)
        ck = tmp_path / "run.ckpt"
        plan = FaultPlan(faults=(
            Fault(SITE_CHECKPOINT_CORRUPT, at=1),
            Fault(SITE_CHECKPOINT_KILL, at=1),
        ))
        with pytest.raises(SimulatedCrash):
            with inject(plan):
                resilient_minimum_cut(g, seed=7, checkpoint=ck)
        with pytest.raises(CheckpointError):  # typed, never silent
            resilient_minimum_cut(g, seed=7, checkpoint=ck)
        res = resilient_minimum_cut(g, seed=7, checkpoint=ck, resume=False)
        assert res.verification.ok

    def test_different_args_cannot_consume_checkpoint(self, tmp_path):
        g = make_graph(20, 60, seed=44)
        ck = tmp_path / "run.ckpt"
        with pytest.raises(SimulatedCrash):
            with inject(_kill_plan(1)):
                resilient_minimum_cut(g, seed=7, checkpoint=ck)
        with pytest.raises(CheckpointError, match="fingerprint"):
            resilient_minimum_cut(g, seed=8, checkpoint=ck)

    def test_checkpointed_equals_plain_run(self, tmp_path):
        g = make_graph(24, 80, seed=45)
        plain = resilient_minimum_cut(g, seed=3)
        ck = resilient_minimum_cut(g, seed=3, checkpoint=tmp_path / "c.ckpt")
        assert _result_key(plain) == _result_key(ck)


# ---------------------------------------------------------------------------
# Satellite (d): cross-backend determinism under faults
# ---------------------------------------------------------------------------
class TestCrossBackendDeterminism:
    def teardown_method(self):
        shutdown_shared_pools()

    @pytest.mark.parametrize("plan_name", ["corrupt_value", "drop_tree",
                                           "corrupt_skeleton"])
    def test_same_seed_same_plan_same_result(self, plan_name):
        g = make_graph(30, 100, seed=51)
        keys = {}
        for backend in ("process", "thread", "sync"):
            plan = canonical_plans(seed=5)[plan_name]
            with force_executor(backend), inject(plan):
                keys[backend] = _result_key(
                    resilient_minimum_cut(g, seed=9)
                )
        assert keys["process"] == keys["thread"] == keys["sync"]

    @pytest.mark.parametrize("backend", ["process", "thread", "sync"])
    def test_resumed_run_matches_across_backends(self, tmp_path, backend):
        g = make_graph(24, 80, seed=52)
        base = resilient_minimum_cut(g, seed=9)  # default backend
        ck = tmp_path / f"{backend}.ckpt"
        with pytest.raises(SimulatedCrash):
            with force_executor(backend), inject(_kill_plan(2)):
                resilient_minimum_cut(g, seed=9, checkpoint=ck)
        with force_executor(backend):
            resumed = resilient_minimum_cut(g, seed=9, checkpoint=ck)
        assert _result_key(resumed) == _result_key(base)


# ---------------------------------------------------------------------------
# CLI: --checkpoint / --no-resume
# ---------------------------------------------------------------------------
class TestCheckpointCLI:
    @pytest.fixture
    def graph_file(self, tmp_path):
        path = tmp_path / "g.edges"
        write_edgelist(make_graph(20, 60, seed=61), path)
        return path

    def test_checkpoint_implies_resilient_driver(self, tmp_path, graph_file, capsys):
        from repro.cli import main

        ck = tmp_path / "cli.ckpt"
        assert main(["cut", str(graph_file), "--checkpoint", str(ck)]) == 0
        out = capsys.readouterr().out
        assert "attempts " in out
        assert "verified 1" in out
        assert "degradations " in out
        assert not ck.exists()  # finalized

    def test_kill_then_resume_via_cli(self, tmp_path, graph_file, capsys):
        from repro.cli import EXIT_REPRO_ERROR, main

        ck = tmp_path / "cli.ckpt"
        with inject(_kill_plan(1)):
            rc = main(["cut", str(graph_file), "--checkpoint", str(ck)])
        assert rc == EXIT_REPRO_ERROR  # SimulatedCrash is a typed error
        assert "SimulatedCrash" in capsys.readouterr().err
        assert ck.exists()
        assert main(["cut", str(graph_file), "--checkpoint", str(ck)]) == 0
        resumed = capsys.readouterr().out
        plain_rc = main(["cut", str(graph_file)])
        assert plain_rc == 0
        plain = capsys.readouterr().out
        line = next(l for l in resumed.splitlines() if l.startswith("value "))
        assert line in plain.splitlines()

    def test_no_resume_discards_checkpoint(self, tmp_path, graph_file, capsys):
        from repro.cli import main

        ck = tmp_path / "cli.ckpt"
        with inject(_kill_plan(1)):
            main(["cut", str(graph_file), "--checkpoint", str(ck)])
        capsys.readouterr()
        assert main(
            ["cut", str(graph_file), "--checkpoint", str(ck), "--no-resume"]
        ) == 0
        assert "verified 1" in capsys.readouterr().out
