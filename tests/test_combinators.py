"""Parallel combinators (repro.pram.combinators) and the hardened
thread-pool executor (repro.pram.executor)."""

import numpy as np
import pytest

from repro.errors import BranchErrors, InvalidParameterError
from repro.pram import (
    Ledger,
    bulk_charge,
    log2ceil,
    parallel_map,
    pfilter,
    pmap,
    preduce,
    pscan_exclusive,
)


class TestLog2Ceil:
    @pytest.mark.parametrize(
        "n,expected", [(0, 0), (1, 0), (2, 1), (3, 2), (4, 2), (5, 3), (1024, 10), (1025, 11)]
    )
    def test_values(self, n, expected):
        assert log2ceil(n) == expected


class TestPmap:
    def test_results_in_order(self):
        assert pmap(lambda x: x * x, [1, 2, 3]) == [1, 4, 9]

    def test_empty(self):
        assert pmap(lambda x: x, []) == []

    def test_depth_is_max_branch(self):
        led = Ledger()

        def task(d):
            led.charge(1, d)
            return d

        pmap(task, [2, 9, 4], ledger=led)
        assert led.depth == 9
        assert led.work == 3

    def test_spawn_depth_added(self):
        led = Ledger()
        pmap(lambda x: x, [1, 2, 3, 4], ledger=led, spawn_depth=2)
        assert led.depth == 2


class TestPreduce:
    def test_sum(self):
        assert preduce(lambda a, b: a + b, [1, 2, 3, 4, 5], 0) == 15

    def test_unit_on_empty(self):
        assert preduce(lambda a, b: a + b, [], unit=42) == 42

    def test_single_element(self):
        led = Ledger()
        assert preduce(min, [7], unit=None, ledger=led) == 7
        assert led.work == 0

    def test_charges_tree_cost(self):
        led = Ledger()
        preduce(lambda a, b: a + b, list(range(8)), 0, ledger=led)
        assert led.work == 7
        assert led.depth == 3

    def test_tree_order_combination(self):
        # combine order: pairs per round, so string concat shows the shape
        out = preduce(lambda a, b: f"({a}{b})", list("abcd"), "")
        assert out == "((ab)(cd))"


class TestPscan:
    def test_exclusive_prefix_sums(self):
        out = pscan_exclusive(np.array([3, 1, 4, 1, 5]))
        assert out.tolist() == [0, 3, 4, 8, 9]

    def test_empty(self):
        assert pscan_exclusive(np.array([])).shape == (0,)

    def test_charge(self):
        led = Ledger()
        pscan_exclusive(np.ones(16), ledger=led)
        assert led.work == 32
        assert led.depth == 8


class TestPfilter:
    def test_indices(self):
        idx = pfilter(np.array([True, False, True, True]))
        assert idx.tolist() == [0, 2, 3]

    def test_empty_mask(self):
        assert pfilter(np.zeros(5, dtype=bool)).size == 0

    def test_charge_linear(self):
        led = Ledger()
        pfilter(np.ones(10, dtype=bool), ledger=led)
        assert led.work == 30


class TestBulkCharge:
    def test_defaults(self):
        led = Ledger()
        bulk_charge(led, 100, per_item_work=2.0)
        assert led.work == 200
        assert led.depth == 2

    def test_explicit_depth(self):
        led = Ledger()
        bulk_charge(led, 100, per_item_work=1.0, depth=5)
        assert led.depth == 5


class TestParallelMap:
    def test_results_in_order(self):
        assert parallel_map(lambda x: x + 1, [1, 2, 3, 4]) == [2, 3, 4, 5]

    def test_empty_and_single(self):
        assert parallel_map(lambda x: x, []) == []
        assert parallel_map(lambda x: x * 3, [7]) == [21]

    def test_raise_mode_propagates_first_failure(self):
        def boom(x):
            if x == 2:
                raise ValueError("two")
            return x

        with pytest.raises(ValueError, match="two"):
            parallel_map(boom, [1, 2, 3])

    def test_aggregate_mode_collects_all_failures(self):
        # one failed branch must not hide the others: every failure is
        # collected and raised together, successes still computed
        def boom(x):
            if x % 2 == 0:
                raise ValueError(f"even {x}")
            return x

        with pytest.raises(BranchErrors) as ei:
            parallel_map(boom, [1, 2, 3, 4, 5], on_error="aggregate")
        failures = ei.value.failures
        assert [i for i, _ in failures] == [1, 3]
        assert all(isinstance(e, ValueError) for _, e in failures)
        assert "2 parallel branch(es) failed" in str(ei.value)

    def test_per_item_retries_recover_flaky_branches(self):
        calls = {}

        def flaky(x):
            calls[x] = calls.get(x, 0) + 1
            if calls[x] == 1 and x == 3:
                raise RuntimeError("transient")
            return x * x

        assert parallel_map(flaky, [1, 2, 3], retries=1) == [1, 4, 9]
        assert calls[3] == 2  # retried exactly once

    def test_retries_exhausted_still_fails(self):
        def always(x):
            raise RuntimeError("persistent")

        with pytest.raises(BranchErrors) as ei:
            parallel_map(always, [1, 2], retries=2, on_error="aggregate")
        assert len(ei.value.failures) == 2

    def test_timeout_records_slow_branch(self):
        import time

        def slow(x):
            if x == 1:
                time.sleep(2.0)
            return x

        with pytest.raises(BranchErrors) as ei:
            parallel_map(slow, [0, 1], timeout=0.2, on_error="aggregate")
        assert any(isinstance(e, TimeoutError) for _, e in ei.value.failures)

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            parallel_map(lambda x: x, [1], retries=-1)
        with pytest.raises(InvalidParameterError):
            parallel_map(lambda x: x, [1], timeout=0.0)
