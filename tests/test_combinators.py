"""Parallel combinators (repro.pram.combinators)."""

import numpy as np
import pytest

from repro.pram import (
    Ledger,
    bulk_charge,
    log2ceil,
    pfilter,
    pmap,
    preduce,
    pscan_exclusive,
)


class TestLog2Ceil:
    @pytest.mark.parametrize(
        "n,expected", [(0, 0), (1, 0), (2, 1), (3, 2), (4, 2), (5, 3), (1024, 10), (1025, 11)]
    )
    def test_values(self, n, expected):
        assert log2ceil(n) == expected


class TestPmap:
    def test_results_in_order(self):
        assert pmap(lambda x: x * x, [1, 2, 3]) == [1, 4, 9]

    def test_empty(self):
        assert pmap(lambda x: x, []) == []

    def test_depth_is_max_branch(self):
        led = Ledger()

        def task(d):
            led.charge(1, d)
            return d

        pmap(task, [2, 9, 4], ledger=led)
        assert led.depth == 9
        assert led.work == 3

    def test_spawn_depth_added(self):
        led = Ledger()
        pmap(lambda x: x, [1, 2, 3, 4], ledger=led, spawn_depth=2)
        assert led.depth == 2


class TestPreduce:
    def test_sum(self):
        assert preduce(lambda a, b: a + b, [1, 2, 3, 4, 5], 0) == 15

    def test_unit_on_empty(self):
        assert preduce(lambda a, b: a + b, [], unit=42) == 42

    def test_single_element(self):
        led = Ledger()
        assert preduce(min, [7], unit=None, ledger=led) == 7
        assert led.work == 0

    def test_charges_tree_cost(self):
        led = Ledger()
        preduce(lambda a, b: a + b, list(range(8)), 0, ledger=led)
        assert led.work == 7
        assert led.depth == 3

    def test_tree_order_combination(self):
        # combine order: pairs per round, so string concat shows the shape
        out = preduce(lambda a, b: f"({a}{b})", list("abcd"), "")
        assert out == "((ab)(cd))"


class TestPscan:
    def test_exclusive_prefix_sums(self):
        out = pscan_exclusive(np.array([3, 1, 4, 1, 5]))
        assert out.tolist() == [0, 3, 4, 8, 9]

    def test_empty(self):
        assert pscan_exclusive(np.array([])).shape == (0,)

    def test_charge(self):
        led = Ledger()
        pscan_exclusive(np.ones(16), ledger=led)
        assert led.work == 32
        assert led.depth == 8


class TestPfilter:
    def test_indices(self):
        idx = pfilter(np.array([True, False, True, True]))
        assert idx.tolist() == [0, 2, 3]

    def test_empty_mask(self):
        assert pfilter(np.zeros(5, dtype=bool)).size == 0

    def test_charge_linear(self):
        led = Ledger()
        pfilter(np.ones(10, dtype=bool), ledger=led)
        assert led.work == 30


class TestBulkCharge:
    def test_defaults(self):
        led = Ledger()
        bulk_charge(led, 100, per_item_work=2.0)
        assert led.work == 200
        assert led.depth == 2

    def test_explicit_depth(self):
        led = Ledger()
        bulk_charge(led, 100, per_item_work=1.0, depth=5)
        assert led.depth == 5
