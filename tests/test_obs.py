"""The observability layer: counters, span trees, run reports.

The load-bearing invariants:

* spans observe the ledger and never charge it — a traced run's
  value/work/depth are bit-identical to an untraced run's;
* the root span's work/depth deltas equal the ledger totals exactly
  (same snapshots, no float drift);
* child deltas partition the parent's (up to float association);
* the disabled path is a shared no-op (NULL_COUNTERS / NULL_TRACER).
"""

import json
import math

import numpy as np
import pytest

import repro
from repro import obs
from repro.errors import ReproError
from repro.graphs import random_connected_graph
from repro.obs import (
    NULL_COUNTERS,
    NULL_TRACER,
    CounterRegistry,
    RunReport,
    Tracer,
    counters,
    counting_scope,
    current_tracer,
    tracing_active,
)
from repro.pram import Ledger
from repro.pram.trace import TraceLedger


@pytest.fixture
def graph():
    return random_connected_graph(30, 120, rng=7, max_weight=5)


# ----------------------------------------------------------------------
# counter registry
# ----------------------------------------------------------------------
class TestCounters:
    def test_add_get_snapshot(self):
        reg = CounterRegistry()
        reg.add("oracle.queries")
        reg.add("oracle.queries", 2.0)
        reg.add("smawk.evals", 10.0)
        assert reg.get("oracle.queries") == 3.0
        assert reg.get("missing") == 0.0
        snap = reg.snapshot()
        reg.add("smawk.evals", 5.0)
        assert snap["smawk.evals"] == 10.0  # snapshot is a copy
        assert reg.delta_since(snap) == {"smawk.evals": 5.0}

    def test_namespaces(self):
        reg = CounterRegistry()
        reg.add("oracle.queries", 2.0)
        reg.add("oracle.nodes_visited", 3.0)
        reg.add("executor.retries")
        assert reg.namespaces() == {"oracle": 5.0, "executor": 1.0}

    def test_null_registry_discards(self):
        NULL_COUNTERS.add("anything", 99.0)
        assert NULL_COUNTERS.get("anything") == 0.0
        assert len(NULL_COUNTERS) == 0
        assert NULL_COUNTERS.enabled is False
        assert CounterRegistry.enabled is True

    def test_ambient_default_is_null(self):
        assert counters() is NULL_COUNTERS

    def test_counting_scope(self):
        reg = CounterRegistry()
        with counting_scope(reg):
            assert counters() is reg
            counters().add("x.y")
        assert counters() is NULL_COUNTERS
        assert reg.get("x.y") == 1.0


# ----------------------------------------------------------------------
# span tree mechanics
# ----------------------------------------------------------------------
class TestTracer:
    def test_span_tree_shape(self):
        led = Ledger()
        tracer = Tracer(ledger=led)
        with tracer.activate():
            with tracer.span("a"):
                led.charge(5.0)
                with tracer.span("a1"):
                    led.charge(3.0)
            with tracer.span("b"):
                led.charge(2.0)
        root = tracer.finish()
        assert root.name == "run"
        assert [c.name for c in root.children] == ["a", "b"]
        assert root.find("a1")[0].work == 3.0
        assert root.find("a")[0].work == 8.0
        assert root.work == led.work == 10.0
        assert root.self_work() == 0.0

    def test_finish_with_open_span_raises(self):
        tracer = Tracer()
        cm = tracer.span("open")
        cm.__enter__()
        with pytest.raises(ReproError):
            tracer.finish()
        cm.__exit__(None, None, None)
        assert tracer.finish().name == "run"

    def test_finish_idempotent(self):
        tracer = Tracer(ledger=Ledger())
        assert tracer.finish() is tracer.finish()

    def test_activate_arms_ambient(self):
        tracer = Tracer()
        assert not tracing_active()
        assert current_tracer() is NULL_TRACER
        with tracer.activate():
            assert tracing_active()
            assert current_tracer() is tracer
            assert counters() is tracer.registry
        assert not tracing_active()

    def test_null_tracer_span_is_shared_noop(self):
        # the disabled path must not allocate per call
        assert NULL_TRACER.span("a") is NULL_TRACER.span("b")
        with NULL_TRACER.span("x"):
            pass

    def test_phase_helper_without_tracer(self):
        led = Ledger()
        with obs.phase("stage", led):
            led.charge(4.0)
        assert led.phases["stage"].work == 4.0

    def test_phase_helper_with_tracer(self):
        led = Ledger()
        tracer = Tracer(ledger=led)
        with tracer.activate():
            with obs.phase("stage", led):
                led.charge(4.0)
        root = tracer.finish()
        assert led.phases["stage"].work == 4.0
        assert root.find("stage")[0].work == 4.0


# ----------------------------------------------------------------------
# traced entry points
# ----------------------------------------------------------------------
class TestTracedRuns:
    def test_root_deltas_equal_ledger_totals_exactly(self, graph):
        led = Ledger()
        res = repro.minimum_cut(
            graph, rng=np.random.default_rng(0), ledger=led, trace=True
        )
        rep = res.report
        assert rep is not None
        # same snapshots → exact equality, not approx
        assert rep.work == led.work
        assert rep.depth == led.depth
        assert rep.span.name == "run"

    def test_phase_partition_of_totals(self, graph):
        res = repro.minimum_cut(
            graph, rng=np.random.default_rng(0), ledger=Ledger(), trace=True
        )
        rep = res.report
        top = rep.phases(top_level_only=True)
        assert [p.name for p in top] == ["approximate", "packing", "two-respecting"]
        covered = sum(p.work for p in top) + rep.unattributed_work()
        assert math.isclose(covered, rep.work, rel_tol=1e-12)
        for span in rep.span.walk():
            assert math.isclose(
                span.child_work() + span.self_work(), span.work, rel_tol=1e-12
            )
            assert span.work >= 0 and span.depth >= 0

    def test_wall_clock_nesting(self, graph):
        res = repro.minimum_cut(
            graph, rng=np.random.default_rng(0), ledger=Ledger(), trace=True
        )
        root = res.report.span
        for parent in root.walk():
            for child in parent.children:
                assert child.wall_start >= parent.wall_start
                assert child.wall_end <= parent.wall_end

    def test_counters_populated(self, graph):
        res = repro.minimum_cut(
            graph, rng=np.random.default_rng(0), ledger=Ledger(), trace=True
        )
        ctr = res.report.counters
        assert ctr["mincut.trees_tested"] >= 1
        assert ctr["tworespect.trees"] >= 1
        assert ctr["oracle.nodes_visited"] > 0
        # smawk only fires for branching > 2 configurations
        assert ctr.get("smawk.calls", 0.0) >= 0.0
        with pytest.raises(TypeError):
            ctr["new"] = 1.0  # read-only mapping

    def test_traced_run_is_bit_identical_to_untraced(self, graph):
        led_off, led_on = Ledger(), Ledger()
        off = repro.minimum_cut(
            graph, rng=np.random.default_rng(5), ledger=led_off, trace=False
        )
        on = repro.minimum_cut(
            graph, rng=np.random.default_rng(5), ledger=led_on, trace=True
        )
        assert off.value == on.value
        assert (led_off.work, led_off.depth) == (led_on.work, led_on.depth)
        assert dict(off.stats) == dict(on.stats)
        assert np.array_equal(off.side, on.side)
        assert off.report is None and on.report is not None

    def test_trace_false_leaves_report_none(self, graph):
        res = repro.minimum_cut(graph, rng=np.random.default_rng(0))
        assert res.report is None

    def test_nested_traced_call_joins_ambient_tracer(self, graph):
        # a trace=True call inside an active tracer must contribute spans
        # to the ambient tree, not attach its own report
        led = Ledger()
        tracer = Tracer(ledger=led)
        with tracer.activate():
            res = repro.minimum_cut(
                graph, rng=np.random.default_rng(0), ledger=led, trace=True
            )
        assert res.report is None
        assert tracer.finish().find("packing")

    def test_trace_with_null_ledger_gets_private_ledger(self, graph):
        res = repro.minimum_cut(graph, rng=np.random.default_rng(0), trace=True)
        assert res.report is not None
        assert res.report.work > 0

    def test_schedule_bounds_from_trace_ledger(self, graph):
        res = repro.minimum_cut(
            graph, rng=np.random.default_rng(0), ledger=TraceLedger(), trace=True
        )
        sb = res.report.schedule_bounds
        assert set(sb) == {2, 4, 16, 64}
        for lo, hi in sb.values():
            assert lo <= hi

    def test_approx_traced(self, graph):
        res = repro.approximate_minimum_cut(
            graph, rng=np.random.default_rng(1), trace=True
        )
        names = [p.name for p in res.report.phases(top_level_only=True)]
        assert names == ["hierarchy", "certificates", "layer-cuts"]

    def test_resilient_traced(self, graph):
        res = repro.resilient_minimum_cut(graph, seed=3, trace=True)
        rep = res.report
        assert rep is not None
        assert rep.span.find("attempt[0]")
        assert rep.span.find("verify")
        assert rep.counters["resilience.attempts"] >= 1
        assert rep.counters["resilience.checkpoints"] >= 1


# ----------------------------------------------------------------------
# export
# ----------------------------------------------------------------------
class TestChromeTrace:
    def test_payload_structure(self, graph):
        res = repro.minimum_cut(
            graph, rng=np.random.default_rng(0), ledger=TraceLedger(), trace=True
        )
        payload = res.report.to_chrome_trace()
        json.loads(json.dumps(payload))  # serialisable
        assert payload["displayTimeUnit"] == "ms"
        events = payload["traceEvents"]
        assert sum(1 for e in events if e["name"] == "run") == 1
        for e in events:
            assert e["ph"] == "X" and e["cat"] == "repro"
            assert e["ts"] >= 0 and e["dur"] >= 0
            assert {"work", "depth"} <= set(e["args"])
        sidecar = payload["repro"]
        assert sidecar["work"] == res.report.work
        assert sidecar["phases"][0]["name"] == "approximate"
        assert set(sidecar["schedule_bounds"]) == {"2", "4", "16", "64"}
        assert all(isinstance(v, str) for v in sidecar["meta"].values())

    def test_validator_accepts_real_trace(self, graph, tmp_path):
        import importlib.util
        from pathlib import Path

        spec = importlib.util.spec_from_file_location(
            "validate_trace",
            Path(__file__).resolve().parent.parent / "scripts" / "validate_trace.py",
        )
        mod = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(mod)

        res = repro.minimum_cut(
            graph, rng=np.random.default_rng(0), ledger=Ledger(), trace=True
        )
        out = tmp_path / "t.json"
        res.report.write_trace(out)
        payload = json.loads(out.read_text())
        assert mod.validate(payload) == []
        # and the validator actually rejects garbage
        payload["traceEvents"][0]["ph"] = "B"
        assert mod.validate(payload)

    def test_report_phase_aggregation_counts_reentries(self):
        led = Ledger()
        tracer = Tracer(ledger=led)
        with tracer.activate():
            for _ in range(3):
                with tracer.span("loop"):
                    led.charge(2.0)
        rep = RunReport.from_tracer_root(
            tracer.finish(), tracer.registry.snapshot(), ledger=led
        )
        (p,) = rep.phases()
        assert (p.name, p.count, p.work) == ("loop", 3, 6.0)
