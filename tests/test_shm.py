"""The zero-copy shared-memory backend: arena lifecycle, codec round
trips, executor parity, artifact publication, fault injection, and the
zero-leak contract.

The pivotal invariants:

* the ``shm`` backend is **bit-identical** to sync — cut values, stats,
  and ledger work/depth charges — under reference and fast kernels,
  traced and untraced;
* no run leaves a live segment behind: not after a clean shutdown, not
  after an injected segment loss, not after a worker dies mid-dispatch.
"""

import os
import signal

import numpy as np
import pytest

from repro.engine import CutEngine
from repro.engine.artifacts import PackedForest, TreeIndex
from repro.graphs import random_connected_graph
from repro.kernels import force_kernels
from repro.kernels.flat2d import FlatRangeTree2D
from repro.pram import Ledger, force_executor, parallel_map, prewarm_executor
from repro.pram.executor import shutdown_shared_pools
from repro.resilience.faults import (
    SITE_SHM_SEGMENT_LOST,
    Fault,
    FaultPlan,
    canonical_plans,
    inject,
)
from repro.resilience.supervisor import Supervisor, supervised_scope
from repro.shm import (
    ShmArena,
    ShmRef,
    ShmSegmentLost,
    arena,
    decode_object,
    encode_object,
    fetch_object,
    live_segments,
    plan_shards,
    publish_object,
    release_object,
    sharded_query_many,
    shm_available,
    shutdown_arena,
)
from repro.shm.arena import _aligned
from repro.shm.codec import _MIN_EXTERN_BYTES
from repro.tworespect import two_respecting_min_cut

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="no usable POSIX shared memory on this host"
)

SEED = 19


def _make_graph(n=60, m=400, seed=SEED):
    return random_connected_graph(n, m, rng=seed, max_weight=6)


def _spanning_parent(g):
    from repro.primitives import root_tree, spanning_forest_graph

    ids, _ = spanning_forest_graph(g)
    return root_tree(g.n, g.u[ids], g.v[ids], 0)


# module-level so the process/shm backends can pickle them
def _scale(context, x):
    return context["factor"] * x


def _die(context, x):
    os.kill(os.getpid(), signal.SIGKILL)


def _search_seed(context, seed):
    graph, parent, branching = context
    led = Ledger()
    res = two_respecting_min_cut(graph, parent, branching=branching, ledger=led)
    return res.value, dict(res.stats), led.work, led.depth


def teardown_module():
    shutdown_shared_pools()
    shutdown_arena()


# ---------------------------------------------------------------------------
# arena lifecycle
# ---------------------------------------------------------------------------
class TestArena:
    def test_publish_retain_release_refcount(self):
        with ShmArena() as a:
            name, nbytes = a.publish("k", b"payload", [memoryview(b"x" * 100)])
            assert nbytes >= 100
            assert a.live() == (name,)
            again = a.retain("k")
            assert again == (name, nbytes)
            a.release("k")
            assert a.live() == (name,)  # one ref still held
            a.release("k")
            assert a.live() == ()

    def test_republish_same_key_reuses_segment(self):
        with ShmArena() as a:
            name, _ = a.publish("k", b"p", [])
            name2, _ = a.publish("k", b"DIFFERENT", [])
            assert name2 == name  # content ignored: key is the identity
            assert len(a.live()) == 1

    def test_retain_unknown_key_is_none(self):
        with ShmArena() as a:
            assert a.retain("ghost") is None
            a.release("ghost")  # releasing an unknown key is a no-op

    def test_discard_ignores_refcount(self):
        with ShmArena() as a:
            a.publish("k", b"p", [])
            a.retain("k")
            a.discard("k")
            assert a.live() == ()
            assert a.retain("k") is None  # a retry must republish

    def test_shutdown_unlinks_everything(self):
        a = ShmArena()
        a.publish("k1", b"p", [])
        a.publish("k2", b"q", [memoryview(b"y" * 5000)])
        a.shutdown()
        assert a.live() == ()
        from repro.errors import InvalidParameterError

        with pytest.raises(InvalidParameterError):
            a.publish("k3", b"r", [])

    def test_block_alignment(self):
        # every block payload starts at a multiple of 64 bytes, so int64
        # and float64 frombuffer views are always aligned
        assert _aligned(1) == 64
        assert _aligned(64) == 64
        assert _aligned(65) == 128
        from repro.shm.arena import attach_segment, detach_all

        with ShmArena() as a:
            blocks_in = [memoryview(b"a" * 7), memoryview(b"b" * 200)]
            name, _ = a.publish("k", b"pp", blocks_in)
            payload, blocks, fresh = attach_segment(name)
            assert fresh
            assert payload == b"pp"
            assert [bytes(b) for b in blocks] == [b"a" * 7, b"b" * 200]
            detach_all()

    def test_default_arena_live_segments(self):
        shutdown_arena()
        assert live_segments() == ()
        arena().publish("probe", b"x", [])
        assert len(live_segments()) == 1
        shutdown_arena()
        assert live_segments() == ()


# ---------------------------------------------------------------------------
# codec
# ---------------------------------------------------------------------------
class TestCodec:
    def test_round_trip_externalizes_large_arrays(self):
        big = np.arange(4096, dtype=np.float64)
        small = np.arange(4, dtype=np.int64)
        obj = {"big": big, "small": small, "tag": "t"}
        payload, blocks = encode_object(obj)
        assert len(blocks) == 1  # only the large array left the pickle
        assert len(payload) < big.nbytes
        back = decode_object(payload, blocks)
        np.testing.assert_array_equal(back["big"], big)
        np.testing.assert_array_equal(back["small"], small)
        assert back["tag"] == "t"
        # zero-copy views are read-only: the published object is immutable
        assert not back["big"].flags.writeable
        assert back["small"].flags.writeable  # inline arrays stay private

    def test_threshold_boundary(self):
        under = np.zeros(_MIN_EXTERN_BYTES // 8 - 1, dtype=np.float64)
        over = np.zeros(_MIN_EXTERN_BYTES // 8, dtype=np.float64)
        assert len(encode_object(under)[1]) == 0
        assert len(encode_object(over)[1]) == 1

    def test_publish_fetch_release(self):
        shutdown_arena()
        obj = {"xs": np.arange(1000, dtype=np.int64)}
        ref = publish_object("codec-test", obj)
        assert isinstance(ref, ShmRef)
        assert len(live_segments()) == 1
        got, _fresh = fetch_object(ref)
        np.testing.assert_array_equal(got["xs"], obj["xs"])
        release_object(ref)
        shutdown_arena()
        assert live_segments() == ()

    def test_keyless_publish_dedups_by_content(self):
        shutdown_arena()
        obj = {"xs": np.arange(1000, dtype=np.int64)}
        r1 = publish_object(None, obj)
        r2 = publish_object(None, {"xs": np.arange(1000, dtype=np.int64)})
        assert r1.key.startswith("sha256:")
        assert r2.segment == r1.segment  # same bytes, same segment
        assert len(live_segments()) == 1
        release_object(r1)
        release_object(r2)
        assert live_segments() == ()

    def test_fetch_lost_segment_raises(self):
        shutdown_arena()
        from repro.shm.codec import forget_object

        ref = publish_object("doomed", {"xs": np.arange(1000)})
        arena().discard("doomed")
        forget_object(ref.segment)
        from repro.shm.arena import detach_all

        detach_all()
        with pytest.raises(ShmSegmentLost):
            fetch_object(ref)


# ---------------------------------------------------------------------------
# executor backend parity
# ---------------------------------------------------------------------------
class TestExecutorParity:
    def teardown_method(self):
        shutdown_shared_pools()
        assert live_segments() == ()

    def test_context_broadcast_matches_sync(self):
        items = list(range(12))
        ctx = {"factor": 3}
        with force_executor("sync"):
            want = parallel_map(_scale, items, context=ctx)
        with force_executor("shm"):
            got = parallel_map(_scale, items, 4, context=ctx, context_key="scale3")
        assert got == want

    @pytest.mark.parametrize("mode", ["reference", "fast"])
    @pytest.mark.parametrize("trace", [False, True])
    def test_search_parity_vs_sync(self, mode, trace):
        """The gate invariant: shm produces bit-identical values, stats,
        and ledger charges to sync, under both kernel sets, traced and
        untraced."""
        from repro import obs

        g = _make_graph()
        parent = _spanning_parent(g)
        ctx = (g, parent, 2)
        seeds = [0, 1, 2, 3]

        def run(backend):
            with force_kernels(mode), force_executor(backend):
                if trace:
                    tracer = obs.Tracer(ledger=Ledger())
                    with tracer.activate():
                        out = parallel_map(
                            _search_seed, seeds, 4,
                            context=ctx, context_key=f"parity-{mode}",
                        )
                    tracer.finish()
                    return out
                return parallel_map(
                    _search_seed, seeds, 4,
                    context=ctx, context_key=f"parity-{mode}",
                )

        assert run("shm") == run("sync")

    def test_engine_batch_parity_and_ledger(self):
        g = _make_graph(50, 350)
        seeds = [1, 2, 3]

        def run(backend):
            led = Ledger()
            eng = CutEngine(g, seed=0, ledger=led)
            with force_executor(backend):
                res = eng.min_cut_batch(seeds)
            return [(r.value, dict(r.stats)) for r in res], (led.work, led.depth)

        assert run("shm") == run("sync")

    def test_publication_reused_across_calls(self):
        from repro.obs.counters import CounterRegistry, counting_scope

        ctx = {"factor": 2}
        reg = CounterRegistry()
        with counting_scope(reg), force_executor("shm"):
            parallel_map(_scale, [1, 2], 2, context=ctx, context_key="reuse-k")
            parallel_map(_scale, [3, 4], 2, context=ctx, context_key="reuse-k")
        counts = reg.snapshot()
        assert counts.get("shm.segments_published") == 1.0

    def test_prewarm_returns_backend(self):
        with force_executor("shm"):
            assert prewarm_executor(max_workers=2) == "shm"


# ---------------------------------------------------------------------------
# engine artifacts
# ---------------------------------------------------------------------------
class TestArtifactPublication:
    def teardown_method(self):
        shutdown_shared_pools()
        shutdown_arena()

    def test_to_shm_from_shm_round_trip(self):
        g = _make_graph(40, 250)
        eng = CutEngine(g, seed=0)
        eng.min_cut()
        forest = eng._forest(Ledger())
        index = eng._indexed(Ledger())
        ref_f, ref_i = forest.to_shm(), index.to_shm()
        assert len(live_segments()) == 2
        back_f = PackedForest.from_shm(ref_f)
        back_i = TreeIndex.from_shm(ref_i)
        assert back_f.fingerprint == forest.fingerprint
        assert back_i.num_trees == index.num_trees
        for a, b in zip(back_i.tree_parents, index.tree_parents):
            np.testing.assert_array_equal(a, b)
        release_object(ref_f)
        release_object(ref_i)
        assert live_segments() == ()

    def test_republish_reuses_segment(self):
        g = _make_graph(40, 250)
        eng = CutEngine(g, seed=0)
        eng.min_cut()
        forest = eng._forest(Ledger())
        r1 = forest.to_shm()
        r2 = forest.to_shm()
        assert r2.segment == r1.segment
        assert len(live_segments()) == 1
        release_object(r1)
        release_object(r2)
        assert live_segments() == ()

    def test_from_shm_type_mismatch(self):
        g = _make_graph(40, 250)
        eng = CutEngine(g, seed=0)
        eng.min_cut()
        forest = eng._forest(Ledger())
        ref = forest.to_shm()
        with pytest.raises(TypeError):
            TreeIndex.from_shm(ref)
        release_object(ref)


# ---------------------------------------------------------------------------
# sharded flat2d queries
# ---------------------------------------------------------------------------
class TestShardedQueries:
    def teardown_method(self):
        shutdown_shared_pools()
        assert live_segments() == ()

    def test_plan_shards_covers_and_floors(self):
        assert plan_shards(0, 4) == []
        assert plan_shards(100, 4) == [(0, 100)]  # below the 256 floor
        ranges = plan_shards(1000, 3)
        assert ranges[0][0] == 0 and ranges[-1][1] == 1000
        assert all(hi - lo >= 256 for lo, hi in ranges)
        joined = [x for lo, hi in ranges for x in range(lo, hi)]
        assert joined == list(range(1000))

    def test_sharded_matches_whole_batch(self):
        rng = np.random.default_rng(5)
        n = 400
        xs = rng.integers(0, 1000, n)
        ys = rng.integers(0, 1000, n)
        ws = rng.random(n)
        tree = FlatRangeTree2D(xs, ys, ws)
        q = 1200
        x1 = rng.integers(0, 500, q)
        x2 = x1 + rng.integers(0, 500, q)
        y1 = rng.integers(0, 500, q)
        y2 = y1 + rng.integers(0, 500, q)
        want = tree.query_many(x1, x2, y1, y2)
        for backend in ("sync", "thread", "shm"):
            with force_executor(backend):
                got = sharded_query_many(
                    tree, x1, x2, y1, y2, shards=4, max_workers=4,
                    context_key=f"shard-{backend}",
                )
            for w, g in zip(want, got):
                np.testing.assert_array_equal(w, g)


# ---------------------------------------------------------------------------
# fault injection + leaks
# ---------------------------------------------------------------------------
class TestFaultsAndLeaks:
    def teardown_method(self):
        shutdown_shared_pools()
        shutdown_arena()

    def test_segment_lost_without_retry_raises(self):
        plan = FaultPlan([Fault(SITE_SHM_SEGMENT_LOST, index=0)])
        with force_executor("shm"), inject(plan):
            with pytest.raises(ShmSegmentLost):
                parallel_map(_scale, [1, 2], 2,
                             context={"factor": 2}, context_key="lost-a")
        assert plan.exhausted
        assert live_segments() == ()  # the lost segment was discarded

    def test_segment_lost_retry_republishes(self):
        plan = FaultPlan([Fault(SITE_SHM_SEGMENT_LOST, index=0)])
        with force_executor("shm"), inject(plan):
            out = parallel_map(_scale, [1, 2], 2, retries=1,
                               context={"factor": 2}, context_key="lost-b")
        assert out == [2, 4]
        assert plan.exhausted

    def test_canonical_plan_fires(self):
        plan = canonical_plans(seed=0)["shm_segment_lost"]
        with force_executor("shm"), inject(plan):
            out = parallel_map(_scale, [1, 2], 2, retries=1,
                               context={"factor": 3}, context_key="lost-c")
        assert out == [3, 6]
        assert plan.fired == [(SITE_SHM_SEGMENT_LOST, 0)]

    def test_supervisor_degrades_shm_to_process(self):
        from tests.test_supervisor import FakeClock

        sup = Supervisor(clock=FakeClock(), jitter=0.0)
        plan = FaultPlan([Fault(SITE_SHM_SEGMENT_LOST, index=0)])
        with force_executor("shm"), supervised_scope(sup), inject(plan):
            out = parallel_map(_scale, [1, 2], 2, retries=1,
                               context={"factor": 2}, context_key="lost-d")
        assert out == [2, 4]
        assert sup.health["shm"].failures == 1
        assert [(e.backend_from, e.backend_to) for e in sup.events] == [
            ("shm", "process")
        ]

    def test_no_leak_after_clean_shutdown(self):
        with force_executor("shm"):
            parallel_map(_scale, list(range(6)), 2,
                         context={"factor": 5}, context_key="leak-a")
        assert len(live_segments()) == 1  # cached for reuse while pools live
        shutdown_shared_pools()
        assert live_segments() == ()

    def test_no_leak_after_worker_death(self):
        """A SIGKILLed worker breaks the pool mid-dispatch; the parent
        still owns every segment and tears them all down."""
        from concurrent.futures import BrokenExecutor

        from repro.errors import BranchErrors

        with force_executor("shm"):
            with pytest.raises((BrokenExecutor, BranchErrors, OSError)):
                parallel_map(_die, [1, 2], 2,
                             context={"factor": 1}, context_key="leak-b")
            # recovery on a fresh dispatch still works
            out = parallel_map(_scale, [7], 2,
                               context={"factor": 2}, context_key="leak-b2")
        assert out == [14]
        shutdown_shared_pools()
        assert live_segments() == ()

    def test_segments_freed_when_lru_cap_overflows(self):
        import repro.pram.executor as ex

        with force_executor("shm"):
            for i in range(ex._SHM_REF_CAP + 3):
                parallel_map(_scale, [i], 2,
                             context={"factor": i}, context_key=f"lru-{i}")
            assert len(live_segments()) <= ex._SHM_REF_CAP
        shutdown_shared_pools()
        assert live_segments() == ()
