"""The staged CutEngine: parity with the one-shot pipeline, artifact
caching, batch fan-out, and weight-only updates.

The headline suite is the parity matrix: across executor backends ×
kernel modes × tracing, a cold ``CutEngine.min_cut()`` must be
bit-identical — value, side bytes, stats dict, ledger work/depth, and
per-phase records — to seed-state :func:`repro.minimum_cut` with the
same inputs.
"""

import numpy as np
import pytest

import repro
from repro.engine import (
    ArtifactCache,
    CutEngine,
    PackedForest,
    TreeIndex,
    combine_fingerprint,
    graph_fingerprint,
)
from repro.errors import InvalidParameterError
from repro.graphs import Graph, random_connected_graph
from repro.kernels import force_kernels
from repro.obs import CounterRegistry, counting_scope
from repro.pram.executor import force_executor
from repro.pram.ledger import Ledger


@pytest.fixture
def graph():
    return random_connected_graph(48, 150, rng=12, max_weight=5)


def _phases(ledger):
    return {n: (p.work, p.depth) for n, p in ledger._phases.items()}


def _assert_same_result(a, b):
    assert a.value == b.value
    assert np.array_equal(np.asarray(a.side), np.asarray(b.side))
    assert dict(a.stats) == dict(b.stats)


class TestColdParity:
    """Engine one-shot ≡ minimum_cut, bit for bit."""

    @pytest.mark.parametrize("backend", ["sync", "thread", "process"])
    @pytest.mark.parametrize("kernels", ["reference", "fast"])
    @pytest.mark.parametrize("trace", [False, True])
    def test_matrix(self, graph, backend, kernels, trace):
        with force_executor(backend), force_kernels(kernels):
            led_direct = Ledger()
            direct = repro.minimum_cut(
                graph,
                rng=np.random.default_rng(21),
                ledger=led_direct,
                trace=trace,
            )
            led_engine = Ledger()
            engine = CutEngine(graph, seed=21, ledger=led_engine)
            via_engine = engine.min_cut(trace=trace)
        _assert_same_result(direct, via_engine)
        assert (led_direct.work, led_direct.depth) == (
            led_engine.work,
            led_engine.depth,
        )
        assert _phases(led_direct) == _phases(led_engine)
        if trace:
            assert via_engine.report is not None

    def test_shared_rng_matches_seed(self, graph):
        # passing rng= consumes the stream exactly like minimum_cut does
        direct = repro.minimum_cut(graph, rng=np.random.default_rng(5))
        via = CutEngine(graph, rng=np.random.default_rng(5)).min_cut()
        _assert_same_result(direct, via)

    @pytest.mark.parametrize(
        "knobs",
        [
            {"max_trees": None, "decomposition": "bough"},
            {"epsilon": 0.3},
            {"packing_iterations": 12},
            {"approx_value": 10.0},
        ],
    )
    def test_knob_parity(self, graph, knobs):
        direct = repro.minimum_cut(graph, rng=np.random.default_rng(3), **knobs)
        via = CutEngine(graph, seed=3, **knobs).min_cut()
        _assert_same_result(direct, via)

    def test_pipeline_bundle_and_conflicts(self, graph):
        pp = repro.CutPipelineParams(decomposition="bough")
        via = CutEngine(graph, seed=3, pipeline=pp).min_cut()
        direct = repro.minimum_cut(graph, rng=np.random.default_rng(3), pipeline=pp)
        _assert_same_result(direct, via)
        with pytest.raises(InvalidParameterError, match="not both"):
            CutEngine(graph, pipeline=pp, decomposition="heavy" if False else "bough")
        with pytest.raises(InvalidParameterError, match="not both"):
            CutEngine(graph, seed=1, rng=np.random.default_rng(1))

    def test_degenerate_inputs(self):
        two = Graph.from_edges(2, [(0, 1, 3.5)])
        assert CutEngine(two, seed=0).min_cut().value == 3.5
        disconnected = Graph.from_edges(4, [(0, 1, 1.0), (2, 3, 1.0)])
        res = CutEngine(disconnected, seed=0).min_cut()
        assert res.value == 0.0
        from repro.errors import GraphFormatError

        with pytest.raises(GraphFormatError):
            CutEngine(Graph.empty(1), seed=0).min_cut()


class TestWarmCache:
    def test_second_query_charges_only_search(self, graph):
        led = Ledger()
        engine = CutEngine(graph, seed=8, ledger=led)
        first = engine.min_cut()
        snap = led.snapshot()
        phases_before = _phases(led)
        second = engine.min_cut()
        _assert_same_result(first, second)
        dw, _ = led.since(snap)
        phases_after = _phases(led)
        # only the per-query search phase moved
        assert phases_after["approximate"] == phases_before["approximate"]
        assert phases_after["skeleton"] == phases_before["skeleton"]
        assert phases_after["greedy-packing"] == phases_before["greedy-packing"]
        search_delta = (
            phases_after["two-respecting"][0] - phases_before["two-respecting"][0]
        )
        assert dw == pytest.approx(search_delta)
        assert dw > 0  # the search itself is still charged

    def test_warm_prebuilds_artifacts(self, graph):
        cache = ArtifactCache()
        engine = CutEngine(graph, seed=4, cache=cache).warm()
        assert len(cache) == 4  # validate, approximate, forest, index
        led = Ledger()
        engine.ledger = led
        engine.min_cut()
        assert "approximate" not in _phases(led)

    def test_cache_counters(self, graph):
        reg = CounterRegistry()
        with counting_scope(reg):
            engine = CutEngine(graph, seed=4)
            engine.min_cut()
            engine.min_cut()
        assert reg.get("engine.queries") == 2.0
        assert reg.get("engine.stage_runs") == 4.0
        assert reg.get("engine.cache_hits") >= 4.0
        assert reg.get("engine.cache_misses") == 4.0

    def test_distinct_seeds_do_not_share_artifacts(self, graph):
        cache = ArtifactCache()
        a = CutEngine(graph, seed=1, cache=cache).min_cut()
        b = CutEngine(graph, seed=2, cache=cache).min_cut()
        assert len(cache) >= 7  # only the validate artifact is shared
        assert a.value == b.value  # both exact w.h.p.

    def test_param_change_invalidates_deterministically(self, graph):
        cache = ArtifactCache()
        CutEngine(graph, seed=1, cache=cache).min_cut()
        n = len(cache)
        # a query-stage knob (max_trees) misses only the index stage —
        # plus the result memo that rides on the index fingerprint
        CutEngine(graph, seed=1, max_trees=4, cache=cache).min_cut()
        assert len(cache) == n + 2


class TestArtifactCacheBounds:
    def test_lru_entry_bound(self):
        cache = ArtifactCache(max_entries=2)
        for i in range(4):
            cache.put("s", str(i), TreeIndex(str(i)))
        assert len(cache) == 2
        assert ("s", "3") in cache and ("s", "2") in cache
        assert cache.stats["evictions"] == 2

    def test_byte_bound_keeps_latest(self, graph):
        engine = CutEngine(graph, seed=0)
        engine.warm()
        forest = engine.cache.get("forest", engine._fp_forest)
        assert isinstance(forest, PackedForest)
        small = ArtifactCache(max_bytes=max(1, forest.nbytes // 2))
        small.put("forest", "a", forest)
        # an artifact larger than the whole budget is stored alone
        assert ("forest", "a") in small
        small.put("forest", "b", forest)
        assert ("forest", "b") in small and ("forest", "a") not in small

    def test_invalidate(self, graph):
        engine = CutEngine(graph, seed=0).warm()
        assert engine.cache.invalidate("index") == 1
        assert engine.cache.invalidate() == 3
        assert len(engine.cache) == 0
        # next query rebuilds everything
        assert engine.min_cut().value > 0

    def test_validates_bounds(self):
        with pytest.raises(InvalidParameterError):
            ArtifactCache(max_entries=0)
        with pytest.raises(InvalidParameterError):
            ArtifactCache(max_bytes=0)

    def test_fingerprints_change_with_inputs(self, graph):
        fp = graph_fingerprint(graph)
        w = graph.w.copy()
        w[0] += 1.0
        assert graph_fingerprint(graph.with_weights(w)) != fp
        assert combine_fingerprint("a", 1) != combine_fingerprint("a", 2)


class TestBatch:
    @pytest.mark.parametrize("backend", ["sync", "thread", "process"])
    def test_batch_values_exact(self, graph, backend):
        truth = repro.minimum_cut(graph, rng=np.random.default_rng(0)).value
        with force_executor(backend):
            results = CutEngine(graph, seed=0).min_cut_batch(range(6))
        assert len(results) == 6
        for r in results:
            assert r.value == pytest.approx(truth)

    def test_batch_preprocesses_once(self, graph):
        # batch of 8: approximate/skeleton/greedy-packing phase charges
        # equal a single cold run's — preprocessing ran exactly once
        led_single = Ledger()
        repro.minimum_cut(graph, rng=np.random.default_rng(13), ledger=led_single)
        single = _phases(led_single)

        led_batch = Ledger()
        CutEngine(graph, seed=13, ledger=led_batch).min_cut_batch(range(8))
        batch = _phases(led_batch)
        for ph in ("approximate", "skeleton", "greedy-packing"):
            assert batch[ph] == single[ph], ph

    def test_warm_batch_charges_no_preprocessing(self, graph):
        led = Ledger()
        engine = CutEngine(graph, seed=13, ledger=led).warm()
        before = _phases(led)
        engine.min_cut_batch(range(8))
        after = _phases(led)
        for ph in ("approximate", "skeleton", "greedy-packing"):
            assert after[ph] == before[ph], ph
        # and the searches were absorbed as one parallel round:
        # depth grows by a max, work by a sum
        assert led.work > sum(w for w, _ in before.values())

    def test_batch_deterministic_per_seed(self, graph):
        a = CutEngine(graph, seed=2).min_cut_batch([5, 6])
        b = CutEngine(graph, seed=2).min_cut_batch([5, 6])
        for x, y in zip(a, b):
            _assert_same_result(x, y)

    def test_empty_batch(self, graph):
        assert CutEngine(graph, seed=0).min_cut_batch([]) == []

    def test_batch_on_disconnected_graph(self):
        g = Graph.from_edges(4, [(0, 1, 1.0), (2, 3, 1.0)])
        results = CutEngine(g, seed=0).min_cut_batch(range(3))
        assert [r.value for r in results] == [0.0, 0.0, 0.0]

    def test_batch_trace_attaches_report(self, graph):
        results = CutEngine(graph, seed=0).min_cut_batch([1, 2], trace=True)
        assert all(r.report is not None for r in results)


def _reweight(engine, weights, **kwargs):
    # the historical weight-only contract tests, spelled through the
    # engine's one mutation surface (max_staleness=None matches the old
    # weight-only semantics: only the coverage trigger can rebase)
    kwargs.setdefault("max_staleness", None)
    return engine.update(reweight=weights, **kwargs).result


class TestReweight:
    def test_requery_shim_is_gone(self, graph):
        # the one-release deprecation runway expired with the durable
        # state release; the spelling now fails loudly
        assert not hasattr(CutEngine(graph, seed=7), "requery")

    def test_scaled_weights_track_value(self, graph):
        from repro.arena.solvers import stoer_wagner

        engine = CutEngine(graph, seed=7)
        engine.min_cut()
        w = graph.w * 1.25
        res = _reweight(engine, w)
        assert dict(res.stats)["update"] == 1.0
        truth = stoer_wagner(graph.with_weights(w, drop_zero=False))
        assert res.value == pytest.approx(truth.value)

    def test_sparse_update_spelling(self, graph):
        engine = CutEngine(graph, seed=7)
        base = engine.min_cut()
        res = _reweight(engine, {0: float(graph.w[0])})  # no-op update
        assert res.value == pytest.approx(base.value)

    def test_reweight_reuses_packed_trees(self, graph):
        led = Ledger()
        engine = CutEngine(graph, seed=7, ledger=led)
        engine.min_cut()
        before = _phases(led)
        _reweight(engine, graph.w * 1.01)
        after = _phases(led)
        for ph in ("approximate", "skeleton", "greedy-packing"):
            assert after[ph] == before[ph], ph

    def test_large_perturbation_rebases(self, graph):
        from repro.arena.solvers import stoer_wagner

        reg = CounterRegistry()
        engine = CutEngine(graph, seed=7)
        engine.min_cut()
        w = graph.w * 100.0
        with counting_scope(reg):
            res = _reweight(engine, w)
        assert reg.get("engine.rebases") == 1.0
        assert dict(res.stats)["rebased"] == 1.0
        truth = stoer_wagner(graph.with_weights(w, drop_zero=False))
        assert res.value == pytest.approx(truth.value)

    def test_zero_weight_rejected(self, graph):
        # the Graph contract (positive weights) covers reweighting too;
        # edge removal is remove_edges, not a zero weight
        from repro.errors import GraphFormatError

        engine = CutEngine(graph, seed=7)
        engine.min_cut()
        w = graph.w.copy()
        w[0] = 0.0
        with pytest.raises(GraphFormatError):
            _reweight(engine, w)


class TestReweightNoop:
    """An all-zero-delta perturbation is a pure cache hit: no search, no
    ledger charge, and no rebase-threshold accounting drift."""

    def test_zero_delta_is_pure_cache_hit(self, graph):
        reg = CounterRegistry()
        led = Ledger()
        engine = CutEngine(graph, seed=7, ledger=led)
        base = engine.min_cut()
        before = _phases(led)
        work_before, depth_before = led.work, led.depth
        with counting_scope(reg):
            res_empty = _reweight(engine, {})  # empty sparse mapping
            res_same = _reweight(engine, graph.w.copy())  # identical full vector
            # a threshold this tight would force a rebase on any result
            # that actually re-ran the threshold accounting
            res_tight = _reweight(engine, {}, rebase_threshold=1e-9)
        for res in (res_empty, res_same, res_tight):
            assert res.value == base.value
            assert dict(res.stats)["update"] == 1.0
            assert "rebased" not in dict(res.stats)
        assert reg.get("engine.update_noops") == 3.0
        assert reg.get("engine.rebases") == 0.0
        # nothing was recomputed: the ledger did not move at all
        assert _phases(led) == before
        assert (led.work, led.depth) == (work_before, depth_before)

    def test_noop_before_any_query_still_answers(self, graph):
        # no memoized result yet: the no-op path falls back to min_cut()
        engine = CutEngine(graph, seed=7)
        res = _reweight(engine, {})
        assert dict(res.stats)["update"] == 1.0
        assert res.value == CutEngine(graph, seed=7).min_cut().value


class TestArtifactCacheThreadSafety:
    def test_concurrent_hammer_keeps_invariants(self):
        import threading

        cache = ArtifactCache(max_entries=8, max_bytes=1 << 16)
        stop = threading.Event()
        errors = []

        def worker(wid):
            rng = np.random.default_rng(wid)
            try:
                for _ in range(500):
                    key = int(rng.integers(0, 32))
                    stage = ("forest", "index")[key % 2]
                    fp = f"fp{key}"
                    roll = rng.random()
                    if roll < 0.55:
                        cache.put(stage, fp, np.zeros(int(rng.integers(1, 64))))
                    elif roll < 0.90:
                        got = cache.get(stage, fp)
                        if got is not None:
                            assert isinstance(got, np.ndarray)
                    elif roll < 0.95:
                        assert (stage, fp) in cache or True  # __contains__ race-free
                    else:
                        cache.invalidate(stage if key % 3 else None)
                    assert len(cache) <= cache.max_entries
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)
                stop.set()

        threads = [
            threading.Thread(target=worker, args=(w,), name=f"hammer-{w}")
            for w in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors, errors
        assert len(cache) <= cache.max_entries
        assert 0 <= cache.current_bytes <= cache.max_bytes
