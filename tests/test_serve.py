"""The cut-serving daemon: protocol framing, tenancy, admission
control, deadline shedding, fault injection, and both front ends.

The pivotal invariant (docs/service.md): every request the service
accepts receives exactly one well-formed typed response — ``result``,
``retry_after``, ``deadline_exceeded``, or ``error`` — under load,
under deadline pressure, and under every injected ``serve.*`` fault.
"""

import asyncio
import json
import socket
import struct
import threading
import time

import numpy as np
import pytest

from repro.engine import CutEngine
from repro.graphs import random_connected_graph
from repro.resilience.faults import (
    SERVICE_SITES,
    SITE_SERVE_ACCEPT_DROP,
    SITE_SERVE_HANDLER_CRASH,
    SITE_SERVE_QUEUE_STALL,
    SITE_SERVE_SLOW_CLIENT,
    Fault,
    FaultPlan,
)
from repro.serve import (
    BUDGET_CLASSES,
    CutService,
    InProcServer,
    ProtocolError,
    RetryAfter,
    ServerConfig,
    ServiceClient,
    TenantQuota,
    TenantRegistry,
    ThreadedTCPServer,
    UnknownGraph,
    UnknownTenant,
    well_formed,
)
from repro.serve.admission import Admitted, AdmissionQueue
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    deadline_response,
    decode_payload,
    encode_frame,
    error_response,
    ok_response,
    retry_after_response,
)

SEED = 11


@pytest.fixture(scope="module")
def graph():
    return random_connected_graph(24, 60, rng=5, max_weight=5)


@pytest.fixture(scope="module")
def edges(graph):
    return [[int(u), int(v), float(w)] for u, v, w in graph.edges()]


@pytest.fixture(scope="module")
def exact(graph):
    return CutEngine(graph, seed=SEED).min_cut().value


def _register(server, graph, edges, *, tenant="t", name="g", **tenant_kwargs):
    server.request({"op": "register_tenant", "tenant": tenant, **tenant_kwargs})
    server.request(
        {
            "op": "register_graph",
            "tenant": tenant,
            "graph": name,
            "n": graph.n,
            "edges": edges,
            "seed": SEED,
        }
    )


def _wait_until(predicate, timeout=10.0, interval=0.005):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


# ---------------------------------------------------------------------------
# protocol
# ---------------------------------------------------------------------------
class TestProtocol:
    def test_frame_round_trip(self):
        payload = {"op": "ping", "id": 42, "nested": {"x": [1, 2.5, "s"]}}
        frame = encode_frame(payload, MAX_FRAME_BYTES)
        (length,) = struct.unpack(">I", frame[:4])
        assert length == len(frame) - 4
        assert decode_payload(frame[4:]) == payload

    def test_oversized_frame_rejected_on_encode(self):
        with pytest.raises(ProtocolError):
            encode_frame({"blob": "x" * 128}, 16)

    def test_decode_rejects_garbage(self):
        with pytest.raises(ProtocolError):
            decode_payload(b"definitely not json")

    def test_decode_rejects_non_object(self):
        with pytest.raises(ProtocolError):
            decode_payload(b'[1, 2, 3]')

    @pytest.mark.parametrize(
        "resp",
        [
            ok_response(1, value=2.0),
            retry_after_response(1, retry_after_ms=50, reason="queue_full"),
            deadline_response(1, shed="queued", message="expired"),
            deadline_response(1, shed="inflight", message="expired"),
            error_response(1, code="bad_request", message="nope"),
        ],
    )
    def test_builders_are_well_formed(self, resp):
        assert well_formed(resp, 1, check_id=True)

    def test_well_formed_rejects_violations(self):
        assert not well_formed("not a dict")
        assert not well_formed({"type": "surprise", "ok": True})
        # ok flag must agree with the type
        assert not well_formed({**ok_response(1, value=1.0), "ok": False})
        assert not well_formed({**error_response(1, code="x", message="m"), "ok": True})
        # retry_after needs an integer hint
        bad = retry_after_response(1, retry_after_ms=50, reason="queue_full")
        assert not well_formed({**bad, "retry_after_ms": "soon"})
        # deadline_exceeded needs a known shed stage
        expired = deadline_response(1, shed="queued", message="expired")
        assert not well_formed({**expired, "shed": "later"})
        # id echo enforced only when asked
        resp = ok_response(7, value=1.0)
        assert well_formed(resp, 8)
        assert not well_formed(resp, 8, check_id=True)


# ---------------------------------------------------------------------------
# admission queue
# ---------------------------------------------------------------------------
class TestAdmissionQueue:
    def _item(self):
        loop = asyncio.new_event_loop()
        try:
            fut = loop.create_future()
        finally:
            loop.close()
        return Admitted(request={"op": "x"}, future=fut, tenant=None, deadline_at=1.0)

    def test_bounded_and_non_blocking(self):
        q = AdmissionQueue(2)
        assert q.try_put(self._item())
        assert q.try_put(self._item())
        assert not q.try_put(self._item())  # full: rejected, never blocks
        assert q.qsize() == 2
        assert q.stats()["high_water"] == 2.0

    def test_retry_hint_scales_with_backlog_and_clamps(self):
        q = AdmissionQueue(64)
        q.ewma_service_s = 0.1
        empty = q.retry_after_ms()
        q.try_put(self._item())
        q.try_put(self._item())
        assert q.retry_after_ms() > empty
        q.ewma_service_s = 1e-9
        assert q.retry_after_ms() == 10  # floor
        q.ewma_service_s = 1e9
        assert q.retry_after_ms() == 10_000  # ceiling

    def test_ewma_folds_observations(self):
        q = AdmissionQueue(4)
        before = q.ewma_service_s
        q.observe_service_time(1.0)
        assert before < q.ewma_service_s < 1.0

    def test_depth_validated(self):
        from repro.errors import InvalidParameterError

        with pytest.raises(InvalidParameterError):
            AdmissionQueue(0)


# ---------------------------------------------------------------------------
# tenancy
# ---------------------------------------------------------------------------
class TestTenancy:
    def test_budget_classes_cover_contract(self):
        assert set(BUDGET_CLASSES) == {"interactive", "standard", "batch"}
        for cls in BUDGET_CLASSES.values():
            assert 0 < cls.default_deadline_s <= cls.max_deadline_s
            assert cls.max_inflight >= 1

    def test_unknown_tenant_and_graph_are_typed(self, graph):
        reg = TenantRegistry("standard")
        with pytest.raises(UnknownTenant):
            reg.get("ghost")
        tenant = reg.register("t", TenantQuota())
        with pytest.raises(UnknownGraph):
            tenant.engine("ghost")

    def test_quota_validates_budget_class(self):
        from repro.errors import InvalidParameterError

        with pytest.raises(InvalidParameterError):
            TenantQuota(budget_class="platinum")

    def test_max_graphs_quota_enforced(self, graph):
        from repro.errors import InvalidParameterError

        reg = TenantRegistry("standard")
        tenant = reg.register("t", TenantQuota(max_graphs=2))
        tenant.register_graph("a", graph, seed=1)
        tenant.register_graph("b", graph, seed=1)
        tenant.register_graph("a", graph, seed=2)  # rebinding is not growth
        with pytest.raises(InvalidParameterError):
            tenant.register_graph("c", graph, seed=1)

    def test_tenant_cache_is_shared_across_graphs(self, graph):
        reg = TenantRegistry("standard")
        tenant = reg.register("t", TenantQuota(cache_entries=8))
        e1 = tenant.register_graph("a", graph, seed=1)
        e2 = tenant.register_graph("b", graph, seed=2)
        assert e1.cache is e2.cache
        assert e1.cache.max_entries == 8


# ---------------------------------------------------------------------------
# end-to-end over the in-process front end
# ---------------------------------------------------------------------------
class TestInProcEndToEnd:
    def test_lifecycle_and_parity(self, graph, edges, exact):
        with InProcServer(ServerConfig(queue_depth=8, workers=2)) as srv:
            assert srv.request({"op": "ping", "id": 1})["pong"] is True
            _register(srv, graph, edges)
            resp = srv.request({"op": "min_cut", "tenant": "t", "graph": "g", "id": 2})
            assert well_formed(resp, 2, check_id=True)
            assert resp["type"] == "result"
            # served value ≡ a direct engine query with the same seed
            assert resp["value"] == exact
            # warm repeat agrees
            again = srv.request({"op": "min_cut", "tenant": "t", "graph": "g"})
            assert again["value"] == exact

    def test_noop_update_and_batch(self, graph, edges, exact):
        with InProcServer(ServerConfig(queue_depth=8, workers=2)) as srv:
            _register(srv, graph, edges)
            srv.request({"op": "min_cut", "tenant": "t", "graph": "g"})
            rq = srv.request(
                {"op": "update", "tenant": "t", "graph": "g", "reweight": {}}
            )
            assert rq["type"] == "result" and rq["noop"] is True
            assert rq["value"] == exact
            batch = srv.request(
                {"op": "min_cut_batch", "tenant": "t", "graph": "g",
                 "seeds": [1, 2, 3]}
            )
            assert batch["type"] == "result"
            direct = [
                r.value
                for r in CutEngine(graph, seed=SEED).min_cut_batch([1, 2, 3])
            ]
            assert batch["values"] == direct

    def test_return_side_is_a_valid_cut(self, graph, edges, exact):
        with InProcServer(ServerConfig()) as srv:
            _register(srv, graph, edges)
            resp = srv.request(
                {"op": "min_cut", "tenant": "t", "graph": "g", "return_side": True}
            )
            side = resp["side"]
            assert 0 < len(side) <= graph.n // 2
            mask = np.zeros(graph.n, dtype=bool)
            mask[side] = True
            crossing = mask[graph.u] != mask[graph.v]
            assert float(graph.w[crossing].sum()) == pytest.approx(resp["value"])

    def test_typed_errors(self, graph, edges):
        with InProcServer(ServerConfig()) as srv:
            _register(srv, graph, edges)
            cases = [
                ({"op": "min_cut", "tenant": "ghost", "graph": "g"}, "UnknownTenant"),
                ({"op": "min_cut", "tenant": "t", "graph": "ghost"}, "UnknownGraph"),
                ({"op": "frobnicate"}, "unknown_op"),
                ({"op": "_stall", "tenant": "t"}, "unknown_op"),  # debug op off
                ({"op": "min_cut", "tenant": "t"}, "bad_request"),  # graph missing
                # the deprecated requery op's runway expired in v3
                ({"op": "requery", "tenant": "t", "graph": "g",
                  "weights": {}}, "unknown_op"),
                ({"op": "update", "tenant": "t", "graph": "g"}, "bad_request"),
                ({"op": "min_cut_batch", "tenant": "t", "graph": "g",
                  "seeds": []}, "bad_request"),
                ({"op": "min_cut_batch", "tenant": "t", "graph": "g",
                  "seeds": list(range(100))}, "bad_request"),  # over MAX_BATCH
            ]
            for request, code in cases:
                resp = srv.request(request)
                assert well_formed(resp), (request, resp)
                assert resp["type"] == "error", (request, resp)
                assert resp["error"] == code, (request, resp)

    def test_non_dict_and_non_string_op_rejected(self):
        with InProcServer(ServerConfig()) as srv:
            for bad in (["op"], {"op": 7}, {"no_op": "x"}):
                resp = srv.request(bad)
                assert resp["type"] == "error" and resp["error"] == "bad_request"

    def test_metrics_exposes_counters_queue_and_tenants(self, graph, edges):
        with InProcServer(ServerConfig(queue_depth=8, workers=2)) as srv:
            _register(srv, graph, edges)
            srv.request({"op": "min_cut", "tenant": "t", "graph": "g"})
            m = srv.request({"op": "metrics"})
            assert well_formed(m)
            counters = m["counters"]
            assert counters["serve.admitted"] == 1.0
            assert counters["serve.completed"] == 1.0
            assert counters["serve.op.min_cut"] == 1.0
            assert counters["serve.tenants_registered"] == 1.0
            assert counters["serve.graphs_registered"] == 1.0
            # engine counters flow into the same registry
            assert counters.get("engine.queries", 0.0) >= 1.0
            assert m["queue"]["depth"] == 8.0
            tinfo = m["tenants"]["t"]
            assert tinfo["graphs"] == 1 and tinfo["inflight"] == 0
            assert tinfo["cache"]["entries"] >= 1.0
            # 'stats' is an alias
            assert srv.request({"op": "stats"})["counters"]

    def test_shutdown_op_gated_by_config(self, graph, edges):
        with InProcServer(ServerConfig(allow_shutdown=False)) as srv:
            resp = srv.request({"op": "shutdown"})
            assert resp["type"] == "error" and resp["error"] == "forbidden"


# ---------------------------------------------------------------------------
# admission control: backpressure, inflight limits, shedding
# ---------------------------------------------------------------------------
class TestAdmissionControl:
    def _spawn(self, srv, request, timeout=30.0):
        box = {}

        def call():
            box["resp"] = srv.request(request, timeout=timeout)

        t = threading.Thread(target=call)
        t.start()
        return t, box

    def test_queue_full_returns_retry_after(self, graph, edges):
        cfg = ServerConfig(queue_depth=1, workers=1, debug_ops=True)
        with InProcServer(cfg) as srv:
            _register(srv, graph, edges, budget_class="interactive")
            # one _stall on the worker, one in the only queue slot
            t1, b1 = self._spawn(
                srv, {"op": "_stall", "tenant": "t", "seconds": 1.0}
            )
            assert _wait_until(lambda: srv.service.queue.qsize() == 0
                               and srv.service.tenants.get("t").inflight == 1)
            t2, b2 = self._spawn(
                srv, {"op": "_stall", "tenant": "t", "seconds": 0.0}
            )
            assert _wait_until(lambda: srv.service.queue.qsize() == 1)
            resp = srv.request({"op": "min_cut", "tenant": "t", "graph": "g"})
            assert well_formed(resp)
            assert resp["type"] == "retry_after"
            assert resp["reason"] == "queue_full"
            assert resp["retry_after_ms"] >= 10
            # control plane still answers while saturated
            assert srv.request({"op": "ping"})["pong"] is True
            t1.join(30)
            t2.join(30)
            assert b1["resp"]["type"] == "result"
            assert b2["resp"]["type"] == "result"
            m = srv.request({"op": "metrics"})
            assert m["counters"]["serve.rejected_queue_full"] == 1.0

    def test_tenant_inflight_limit(self, graph, edges):
        cfg = ServerConfig(queue_depth=16, workers=1, debug_ops=True)
        with InProcServer(cfg) as srv:
            # batch class: max_inflight = 4
            _register(srv, graph, edges, budget_class="batch")
            limit = BUDGET_CLASSES["batch"].max_inflight
            spawned = [
                self._spawn(srv, {"op": "_stall", "tenant": "t", "seconds": 1.0})
                for _ in range(limit)
            ]
            assert _wait_until(
                lambda: srv.service.tenants.get("t").inflight == limit
            )
            resp = srv.request({"op": "min_cut", "tenant": "t", "graph": "g"})
            assert resp["type"] == "retry_after"
            assert resp["reason"] == "tenant_inflight"
            for t, box in spawned:
                t.join(60)
                assert box["resp"]["type"] == "result"
            # inflight drains back to zero
            assert srv.service.tenants.get("t").inflight == 0

    def test_deadline_shed_while_queued(self, graph, edges):
        cfg = ServerConfig(queue_depth=4, workers=1, debug_ops=True)
        with InProcServer(cfg) as srv:
            _register(srv, graph, edges)
            t1, b1 = self._spawn(
                srv, {"op": "_stall", "tenant": "t", "seconds": 1.0}
            )
            assert _wait_until(lambda: srv.service.tenants.get("t").inflight == 1
                               and srv.service.queue.qsize() == 0)
            # expires long before the worker frees up
            resp = srv.request(
                {"op": "min_cut", "tenant": "t", "graph": "g", "deadline_ms": 50}
            )
            assert well_formed(resp)
            assert resp["type"] == "deadline_exceeded"
            assert resp["shed"] == "queued"
            t1.join(30)
            m = srv.request({"op": "metrics"})
            assert m["counters"]["serve.shed_queued"] == 1.0

    def test_deadline_shed_inflight_at_checkpoint(self, graph, edges):
        cfg = ServerConfig(queue_depth=4, workers=1, debug_ops=True)
        with InProcServer(cfg) as srv:
            _register(srv, graph, edges)
            t0 = time.monotonic()
            resp = srv.request(
                {"op": "_stall", "tenant": "t", "seconds": 30.0, "deadline_ms": 300}
            )
            elapsed = time.monotonic() - t0
            assert well_formed(resp)
            assert resp["type"] == "deadline_exceeded"
            assert resp["shed"] == "inflight"
            # cancelled cooperatively at a checkpoint, not after 30 s
            assert elapsed < 10.0
            m = srv.request({"op": "metrics"})
            assert m["counters"]["serve.shed_inflight"] == 1.0

    def test_non_positive_deadline_shed_immediately(self, graph, edges):
        with InProcServer(ServerConfig()) as srv:
            _register(srv, graph, edges)
            resp = srv.request(
                {"op": "min_cut", "tenant": "t", "graph": "g", "deadline_ms": 0}
            )
            assert resp["type"] == "deadline_exceeded"
            assert resp["shed"] == "queued"


class TestDeadlinePolicy:
    """Budget-class deadline clamping, exercised on the service core
    with a fake clock (no sleeping, no racing)."""

    class _Clock:
        def __init__(self):
            self.t = 0.0

        def __call__(self):
            return self.t

    def test_deadlines_default_and_clamp(self):
        clock = self._Clock()
        captured = []

        async def main():
            svc = CutService(
                ServerConfig(workers=1, debug_ops=True), clock=clock
            )
            await svc.start()
            svc.tenants.register("t", TenantQuota(budget_class="interactive"))
            original = svc.queue.try_put

            def spy(item):
                captured.append(item.deadline_at)
                return original(item)

            svc.queue.try_put = spy
            r1 = await svc.submit(
                {"op": "_stall", "tenant": "t", "seconds": 0.0,
                 "deadline_ms": 999_999_999}
            )
            r2 = await svc.submit({"op": "_stall", "tenant": "t", "seconds": 0.0})
            await svc.stop()
            return r1, r2

        r1, r2 = asyncio.run(main())
        assert r1["type"] == "result" and r2["type"] == "result"
        cls = BUDGET_CLASSES["interactive"]
        assert captured[0] == pytest.approx(cls.max_deadline_s)  # clamped
        assert captured[1] == pytest.approx(cls.default_deadline_s)  # defaulted

    def test_stopping_service_rejects_with_retry_after(self):
        async def main():
            svc = CutService(ServerConfig(workers=1, debug_ops=True))
            await svc.start()
            svc.tenants.register("t", TenantQuota())
            svc._stopping = True
            resp = await svc.submit(
                {"op": "_stall", "tenant": "t", "seconds": 0.0}
            )
            svc._stopping = False
            await svc.stop()
            return resp

        resp = asyncio.run(main())
        assert resp["type"] == "retry_after"
        assert resp["reason"] == "shutting_down"


# ---------------------------------------------------------------------------
# fault injection
# ---------------------------------------------------------------------------
class TestServeFaults:
    def test_service_sites_registered(self):
        assert set(SERVICE_SITES) == {
            SITE_SERVE_ACCEPT_DROP,
            SITE_SERVE_QUEUE_STALL,
            SITE_SERVE_HANDLER_CRASH,
            SITE_SERVE_SLOW_CLIENT,
        }

    def test_handler_crash_is_a_typed_error_and_service_survives(
        self, graph, edges, exact
    ):
        plan = FaultPlan(
            faults=(Fault(site=SITE_SERVE_HANDLER_CRASH, at=0),), name="crash"
        )
        with InProcServer(ServerConfig(workers=1), faults=plan) as srv:
            _register(srv, graph, edges)
            first = srv.request({"op": "min_cut", "tenant": "t", "graph": "g"})
            assert well_formed(first)
            assert first["type"] == "error"
            assert first["error"] == "handler_crash"
            # the fault fires once; the daemon keeps serving
            second = srv.request({"op": "min_cut", "tenant": "t", "graph": "g"})
            assert second["type"] == "result" and second["value"] == exact
            m = srv.request({"op": "metrics"})
            assert m["counters"]["serve.fault.handler_crash"] == 1.0
            assert m["counters"]["serve.faults_injected"] == 1.0

    def test_queue_stall_delays_but_answers(self, graph, edges, exact):
        plan = FaultPlan(
            faults=(Fault(site=SITE_SERVE_QUEUE_STALL, at=0, scale=2.0),),
            name="stall",
        )
        with InProcServer(ServerConfig(workers=1), faults=plan) as srv:
            _register(srv, graph, edges)
            resp = srv.request({"op": "min_cut", "tenant": "t", "graph": "g"})
            assert resp["type"] == "result" and resp["value"] == exact


# ---------------------------------------------------------------------------
# the TCP front end
# ---------------------------------------------------------------------------
class TestTCP:
    def test_round_trip_and_client_exceptions(self, graph, edges, exact):
        with ThreadedTCPServer(ServerConfig(port=0, workers=2)) as server:
            with ServiceClient("127.0.0.1", server.port, timeout=30) as client:
                client.call({"op": "register_tenant", "tenant": "t"})
                client.call(
                    {"op": "register_graph", "tenant": "t", "graph": "g",
                     "n": graph.n, "edges": edges, "seed": SEED}
                )
                resp = client.call({"op": "min_cut", "tenant": "t", "graph": "g"})
                assert resp["value"] == exact
                from repro.serve import ServiceError

                with pytest.raises(ServiceError) as ei:
                    client.call({"op": "min_cut", "tenant": "ghost", "graph": "g"})
                assert ei.value.code == "UnknownTenant"

    def test_malformed_frame_gets_bad_request_then_close(self):
        with ThreadedTCPServer(ServerConfig(port=0)) as server:
            with socket.create_connection(
                ("127.0.0.1", server.port), timeout=10
            ) as s:
                s.sendall(struct.pack(">I", 7) + b"notjson")
                resp = self._read_response(s)
                assert resp["type"] == "error"
                assert resp["error"] == "bad_request"
                # server closes after a framing error
                assert s.recv(1) == b""

    def test_oversized_frame_header_rejected(self):
        with ThreadedTCPServer(ServerConfig(port=0)) as server:
            with socket.create_connection(
                ("127.0.0.1", server.port), timeout=10
            ) as s:
                s.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
                resp = self._read_response(s)
                assert resp["type"] == "error" and resp["error"] == "bad_request"

    def test_accept_drop_then_reconnect(self, graph, edges, exact):
        plan = FaultPlan(
            faults=(Fault(site=SITE_SERVE_ACCEPT_DROP, at=0),), name="drop"
        )
        with ThreadedTCPServer(ServerConfig(port=0), faults=plan) as server:
            # first connection is dropped before any frame is read
            with pytest.raises((ProtocolError, ConnectionError, OSError)):
                with ServiceClient("127.0.0.1", server.port, timeout=10) as c:
                    c.request({"op": "ping"})
            # nothing was accepted, so nothing was owed; dial again
            with ServiceClient("127.0.0.1", server.port, timeout=10) as c:
                assert c.call({"op": "ping"})["pong"] is True
            m = server.service._metrics(None)
            assert m["counters"]["serve.accept_drops"] == 1.0

    def test_slow_client_fault_still_answers(self):
        plan = FaultPlan(
            faults=(Fault(site=SITE_SERVE_SLOW_CLIENT, at=0, scale=1.0),),
            name="slow",
        )
        with ThreadedTCPServer(ServerConfig(port=0), faults=plan) as server:
            with ServiceClient("127.0.0.1", server.port, timeout=10) as c:
                assert c.call({"op": "ping"})["pong"] is True

    def test_call_with_retry_honors_backpressure(self, graph, edges):
        cfg = ServerConfig(port=0, queue_depth=1, workers=1, debug_ops=True)
        with ThreadedTCPServer(cfg) as server:
            with ServiceClient("127.0.0.1", server.port, timeout=30) as c:
                c.call({"op": "register_tenant", "tenant": "t"})
                c.call(
                    {"op": "register_graph", "tenant": "t", "graph": "g",
                     "n": graph.n, "edges": edges, "seed": SEED}
                )
                stallers = [
                    ServiceClient("127.0.0.1", server.port, timeout=30).connect()
                    for _ in range(2)
                ]
                threads = []
                try:
                    for sc in stallers:
                        th = threading.Thread(
                            target=sc.request,
                            args=({"op": "_stall", "tenant": "t", "seconds": 0.6},),
                        )
                        th.start()
                        threads.append(th)
                    _wait_until(lambda: server.service.queue.qsize() >= 1)
                    # backpressure resolves within the retry budget
                    resp = c.call_with_retry(
                        {"op": "min_cut", "tenant": "t", "graph": "g"},
                        attempts=30,
                    )
                    assert resp["type"] == "result"
                finally:
                    for th in threads:
                        th.join(30)
                    for sc in stallers:
                        sc.close()

    def test_shutdown_op_stops_the_server(self):
        server = ThreadedTCPServer(ServerConfig(port=0, allow_shutdown=True))
        server.start()
        try:
            with ServiceClient("127.0.0.1", server.port, timeout=10) as c:
                resp = c.request({"op": "shutdown"})
                assert resp["type"] == "result" and resp["stopping"] is True
            assert _wait_until(
                lambda: server.service._shutdown_requested.is_set()
            )
        finally:
            server.stop()

    @staticmethod
    def _read_response(s):
        header = b""
        while len(header) < 4:
            chunk = s.recv(4 - len(header))
            assert chunk, "connection closed before a response"
            header += chunk
        (length,) = struct.unpack(">I", header)
        body = b""
        while len(body) < length:
            chunk = s.recv(length - len(body))
            assert chunk, "connection closed mid-response"
            body += chunk
        return json.loads(body)


# ---------------------------------------------------------------------------
# overload: every accepted request answered, exactly once
# ---------------------------------------------------------------------------
class TestOverloadContract:
    def test_concurrent_storm_all_answered(self, graph, edges, exact):
        cfg = ServerConfig(queue_depth=4, workers=2, debug_ops=True)
        plan = FaultPlan(
            faults=(
                Fault(site=SITE_SERVE_QUEUE_STALL, at=1, scale=1.0),
                Fault(site=SITE_SERVE_HANDLER_CRASH, at=2),
            ),
            name="storm",
        )
        with InProcServer(cfg, faults=plan) as srv:
            _register(srv, graph, edges, budget_class="interactive")
            responses = []
            lock = threading.Lock()

            def fire(i):
                if i % 4 == 3:
                    req = {"op": "min_cut", "tenant": "t", "graph": "g",
                           "deadline_ms": 1, "id": i}
                else:
                    req = {"op": "min_cut", "tenant": "t", "graph": "g", "id": i}
                resp = srv.request(req, timeout=120)
                with lock:
                    responses.append((req, resp))

            threads = [
                threading.Thread(target=fire, args=(i,)) for i in range(24)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
                assert not t.is_alive(), "client thread hung"
            assert len(responses) == 24  # exactly one response each
            for req, resp in responses:
                assert well_formed(resp, req["id"], check_id=True), (req, resp)
                if resp["type"] == "result" and req.get("deadline_ms") is None:
                    assert resp["value"] == exact
            # inflight accounting drained cleanly
            assert srv.service.tenants.get("t").inflight == 0
            assert srv.service.queue.qsize() == 0


# ---------------------------------------------------------------------------
# per-budget-class executor backend
# ---------------------------------------------------------------------------
class TestBackendSelection:
    """Budget classes can pin the executor backend their queries run on
    (batch → shm); an unavailable backend degrades to the ambient
    selection instead of failing the request."""

    def test_batch_class_pins_shm(self):
        assert BUDGET_CLASSES["batch"].executor_backend == "shm"
        assert BUDGET_CLASSES["interactive"].executor_backend is None
        assert BUDGET_CLASSES["standard"].executor_backend is None

    def test_batch_request_runs_on_shm(self, graph, edges, exact):
        pytest.importorskip("numpy")
        from repro.shm import shm_available

        if not shm_available():
            pytest.skip("no usable shared memory on this host")
        with InProcServer(ServerConfig(queue_depth=8, workers=2)) as srv:
            _register(srv, graph, edges, budget_class="batch")
            batch = srv.request(
                {"op": "min_cut_batch", "tenant": "t", "graph": "g",
                 "seeds": [1, 2, 3]}
            )
            assert batch["type"] == "result"
            direct = [
                r.value
                for r in CutEngine(graph, seed=SEED).min_cut_batch([1, 2, 3])
            ]
            assert batch["values"] == direct
            counters = srv.request({"op": "metrics"})["counters"]
            # the fan-out went through the shm backend: the batch context
            # was published into a segment and workers attached it
            assert counters.get("shm.segments_published", 0) >= 1
            assert counters.get("serve.backend_fallbacks", 0) == 0
        from repro.pram.executor import shutdown_shared_pools
        from repro.shm.arena import live_segments

        shutdown_shared_pools()
        assert live_segments() == ()

    def test_unavailable_backend_falls_back(self, graph, edges, exact,
                                            monkeypatch):
        monkeypatch.setattr("repro.shm.shm_available", lambda: False)
        with InProcServer(ServerConfig(queue_depth=8, workers=2)) as srv:
            _register(srv, graph, edges, budget_class="batch")
            batch = srv.request(
                {"op": "min_cut_batch", "tenant": "t", "graph": "g",
                 "seeds": [1, 2]}
            )
            assert batch["type"] == "result"  # degraded, not failed
            counters = srv.request({"op": "metrics"})["counters"]
            assert counters.get("serve.backend_fallbacks", 0) >= 1

    def test_standard_class_leaves_backend_alone(self, graph, edges):
        with InProcServer(ServerConfig(queue_depth=8, workers=2)) as srv:
            _register(srv, graph, edges, budget_class="standard")
            resp = srv.request({"op": "min_cut", "tenant": "t", "graph": "g"})
            assert resp["type"] == "result"
            counters = srv.request({"op": "metrics"})["counters"]
            assert counters.get("serve.backend_fallbacks", 0) == 0
