"""Work-depth ledger semantics (repro.pram.ledger)."""

import pytest

from repro.errors import LedgerError
from repro.pram import NULL_LEDGER, Ledger


class TestCharge:
    def test_initial_state(self):
        led = Ledger()
        assert led.work == 0 and led.depth == 0

    def test_sequential_charges_accumulate(self):
        led = Ledger()
        led.charge(work=5, depth=2)
        led.charge(work=3, depth=1)
        assert led.work == 8
        assert led.depth == 3

    def test_default_depth_is_one(self):
        led = Ledger()
        led.charge(work=7)
        assert led.depth == 1

    def test_zero_charges_allowed(self):
        led = Ledger()
        led.charge(work=0, depth=0)
        assert led.work == 0 and led.depth == 0

    def test_negative_work_rejected(self):
        with pytest.raises(LedgerError):
            Ledger().charge(work=-1)

    def test_negative_depth_rejected(self):
        with pytest.raises(LedgerError):
            Ledger().charge(work=1, depth=-1)


class TestParallel:
    def test_depth_is_max_over_branches(self):
        led = Ledger()
        with led.parallel() as par:
            for d in (3, 7, 2):
                with par.branch():
                    led.charge(work=1, depth=d)
        assert led.depth == 7
        assert led.work == 3

    def test_empty_parallel_region_is_noop(self):
        led = Ledger()
        led.charge(1, 1)
        with led.parallel():
            pass
        assert led.depth == 1

    def test_sequential_after_parallel(self):
        led = Ledger()
        with led.parallel() as par:
            with par.branch():
                led.charge(1, 5)
        led.charge(1, 2)
        assert led.depth == 7

    def test_nested_parallel(self):
        led = Ledger()
        with led.parallel() as outer:
            with outer.branch():
                led.charge(1, 1)
                with led.parallel() as inner:
                    for d in (4, 6):
                        with inner.branch():
                            led.charge(1, d)
                # inner joined at 1 + 6
            with outer.branch():
                led.charge(1, 3)
        assert led.depth == 7
        assert led.work == 4

    def test_branch_after_close_rejected(self):
        led = Ledger()
        with led.parallel() as par:
            pass
        with pytest.raises(LedgerError):
            with par.branch():
                pass

    def test_branches_fork_from_same_time(self):
        led = Ledger()
        led.charge(0, 10)
        with led.parallel() as par:
            with par.branch():
                led.charge(1, 1)
                assert led.depth == 11
            with par.branch():
                assert led.depth == 10  # second branch replays the fork time


class TestBatch:
    def test_batch_pins_depth(self):
        led = Ledger()
        with led.batch(depth=4):
            led.charge(work=100, depth=50)
        assert led.depth == 4
        assert led.work == 100

    def test_batch_from_nonzero_start(self):
        led = Ledger()
        led.charge(1, 3)
        with led.batch(depth=2):
            led.charge(5, 99)
        assert led.depth == 5

    def test_negative_batch_rejected(self):
        led = Ledger()
        with pytest.raises(LedgerError):
            with led.batch(depth=-1):
                pass

    def test_batch_inside_branch(self):
        led = Ledger()
        with led.parallel() as par:
            with par.branch():
                with led.batch(depth=3):
                    led.charge(10, 1000)
            with par.branch():
                led.charge(1, 1)
        assert led.depth == 3
        assert led.work == 11


class TestPhases:
    def test_phase_records_deltas(self):
        led = Ledger()
        with led.phase("a"):
            led.charge(5, 2)
        with led.phase("b"):
            led.charge(3, 1)
        assert led.phases["a"].work == 5 and led.phases["a"].depth == 2
        assert led.phases["b"].work == 3 and led.phases["b"].depth == 1

    def test_reentrant_phase_accumulates(self):
        led = Ledger()
        for _ in range(2):
            with led.phase("x"):
                led.charge(2, 1)
        assert led.phases["x"].work == 4
        assert led.phases["x"].depth == 2

    def test_nested_phases_both_see_charge(self):
        led = Ledger()
        with led.phase("outer"):
            with led.phase("inner"):
                led.charge(7, 1)
        assert led.phases["outer"].work == 7
        assert led.phases["inner"].work == 7


class TestSnapshots:
    def test_snapshot_since(self):
        led = Ledger()
        led.charge(2, 2)
        snap = led.snapshot()
        led.charge(3, 1)
        assert led.since(snap) == (3, 1)

    def test_absorb_parallel(self):
        a, b, c = Ledger(), Ledger(), Ledger()
        b.charge(5, 4)
        c.charge(2, 9)
        a.absorb_parallel(b, c)
        assert a.work == 7
        assert a.depth == 9

    def test_absorb_nothing_is_noop(self):
        a = Ledger()
        a.charge(1, 1)
        a.absorb_parallel()
        assert a.snapshot() == (1, 1)

    def test_reset(self):
        led = Ledger()
        with led.phase("p"):
            led.charge(1, 1)
        led.reset()
        assert led.snapshot() == (0, 0)
        assert led.phases == {}


class TestNullLedger:
    def test_discards_charges(self):
        NULL_LEDGER.charge(100, 100)
        assert NULL_LEDGER.work == 0
        assert NULL_LEDGER.depth == 0

    def test_still_validates(self):
        with pytest.raises(LedgerError):
            NULL_LEDGER.charge(-1)

    def test_parallel_and_batch_are_inert(self):
        with NULL_LEDGER.parallel() as par:
            with par.branch():
                NULL_LEDGER.charge(5, 5)
        with NULL_LEDGER.batch(depth=3):
            pass
        assert NULL_LEDGER.depth == 0

    def test_absorb_parallel_is_inert(self):
        # absorb mutates work/depth without going through charge; the
        # null ledger must discard it too (the engine's batch fan-out
        # absorbs worker ledgers into whatever ledger it was given)
        other = Ledger()
        with other.phase("absorbed-phase"):
            other.charge(100, 100)
        NULL_LEDGER.absorb_parallel(other)
        assert NULL_LEDGER.work == 0
        assert NULL_LEDGER.depth == 0
        assert "absorbed-phase" not in NULL_LEDGER.phases
