"""Baselines: Stoer–Wagner, Karger–Stein, GG18 stand-in, cost models."""

import math

import networkx as nx
import numpy as np
import pytest

from repro.arena.solvers import karger_stein, stoer_wagner
from repro.baselines import (
    crossover_density,
    depth_all,
    gg18_two_respecting,
    gg18_work_model,
    work_ab21,
    work_gg18,
    work_here,
    work_sequential_gmw,
)
from repro.baselines.models import work_here_best
from repro.errors import GraphFormatError
from repro.graphs import Graph, barbell_graph, random_connected_graph
from repro.pram import Ledger
from repro.primitives import root_tree, spanning_forest_graph
from repro.tworespect import two_respecting_min_cut

from tests.conftest import assert_valid_cut, make_graph


class TestStoerWagner:
    def test_matches_networkx(self):
        rng = np.random.default_rng(1)
        for _ in range(10):
            n = int(rng.integers(3, 35))
            g = random_connected_graph(n, 3 * n, rng=rng, max_weight=6)
            val, _ = nx.stoer_wagner(g.to_networkx())
            res = stoer_wagner(g)
            assert res.value == pytest.approx(val)
            assert_valid_cut(g, res.value, res.side)

    def test_disconnected(self):
        g = Graph.from_edges(4, [(0, 1), (2, 3)])
        assert stoer_wagner(g).value == 0.0

    def test_rejects_tiny(self):
        with pytest.raises(GraphFormatError):
            stoer_wagner(Graph.empty(1))

    def test_two_vertices(self):
        g = Graph.from_edges(2, [(0, 1, 3.5)])
        assert stoer_wagner(g).value == pytest.approx(3.5)


class TestKargerStein:
    def test_finds_min_cut_whp(self):
        rng = np.random.default_rng(2)
        hits = 0
        trials = 8
        for t in range(trials):
            n = int(rng.integers(4, 25))
            g = random_connected_graph(n, 3 * n, rng=rng, max_weight=4)
            res = karger_stein(g, rng=np.random.default_rng(t))
            assert_valid_cut(g, res.value, res.side)
            sw = stoer_wagner(g).value
            assert res.value >= sw - 1e-9  # contraction cuts never undershoot
            hits += abs(res.value - sw) < 1e-9
        assert hits >= trials - 1

    def test_easy_structures(self):
        g = barbell_graph(6, 1.0)
        res = karger_stein(g, rng=np.random.default_rng(3))
        assert res.value == pytest.approx(1.0)

    def test_disconnected(self):
        g = Graph.from_edges(4, [(0, 1), (2, 3)])
        assert karger_stein(g).value == 0.0


class TestGG18Baseline:
    def test_matches_two_respecting(self):
        rng = np.random.default_rng(4)
        for t in range(5):
            n = int(rng.integers(5, 35))
            g = random_connected_graph(n, 3 * n, rng=rng, max_weight=5)
            ids, _ = spanning_forest_graph(g)
            parent = root_tree(g.n, g.u[ids], g.v[ids], 0)
            a = gg18_two_respecting(g, parent)
            b = two_respecting_min_cut(g, parent)
            assert a.value == pytest.approx(b.value)
            assert_valid_cut(g, a.value, a.side)

    def test_work_exceeds_ours(self):
        """The point of Table 1: the GG18-style baseline does strictly
        more structural work on the same instance."""
        g = make_graph(150, 600, 5)
        ids, _ = spanning_forest_graph(g)
        parent = root_tree(g.n, g.u[ids], g.v[ids], 0)
        led_a, led_b = Ledger(), Ledger()
        gg18_two_respecting(g, parent, ledger=led_a)
        two_respecting_min_cut(g, parent, ledger=led_b)
        assert led_a.work > 1.5 * led_b.work


class TestCostModels:
    def test_gg18_dominates_here_asymptotically(self):
        n = 1 << 16
        m = n * 64
        assert work_gg18(m, n) > work_here_best(m, n)
        assert gg18_work_model(m, n) == work_gg18(m, n)

    def test_ab21_wins_sparse_here_wins_dense(self):
        n = 1 << 18
        sparse_m = 2 * n
        dense_m = n * int(math.log2(n) ** 4)  # deep in the non-sparse regime
        assert work_ab21(sparse_m, n) < work_here_best(sparse_m, n)
        assert work_here_best(dense_m, n) < work_ab21(dense_m, n)

    def test_crossover_density_near_polylog(self):
        n = 1 << 16
        c = crossover_density(n)
        assert math.log2(n) ** 2 <= c <= math.log2(n) ** 3.5

    def test_depth_model(self):
        assert depth_all(256) == pytest.approx(8**3)

    def test_parallel_matches_sequential_shape(self):
        """Work-optimality: the parallel bound tracks the sequential one
        within a constant on dense graphs."""
        n = 1 << 14
        m = n * n  # m = n^2: unambiguously non-sparse
        ratio = work_here(m, n) / work_sequential_gmw(m, n)
        assert ratio < 1.6
