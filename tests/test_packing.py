"""Tree packing (Section 4.2, Theorem 4.18)."""

import numpy as np
import pytest

from repro.arena.solvers import stoer_wagner
from repro.errors import NotConnectedError
from repro.graphs import Graph, planted_cut_graph, random_connected_graph
from repro.packing import greedy_tree_packing, pack_trees
from repro.pram import Ledger
from repro.primitives import postorder
from repro.tworespect import brute_force_two_respecting

from tests.conftest import make_graph


class TestGreedyPacking:
    def test_trees_are_spanning(self):
        g = make_graph(30, 120, 1)
        packing = greedy_tree_packing(g, iterations=10)
        for ids in packing.trees:
            assert ids.shape[0] == g.n - 1
            assert g.subgraph_edges(ids).is_connected()

    def test_multiplicities_sum_to_iterations(self):
        g = make_graph(25, 100, 2)
        packing = greedy_tree_packing(g, iterations=17)
        assert sum(packing.multiplicity) == 17
        assert packing.iterations == 17

    def test_loads_spread_over_edges(self):
        """Greedy packing must not reuse one tree forever on a graph with
        alternatives: distinct trees appear."""
        g = make_graph(20, 80, 3, max_weight=1)
        packing = greedy_tree_packing(g, iterations=12)
        assert packing.num_distinct >= 2

    def test_tree_parent_roots_at_zero(self):
        g = make_graph(15, 60, 4)
        packing = greedy_tree_packing(g, iterations=3)
        parent = packing.tree_parent(0)
        assert parent[0] == -1
        postorder(parent)  # validates tree structure

    def test_disconnected_rejected(self):
        g = Graph.from_edges(4, [(0, 1), (2, 3)])
        with pytest.raises(NotConnectedError):
            greedy_tree_packing(g, iterations=2)

    def test_sample_trees_includes_top(self):
        g = make_graph(20, 80, 5)
        packing = greedy_tree_packing(g, iterations=20)
        rng = np.random.default_rng(0)
        if packing.num_distinct > 2:
            chosen = packing.sample_trees(2, rng)
            top = max(range(packing.num_distinct), key=lambda i: packing.multiplicity[i])
            assert top in chosen
            assert len(chosen) == 2

    def test_sample_all_when_k_large(self):
        g = make_graph(15, 50, 6)
        packing = greedy_tree_packing(g, iterations=5)
        chosen = packing.sample_trees(100, np.random.default_rng(0))
        assert chosen == list(range(packing.num_distinct))


class TestPackTrees:
    def test_two_respecting_hit(self):
        """Karger's guarantee: some packed tree 2-constrains the min cut
        — verified by brute-force 2-respecting on every candidate."""
        from repro.trees import binarize_parent

        rng = np.random.default_rng(7)
        for trial in range(5):
            g = planted_cut_graph(10, 10, 2.0, rng=rng)
            lam = stoer_wagner(g).value
            result = pack_trees(g, lam / 2, rng=np.random.default_rng(trial))
            best = min(
                brute_force_two_respecting(
                    g, postorder(binarize_parent(p).parent)
                )[0]
                for p in result.tree_parents
            )
            assert best == pytest.approx(lam)

    def test_trees_span_original_graph(self):
        g = make_graph(30, 120, 8)
        result = pack_trees(g, 1.0, rng=np.random.default_rng(1))
        for parent in result.tree_parents:
            assert parent.shape[0] == g.n
            assert (parent < 0).sum() == 1

    def test_max_trees_cap(self):
        g = make_graph(25, 100, 9, max_weight=1)
        result = pack_trees(g, 1.0, max_trees=2, rng=np.random.default_rng(2))
        assert result.num_trees <= 2

    def test_disconnected_rejected(self):
        g = Graph.from_edges(4, [(0, 1), (2, 3)])
        with pytest.raises(NotConnectedError):
            pack_trees(g, 1.0, rng=np.random.default_rng(3))

    def test_overestimate_recovers_connectivity(self):
        """A wildly overestimated lambda makes the first skeleton too
        sparse; pack_trees must retry with a denser one."""
        g = make_graph(30, 100, 10, max_weight=1)
        result = pack_trees(g, 1e6, rng=np.random.default_rng(4))
        assert result.skeleton.skeleton.is_connected()

    def test_phases_recorded(self):
        g = make_graph(20, 70, 11)
        led = Ledger()
        pack_trees(g, 1.0, rng=np.random.default_rng(5), ledger=led)
        assert {"skeleton", "greedy-packing"} <= set(led.phases)
