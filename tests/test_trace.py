"""Series-parallel traces and schedule bounds (repro.pram.trace)."""

import numpy as np
import pytest

from repro.pram import Ledger, TraceLedger, brent_time, schedule_bounds
from repro.pram.trace import SPNode


class TestTraceRecording:
    def test_trace_totals_match_counters(self):
        led = TraceLedger()
        led.charge(5, 2)
        with led.parallel() as par:
            for d in (3, 7):
                with par.branch():
                    led.charge(4, d)
        led.charge(1, 1)
        assert led.trace.total_work() == pytest.approx(led.work)
        assert led.trace.total_depth() == pytest.approx(led.depth)

    def test_sequential_charges_merge(self):
        led = TraceLedger()
        for _ in range(100):
            led.charge(1, 1)
        assert led.trace.count_nodes() == 1  # merged into the root segment

    def test_parallel_creates_children(self):
        led = TraceLedger()
        with led.parallel() as par:
            with par.branch():
                led.charge(1, 1)
            with par.branch():
                led.charge(1, 1)
        # root + par + 2 branches
        assert led.trace.count_nodes() == 4

    def test_batch_pins_trace_depth(self):
        led = TraceLedger()
        with led.batch(depth=3):
            led.charge(100, 50)
        assert led.depth == 3
        assert led.trace.total_depth() == pytest.approx(3)
        assert led.trace.total_work() == pytest.approx(100)

    def test_nested_structures(self):
        led = TraceLedger()
        with led.parallel() as outer:
            with outer.branch():
                with led.parallel() as inner:
                    with inner.branch():
                        led.charge(2, 5)
            with outer.branch():
                led.charge(2, 3)
        assert led.depth == 5
        assert led.trace.total_depth() == pytest.approx(5)

    def test_reset(self):
        led = TraceLedger()
        led.charge(1, 1)
        led.reset()
        assert led.trace.total_work() == 0
        assert led.work == 0

    def test_matches_plain_ledger_on_algorithm(self):
        """TraceLedger is a drop-in: identical counters to Ledger."""
        from repro.graphs import random_connected_graph
        from repro.primitives import root_tree, spanning_forest_graph
        from repro.tworespect import two_respecting_min_cut

        g = random_connected_graph(60, 200, rng=1, max_weight=4)
        ids, _ = spanning_forest_graph(g)
        parent = root_tree(g.n, g.u[ids], g.v[ids], 0)
        plain, traced = Ledger(), TraceLedger()
        a = two_respecting_min_cut(g, parent, ledger=plain)
        b = two_respecting_min_cut(g, parent, ledger=traced)
        assert a.value == b.value
        assert traced.work == pytest.approx(plain.work)
        assert traced.depth == pytest.approx(plain.depth)
        assert traced.trace.total_work() == pytest.approx(plain.work)


class TestScheduleBounds:
    def test_pure_sequential_equals_brent(self):
        led = TraceLedger()
        led.charge(100, 10)
        lo, hi = led.bounds(4)
        assert lo == pytest.approx(max(25, 10))
        assert hi == pytest.approx(brent_time(100, 10, 4))

    def test_parallel_region_tightens_lower(self):
        led = TraceLedger()
        with led.parallel() as par:
            for _ in range(8):
                with par.branch():
                    led.charge(10, 10)
        lo, hi = led.bounds(8)
        # perfectly divisible: both bounds collapse to the branch depth
        assert lo == pytest.approx(10)
        assert hi == pytest.approx(20)  # area + max slack

    def test_bounds_ordered_and_within_brent(self):
        rng = np.random.default_rng(0)
        led = TraceLedger()
        for _ in range(5):
            led.charge(float(rng.integers(1, 50)), float(rng.integers(1, 5)))
            with led.parallel() as par:
                for _ in range(int(rng.integers(1, 6))):
                    with par.branch():
                        led.charge(float(rng.integers(1, 80)), float(rng.integers(1, 9)))
        for p in (1, 2, 7, 64):
            lo, hi = led.bounds(p)
            assert lo <= hi + 1e-9
            assert hi <= brent_time(led.work, led.depth, p) + 1e-6
            assert lo >= max(led.work / p, 0) - 1e-9

    def test_single_processor_exact(self):
        """On p = 1 the makespan is exactly the work plus idle depth."""
        led = TraceLedger()
        led.charge(30, 3)
        with led.parallel() as par:
            with par.branch():
                led.charge(10, 2)
        lo, hi = led.bounds(1)
        assert lo <= led.work + led.depth
        assert hi == pytest.approx(brent_time(led.work, led.depth, 1))

    def test_rejects_bad_processors(self):
        led = TraceLedger()
        with pytest.raises(ValueError):
            led.bounds(0)

    def test_manual_sp_tree(self):
        seq = SPNode(kind="seq", work=8, depth=2)
        par = SPNode(
            kind="par",
            children=[SPNode(kind="seq", work=4, depth=4), SPNode(kind="seq", work=4, depth=1)],
        )
        root = SPNode(kind="seq", children=[seq, par])
        assert root.total_work() == 16
        assert root.total_depth() == 6
        lo, hi = schedule_bounds(root, 2)
        assert lo <= hi
        # lower: seq max(4,2)=4 + par max(8/2, 4)=4 => 8
        assert lo == pytest.approx(8)
