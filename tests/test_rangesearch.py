"""Range trees and the cut-query oracle vs brute force."""

import numpy as np
import pytest

from repro.graphs import random_connected_graph
from repro.pram import Ledger
from repro.primitives import postorder, root_tree, spanning_forest_graph
from repro.rangesearch import CutOracle, NaiveCutOracle, RangeTree1D, RangeTree2D
from repro.trees import binarize_parent

from tests.conftest import make_graph, make_rooted


class TestRangeTree1D:
    @pytest.mark.parametrize("branching", [2, 3, 5, 16])
    def test_matches_brute_force(self, branching):
        rng = np.random.default_rng(branching)
        for _ in range(15):
            n = int(rng.integers(0, 70))
            keys = rng.integers(0, 25, n)
            w = rng.random(n)
            t = RangeTree1D(keys, w, branching=branching)
            for _ in range(8):
                lo, hi = sorted(rng.integers(-3, 28, 2))
                expect = w[(keys >= lo) & (keys <= hi)].sum()
                assert t.query_value_range(int(lo), int(hi)) == pytest.approx(expect)

    def test_empty_interval(self):
        t = RangeTree1D(np.array([1, 2, 3]), np.ones(3))
        assert t.query_value_range(5, 2) == 0.0

    def test_index_range(self):
        t = RangeTree1D(np.array([3, 1, 2]), np.array([30.0, 10.0, 20.0]))
        assert t.query_index_range(0, 2) == 30.0  # sorted: keys 1,2

    def test_rejects_bad_branching(self):
        with pytest.raises(ValueError):
            RangeTree1D(np.array([1]), np.array([1.0]), branching=1)

    def test_rejects_mismatched_arrays(self):
        with pytest.raises(ValueError):
            RangeTree1D(np.array([1, 2]), np.array([1.0]))

    def test_stats_count_visits(self):
        t = RangeTree1D(np.arange(64), np.ones(64))
        t.query_value_range(5, 40)
        assert t.stats.queries == 1
        assert t.stats.nodes_visited > 0

    def test_larger_branching_visits_fewer_levels(self):
        """The Lemma 4.24 tradeoff: higher degree -> shallower tree."""
        keys = np.arange(4096)
        w = np.ones(4096)
        t2 = RangeTree1D(keys, w, branching=2)
        t16 = RangeTree1D(keys, w, branching=16)
        assert t16._depth < t2._depth

    def test_ledger_charged_per_query(self):
        led = Ledger()
        t = RangeTree1D(np.arange(32), np.ones(32))
        t.query_value_range(3, 29, ledger=led)
        assert led.work >= 1 and led.depth >= 1


class TestRangeTree2D:
    @pytest.mark.parametrize("branching", [2, 3, 7])
    def test_matches_brute_force(self, branching):
        rng = np.random.default_rng(100 + branching)
        for _ in range(12):
            n = int(rng.integers(0, 90))
            xs = rng.integers(0, 30, n)
            ys = rng.integers(0, 30, n)
            w = rng.random(n)
            t = RangeTree2D(xs, ys, w, branching=branching)
            for _ in range(8):
                x1, x2 = sorted(rng.integers(-2, 33, 2))
                y1, y2 = sorted(rng.integers(-2, 33, 2))
                expect = w[(xs >= x1) & (xs <= x2) & (ys >= y1) & (ys <= y2)].sum()
                got = t.query(int(x1), int(x2), int(y1), int(y2))
                assert got == pytest.approx(expect)

    def test_duplicate_coordinates(self):
        xs = np.array([5, 5, 5, 5])
        ys = np.array([1, 1, 2, 2])
        w = np.array([1.0, 2.0, 3.0, 4.0])
        t = RangeTree2D(xs, ys, w)
        assert t.query(5, 5, 1, 1) == 3.0
        assert t.query(5, 5, 1, 2) == 10.0

    def test_empty_rectangle(self):
        t = RangeTree2D(np.array([1]), np.array([1]), np.array([1.0]))
        assert t.query(2, 1, 0, 9) == 0.0

    def test_visit_counters(self):
        t = RangeTree2D(np.arange(128), np.arange(128), np.ones(128))
        before = t.total_nodes_visited
        t.query(10, 100, 0, 127)
        assert t.total_nodes_visited > before
        assert t.stats.queries == 1


class TestCutOracleVsNaive:
    def _pair(self, n, seed, branching=2):
        g = make_graph(n, 3 * n, seed, max_weight=6)
        _, rt = make_rooted(g)
        return g, rt, CutOracle(g, rt, branching=branching), NaiveCutOracle(g, rt)

    @pytest.mark.parametrize("branching", [2, 4])
    def test_cost(self, branching):
        g, rt, oracle, naive = self._pair(50, 1, branching)
        for u in range(1, rt.n):
            if rt.parent[u] < 0:
                continue
            assert oracle.cost(u) == pytest.approx(naive.cost(u))

    def test_cut_all_relationships(self):
        g, rt, oracle, naive = self._pair(40, 2)
        rng = np.random.default_rng(0)
        for _ in range(120):
            u, v = (int(x) for x in rng.integers(0, rt.n, 2))
            if rt.parent[u] < 0 or rt.parent[v] < 0:
                continue
            assert oracle.cut(u, v) == pytest.approx(naive.cut(u, v))

    def test_cross_cost_disjoint(self):
        g, rt, oracle, naive = self._pair(40, 3)
        rng = np.random.default_rng(1)
        found = 0
        for _ in range(300):
            u, v = (int(x) for x in rng.integers(0, rt.n, 2))
            if rt.parent[u] < 0 or rt.parent[v] < 0:
                continue
            if rt.is_ancestor(u, v) or rt.is_ancestor(v, u):
                continue
            assert oracle.cross_cost(u, v) == pytest.approx(naive.cross_cost(u, v))
            found += 1
        assert found > 20

    def test_down_cost_nested(self):
        g, rt, oracle, naive = self._pair(40, 4)
        rng = np.random.default_rng(2)
        found = 0
        for _ in range(400):
            u, v = (int(x) for x in rng.integers(0, rt.n, 2))
            if rt.parent[u] < 0 or rt.parent[v] < 0 or u == v:
                continue
            if rt.is_ancestor(v, u):
                assert oracle.down_cost(u, v) == pytest.approx(naive.down_cost(u, v))
                found += 1
        assert found > 10

    def test_cut_side_mask_consistent(self):
        g, rt, oracle, _ = self._pair(45, 5)
        rng = np.random.default_rng(3)
        for _ in range(60):
            u, v = (int(x) for x in rng.integers(0, rt.n, 2))
            if rt.parent[u] < 0 or rt.parent[v] < 0:
                continue
            side = oracle.cut_side_mask(u, v)
            if not side.any() or side.all():
                continue
            assert g.cut_value(side) == pytest.approx(oracle.cut(u, v))

    def test_one_respecting_side_mask(self):
        g, rt, oracle, _ = self._pair(30, 6)
        for u in range(g.n):
            if rt.parent[u] < 0:
                continue
            side = oracle.cut_side_mask(u)
            assert g.cut_value(side) == pytest.approx(oracle.cost(u))

    def test_cost_cached(self):
        g, rt, oracle, _ = self._pair(25, 7)
        u = int(rt.tree_edges()[0])
        a = oracle.cost(u)
        q_before = oracle.points.stats.queries
        assert oracle.cost(u) == a
        assert oracle.points.stats.queries == q_before  # cache hit

    def test_query_depth_positive(self):
        _, _, oracle, _ = self._pair(20, 8)
        assert oracle.query_depth >= 2


class TestInterestPredicates:
    """Definition 4.7 checked against direct mass computations."""

    def _mass_cross(self, g, rt, u, v):
        naive = NaiveCutOracle(g, rt)
        if rt.is_ancestor(v, u):
            return naive.cost(u) - naive.down_cost(u, v)
        return naive.cross_cost(u, v)

    def test_cross_interest_definition(self):
        g = make_graph(35, 120, 11, max_weight=5)
        _, rt = make_rooted(g)
        oracle = CutOracle(g, rt)
        naive = NaiveCutOracle(g, rt)
        rng = np.random.default_rng(4)
        for _ in range(150):
            u, v = (int(x) for x in rng.integers(0, rt.n, 2))
            if rt.parent[u] < 0 or rt.parent[v] < 0 or u == v:
                continue
            if rt.is_ancestor(u, v):
                assert not oracle.cross_interested(u, v)
                continue
            expect = naive.cost(u) < 2 * self._mass_cross(g, rt, u, v)
            assert oracle.cross_interested(u, v) == expect

    def test_down_interest_definition(self):
        g = make_graph(35, 120, 12, max_weight=5)
        _, rt = make_rooted(g)
        oracle = CutOracle(g, rt)
        naive = NaiveCutOracle(g, rt)
        rng = np.random.default_rng(5)
        for _ in range(300):
            u, v = (int(x) for x in rng.integers(0, rt.n, 2))
            if rt.parent[u] < 0 or rt.parent[v] < 0 or u == v:
                continue
            if not rt.is_ancestor(u, v):
                assert not oracle.down_interested(u, v)
            else:
                expect = naive.cost(u) < 2 * naive.down_cost(v, u)
                assert oracle.down_interested(u, v) == expect

    def test_claim_4_8_contiguity(self):
        """Cross-interested edges of e form one root-descending path."""
        g = make_graph(30, 100, 13, max_weight=4)
        _, rt = make_rooted(g)
        oracle = CutOracle(g, rt)
        kids = rt.children_lists()
        for u in range(rt.n):
            if rt.parent[u] < 0:
                continue
            members = [
                x
                for x in range(rt.n)
                if rt.parent[x] >= 0 and oracle.cross_interested(u, x)
            ]
            # each member's parent chain up to root must be all members
            mset = set(members)
            for x in members:
                p = int(rt.parent[x])
                while rt.parent[p] >= 0:
                    assert p in mset, (u, x, p)
                    p = int(rt.parent[p])
            # at most one member per sibling group on the path
            for x in members:
                siblings = [s for s in kids[int(rt.parent[x])] if s in mset]
                assert len(siblings) == 1
