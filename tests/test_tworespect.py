"""The 2-respecting minimum cut (Theorem 4.2) vs exhaustive search."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graphs import Graph, cycle_graph, random_connected_graph
from repro.pram import Ledger
from repro.primitives import postorder, root_tree, spanning_forest_graph
from repro.trees import binarize_parent
from repro.tworespect import (
    brute_force_two_respecting,
    collect_interest_tuples,
    find_interest_terminals,
    group_interested_pairs,
    two_respecting_min_cut,
)

from tests.conftest import assert_valid_cut, make_graph


def tree_of(g, root=0):
    ids, _ = spanning_forest_graph(g)
    return root_tree(g.n, g.u[ids], g.v[ids], root)


def binarized(parent):
    return postorder(binarize_parent(parent).parent)


class TestCorrectness:
    @pytest.mark.parametrize("decomposition", ["heavy", "bough"])
    def test_matches_brute_force_random(self, decomposition):
        rng = np.random.default_rng(17)
        for trial in range(12):
            n = int(rng.integers(4, 55))
            g = random_connected_graph(
                n, int(n * rng.uniform(1.2, 4)), rng=rng, max_weight=6
            )
            parent = tree_of(g)
            res = two_respecting_min_cut(g, parent, decomposition=decomposition)
            bval, _, _ = brute_force_two_respecting(g, binarized(parent))
            assert res.value == pytest.approx(bval)
            assert_valid_cut(g, res.value, res.side)

    def test_unweighted_ties(self):
        rng = np.random.default_rng(23)
        for trial in range(8):
            n = int(rng.integers(4, 45))
            g = random_connected_graph(n, n * 3, rng=rng, max_weight=1)
            parent = tree_of(g, root=int(rng.integers(0, n)))
            res = two_respecting_min_cut(g, parent)
            bval, _, _ = brute_force_two_respecting(g, binarized(parent))
            assert res.value == pytest.approx(bval)

    @pytest.mark.parametrize("branching", [2, 3, 8])
    def test_branching_invariant(self, branching):
        g = make_graph(40, 140, 31, max_weight=5)
        parent = tree_of(g)
        res = two_respecting_min_cut(g, parent, branching=branching)
        bval, _, _ = brute_force_two_respecting(g, binarized(parent))
        assert res.value == pytest.approx(bval)

    def test_cycle_with_its_path_tree(self):
        """Cycle + Hamiltonian-path tree: every adjacent pair cuts 2."""
        g = cycle_graph(12)
        parent = np.arange(-1, 11, dtype=np.int64)
        res = two_respecting_min_cut(g, parent)
        assert res.value == pytest.approx(2.0)

    def test_star_graph(self):
        """Star: min cut isolates a leaf; tree is the star itself."""
        edges = [(0, i, float(i)) for i in range(1, 8)]
        g = Graph.from_edges(8, edges)
        parent = np.zeros(8, dtype=np.int64)
        parent[0] = -1
        res = two_respecting_min_cut(g, parent)
        assert res.value == pytest.approx(1.0)

    def test_witness_edges_reported(self):
        g = make_graph(25, 70, 37)
        res = two_respecting_min_cut(g, tree_of(g))
        assert res.witness_edges is not None
        u, v = res.witness_edges
        assert u >= 0 and v >= 0


class TestValidation:
    def test_rejects_wrong_tree_length(self):
        g = make_graph(10, 25, 41)
        with pytest.raises(GraphFormatError):
            two_respecting_min_cut(g, np.zeros(5, dtype=np.int64))

    def test_rejects_tiny_graph(self):
        g = Graph.from_edges(1, [])
        with pytest.raises(GraphFormatError):
            two_respecting_min_cut(g, np.array([-1]))


class TestStatsAndAccounting:
    def test_stats_present(self):
        g = make_graph(40, 160, 43)
        res = two_respecting_min_cut(g, tree_of(g))
        assert res.stats["num_paths"] >= 1
        assert res.stats["oracle_queries"] > 0
        assert res.stats["tree_size_binarized"] >= g.n

    def test_interest_tuples_near_linear(self):
        """Claim 4.15 / Section 4.1.3: O(n log n) interest tuples."""
        g = make_graph(150, 600, 47)
        res = two_respecting_min_cut(g, tree_of(g))
        n = res.stats["tree_size_binarized"]
        assert res.stats["num_interest_tuples"] <= 4 * n * np.log2(n)

    def test_ledger_depth_polylog(self):
        g = make_graph(120, 500, 53)
        led = Ledger()
        two_respecting_min_cut(g, tree_of(g), ledger=led)
        # Theorem 4.2: O(log^2 n) depth; generous constant for the model
        assert led.depth <= 40 * np.log2(g.n) ** 2
        assert led.work > 0

    def test_phases_recorded(self):
        g = make_graph(30, 90, 59)
        led = Ledger()
        two_respecting_min_cut(g, tree_of(g), ledger=led)
        for phase in ("oracle-build", "single-path", "path-pairs", "interest-terminals"):
            assert phase in led.phases


class TestInterestPipeline:
    def test_terminals_inside_tree(self):
        from repro.rangesearch import CutOracle
        from repro.trees import centroid_decomposition

        g = make_graph(35, 120, 61)
        rt = binarized(tree_of(g))
        oracle = CutOracle(g, rt)
        cd = centroid_decomposition(rt)
        c_e, d_e = find_interest_terminals(oracle, cd)
        for u in range(rt.n):
            if rt.parent[u] < 0:
                assert c_e[u] == -1 and d_e[u] == -1
            else:
                assert 0 <= c_e[u] < rt.n
                # d_e lies inside e's own subtree
                assert rt.is_ancestor(u, int(d_e[u]))

    def test_terminals_match_brute_force(self):
        """The centroid-guided search (Claim 4.13) must return exactly
        the deepest cross-/down-interested node found by scanning every
        vertex — Claim 4.8 guarantees the scan's members form a chain."""
        from repro.rangesearch import CutOracle
        from repro.trees import centroid_decomposition

        rng = np.random.default_rng(67)
        for trial in range(4):
            g = make_graph(int(rng.integers(8, 45)), 130, trial + 70, max_weight=5)
            rt = binarized(tree_of(g))
            oracle = CutOracle(g, rt)
            cd = centroid_decomposition(rt)
            c_e, d_e = find_interest_terminals(oracle, cd)
            for u in range(rt.n):
                if rt.parent[u] < 0:
                    continue
                cross = [
                    x
                    for x in range(rt.n)
                    if rt.parent[x] >= 0 and oracle.cross_interested(u, x)
                ]
                expect_c = max(cross, key=lambda x: rt.depth[x], default=rt.root)
                assert c_e[u] == expect_c, (trial, u)
                down = [
                    x
                    for x in range(rt.n)
                    if rt.parent[x] >= 0 and oracle.down_interested(u, x)
                ]
                expect_d = max(down, key=lambda x: rt.depth[x], default=u)
                assert d_e[u] == expect_d, (trial, u)

    def test_tuples_group_mutually(self):
        tuples = [(1, 2, 10), (2, 1, 20), (1, 3, 11), (2, 1, 21)]
        pairs = group_interested_pairs(tuples)
        assert (1, 2) in pairs
        r, s = pairs[(1, 2)]
        assert r == [10] and sorted(s) == [20, 21]
        assert (1, 3) not in pairs  # no reverse direction

    def test_group_empty(self):
        assert group_interested_pairs([]) == {}
