"""Graph I/O round trips (repro.graphs.io)."""

import io

import pytest

from repro.errors import GraphFormatError
from repro.graphs import (
    Graph,
    random_connected_graph,
    read_dimacs,
    read_edgelist,
    write_dimacs,
    write_edgelist,
)


class TestEdgelist:
    def test_roundtrip_exact(self, tmp_path):
        g = random_connected_graph(20, 60, rng=3, max_weight=7)
        path = tmp_path / "g.el"
        write_edgelist(g, path)
        assert read_edgelist(path) == g

    def test_roundtrip_float_weights(self):
        g = Graph.from_edges(3, [(0, 1, 0.123456789), (1, 2, 7.25)])
        buf = io.StringIO()
        write_edgelist(g, buf)
        buf.seek(0)
        g2 = read_edgelist(buf)
        assert g2.w.tolist() == g.w.tolist()

    def test_empty_graph(self):
        buf = io.StringIO()
        write_edgelist(Graph.empty(4), buf)
        buf.seek(0)
        g = read_edgelist(buf)
        assert g.n == 4 and g.m == 0

    def test_bad_header(self):
        with pytest.raises(GraphFormatError):
            read_edgelist(io.StringIO("nonsense\n"))

    def test_truncated_edge_line(self):
        with pytest.raises(GraphFormatError):
            read_edgelist(io.StringIO("2 1\n0 1\n"))


class TestDimacs:
    def test_roundtrip(self, tmp_path):
        g = random_connected_graph(15, 40, rng=5, max_weight=3)
        path = tmp_path / "g.dimacs"
        write_dimacs(g, path)
        g2 = read_dimacs(path)
        assert g2.n == g.n and g2.m == g.m
        assert g2.total_weight == pytest.approx(g.total_weight)

    def test_comments_and_default_weight(self):
        text = "c a comment\np cut 3 2\ne 1 2\ne 2 3 5\n"
        g = read_dimacs(io.StringIO(text))
        assert g.m == 2
        assert sorted(g.w.tolist()) == [1.0, 5.0]

    def test_one_based_conversion(self):
        g = read_dimacs(io.StringIO("p cut 2 1\ne 1 2 3\n"))
        assert (int(g.u[0]), int(g.v[0])) == (0, 1)

    def test_edge_before_problem_line(self):
        with pytest.raises(GraphFormatError):
            read_dimacs(io.StringIO("e 1 2 3\n"))

    def test_missing_problem_line(self):
        with pytest.raises(GraphFormatError):
            read_dimacs(io.StringIO("c only comments\n"))

    def test_float_weights_preserved(self):
        g = Graph.from_edges(2, [(0, 1, 2.5)])
        buf = io.StringIO()
        write_dimacs(g, buf)
        buf.seek(0)
        assert read_dimacs(buf).w[0] == pytest.approx(2.5)
