"""Graph I/O round trips (repro.graphs.io)."""

import io

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graphs import (
    Graph,
    random_connected_graph,
    read_dimacs,
    read_edgelist,
    read_graph_binary,
    write_dimacs,
    write_edgelist,
    write_graph_binary,
)
from repro.graphs.io import graph_binary_info


class TestEdgelist:
    def test_roundtrip_exact(self, tmp_path):
        g = random_connected_graph(20, 60, rng=3, max_weight=7)
        path = tmp_path / "g.el"
        write_edgelist(g, path)
        assert read_edgelist(path) == g

    def test_roundtrip_float_weights(self):
        g = Graph.from_edges(3, [(0, 1, 0.123456789), (1, 2, 7.25)])
        buf = io.StringIO()
        write_edgelist(g, buf)
        buf.seek(0)
        g2 = read_edgelist(buf)
        assert g2.w.tolist() == g.w.tolist()

    def test_empty_graph(self):
        buf = io.StringIO()
        write_edgelist(Graph.empty(4), buf)
        buf.seek(0)
        g = read_edgelist(buf)
        assert g.n == 4 and g.m == 0

    def test_bad_header(self):
        with pytest.raises(GraphFormatError):
            read_edgelist(io.StringIO("nonsense\n"))

    def test_truncated_edge_line(self):
        with pytest.raises(GraphFormatError):
            read_edgelist(io.StringIO("2 1\n0 1\n"))

    def test_missing_edge_lines(self):
        with pytest.raises(GraphFormatError):
            read_edgelist(io.StringIO("4 3\n0 1 1.0\n"))

    def test_vectorized_writer_byte_parity(self):
        """The bulk writer must emit byte-identical text to the naive
        per-edge ``f"{u} {v} {w!r}"`` loop it replaced."""
        g = random_connected_graph(40, 200, rng=11, max_weight=9)
        g = g.with_weights(g.w * 0.3125 + 1 / 3)  # exercise float reprs
        buf = io.StringIO()
        write_edgelist(g, buf)
        naive = f"{g.n} {g.m}\n" + "".join(
            f"{u} {v} {w!r}\n" for u, v, w in g.edges()
        )
        assert buf.getvalue() == naive

    def test_single_edge(self):
        g = read_edgelist(io.StringIO("2 1\n0 1 2.5\n"))
        assert g.m == 1 and g.w[0] == 2.5


class TestDimacs:
    def test_roundtrip(self, tmp_path):
        g = random_connected_graph(15, 40, rng=5, max_weight=3)
        path = tmp_path / "g.dimacs"
        write_dimacs(g, path)
        g2 = read_dimacs(path)
        assert g2.n == g.n and g2.m == g.m
        assert g2.total_weight == pytest.approx(g.total_weight)

    def test_comments_and_default_weight(self):
        text = "c a comment\np cut 3 2\ne 1 2\ne 2 3 5\n"
        g = read_dimacs(io.StringIO(text))
        assert g.m == 2
        assert sorted(g.w.tolist()) == [1.0, 5.0]

    def test_one_based_conversion(self):
        g = read_dimacs(io.StringIO("p cut 2 1\ne 1 2 3\n"))
        assert (int(g.u[0]), int(g.v[0])) == (0, 1)

    def test_edge_before_problem_line(self):
        with pytest.raises(GraphFormatError):
            read_dimacs(io.StringIO("e 1 2 3\n"))

    def test_missing_problem_line(self):
        with pytest.raises(GraphFormatError):
            read_dimacs(io.StringIO("c only comments\n"))

    def test_float_weights_preserved(self):
        g = Graph.from_edges(2, [(0, 1, 2.5)])
        buf = io.StringIO()
        write_dimacs(g, buf)
        buf.seek(0)
        assert read_dimacs(buf).w[0] == pytest.approx(2.5)

    def test_comments_interleaved_with_edges(self):
        text = (
            "c preamble\np cut 4 3\ne 1 2 1\nc mid-stream comment\n"
            "e 2 3 2\nc another\ne 3 4 3\nc trailing\n"
        )
        g = read_dimacs(io.StringIO(text))
        assert g.m == 3
        assert sorted(g.w.tolist()) == [1.0, 2.0, 3.0]

    def test_blank_trailing_lines(self):
        g = read_dimacs(io.StringIO("p cut 2 1\ne 1 2 4\n\n\n   \n"))
        assert g.m == 1 and g.w[0] == 4.0

    def test_duplicate_problem_line_rejected(self):
        with pytest.raises(GraphFormatError, match="duplicate"):
            read_dimacs(io.StringIO("p cut 2 1\np cut 2 1\ne 1 2 1\n"))


class TestBinary:
    def _graph(self):
        return random_connected_graph(25, 80, rng=7, max_weight=6)

    def test_roundtrip_bit_identical(self, tmp_path):
        g = self._graph().with_weights(self._graph().w + 1 / 3)
        p1, p2 = tmp_path / "a.rpg", tmp_path / "b.rpg"
        write_graph_binary(g, p1)
        g2 = read_graph_binary(p1)
        assert g2 == g
        assert g2.u.tolist() == g.u.tolist()
        assert g2.w.tolist() == g.w.tolist()  # bit-exact floats
        write_graph_binary(g2, p2)
        assert p1.read_bytes() == p2.read_bytes()

    def test_info_without_load(self, tmp_path):
        g = self._graph()
        path = tmp_path / "g.rpg"
        write_graph_binary(g, path)
        info = graph_binary_info(path)
        assert info["n"] == g.n and info["m"] == g.m
        assert info["column_bytes"] == 24 * g.m
        assert info["file_bytes"] == path.stat().st_size

    def test_mmap_views_are_read_only(self, tmp_path):
        path = tmp_path / "g.rpg"
        write_graph_binary(self._graph(), path)
        g = read_graph_binary(path, mmap=True)
        for col in (g.u, g.v, g.w):
            # zero-copy: the public array is (a view of) the memmap
            assert isinstance(col, np.memmap) or isinstance(col.base, np.memmap)
            assert not col.flags.writeable
            with pytest.raises(ValueError):
                col[0] = 0

    def test_materialized_load_matches_mmap(self, tmp_path):
        path = tmp_path / "g.rpg"
        write_graph_binary(self._graph(), path)
        a = read_graph_binary(path, mmap=True)
        b = read_graph_binary(path, mmap=False)
        assert a == b
        assert not isinstance(b.u, np.memmap)
        assert not isinstance(b.u.base, np.memmap)

    def test_column_corruption_detected(self, tmp_path):
        path = tmp_path / "g.rpg"
        write_graph_binary(self._graph(), path)
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0xFF  # flip a byte mid-column
        path.write_bytes(bytes(raw))
        with pytest.raises(GraphFormatError, match="CRC"):
            read_graph_binary(path)

    def test_header_corruption_detected(self, tmp_path):
        path = tmp_path / "g.rpg"
        write_graph_binary(self._graph(), path)
        raw = bytearray(path.read_bytes())
        raw[12] ^= 0xFF  # inside the header, before its CRC field
        path.write_bytes(bytes(raw))
        with pytest.raises(GraphFormatError, match="header CRC"):
            read_graph_binary(path)

    def test_truncation_detected(self, tmp_path):
        path = tmp_path / "g.rpg"
        write_graph_binary(self._graph(), path)
        raw = path.read_bytes()
        path.write_bytes(raw[:-16])
        with pytest.raises(GraphFormatError, match="truncated"):
            read_graph_binary(path)

    def test_wrong_magic_rejected(self, tmp_path):
        path = tmp_path / "g.rpg"
        path.write_bytes(b"NOTAGRPH" + b"\x00" * 64)
        with pytest.raises(GraphFormatError, match="magic"):
            read_graph_binary(path)

    def test_empty_graph(self, tmp_path):
        path = tmp_path / "empty.rpg"
        write_graph_binary(Graph.empty(5), path)
        g = read_graph_binary(path)
        assert g.n == 5 and g.m == 0

    def test_solver_runs_on_mmap_graph(self, tmp_path):
        """End to end: a solver consumes the zero-copy view directly."""
        from repro.arena.solvers import stoer_wagner

        g = self._graph()
        path = tmp_path / "g.rpg"
        write_graph_binary(g, path)
        gm = read_graph_binary(path)
        assert stoer_wagner(gm).value == stoer_wagner(g).value
