"""The Section 3 approximation algorithm (Theorem 3.1)."""

import numpy as np
import pytest

from repro.approx import approximate_minimum_cut, locate_skeleton_layer
from repro.arena.solvers import stoer_wagner
from repro.errors import GraphFormatError
from repro.graphs import Graph, random_connected_graph
from repro.pram import Ledger
from repro.sparsify import HierarchyParams


def solver(g):
    return stoer_wagner(g).value


def params():
    return HierarchyParams(scale=0.02)


class TestApproximation:
    def test_bracket_contains_lambda_small_weights(self):
        """With small total weight the hierarchy has few layers and layer
        0 certificates capture lambda exactly."""
        rng = np.random.default_rng(1)
        for trial in range(6):
            g = random_connected_graph(20, 70, rng=rng, max_weight=3)
            lam = stoer_wagner(g).value
            res = approximate_minimum_cut(
                g, params=params(), rng=np.random.default_rng(trial), solver=solver
            )
            assert res.low - 1e-9 <= lam <= res.high * 1.35 + 1e-9, (
                trial, lam, res,
            )

    def test_heavy_weights_constant_factor(self):
        """With heavy weights the estimate comes from a sampled layer and
        must stay within a constant factor of lambda."""
        rng = np.random.default_rng(2)
        misses = 0
        for trial in range(8):
            g = random_connected_graph(16, 56, rng=rng, max_weight=1)
            g = g.with_weights(g.w * float(rng.integers(200, 2000)))
            lam = stoer_wagner(g).value
            res = approximate_minimum_cut(
                g, params=params(), rng=np.random.default_rng(trial + 50), solver=solver
            )
            ratio = res.estimate / lam
            if not (1 / 4 <= ratio <= 4):
                misses += 1
        assert misses <= 1  # concentration at toy scale is loose but real

    def test_estimate_scales_with_layer(self):
        g = random_connected_graph(16, 60, rng=3, max_weight=1)
        g = g.with_weights(g.w * 600.0)
        res = approximate_minimum_cut(
            g, params=params(), rng=np.random.default_rng(0), solver=solver
        )
        assert res.skeleton_layer >= 1
        assert res.estimate == pytest.approx(
            res.layer_cuts[res.skeleton_layer] * 2 ** res.skeleton_layer
        )

    def test_disconnected_returns_zero(self):
        g = Graph.from_edges(4, [(0, 1, 2.0), (2, 3, 2.0)])
        res = approximate_minimum_cut(g, rng=np.random.default_rng(0), solver=solver)
        assert res.estimate == 0.0

    def test_rejects_tiny(self):
        with pytest.raises(GraphFormatError):
            approximate_minimum_cut(Graph.empty(1), solver=solver)

    def test_stats_and_ledger(self):
        g = random_connected_graph(18, 60, rng=4, max_weight=2)
        led = Ledger()
        res = approximate_minimum_cut(
            g, params=params(), rng=np.random.default_rng(1), solver=solver, ledger=led
        )
        assert "hierarchy_depth" in res.stats
        assert led.work > 0
        assert {"hierarchy", "certificates", "layer-cuts"} <= set(led.phases)

    def test_float_weights_transparently_scaled(self):
        rng = np.random.default_rng(9)
        g = random_connected_graph(18, 60, rng=rng, max_weight=1)
        g = g.with_weights(rng.uniform(0.5, 2.5, g.m))
        lam = stoer_wagner(g).value
        res = approximate_minimum_cut(
            g, params=params(), rng=np.random.default_rng(0), solver=solver
        )
        assert res.stats["weight_scale"] > 1.0
        assert 0.2 <= res.estimate / lam <= 5.0

    def test_repeats_reduces_spread(self):
        """The paper's (1+eps)-refinement remark: median of independent
        hierarchies shrinks the sampling spread (not the quantisation
        bias) — measured as std of log-estimates over reruns."""
        rng = np.random.default_rng(0)
        g = random_connected_graph(16, 56, rng=rng, max_weight=1)
        g = g.with_weights(g.w * 700.0)
        singles, medians = [], []
        for t in range(8):
            r1 = approximate_minimum_cut(
                g, params=params(), rng=np.random.default_rng(100 + t), solver=solver
            )
            r5 = approximate_minimum_cut(
                g,
                params=params(),
                rng=np.random.default_rng(200 + t),
                solver=solver,
                repeats=5,
            )
            singles.append(np.log(max(r1.estimate, 1e-9)))
            medians.append(np.log(max(r5.estimate, 1e-9)))
            assert r5.stats["repeats"] == 5.0
            assert "estimate_spread" in r5.stats
        assert np.std(medians) < np.std(singles)

    def test_repeats_validation(self):
        g = random_connected_graph(10, 30, rng=1, max_weight=2)
        with pytest.raises(ValueError):
            approximate_minimum_cut(g, solver=solver, repeats=0)

    def test_default_solver_runs(self):
        g = random_connected_graph(20, 66, rng=5, max_weight=2)
        res = approximate_minimum_cut(g, params=params(), rng=np.random.default_rng(2))
        lam = stoer_wagner(g).value
        assert res.estimate >= 0
        assert res.low <= lam * 2.5  # sanity of the bracket shape


class TestLocateLayer:
    def _params(self):
        return HierarchyParams(scale=1.0)  # windows in plain log-units

    def test_layer_inside_window(self):
        p = self._params()
        n = 256
        lo, hi = p.window(n)
        cuts = {0: 10 * hi, 1: 3 * hi, 2: (lo + hi) / 2, 3: lo / 4}
        assert locate_skeleton_layer(cuts, n, p) == 2

    def test_fallback_boundary(self):
        p = self._params()
        n = 256
        lo, hi = p.window(n)
        cuts = {0: 10 * hi, 1: 3 * hi, 2: lo / 3}
        s = locate_skeleton_layer(cuts, n, p)
        assert s in (1, 2)

    def test_prefers_centre(self):
        p = self._params()
        n = 256
        lo, hi = p.window(n)
        centre = (lo + hi) / 2
        cuts = {0: hi, 1: centre, 2: lo}
        assert locate_skeleton_layer(cuts, n, p) == 1

    def test_all_zero(self):
        p = self._params()
        assert locate_skeleton_layer({0: 0.0, 1: 0.0}, 64, p) == 0
