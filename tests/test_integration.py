"""End-to-end integration scenarios, including the bundled examples."""

import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro import Graph, Ledger, minimum_cut
from repro.approx import approximate_minimum_cut
from repro.arena.solvers import stoer_wagner
from repro.graphs import (
    community_graph,
    random_connected_graph,
    read_edgelist,
    reliability_network,
    write_edgelist,
)
from repro.pram import parallel_map, speedup_curve
from repro.sparsify import HierarchyParams

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


class TestPipelines:
    def test_file_roundtrip_pipeline(self, tmp_path):
        """Generate -> persist -> reload -> cut -> verify."""
        g = random_connected_graph(40, 160, rng=5, max_weight=6)
        path = tmp_path / "net.el"
        write_edgelist(g, path)
        g2 = read_edgelist(path)
        res = minimum_cut(g2, rng=np.random.default_rng(0))
        assert res.value == pytest.approx(stoer_wagner(g).value)

    def test_approx_then_exact_consistency(self):
        """The screening bracket from the approximation must be
        consistent with the exact answer on integer-weight inputs."""
        g = reliability_network(25, 8, rng=6)
        g = g.with_weights(np.rint(g.w))
        approx = approximate_minimum_cut(
            g, params=HierarchyParams(scale=0.02), rng=np.random.default_rng(1)
        )
        exact = minimum_cut(g, rng=np.random.default_rng(2))
        assert exact.value == pytest.approx(stoer_wagner(g).value)
        assert approx.low <= exact.value * 2.0 + 1e-9
        assert approx.high >= exact.value / 2.0 - 1e-9

    def test_ledger_accounts_full_stack(self):
        g = community_graph((12, 14), rng=7)
        ledger = Ledger()
        minimum_cut(g, rng=np.random.default_rng(3), ledger=ledger)
        phase_work = sum(
            rec.work
            for name, rec in ledger.phases.items()
            if name in ("approximate", "packing", "two-respecting")
        )
        # the three top phases account for (almost) all the work
        assert phase_work == pytest.approx(ledger.work, rel=0.05)

    def test_thread_pool_tree_evaluation(self):
        """Coarse-grained real parallelism: evaluate candidate trees on a
        thread pool and agree with the sequential result."""
        from repro.packing import pack_trees
        from repro.tworespect import two_respecting_min_cut

        g = random_connected_graph(35, 120, rng=8, max_weight=5)
        lam = stoer_wagner(g).value
        packing = pack_trees(g, lam / 2, rng=np.random.default_rng(4))
        values = parallel_map(
            lambda parent: two_respecting_min_cut(g, parent).value,
            packing.tree_parents,
            max_workers=4,
        )
        assert min(values) == pytest.approx(lam)

    def test_brent_projection_from_real_run(self):
        g = random_connected_graph(60, 240, rng=9, max_weight=5)
        ledger = Ledger()
        minimum_cut(g, rng=np.random.default_rng(5), ledger=ledger)
        curve = speedup_curve(ledger.work, ledger.depth, [1, 16, 256])
        assert curve[0].speedup <= 1.0 + 1e-9
        assert curve[-1].speedup > curve[0].speedup


@pytest.mark.parametrize("script", ["quickstart.py", "community_split.py"])
def test_examples_run(script):
    """The fast examples must run to completion as subprocesses."""
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
