"""Durable daemon state: the WAL format, snapshots, verified recovery,
the injected ``wal.*`` / ``snapshot.*`` fault sites, the serve layer's
``--state-dir`` wiring, and the client's reconnect loop.

The pivotal invariants (docs/robustness.md):

* an acknowledged write survives any process crash — recovery restores
  the newest valid snapshot and replays the WAL suffix through the real
  ``CutEngine.update`` path, bit-identical to a never-crashed twin;
* damage is never skipped silently — a torn tail is truncated (the one
  legal crash shape), everything else refuses loudly with a typed
  :class:`~repro.errors.RecoveryError` / ``WalCorruptionError``.
"""

import os
import socket
import threading
import time

import pytest

from repro.durability import (
    GENESIS_CHAIN,
    DurableState,
    WriteAheadLog,
    advance_chain,
    list_snapshots,
    load_snapshot,
    scan,
    write_snapshot,
)
from repro.durability.wal import MAGIC, torn_creation
from repro.engine import CutEngine
from repro.engine.deltas import random_delta
from repro.errors import RecoveryError, SimulatedCrash, WalCorruptionError
from repro.graphs import random_connected_graph
from repro.obs import CounterRegistry, counting_scope
from repro.resilience.faults import (
    SITE_SNAPSHOT_PARTIAL,
    SITE_WAL_CORRUPT_RECORD,
    SITE_WAL_TORN_WRITE,
    Fault,
    FaultPlan,
)
from repro.serve import (
    InProcServer,
    ServerConfig,
    ServiceClient,
    TenantQuota,
    TenantRegistry,
    ThreadedTCPServer,
)

SEED = 7


@pytest.fixture(scope="module")
def graph():
    return random_connected_graph(18, 44, rng=3, max_weight=6)


def _engine_ledger(engine):
    """The durable identity of one engine: what recovery must restore."""
    return {
        "epoch": engine.epoch,
        "staleness": engine.staleness,
        "fingerprint": engine.fingerprint_chain()["current"]["fingerprint"],
        "value": float(engine.min_cut().value),
    }


def _grow(ds, registry, graph, updates, *, seed=SEED, rng_seed=0):
    """Drive the serve layer's append discipline by hand: register a
    tenant + graph and stream ``updates`` mutation batches, logging each
    applied one exactly as ``CutService`` does."""
    import numpy as np

    tenant = registry.register("t", TenantQuota(budget_class="standard"))
    ds.log_tenant("t", tenant.quota)
    engine = tenant.register_graph("g", graph, seed=seed)
    ds.log_graph("t", "g", graph, seed=seed)
    rng = np.random.default_rng(rng_seed)
    shadow = engine.graph
    applied = 0
    while applied < updates:
        kw = random_delta(shadow, rng)
        if not kw:
            continue
        upd = engine.update(**kw)
        if upd.noop:
            continue
        applied += 1
        shadow = engine.graph
        ds.log_update(
            "t",
            "g",
            kw,
            {
                "epoch": upd.epoch,
                "staleness": upd.staleness,
                "value": upd.value,
                "fingerprint": engine.fingerprint_chain()["current"][
                    "fingerprint"
                ],
            },
        )
    return engine


# ---------------------------------------------------------------------------
# WAL format
# ---------------------------------------------------------------------------
class TestWalFormat:
    def test_create_scan_empty(self, tmp_path):
        path = str(tmp_path / "wal-1.log")
        wal = WriteAheadLog.create(path, start_seq=1, chain=GENESIS_CHAIN)
        wal.close()
        header, records, valid_length = scan(path)
        assert header["start_seq"] == 1
        assert header["chain"] == GENESIS_CHAIN
        assert records == []
        assert valid_length == os.path.getsize(path)

    def test_append_advances_chain(self, tmp_path):
        path = str(tmp_path / "wal-1.log")
        wal = WriteAheadLog.create(path, start_seq=1, chain=GENESIS_CHAIN)
        s1, c1 = wal.append("tenant", {"name": "t"})
        s2, c2 = wal.append("update", {"x": 1})
        wal.close()
        assert (s1, s2) == (1, 2)
        _header, records, _ = scan(path)
        assert [r.seq for r in records] == [1, 2]
        assert [r.chain for r in records] == [c1, c2]
        # the chain is the documented sha256 construction, re-derivable
        # by any reader from the header chain + raw bodies
        assert c1 != GENESIS_CHAIN and c2 != c1
        assert records[0].kind == "tenant" and records[1].data == {"x": 1}

    def test_torn_tail_truncated_on_open(self, tmp_path):
        path = str(tmp_path / "wal-1.log")
        wal = WriteAheadLog.create(path, start_seq=1, chain=GENESIS_CHAIN)
        wal.append("update", {"x": 1})
        wal.close()
        clean = os.path.getsize(path)
        with open(path, "ab") as fh:
            fh.write(b"\x00\x00\x00\x40\xde\xad")  # half a frame prefix
        _header, records, valid_length = scan(path)
        assert len(records) == 1 and valid_length == clean
        reg = CounterRegistry()
        with counting_scope(reg):
            wal2 = WriteAheadLog.open_append(path)
        assert reg.get("wal.truncated_tail") == 1.0
        assert os.path.getsize(path) == clean
        assert wal2.next_seq == 2
        wal2.append("update", {"x": 2})  # appending after truncation works
        wal2.close()
        _h, records, _ = scan(path)
        assert [r.seq for r in records] == [1, 2]

    def test_corrupt_midlog_refuses_loudly(self, tmp_path):
        path = str(tmp_path / "wal-1.log")
        wal = WriteAheadLog.create(path, start_seq=1, chain=GENESIS_CHAIN)
        ends = [len(MAGIC)]
        for i in range(3):
            wal.append("update", {"x": i})
            wal.sync()
            ends.append(os.path.getsize(path))
        wal.close()
        # flip one byte inside record 2's body: mid-log damage with a
        # valid record after it must never be skipped
        with open(path, "r+b") as fh:
            fh.seek(ends[2] - 1)
            byte = fh.read(1)
            fh.seek(ends[2] - 1)
            fh.write(bytes([byte[0] ^ 0xFF]))
        with pytest.raises(WalCorruptionError):
            scan(path)

    def test_corrupt_final_record_is_torn_tail(self, tmp_path):
        path = str(tmp_path / "wal-1.log")
        wal = WriteAheadLog.create(path, start_seq=1, chain=GENESIS_CHAIN)
        wal.append("update", {"x": 1})
        wal.append("update", {"x": 2})
        wal.close()
        with open(path, "r+b") as fh:
            fh.seek(os.path.getsize(path) - 1)
            fh.write(b"\xff")
        _header, records, valid_length = scan(path)
        assert [r.seq for r in records] == [1]
        assert valid_length < os.path.getsize(path)

    def test_bad_magic_refuses(self, tmp_path):
        path = str(tmp_path / "wal-1.log")
        with open(path, "wb") as fh:
            fh.write(b"NOTAWAL!" + b"\x00" * 32)
        with pytest.raises(WalCorruptionError):
            scan(path)
        assert not torn_creation(path)

    def test_torn_creation_shapes(self, tmp_path):
        for content, torn in (
            (b"", True),
            (MAGIC[:3], True),
            (MAGIC, True),
            (MAGIC + b"\x00\x00", True),  # half a header-frame prefix
            (b"XXX", False),
        ):
            path = str(tmp_path / f"wal-{len(content)}.log")
            with open(path, "wb") as fh:
                fh.write(content)
            assert torn_creation(path) is torn, content

    @pytest.mark.parametrize(
        "policy,expect",
        [("always", 5.0), ("batch", 2.0), ("never", 0.0)],
    )
    def test_fsync_policy_matrix(self, tmp_path, policy, expect):
        path = str(tmp_path / "wal-1.log")
        reg = CounterRegistry()
        with counting_scope(reg):
            wal = WriteAheadLog.create(
                path, start_seq=1, chain=GENESIS_CHAIN,
                fsync=policy, batch_every=2,
            )
            for i in range(5):
                wal.append("update", {"x": i})
            assert reg.get("wal.fsyncs") == expect
            wal.close()  # flushes the batch remainder (except 'never')
        assert reg.get("wal.appends") == 5.0
        if policy == "batch":
            assert reg.get("wal.fsyncs") == 3.0
        if policy == "never":
            assert reg.get("wal.fsyncs") == 0.0
        # whatever the policy, every append is readable after close
        _h, records, _ = scan(path)
        assert len(records) == 5


# ---------------------------------------------------------------------------
# injected fault sites
# ---------------------------------------------------------------------------
class TestWalFaults:
    def test_torn_write_crashes_then_recovers(self, tmp_path):
        path = str(tmp_path / "wal-1.log")
        plan = FaultPlan(
            faults=(Fault(site=SITE_WAL_TORN_WRITE, at=1),), name="torn"
        )
        wal = WriteAheadLog.create(
            path, start_seq=1, chain=GENESIS_CHAIN, faults=plan
        )
        wal.append("update", {"x": 0})
        with pytest.raises(SimulatedCrash):
            wal.append("update", {"x": 1})
        wal.abandon()
        # the torn half-frame is on disk; open truncates and resumes
        wal2 = WriteAheadLog.open_append(path)
        assert wal2.next_seq == 2
        wal2.close()

    def test_corrupt_record_detected_on_scan(self, tmp_path):
        path = str(tmp_path / "wal-1.log")
        plan = FaultPlan(
            faults=(Fault(site=SITE_WAL_CORRUPT_RECORD, at=0, seed=5),),
            name="rot",
        )
        wal = WriteAheadLog.create(
            path, start_seq=1, chain=GENESIS_CHAIN, faults=plan
        )
        _, chain = wal.append("update", {"x": 0})  # hits disk corrupted
        wal.append("update", {"x": 1})  # clean, making the rot mid-log
        wal.close()
        # the in-memory chain advanced over the *intended* bytes
        body = b'{"data":{"x":0},"kind":"update","seq":1}'
        assert chain == advance_chain(GENESIS_CHAIN, body)
        with pytest.raises(WalCorruptionError):
            scan(path)

    def test_snapshot_partial_quarantined(self, tmp_path, graph):
        plan = FaultPlan(
            faults=(Fault(site=SITE_SNAPSHOT_PARTIAL, at=1),), name="snap"
        )
        ds = DurableState(
            str(tmp_path), snapshot_interval=100, faults=plan
        )
        registry = TenantRegistry()
        reg = CounterRegistry()
        with counting_scope(reg):
            ds.recover(registry)
            _grow(ds, registry, graph, 2)
            good = ds.snapshot()  # fault at=1: this first one is clean
            assert good is not None
            bad = ds.snapshot()  # fires: truncated payload fails verify
        assert bad is None
        assert reg.get("wal.snapshot_verify_failed") == 1.0
        seqs = [seq for seq, _ in list_snapshots(str(tmp_path))]
        # the bad snapshot is quarantined: only the clean one remains
        # (tenant + graph + 2 updates = seq 4), and recovery from this
        # directory still round-trips exactly
        assert seqs == [4]
        ds.abandon()
        reg2 = TenantRegistry()
        DurableState(str(tmp_path)).recover(reg2)
        eng, _ = reg2.get("t").engine("g")
        assert eng.fingerprint_chain()["current"]["fingerprint"]


# ---------------------------------------------------------------------------
# snapshots
# ---------------------------------------------------------------------------
class TestSnapshots:
    def test_write_load_round_trip(self, tmp_path):
        path = write_snapshot(
            str(tmp_path), seq=4, chain="c" * 64, payload={"k": [1, 2]}
        )
        state = load_snapshot(path)
        assert state["seq"] == 4
        assert state["chain"] == "c" * 64
        assert state["payload"] == {"k": [1, 2]}

    def test_bit_rot_detected(self, tmp_path):
        path = write_snapshot(str(tmp_path), seq=1, chain="c" * 64, payload={})
        size = os.path.getsize(path)
        with open(path, "r+b") as fh:
            fh.seek(size // 2)
            byte = fh.read(1)
            fh.seek(size // 2)
            fh.write(bytes([byte[0] ^ 0x55]))
        with pytest.raises(RecoveryError):
            load_snapshot(path)


# ---------------------------------------------------------------------------
# DurableState recovery
# ---------------------------------------------------------------------------
class TestDurableState:
    def test_empty_directory_boots_at_genesis(self, tmp_path):
        ds = DurableState(str(tmp_path))
        stats = ds.recover(TenantRegistry())
        assert stats == {
            "snapshot_seq": 0,
            "records_seen": 0,
            "records_replayed": 0,
        }
        ds.close()
        # and reopening the same directory finds the generation again
        ds2 = DurableState(str(tmp_path))
        assert ds2.recover(TenantRegistry())["records_seen"] == 0
        ds2.close()

    def test_crash_recovery_is_bit_identical(self, tmp_path, graph):
        ds = DurableState(str(tmp_path), snapshot_interval=1000)
        registry = TenantRegistry()
        ds.recover(registry)
        engine = _grow(ds, registry, graph, 5)
        want = _engine_ledger(engine)
        ds.abandon()  # crash: no final snapshot — pure WAL replay

        reg = CounterRegistry()
        registry2 = TenantRegistry()
        with counting_scope(reg):
            stats = DurableState(str(tmp_path)).recover(registry2)
        assert stats["records_replayed"] == 7  # tenant + graph + 5 updates
        assert reg.get("recovery.updates_replayed") == 5.0
        engine2, _ = registry2.get("t").engine("g")
        assert _engine_ledger(engine2) == want

    def test_snapshot_plus_suffix_replay(self, tmp_path, graph):
        ds = DurableState(str(tmp_path), snapshot_interval=3)
        registry = TenantRegistry()
        ds.recover(registry)
        engine = _grow(ds, registry, graph, 7)
        want = _engine_ledger(engine)
        ds.abandon()
        assert list_snapshots(str(tmp_path))  # interval forced snapshots

        registry2 = TenantRegistry()
        stats = DurableState(str(tmp_path)).recover(registry2)
        assert stats["snapshot_seq"] > 0  # restarted from a snapshot...
        engine2, _ = registry2.get("t").engine("g")
        assert _engine_ledger(engine2) == want  # ...bit-identical anyway

    def test_retention_prunes_and_still_recovers(self, tmp_path, graph):
        ds = DurableState(
            str(tmp_path), snapshot_interval=2, snapshot_retention=2
        )
        registry = TenantRegistry()
        ds.recover(registry)
        engine = _grow(ds, registry, graph, 9)
        want = _engine_ledger(engine)
        ds.close()
        assert len(list_snapshots(str(tmp_path))) <= 2

        registry2 = TenantRegistry()
        DurableState(str(tmp_path)).recover(registry2)
        engine2, _ = registry2.get("t").engine("g")
        assert _engine_ledger(engine2) == want

    def test_mismatched_snapshot_chain_refused(self, tmp_path, graph):
        ds = DurableState(str(tmp_path), snapshot_interval=1000)
        registry = TenantRegistry()
        ds.recover(registry)
        _grow(ds, registry, graph, 3)
        genuine = ds.snapshot()
        assert genuine is not None
        ds.abandon()
        # forge a snapshot telling a different history: same payload,
        # same seq, wrong chained fingerprint
        state = load_snapshot(genuine)
        os.unlink(genuine)
        write_snapshot(
            str(tmp_path),
            seq=state["seq"],
            chain="0" * 64,
            payload=state["payload"],
        )
        with pytest.raises(RecoveryError):
            DurableState(str(tmp_path)).recover(TenantRegistry())

    def test_snapshot_beyond_log_refused(self, tmp_path, graph):
        ds = DurableState(str(tmp_path), snapshot_interval=1000)
        registry = TenantRegistry()
        ds.recover(registry)
        _grow(ds, registry, graph, 2)
        ds.abandon()
        write_snapshot(
            str(tmp_path), seq=10_000, chain="1" * 64, payload={"tenants": {}}
        )
        with pytest.raises(RecoveryError):
            DurableState(str(tmp_path)).recover(TenantRegistry())

    def test_torn_rotation_debris_dropped(self, tmp_path, graph):
        ds = DurableState(str(tmp_path), snapshot_interval=1000)
        registry = TenantRegistry()
        ds.recover(registry)
        engine = _grow(ds, registry, graph, 3)
        want = _engine_ledger(engine)
        last_seq = ds.stats()["seq"]
        ds.abandon()
        # a crash mid-rotation: the next generation's file exists but
        # holds only part of the magic
        debris = os.path.join(
            str(tmp_path), f"wal-{last_seq + 1:016d}.log"
        )
        with open(debris, "wb") as fh:
            fh.write(MAGIC[:5])
        registry2 = TenantRegistry()
        DurableState(str(tmp_path)).recover(registry2)
        # the debris was dropped; the same path is now the freshly
        # created boot generation, with a real header
        header, records, _ = scan(debris)
        assert header["start_seq"] == last_seq + 1 and records == []
        engine2, _ = registry2.get("t").engine("g")
        assert _engine_ledger(engine2) == want

    def test_orphan_tmp_swept_on_recover(self, tmp_path):
        ds = DurableState(str(tmp_path))
        ds.recover(TenantRegistry())
        ds.close()
        orphan = os.path.join(str(tmp_path), "snapshot-junk.bin.tmp")
        with open(orphan, "wb") as fh:
            fh.write(b"half-written")
        ds2 = DurableState(str(tmp_path))
        ds2.recover(TenantRegistry())
        assert not os.path.exists(orphan)
        ds2.close()

    def test_restore_state_tamper_refused(self, graph):
        engine = CutEngine(graph, seed=SEED)
        engine.update(reweight={0: engine.graph.w[0] + 1.0})
        state = engine.snapshot_state()
        fresh = CutEngine(graph, seed=SEED)
        tampered = dict(state)
        tampered["fingerprints"] = {
            **dict(state["fingerprints"]), "current": "f" * 64
        }
        with pytest.raises(RecoveryError):
            fresh.restore_state(tampered)
        with pytest.raises(RecoveryError):
            CutEngine(graph, seed=SEED).restore_state(
                {**dict(state), "version": 99}
            )
        with pytest.raises(RecoveryError):
            # different pipeline params are a different params_key:
            # refuse rather than silently serve a divergent engine
            CutEngine(graph, seed=SEED, epsilon=0.31).restore_state(
                dict(state)
            )
        # the untampered state still restores exactly
        restored = CutEngine(graph, seed=SEED).restore_state(dict(state))
        assert _engine_ledger(restored) == _engine_ledger(engine)


# ---------------------------------------------------------------------------
# serve wiring: --state-dir end to end
# ---------------------------------------------------------------------------
class TestServeDurability:
    def _config(self, tmp_path, **kw):
        kw.setdefault("state_dir", str(tmp_path))
        kw.setdefault("workers", 2)
        return ServerConfig(port=0, **kw)

    def test_reboot_round_trip(self, tmp_path, graph):
        edges = [[int(u), int(v), float(w)] for u, v, w in graph.edges()]
        with InProcServer(self._config(tmp_path, snapshot_interval=3)) as srv:
            srv.request({"op": "register_tenant", "tenant": "t",
                         "budget_class": "standard"})
            srv.request({"op": "register_graph", "tenant": "t", "graph": "g",
                         "n": graph.n, "edges": edges, "seed": SEED,
                         "warm": False})
            for reweight in ({"0": 3.5}, {"1": 2.25}, {"2": 1.125}):
                resp = srv.request({"op": "update", "tenant": "t",
                                    "graph": "g", "reweight": reweight})
                assert resp["type"] == "result", resp
            before = srv.request(
                {"op": "graph_info", "tenant": "t", "graph": "g"}
            )
            value = srv.request(
                {"op": "min_cut", "tenant": "t", "graph": "g"}
            )["value"]
            assert before["durable"] is True
            metrics = srv.request({"op": "metrics"})
            assert metrics["durability"]["state_dir"] == str(tmp_path)

        with InProcServer(self._config(tmp_path)) as srv2:
            after = srv2.request(
                {"op": "graph_info", "tenant": "t", "graph": "g"}
            )
            for key in ("epoch", "staleness", "fingerprint", "n", "m"):
                assert after[key] == before[key], key
            assert srv2.request(
                {"op": "min_cut", "tenant": "t", "graph": "g"}
            )["value"] == value

    def test_noop_updates_not_logged(self, tmp_path, graph):
        edges = [[int(u), int(v), float(w)] for u, v, w in graph.edges()]
        with InProcServer(self._config(tmp_path)) as srv:
            srv.request({"op": "register_tenant", "tenant": "t",
                         "budget_class": "standard"})
            srv.request({"op": "register_graph", "tenant": "t", "graph": "g",
                         "n": graph.n, "edges": edges, "seed": SEED,
                         "warm": False})
            seq0 = srv.request({"op": "metrics"})["durability"]["seq"]
            resp = srv.request({"op": "update", "tenant": "t", "graph": "g",
                                "reweight": {}})
            assert resp["noop"] is True
            assert srv.request({"op": "metrics"})["durability"]["seq"] == seq0

    def test_stateless_config_reports_not_durable(self, graph):
        edges = [[int(u), int(v), float(w)] for u, v, w in graph.edges()]
        with InProcServer(ServerConfig(port=0, workers=1)) as srv:
            srv.request({"op": "register_tenant", "tenant": "t"})
            srv.request({"op": "register_graph", "tenant": "t", "graph": "g",
                         "n": graph.n, "edges": edges, "seed": SEED,
                         "warm": False})
            info = srv.request({"op": "graph_info", "tenant": "t",
                                "graph": "g"})
            assert info["durable"] is False
            assert srv.request({"op": "metrics"})["durability"] is None


# ---------------------------------------------------------------------------
# client reconnect
# ---------------------------------------------------------------------------
class TestClientReconnect:
    def test_survives_daemon_restart(self):
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        config = ServerConfig(host="127.0.0.1", port=port, workers=1)
        server = ThreadedTCPServer(config).start()
        client = ServiceClient("127.0.0.1", port, timeout=30.0)
        reg = CounterRegistry()
        try:
            assert client.call_with_retry({"op": "ping"})["ok"]
            server.stop()  # the daemon goes away mid-session...
            restarted = []

            def bring_back():
                time.sleep(0.3)
                restarted.append(ThreadedTCPServer(config).start())

            t = threading.Thread(target=bring_back)
            t.start()
            with counting_scope(reg):
                # ...and the retry loop rides the restart out
                resp = client.call_with_retry(
                    {"op": "ping"}, reconnects=20, backoff_s=0.05
                )
            t.join()
            server = restarted[0]
            assert resp["ok"]
            assert client.reconnects >= 1
            assert reg.get("client.reconnects") == float(client.reconnects)
        finally:
            client.close()
            server.stop()

    def test_reconnects_bounded(self):
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        client = ServiceClient("127.0.0.1", port, timeout=5.0)
        with pytest.raises(ConnectionRefusedError):
            client.call_with_retry(
                {"op": "ping"}, reconnects=2, backoff_s=0.01
            )
        assert client.reconnects == 2
