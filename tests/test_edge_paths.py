"""Edge paths and less-travelled branches across modules."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graphs import Graph, planted_cut_graph, random_connected_graph
from repro.graphs.validate import brute_force_min_cut, side_from_vertices, validate_cut
from repro.monge import triangle_minimum
from repro.pram import Ledger, parallel_map
from repro.rangesearch import CutOracle, RangeTree1D
from repro.sparsify import HierarchyParams

from tests.conftest import make_graph, make_rooted


class TestExecutor:
    def test_single_item_sequential(self):
        assert parallel_map(lambda x: x + 1, [41]) == [42]

    def test_empty(self):
        assert parallel_map(lambda x: x, []) == []

    def test_order_preserved(self):
        out = parallel_map(lambda x: x * x, list(range(20)), max_workers=4)
        assert out == [x * x for x in range(20)]

    def test_single_worker_fallback(self):
        assert parallel_map(lambda x: -x, [1, 2, 3], max_workers=1) == [-1, -2, -3]


class TestValidateHelpers:
    def test_side_from_vertices(self):
        side = side_from_vertices(5, [1, 3])
        assert side.tolist() == [False, True, False, True, False]

    def test_validate_cut_accepts(self):
        g = make_graph(10, 30, 1)
        side = np.zeros(10, dtype=bool)
        side[0] = True
        validate_cut(g, side, g.cut_value(side))

    def test_validate_cut_rejects_wrong_value(self):
        g = make_graph(10, 30, 2)
        side = np.zeros(10, dtype=bool)
        side[0] = True
        with pytest.raises(AssertionError):
            validate_cut(g, side, g.cut_value(side) + 1.0)

    def test_validate_cut_rejects_trivial_side(self):
        g = make_graph(6, 14, 3)
        with pytest.raises(GraphFormatError):
            validate_cut(g, np.zeros(6, dtype=bool), 0.0)

    def test_brute_force_limits(self):
        with pytest.raises(ValueError):
            brute_force_min_cut(make_graph(21, 60, 4))
        with pytest.raises(GraphFormatError):
            brute_force_min_cut(Graph.empty(1))

    def test_brute_force_disconnected(self):
        g = Graph.from_edges(4, [(0, 1), (2, 3)])
        val, side = brute_force_min_cut(g)
        assert val == 0.0
        assert 0 < side.sum() < 4


class TestOracleGuards:
    def test_graph_larger_than_tree_rejected(self):
        g = make_graph(20, 50, 5)
        _, rt = make_rooted(make_graph(10, 25, 6))
        with pytest.raises(ValueError):
            CutOracle(g, rt)

    def test_triangle_non_inverse_mode(self, rng):
        """inverse=False treats blocks as Monge directly."""
        density = rng.random((10, 10))
        m = rng.random(10)[:, None] + rng.random(10)[None, :] - density.cumsum(0).cumsum(1)
        val, a, b = triangle_minimum(range(10), lambda i, j: m[i, j], inverse=False)
        brute = min(m[i, j] for i in range(10) for j in range(i + 1, 10))
        assert val == pytest.approx(brute)


class TestRangeTreeClamping:
    def test_index_range_clamps(self):
        t = RangeTree1D(np.arange(5), np.ones(5))
        assert t.query_index_range(-3, 99) == pytest.approx(5.0)
        assert t.query_index_range(4, 2) == 0.0

    def test_all_equal_keys(self):
        t = RangeTree1D(np.full(16, 7), np.ones(16), branching=4)
        assert t.query_value_range(7, 7) == pytest.approx(16.0)
        assert t.query_value_range(6, 6) == 0.0


class TestLedgerMisc:
    def test_absorb_merges_phases(self):
        a, b = Ledger(), Ledger()
        with b.phase("x"):
            b.charge(5, 2)
        a.absorb_parallel(b)
        assert a.phases["x"].work == 5

    def test_phase_record_repr(self):
        led = Ledger()
        with led.phase("p"):
            led.charge(1, 1)
        assert "p" in repr(led.phases["p"])


class TestHierarchyParams:
    def test_paper_scale_windows(self):
        p = HierarchyParams(scale=1.0)
        lo, hi = p.window(1024)
        assert lo == pytest.approx(750.0)
        assert hi == pytest.approx(1250.0)
        assert p.cert_k(1024) == 2000
        assert p.cert_edge_budget(1024) == 4000

    def test_scaled_windows_keep_ratio(self):
        p1 = HierarchyParams(scale=1.0)
        p2 = HierarchyParams(scale=0.02)
        lo1, hi1 = p1.window(256)
        lo2, hi2 = p2.window(256)
        assert hi1 / lo1 == pytest.approx(hi2 / lo2)


class TestScaleValidation:
    def test_planted_cut_at_scale(self):
        """n = 1200, far beyond brute-force reach.  Unit-weight clusters
        with a 0.5-weight planted bridge make the planted cut *provably*
        unique: any other bipartition must cut at least one unit edge."""
        from repro.core import minimum_cut

        g = planted_cut_graph(
            600, 600, 0.5, inside_degree=10, rng=11, max_weight=1, cut_edges=1
        )
        res = minimum_cut(g, rng=np.random.default_rng(0))
        assert res.value == pytest.approx(0.5)
        side_sizes = sorted([int(res.side.sum()), g.n - int(res.side.sum())])
        assert side_sizes == [600, 600]
