"""Fast-kernel parity: bit-identical answers AND identical ledger charges.

The fast paths (``repro.kernels``) are only admissible because they are
indistinguishable from the reference instrument: same cut values, same
witnesses, same structural visit counters, and the same ledger work and
depth — totals and per-phase.  These tests enforce that contract on
randomized instances, plus the executor-backend semantics (fault
injection and budget checkpoints must fire under the process backend,
whose workers cannot see the caller's contextvars).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import (
    BranchErrors,
    BudgetExceeded,
    FaultInjected,
    InvalidParameterError,
)
from repro.graphs import Graph, random_connected_graph
from repro.kernels import force_kernels, kernels_mode
from repro.kernels.treecache import shared_lca
from repro.pram import Ledger, executor_backend, force_executor, parallel_map
from repro.primitives import all_subtree_costs, postorder
from repro.rangesearch import CutOracle
from repro.resilience.budget import Budget, budget_scope
from repro.resilience.faults import SITE_EXECUTOR_BRANCH, Fault, FaultPlan, inject
from repro.trees import binarize_parent
from repro.tworespect.algorithm import two_respecting_min_cut

from tests.conftest import make_graph, make_rooted


def _random_instance(rng, n, extra, wfloat):
    """A random spanning tree plus ``extra`` random non-tree edges."""
    parent = np.full(n, -1, dtype=np.int64)
    for v in range(1, n):
        parent[v] = rng.integers(0, v)
    eu, ev, ew = [], [], []
    for v in range(1, n):
        eu.append(v)
        ev.append(int(parent[v]))
        ew.append(float(rng.uniform(0.5, 4)) if wfloat else float(rng.integers(1, 10)))
    for _ in range(extra):
        a, b = rng.integers(0, n, 2)
        if a == b:
            continue
        eu.append(int(a))
        ev.append(int(b))
        ew.append(float(rng.uniform(0.5, 4)) if wfloat else float(rng.integers(1, 10)))
    g = Graph(n, np.array(eu), np.array(ev), np.array(ew, dtype=np.float64))
    return g, parent


def _run_both(graph, parent, branching, decomposition):
    out = {}
    for mode in ("reference", "fast"):
        led = Ledger()
        with force_kernels(mode):
            res = two_respecting_min_cut(
                graph,
                parent,
                branching=branching,
                decomposition=decomposition,
                ledger=led,
            )
        out[mode] = (res, led)
    return out


class TestEndToEndParity:
    """two_respecting_min_cut: fast vs reference on random instances."""

    @pytest.mark.parametrize("branching,decomposition", [(2, "heavy"), (3, "bough"), (5, "heavy")])
    def test_fixed_configs(self, branching, decomposition):
        rng = np.random.default_rng(branching * 17)
        for _ in range(4):
            n = int(rng.integers(4, 36))
            g, parent = _random_instance(rng, n, int(rng.integers(0, 3 * n)), True)
            both = _run_both(g, parent, branching, decomposition)
            (rr, lr), (rf, lf) = both["reference"], both["fast"]
            assert rf.value == rr.value  # bit-identical, not approx
            assert rf.witness_edges == rr.witness_edges
            assert np.array_equal(rf.side, rr.side)
            assert rf.stats == rr.stats
            assert (lf.work, lf.depth) == (lr.work, lr.depth)

    def test_property_fuzz(self):
        """Randomized property check incl. per-phase ledger records."""
        rng = np.random.default_rng(99)
        for _ in range(10):
            n = int(rng.integers(2, 40))
            extra = int(rng.integers(0, 4 * n))
            wfloat = bool(rng.integers(0, 2))
            b = int(rng.choice([2, 3, 5]))
            dec = str(rng.choice(["heavy", "bough"]))
            g, parent = _random_instance(rng, n, extra, wfloat)
            both = _run_both(g, parent, b, dec)
            (rr, lr), (rf, lf) = both["reference"], both["fast"]
            assert rf.value == rr.value
            assert rf.stats == rr.stats
            assert (lf.work, lf.depth) == (lr.work, lr.depth)
            for name, rec in lr.phases.items():
                fr = lf.phases[name]
                assert (fr.work, fr.depth) == (rec.work, rec.depth), name

    def test_env_default_is_fast(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNELS", raising=False)
        assert kernels_mode() == "fast"
        monkeypatch.setenv("REPRO_KERNELS", "bogus")
        with pytest.raises(InvalidParameterError):
            kernels_mode()


class TestOracleParity:
    """Batched oracle answers and charges vs scalar reference calls."""

    def _oracles(self, seed=3, n=40, m=300, branching=3):
        g = make_graph(n, m, seed)
        pair = {}
        for mode in ("reference", "fast"):
            # fresh tree per mode: the LCA memo is per tree *instance*,
            # so sharing one tree would make the second build cheaper
            _, rt = make_rooted(g)
            led = Ledger()
            with force_kernels(mode):
                o = CutOracle(g, rt, branching=branching, ledger=led)
                o.prefill_costs(ledger=led)
            pair[mode] = (o, led)
        return pair, rt

    def test_cut_values_and_charges(self):
        pair, rt = self._oracles()
        (oref, lref), (ofast, lfast) = pair["reference"], pair["fast"]
        assert ofast.batched and not oref.batched
        assert lfast.work == lref.work and lfast.depth == lref.depth
        rng = np.random.default_rng(0)
        for _ in range(60):
            u, v = (int(x) for x in rng.integers(1, rt.n, 2))
            la, lb = Ledger(), Ledger()
            assert ofast.cut(u, v, ledger=la) == oref.cut(u, v, ledger=lb)
            assert (la.work, la.depth) == (lb.work, lb.depth)
        assert ofast.total_nodes_visited == oref.total_nodes_visited

    def test_cut_many_matches_scalar_loop(self):
        pair, rt = self._oracles(seed=5)
        (oref, _), (ofast, _) = pair["reference"], pair["fast"]
        rng = np.random.default_rng(1)
        us = rng.integers(1, rt.n, 80)
        vs = rng.integers(1, rt.n, 80)
        vals, works, depths = ofast.cut_many(us, vs)
        for i in range(len(us)):
            led = Ledger()
            assert vals[i] == oref.cut(int(us[i]), int(vs[i]), ledger=led)
            assert works[i] == led.work
            assert depths[i] == led.depth

    def test_cost_many_and_argmin(self):
        pair, rt = self._oracles(seed=8)
        (oref, _), (ofast, _) = pair["reference"], pair["fast"]
        us = np.arange(1, rt.n, dtype=np.int64)
        vals, works, depths = ofast.cost_many(us)
        for i, u in enumerate(us):
            led = Ledger()
            assert vals[i] == oref.cost(int(u), ledger=led)
            # prefilled cache: every cost() is a (1, 1) hit in both paths
            assert (works[i], depths[i]) == (led.work, led.depth) == (1.0, 1.0)
        best_val, best_u = ofast.cost_argmin()
        scan = [(oref.cost(int(u)), int(u)) for u in us]
        want = min(scan, key=lambda t: t[0])
        assert (best_val, best_u) == want


class TestSharedTreeStructures:
    def test_treesums_bit_identical(self):
        rng = np.random.default_rng(4)
        for _ in range(8):
            g = make_graph(int(rng.integers(5, 60)), int(rng.integers(10, 300)), int(rng.integers(1e6)))
            _, rt = make_rooted(g)
            la, lb = Ledger(), Ledger()
            lca = shared_lca(rt)
            out = all_subtree_costs(g, rt, ledger=la, lca=lca)
            # reference accumulation replay: three sequential np.add.at
            anc = lca.query(g.u, g.v)
            charges = np.zeros(rt.n)
            np.add.at(charges, g.u, g.w)
            np.add.at(charges, g.v, g.w)
            np.add.at(charges, anc, -2.0 * g.w)
            by_post = charges[rt.order]
            ref = np.cumsum(by_post)
            start = rt.post - (rt.size - 1)
            incl = ref[rt.post]
            excl = np.where(start > 0, ref[start - 1], 0.0)
            assert np.array_equal(out, incl - excl)
            # second call with the memoised LCA charges less than a cold one
            all_subtree_costs(g, rt, ledger=lb, lca=lca)
            assert lb.work == la.work or lb.work < la.work

    def test_shared_lca_charges_once(self):
        g = make_graph(30, 80, 2)
        _, rt = make_rooted(g)
        l1, l2 = Ledger(), Ledger()
        a = shared_lca(rt, ledger=l1)
        b = shared_lca(rt, ledger=l2)
        assert a is b
        assert l1.work > 0.0
        assert l2.work == 0.0
        # a fresh tree instance gets (and pays for) its own table
        rt2 = postorder(binarize_parent(np.array([-1, 0, 0, 1])).parent)
        l3 = Ledger()
        c = shared_lca(rt2, ledger=l3)
        assert c is not a and l3.work > 0.0


def _square(x):
    return x * x


class TestExecutorBackends:
    def test_resolution_order(self, monkeypatch):
        monkeypatch.delenv("REPRO_EXECUTOR", raising=False)
        assert executor_backend() == "thread"
        monkeypatch.setenv("REPRO_EXECUTOR", "process")
        assert executor_backend() == "process"
        with force_executor("sync"):
            assert executor_backend() == "sync"
        monkeypatch.setenv("REPRO_EXECUTOR", "fibers")
        with pytest.raises(InvalidParameterError):
            executor_backend()
        with pytest.raises(InvalidParameterError):
            with force_executor("fibers"):
                pass

    @pytest.mark.parametrize("backend", ["thread", "process", "sync"])
    def test_map_matches_sequential(self, backend):
        with force_executor(backend):
            assert parallel_map(_square, list(range(9))) == [x * x for x in range(9)]
            assert parallel_map(_square, []) == []

    def test_shared_thread_pool_reused(self):
        import repro.pram.executor as ex

        with force_executor("thread"):
            parallel_map(_square, [1, 2, 3], max_workers=3)
            first = ex._shared_pools.get(("thread", 3, ""))
            parallel_map(_square, [4, 5, 6], max_workers=3)
            assert first is not None
            assert ex._shared_pools.get(("thread", 3, "")) is first

    def test_process_falls_back_for_lambdas(self):
        with force_executor("process"):
            assert parallel_map(lambda x: x + 1, [1, 2, 3]) == [2, 3, 4]

    @pytest.mark.parametrize("backend", ["thread", "process", "sync"])
    def test_fault_injection_fires(self, backend):
        with force_executor(backend):
            plan = FaultPlan([Fault(SITE_EXECUTOR_BRANCH, index=1)])
            with inject(plan):
                with pytest.raises(FaultInjected):
                    parallel_map(_square, [1, 2, 3])
            assert plan.exhausted
            # a retry survives the single injected failure
            plan = FaultPlan([Fault(SITE_EXECUTOR_BRANCH, index=1)])
            with inject(plan):
                assert parallel_map(_square, [1, 2, 3], retries=1) == [1, 4, 9]

    def test_budget_checkpoint_fires_under_process(self):
        led = Ledger()
        budget = Budget(max_work=5.0, ledger=led).start()
        led.charge(work=10.0, depth=1.0)  # exhaust before dispatch
        with force_executor("process"), budget_scope(budget):
            with pytest.raises(BranchErrors) as err:
                parallel_map(_square, [1, 2, 3], on_error="aggregate")
        failures = err.value.failures
        assert len(failures) == 3
        assert all(isinstance(e, BudgetExceeded) for _, e in failures)

    def test_budget_ok_under_process(self):
        led = Ledger()
        budget = Budget(max_work=1e9, ledger=led).start()
        with force_executor("process"), budget_scope(budget):
            assert parallel_map(_square, [2, 3]) == [4, 9]
