"""End-to-end exact minimum cut (Theorems 4.1 / 4.26)."""

import numpy as np
import pytest

from repro.arena.solvers import stoer_wagner
from repro.core import branching_for_epsilon, minimum_cut
from repro.errors import GraphFormatError, InvalidParameterError
from repro.graphs import (
    Graph,
    barbell_graph,
    community_graph,
    cycle_graph,
    planted_cut_graph,
    random_connected_graph,
)
from repro.pram import Ledger

from tests.conftest import assert_valid_cut, make_graph


class TestExactness:
    def test_random_corpus(self):
        rng = np.random.default_rng(42)
        for trial in range(10):
            n = int(rng.integers(5, 60))
            g = random_connected_graph(
                n, int(n * rng.uniform(1.2, 4)), rng=rng, max_weight=int(rng.integers(1, 9))
            )
            res = minimum_cut(g, rng=np.random.default_rng(trial))
            sw = stoer_wagner(g)
            assert res.value == pytest.approx(sw.value)
            assert_valid_cut(g, res.value, res.side)

    def test_unweighted_corpus(self):
        rng = np.random.default_rng(43)
        for trial in range(6):
            n = int(rng.integers(5, 50))
            g = random_connected_graph(n, 3 * n, rng=rng, max_weight=1)
            res = minimum_cut(g, rng=np.random.default_rng(trial + 100))
            assert res.value == pytest.approx(stoer_wagner(g).value)

    def test_barbell(self):
        res = minimum_cut(barbell_graph(8, 1.5), rng=np.random.default_rng(0))
        assert res.value == pytest.approx(1.5)
        assert min(res.side.sum(), (~res.side).sum()) == 8

    def test_cycle(self):
        res = minimum_cut(cycle_graph(15), rng=np.random.default_rng(0))
        assert res.value == pytest.approx(2.0)

    def test_planted(self):
        g = planted_cut_graph(18, 22, 3.0, rng=9)
        res = minimum_cut(g, rng=np.random.default_rng(0))
        assert res.value == pytest.approx(stoer_wagner(g).value)

    def test_community(self):
        g = community_graph((14, 12, 10), rng=10)
        res = minimum_cut(g, rng=np.random.default_rng(0))
        assert res.value == pytest.approx(stoer_wagner(g).value)

    def test_float_weights(self):
        rng = np.random.default_rng(44)
        g = random_connected_graph(25, 80, rng=rng, max_weight=1)
        g = g.with_weights(rng.uniform(0.5, 3.0, g.m))
        res = minimum_cut(g, rng=np.random.default_rng(1))
        assert res.value == pytest.approx(stoer_wagner(g).value)

    def test_parallel_edges(self):
        g = Graph.from_edges(3, [(0, 1, 1.0), (0, 1, 1.0), (1, 2, 3.0), (0, 2, 1.0)])
        res = minimum_cut(g, rng=np.random.default_rng(0))
        assert res.value == pytest.approx(stoer_wagner(g).value)


class TestVariants:
    def test_epsilon_branching(self):
        g = make_graph(40, 200, 20, max_weight=5)
        sw = stoer_wagner(g).value
        for eps in (0.2, 0.5):
            res = minimum_cut(g, epsilon=eps, rng=np.random.default_rng(2))
            assert res.value == pytest.approx(sw)
            assert res.stats["branching"] == branching_for_epsilon(g.n, eps)

    def test_bough_decomposition_variant(self):
        g = make_graph(35, 140, 21)
        res = minimum_cut(g, decomposition="bough", rng=np.random.default_rng(3))
        assert res.value == pytest.approx(stoer_wagner(g).value)

    def test_thorough_mode(self):
        g = make_graph(25, 90, 22)
        res = minimum_cut(g, max_trees=None, rng=np.random.default_rng(4))
        assert res.value == pytest.approx(stoer_wagner(g).value)

    def test_approx_value_skips_stage_one(self):
        g = make_graph(30, 110, 23)
        lam = stoer_wagner(g).value
        led = Ledger()
        res = minimum_cut(g, approx_value=lam, rng=np.random.default_rng(5), ledger=led)
        assert res.value == pytest.approx(lam)
        assert "approximate" not in led.phases

    def test_deterministic_given_rng(self):
        g = make_graph(30, 110, 24)
        a = minimum_cut(g, rng=np.random.default_rng(7))
        b = minimum_cut(g, rng=np.random.default_rng(7))
        assert a.value == b.value
        assert (a.side == b.side).all()


class TestEdgeCases:
    def test_two_vertices(self):
        g = Graph.from_edges(2, [(0, 1, 4.5), (0, 1, 1.0)])
        res = minimum_cut(g)
        assert res.value == pytest.approx(5.5)

    def test_disconnected(self):
        g = Graph.from_edges(5, [(0, 1, 1.0), (2, 3, 1.0), (3, 4, 1.0)])
        res = minimum_cut(g)
        assert res.value == 0.0
        assert 0 < res.side.sum() < 5

    def test_single_vertex_rejected(self):
        with pytest.raises(GraphFormatError):
            minimum_cut(Graph.empty(1))

    def test_bad_epsilon(self):
        with pytest.raises(InvalidParameterError):
            minimum_cut(make_graph(10, 30, 25), epsilon=-0.5)

    def test_bad_epsilon_is_not_a_graph_error(self):
        # a non-graph parameter must not masquerade as a format problem
        with pytest.raises(InvalidParameterError):
            branching_for_epsilon(64, 0.0)
        assert not issubclass(InvalidParameterError, GraphFormatError)

    def test_branching_for_epsilon(self):
        assert branching_for_epsilon(256, None) == 2
        assert branching_for_epsilon(256, 0.5) == 16
        assert branching_for_epsilon(1, 0.5) == 2


class TestAccounting:
    def test_phase_totals(self):
        g = make_graph(40, 150, 26)
        led = Ledger()
        minimum_cut(g, rng=np.random.default_rng(8), ledger=led)
        assert {"approximate", "packing", "two-respecting"} <= set(led.phases)
        assert led.work > 0

    def test_depth_polylog(self):
        g = make_graph(100, 400, 27)
        led = Ledger()
        minimum_cut(g, rng=np.random.default_rng(9), ledger=led)
        # Theorem 4.1: O(log^3 n) depth (generous model constant)
        assert led.depth <= 120 * np.log2(g.n) ** 3

    def test_stats_fields(self):
        g = make_graph(30, 100, 28)
        res = minimum_cut(g, rng=np.random.default_rng(10))
        for key in ("num_trees", "skeleton_edges", "lambda_underestimate", "branching"):
            assert key in res.stats
