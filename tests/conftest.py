"""Shared fixtures and helpers for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import Graph, random_connected_graph
from repro.primitives import postorder, root_tree, spanning_forest_graph
from repro.trees import binarize_parent


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


def make_graph(n: int, m: int, seed: int, max_weight: int = 5) -> Graph:
    """Deterministic connected test graph."""
    return random_connected_graph(n, m, rng=seed, max_weight=max_weight)


def make_rooted(graph: Graph, root: int = 0, seed: int = 0):
    """(parent_array, binarized RootedTree) of a spanning tree of graph."""
    fids, _ = spanning_forest_graph(graph)
    parent = root_tree(graph.n, graph.u[fids], graph.v[fids], root)
    bt = binarize_parent(parent)
    return parent, postorder(bt.parent)


def assert_valid_cut(graph: Graph, value: float, side) -> None:
    side = np.asarray(side, dtype=bool)
    assert side.shape == (graph.n,)
    assert 0 < side.sum() < graph.n
    assert abs(graph.cut_value(side) - value) < 1e-9
