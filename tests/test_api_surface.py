"""Snapshot tests for the public ``repro`` API surface.

Guards the unified entry-point contract: every top-level export
resolves, every entry point takes the graph positionally and everything
else keyword-only (the legacy positional shim on
``approximate_minimum_cut`` is gone — positionals now raise TypeError),
and the result types are immutable value objects.
"""

import inspect

import numpy as np
import pytest

import repro
from repro.errors import InvalidParameterError
from repro.graphs import random_connected_graph

#: the documented top-level surface — extending it is fine, but removing
#: or renaming a name is a breaking change and must fail this snapshot
PUBLIC_API = [
    "__version__",
    "Graph",
    "Ledger",
    "minimum_cut",
    "resilient_minimum_cut",
    "approximate_minimum_cut",
    "two_respecting_min_cut",
    "CutEngine",
    "UpdateResult",
    "GraphDelta",
    "ArtifactCache",
    "CutResult",
    "ApproxResult",
    "VerificationReport",
    "DegradationEvent",
    "Supervisor",
    "RunReport",
    "CutPipelineParams",
    "SkeletonParams",
    "HierarchyParams",
    "ArenaResult",
    "Contender",
    "get_contender",
    "contender_names",
]

ENTRY_POINTS = ["minimum_cut", "resilient_minimum_cut", "approximate_minimum_cut"]


@pytest.fixture
def graph():
    return random_connected_graph(16, 40, rng=2, max_weight=4)


class TestTopLevelExports:
    def test_all_snapshot(self):
        assert repro.__all__ == PUBLIC_API

    @pytest.mark.parametrize("name", PUBLIC_API)
    def test_every_name_resolves(self, name):
        assert getattr(repro, name) is not None

    def test_from_import(self):
        from repro import ApproxResult, CutResult, VerificationReport

        assert CutResult.__module__ == "repro.results"
        assert ApproxResult.__module__ == "repro.results"
        assert VerificationReport.__module__ == "repro.results"

    def test_lazy_exports_are_canonical_objects(self):
        from repro.core.mincut import minimum_cut
        from repro.obs.report import RunReport

        assert repro.minimum_cut is minimum_cut
        assert repro.RunReport is RunReport

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError, match="no attribute 'nope'"):
            repro.nope

    def test_dir_lists_lazy_names(self):
        assert set(PUBLIC_API) <= set(dir(repro))


class TestKeywordOnlySignatures:
    @pytest.mark.parametrize("name", ENTRY_POINTS)
    def test_graph_positional_rest_keyword_only(self, name):
        sig = inspect.signature(getattr(repro, name))
        params = list(sig.parameters.values())
        assert params[0].name == "graph"
        assert params[0].kind is inspect.Parameter.POSITIONAL_OR_KEYWORD
        for p in params[1:]:
            assert p.kind is inspect.Parameter.KEYWORD_ONLY, (
                f"{name}(... {p.name}) must be keyword-only"
            )

    @pytest.mark.parametrize("name", ENTRY_POINTS)
    def test_trace_and_ledger_kwargs_exist(self, name):
        sig = inspect.signature(getattr(repro, name))
        assert "trace" in sig.parameters
        assert sig.parameters["trace"].default is False
        assert "ledger" in sig.parameters

    def test_approximate_has_no_var_positional(self):
        # the old deprecation shim was *args under the hood; the real
        # function must expose (and enforce) the keyword-only signature
        sig = inspect.signature(repro.approximate_minimum_cut)
        kinds = {p.kind for p in sig.parameters.values()}
        assert inspect.Parameter.VAR_POSITIONAL not in kinds

    def test_approximate_rejects_positionals(self, graph):
        # the one-release shim is gone: positionals are a plain TypeError
        with pytest.raises(TypeError):
            repro.approximate_minimum_cut(graph, repro.HierarchyParams())


class TestPipelineParams:
    def test_bundle_and_individual_conflict(self, graph):
        with pytest.raises(InvalidParameterError, match="not both"):
            repro.minimum_cut(
                graph,
                pipeline=repro.CutPipelineParams(),
                decomposition="bough",
                rng=np.random.default_rng(0),
            )

    def test_bundle_passthrough(self, graph):
        pp = repro.CutPipelineParams(decomposition="bough")
        res = repro.minimum_cut(graph, pipeline=pp, rng=np.random.default_rng(0))
        assert res.value > 0

    def test_resolve_from_individuals(self):
        pp = repro.CutPipelineParams.resolve(None, decomposition="bough")
        assert pp.decomposition == "bough"
        assert repro.CutPipelineParams.resolve(pp) is pp


class TestResultImmutability:
    def test_cut_result_stats_read_only(self, graph):
        res = repro.minimum_cut(graph, rng=np.random.default_rng(0))
        with pytest.raises(TypeError):
            res.stats["num_trees"] = -1.0
        with pytest.raises(TypeError):
            del res.stats["num_trees"]
        assert dict(res.stats)  # still readable/copyable

    def test_approx_result_stats_read_only(self, graph):
        res = repro.approximate_minimum_cut(graph, rng=np.random.default_rng(0))
        with pytest.raises(TypeError):
            res.stats["x"] = 1.0

    def test_result_fields_frozen(self, graph):
        res = repro.minimum_cut(graph, rng=np.random.default_rng(0))
        with pytest.raises(AttributeError):
            res.value = 0.0

    def test_verification_report_is_real_type(self, graph):
        res = repro.resilient_minimum_cut(graph, seed=1)
        assert isinstance(res.verification, repro.VerificationReport)
        assert res.verification.ok
        assert res.verification.passed("weight_recompute") in (True, None)
