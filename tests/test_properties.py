"""Property-based tests (hypothesis) over the core data structures and
algorithm invariants."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.graphs import Graph
from repro.monge import check_monge, smawk_row_minima, triangle_minimum
from repro.pram import Ledger, preduce, pscan_exclusive
from repro.primitives import minimum_spanning_forest, postorder, root_tree, spanning_forest
from repro.rangesearch import CutOracle, NaiveCutOracle, RangeTree1D, RangeTree2D
from repro.trees import binarize_parent
from repro.tworespect import brute_force_two_respecting, two_respecting_min_cut

SETTINGS = dict(
    deadline=None,
    max_examples=30,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def connected_graphs(draw, max_n=18, max_weight=5):
    """Small connected weighted graphs: random tree + extra edges."""
    n = draw(st.integers(min_value=2, max_value=max_n))
    parent_choices = [draw(st.integers(0, i - 1)) for i in range(1, n)]
    extra_count = draw(st.integers(0, 2 * n))
    edges = [(i, parent_choices[i - 1]) for i in range(1, n)]
    for _ in range(extra_count):
        a = draw(st.integers(0, n - 1))
        b = draw(st.integers(0, n - 1))
        if a != b:
            edges.append((a, b))
    weights = [draw(st.integers(1, max_weight)) for _ in edges]
    u = np.array([e[0] for e in edges], dtype=np.int64)
    v = np.array([e[1] for e in edges], dtype=np.int64)
    w = np.array(weights, dtype=np.float64)
    return Graph(n, u, v, w, validate=False)


@st.composite
def weighted_points_1d(draw):
    n = draw(st.integers(0, 40))
    keys = [draw(st.integers(-10, 10)) for _ in range(n)]
    ws = [draw(st.floats(0.1, 10.0, allow_nan=False)) for _ in range(n)]
    return np.array(keys), np.array(ws)


class TestRangeTreeProperties:
    @given(data=weighted_points_1d(), b=st.integers(2, 6),
           lo=st.integers(-12, 12), hi=st.integers(-12, 12))
    @settings(**SETTINGS)
    def test_1d_matches_mask_sum(self, data, b, lo, hi):
        keys, ws = data
        t = RangeTree1D(keys, ws, branching=b)
        expect = ws[(keys >= lo) & (keys <= hi)].sum() if len(keys) else 0.0
        assert abs(t.query_value_range(lo, hi) - expect) < 1e-9

    @given(data=weighted_points_1d(), b=st.integers(2, 5),
           data2=weighted_points_1d(),
           rect=st.tuples(st.integers(-12, 12), st.integers(-12, 12),
                          st.integers(-12, 12), st.integers(-12, 12)))
    @settings(**SETTINGS)
    def test_2d_matches_mask_sum(self, data, b, data2, rect):
        xs, ws = data
        ys = np.resize(data2[0], xs.shape) if xs.size else xs
        x1, x2, y1, y2 = rect
        t = RangeTree2D(xs, ys, ws, branching=b)
        if xs.size:
            mask = (xs >= x1) & (xs <= x2) & (ys >= y1) & (ys <= y2)
            expect = ws[mask].sum()
        else:
            expect = 0.0
        assert abs(t.query(x1, x2, y1, y2) - expect) < 1e-9


class TestGraphProperties:
    @given(g=connected_graphs())
    @settings(**SETTINGS)
    def test_cut_value_symmetric_in_side(self, g):
        rng = np.random.default_rng(0)
        side = rng.random(g.n) < 0.5
        assert g.cut_value(side) == g.cut_value(~side)

    @given(g=connected_graphs())
    @settings(**SETTINGS)
    def test_coalesce_preserves_cut_values(self, g):
        g2 = g.coalesced()
        rng = np.random.default_rng(1)
        for _ in range(5):
            side = rng.random(g.n) < 0.5
            assert abs(g.cut_value(side) - g2.cut_value(side)) < 1e-9

    @given(g=connected_graphs())
    @settings(**SETTINGS)
    def test_spanning_forest_spans(self, g):
        ids, labels = spanning_forest(g.n, g.u, g.v)
        assert ids.shape[0] == g.n - 1
        assert len(np.unique(labels)) == 1

    @given(g=connected_graphs())
    @settings(**SETTINGS)
    def test_mst_weight_minimal_vs_networkx(self, g):
        import networkx as nx

        ids, _ = minimum_spanning_forest(g.n, g.u, g.v, g.w)
        # parallel edges: MST uses the lightest copy, so aggregate by min
        nxg = nx.Graph()
        nxg.add_nodes_from(range(g.n))
        for a, b, w in g.edges():
            if nxg.has_edge(a, b):
                nxg[a][b]["weight"] = min(nxg[a][b]["weight"], w)
            else:
                nxg.add_edge(a, b, weight=w)
        expect = nx.minimum_spanning_tree(nxg).size(weight="weight")
        assert abs(g.w[ids].sum() - expect) < 1e-6


class TestOracleProperties:
    @given(g=connected_graphs(max_n=14))
    @settings(**SETTINGS)
    def test_oracle_cut_matches_naive_everywhere(self, g):
        ids, _ = spanning_forest(g.n, g.u, g.v)
        parent = root_tree(g.n, g.u[ids], g.v[ids], 0)
        rt = postorder(binarize_parent(parent).parent)
        oracle = CutOracle(g, rt)
        naive = NaiveCutOracle(g, rt)
        for u in range(rt.n):
            if rt.parent[u] < 0:
                continue
            for v in range(u, rt.n):
                if rt.parent[v] < 0:
                    continue
                assert abs(oracle.cut(u, v) - naive.cut(u, v)) < 1e-9

    @given(g=connected_graphs(max_n=12))
    @settings(**SETTINGS)
    def test_two_respecting_equals_brute_force(self, g):
        ids, _ = spanning_forest(g.n, g.u, g.v)
        parent = root_tree(g.n, g.u[ids], g.v[ids], 0)
        res = two_respecting_min_cut(g, parent)
        rt = postorder(binarize_parent(parent).parent)
        bval, _, _ = brute_force_two_respecting(g, rt)
        assert abs(res.value - bval) < 1e-9
        assert abs(g.cut_value(res.side) - res.value) < 1e-9


class TestMongeProperties:
    @given(
        nr=st.integers(1, 8),
        nc=st.integers(1, 8),
        seed=st.integers(0, 10_000),
    )
    @settings(**SETTINGS)
    def test_smawk_row_minima(self, nr, nc, seed):
        rng = np.random.default_rng(seed)
        density = rng.integers(0, 3, (nr, nc)).astype(float)
        m = (
            rng.integers(0, 4, nr)[:, None]
            + rng.integers(0, 4, nc)[None, :]
            - density.cumsum(0).cumsum(1)
        )
        check_monge(m)
        res = smawk_row_minima(range(nr), range(nc), lambda i, j: m[i, j])
        for i in range(nr):
            assert abs(res[i][0] - m[i].min()) < 1e-12

    @given(n=st.integers(2, 12), seed=st.integers(0, 10_000))
    @settings(**SETTINGS)
    def test_triangle_minimum(self, n, seed):
        rng = np.random.default_rng(seed)
        density = rng.random((n, n))
        m = -(rng.random(n)[:, None] + rng.random(n)[None, :] - density.cumsum(0).cumsum(1))
        val, a, b = triangle_minimum(range(n), lambda i, j: m[i, j])
        brute = min(m[i, j] for i in range(n) for j in range(i + 1, n))
        assert abs(val - brute) < 1e-12


class TestSparsifyProperties:
    @given(g=connected_graphs(max_n=14, max_weight=4), k=st.integers(1, 8))
    @settings(**SETTINGS)
    def test_certificate_weight_bound_and_cut_preservation(self, g, k):
        from repro.sparsify import connectivity_certificate

        cert = connectivity_certificate(g, k)
        assert cert.total_weight <= k * (g.n - 1) + 1e-9
        # probe random bipartitions; cuts <= k must be preserved exactly
        rng = np.random.default_rng(int(g.total_weight) + k)
        for _ in range(6):
            side = rng.random(g.n) < 0.5
            if not side.any() or side.all():
                continue
            val = g.cut_value(side)
            if val <= k:
                assert abs(cert.cut_value(side) - val) < 1e-9

    @given(g=connected_graphs(max_n=10, max_weight=60), seed=st.integers(0, 1000))
    @settings(**SETTINGS)
    def test_hierarchy_nesting_invariants(self, g, seed):
        from repro.sparsify import HierarchyParams, build_truncated_hierarchy

        h = build_truncated_hierarchy(
            g,
            params=HierarchyParams(scale=0.05),
            rng=np.random.default_rng(seed),
        )
        h.validate()  # nesting + exclusivity + alignment

    @given(g=connected_graphs(max_n=12, max_weight=5), seed=st.integers(0, 1000))
    @settings(**SETTINGS)
    def test_skeleton_connected_and_capped(self, g, seed):
        from repro.arena.solvers import stoer_wagner
        from repro.sparsify import build_skeleton

        lam = stoer_wagner(g).value
        skel = build_skeleton(g, lam / 2, rng=np.random.default_rng(seed))
        assert skel.skeleton.w.max(initial=0) <= skel.cap
        if skel.p >= 1.0:
            assert skel.skeleton.is_connected()


class TestCombinatorProperties:
    @given(xs=st.lists(st.integers(-100, 100), max_size=50))
    @settings(**SETTINGS)
    def test_preduce_equals_sum(self, xs):
        assert preduce(lambda a, b: a + b, xs, 0) == sum(xs)

    @given(xs=st.lists(st.floats(0, 100, allow_nan=False), max_size=50))
    @settings(**SETTINGS)
    def test_pscan_matches_cumsum(self, xs):
        arr = np.array(xs)
        out = pscan_exclusive(arr)
        expect = np.concatenate([[0.0], np.cumsum(arr)[:-1]]) if len(xs) else arr
        assert np.allclose(out, expect)
