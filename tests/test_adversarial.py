"""Adversarial structures and failure injection.

Pathological tree shapes (stars, caterpillars, brooms), extreme weight
spreads, bridges, and near-degenerate graphs — the inputs most likely to
break index arithmetic, Monge orientation, or the centroid search.
"""

import numpy as np
import pytest

from repro.arena.solvers import stoer_wagner
from repro.core import minimum_cut
from repro.graphs import Graph, random_connected_graph
from repro.primitives import postorder
from repro.trees import binarize_parent
from repro.tworespect import brute_force_two_respecting, two_respecting_min_cut

from tests.conftest import assert_valid_cut


def star_tree(n):
    parent = np.zeros(n, dtype=np.int64)
    parent[0] = -1
    return parent


def caterpillar_tree(n):
    """Spine with a leaf hanging off every spine vertex: odd ids extend
    the spine, even ids hang off its current tip."""
    parent = np.empty(n, dtype=np.int64)
    parent[0] = -1
    spine = [0]
    for i in range(1, n):
        parent[i] = spine[-1]
        if i % 2 == 1:
            spine.append(i)
    return parent


def broom_tree(n):
    """A long handle ending in a fan of bristles."""
    handle = n // 2
    parent = np.empty(n, dtype=np.int64)
    parent[0] = -1
    for i in range(1, handle):
        parent[i] = i - 1
    for i in range(handle, n):
        parent[i] = handle - 1
    return parent


def graph_on_tree(parent, extra_edges, rng, max_weight=5):
    n = parent.shape[0]
    child = np.flatnonzero(parent >= 0)
    u = [int(x) for x in child]
    v = [int(parent[x]) for x in child]
    for _ in range(extra_edges):
        a, b = rng.integers(0, n, 2)
        if a != b:
            u.append(int(a))
            v.append(int(b))
    w = rng.integers(1, max_weight + 1, size=len(u)).astype(np.float64)
    return Graph(n, np.array(u), np.array(v), w, validate=False)


@pytest.mark.parametrize(
    "shape", [star_tree, caterpillar_tree, broom_tree], ids=["star", "caterpillar", "broom"]
)
class TestPathologicalTrees:
    def test_two_respecting_exact(self, shape):
        rng = np.random.default_rng(hash(shape.__name__) % 2**31)
        for n in (9, 24, 41):
            parent = shape(n)
            g = graph_on_tree(parent, 3 * n, rng)
            res = two_respecting_min_cut(g, parent)
            rt = postorder(binarize_parent(parent).parent)
            bval, _, _ = brute_force_two_respecting(g, rt)
            assert res.value == pytest.approx(bval)
            assert_valid_cut(g, res.value, res.side)

    def test_full_pipeline_exact(self, shape):
        rng = np.random.default_rng(1 + hash(shape.__name__) % 2**31)
        parent = shape(30)
        g = graph_on_tree(parent, 90, rng)
        res = minimum_cut(g, rng=np.random.default_rng(0))
        assert res.value == pytest.approx(stoer_wagner(g).value)


class TestExtremeWeights:
    def test_huge_weight_spread(self):
        rng = np.random.default_rng(5)
        g = random_connected_graph(30, 90, rng=rng, max_weight=1)
        w = g.w.copy()
        w[::3] *= 1e9  # nine orders of magnitude spread
        g = g.with_weights(w)
        res = minimum_cut(g, rng=np.random.default_rng(1))
        assert res.value == pytest.approx(stoer_wagner(g).value, rel=1e-9)

    def test_tiny_fractional_weights(self):
        rng = np.random.default_rng(6)
        g = random_connected_graph(25, 70, rng=rng, max_weight=1)
        g = g.with_weights(rng.uniform(1e-6, 1e-5, g.m))
        res = minimum_cut(g, rng=np.random.default_rng(2))
        assert res.value == pytest.approx(stoer_wagner(g).value, rel=1e-6)

    def test_single_heavy_bridge(self):
        """Two cliques; the bridge is HEAVIER than the clique cuts, so
        the optimum is inside a clique — exercises the nested case."""
        from repro.graphs import barbell_graph

        g = barbell_graph(6, bridge_weight=50.0)
        res = minimum_cut(g, rng=np.random.default_rng(3))
        assert res.value == pytest.approx(stoer_wagner(g).value)
        assert res.value == pytest.approx(5.0)  # isolate one clique vertex

    def test_unique_light_bridge(self):
        from repro.graphs import barbell_graph

        g = barbell_graph(7, bridge_weight=0.001)
        res = minimum_cut(g, rng=np.random.default_rng(4))
        assert res.value == pytest.approx(0.001)


class TestDegenerateShapes:
    def test_path_graph(self):
        n = 30
        u = np.arange(n - 1)
        v = np.arange(1, n)
        g = Graph(n, u, v, np.arange(1, n, dtype=np.float64))
        res = minimum_cut(g, rng=np.random.default_rng(5))
        assert res.value == pytest.approx(1.0)  # the lightest path edge

    def test_two_triangles_sharing_a_vertex_would_be_cut(self):
        """An articulation vertex: min cut isolates one triangle side."""
        g = Graph.from_edges(
            5, [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0), (2, 3, 1.0), (3, 4, 1.0), (2, 4, 1.0)]
        )
        res = minimum_cut(g, rng=np.random.default_rng(6))
        assert res.value == pytest.approx(stoer_wagner(g).value)

    def test_complete_graph_all_degrees_equal(self):
        from repro.graphs import complete_graph

        g = complete_graph(9)
        res = minimum_cut(g, rng=np.random.default_rng(7))
        assert res.value == pytest.approx(8.0)

    def test_near_bipartite_double_star(self):
        """Two hubs sharing all leaves — many equal-value cuts."""
        edges = []
        n_leaves = 8
        for i in range(n_leaves):
            edges.append((2 + i, 0, 1.0))
            edges.append((2 + i, 1, 1.0))
        edges.append((0, 1, 1.0))
        g = Graph.from_edges(2 + n_leaves, edges)
        res = minimum_cut(g, rng=np.random.default_rng(8))
        assert res.value == pytest.approx(stoer_wagner(g).value)


class TestFuzzPipeline:
    def test_randomized_corpus_wide(self):
        """A wider randomized sweep than the core tests: mixed density,
        mixed weights, mixed roots."""
        rng = np.random.default_rng(99)
        for trial in range(12):
            n = int(rng.integers(4, 45))
            density = float(rng.uniform(1.05, 6.0))
            wmax = int(rng.integers(1, 12))
            g = random_connected_graph(n, int(n * density), rng=rng, max_weight=wmax)
            res = minimum_cut(g, rng=np.random.default_rng(trial * 7 + 1))
            sw = stoer_wagner(g)
            assert res.value == pytest.approx(sw.value), (trial, n, density, wmax)
            assert_valid_cut(g, res.value, res.side)
