"""Enumerating all minimum cuts (repro.core.allcuts)."""

import numpy as np
import pytest

from repro.core import all_minimum_cuts
from repro.errors import GraphFormatError
from repro.graphs import Graph, barbell_graph, cycle_graph, random_connected_graph


def brute_count(g, lam, atol=1e-9):
    count = 0
    for bits in range(1, 1 << (g.n - 1)):
        side = np.zeros(g.n, dtype=bool)
        for j in range(g.n - 1):
            if bits >> j & 1:
                side[j + 1] = True
        if abs(g.cut_value(side) - lam) < atol:
            count += 1
    return count


class TestAllMinimumCuts:
    def test_cycle_has_choose_two(self):
        """Every pair of cycle edges induces a minimum cut."""
        for n in (4, 5, 7):
            cuts = all_minimum_cuts(cycle_graph(n), rng=np.random.default_rng(n))
            assert len(cuts) == n * (n - 1) // 2
            assert all(c.value == pytest.approx(2.0) for c in cuts)

    def test_unique_min_cut(self):
        cuts = all_minimum_cuts(barbell_graph(5, 0.5), rng=np.random.default_rng(0))
        assert len(cuts) == 1
        assert cuts[0].value == pytest.approx(0.5)

    def test_matches_exhaustive_enumeration(self):
        rng = np.random.default_rng(3)
        for t in range(6):
            g = random_connected_graph(8, 18, rng=rng, max_weight=3)
            cuts = all_minimum_cuts(g, rng=np.random.default_rng(t + 10))
            lam = cuts[0].value
            assert len(cuts) == brute_count(g, lam)

    def test_all_results_distinct_and_valid(self):
        g = cycle_graph(6)
        cuts = all_minimum_cuts(g, rng=np.random.default_rng(1))
        keys = set()
        for c in cuts:
            side = c.side if not c.side[0] else ~c.side
            keys.add(tuple(side.tolist()))
            assert g.cut_value(c.side) == pytest.approx(c.value)
        assert len(keys) == len(cuts)

    def test_sorted_by_smaller_side(self):
        cuts = all_minimum_cuts(cycle_graph(8), rng=np.random.default_rng(2))
        sizes = [int(min(c.side.sum(), (~c.side).sum())) for c in cuts]
        assert sizes == sorted(sizes)

    def test_disconnected_reports_components(self):
        g = Graph.from_edges(5, [(0, 1, 1.0), (2, 3, 1.0), (3, 4, 1.0)])
        cuts = all_minimum_cuts(g)
        assert all(c.value == 0.0 for c in cuts)
        assert len(cuts) >= 1

    def test_rejects_tiny(self):
        with pytest.raises(GraphFormatError):
            all_minimum_cuts(Graph.empty(1))

    def test_weighted_ties(self):
        """Parallel light edges create several equal minimum cuts."""
        g = Graph.from_edges(
            4, [(0, 1, 1.0), (1, 2, 5.0), (2, 3, 1.0), (0, 3, 5.0), (0, 2, 5.0)]
        )
        cuts = all_minimum_cuts(g, rng=np.random.default_rng(4))
        lam = cuts[0].value
        assert len(cuts) == brute_count(g, lam)
