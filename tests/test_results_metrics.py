"""Result containers and the metrics/experiment harness."""

import numpy as np
import pytest

from repro.metrics import (
    MeasuredPoint,
    dense_workload,
    density_sweep_workloads,
    fit_power_law,
    format_ratio,
    format_table,
    normalised_curve,
)
from repro.results import ApproxResult, CutResult


class TestCutResult:
    def test_partition(self):
        r = CutResult(value=2.0, side=np.array([True, False, True]))
        a, b = r.partition()
        assert a.tolist() == [0, 2]
        assert b.tolist() == [1]

    def test_side_coerced_to_bool(self):
        r = CutResult(value=1.0, side=np.array([1, 0, 1]))
        assert r.side.dtype == bool

    def test_repr(self):
        r = CutResult(value=3.5, side=np.array([True, False]))
        assert "3.5" in repr(r)

    def test_witness_default_none(self):
        assert CutResult(value=0.0, side=np.array([True, False])).witness_edges is None


class TestApproxResult:
    def test_fields(self):
        r = ApproxResult(estimate=10.0, low=6.7, high=13.3, skeleton_layer=2)
        assert r.low < r.estimate < r.high
        assert "layer=2" in repr(r)


class TestTables:
    def test_format_table_alignment(self):
        out = format_table(["name", "value"], [["abc", 1.5], ["d", 123456.0]])
        lines = out.split("\n")
        assert len(lines) == 4
        assert "name" in lines[0]
        assert "---" in lines[1]

    def test_title(self):
        out = format_table(["a"], [[1]], title="Table 1")
        assert out.startswith("Table 1")

    def test_format_ratio(self):
        assert format_ratio(4.0, 2.0) == "2.00"
        assert format_ratio(1.0, 0.0) == "inf"
        assert format_ratio(0.0, 0.0) == "1.0"


class TestWorkloads:
    def test_dense_workload_size(self):
        g = dense_workload(32, 1.5, seed=0)
        assert g.n == 32
        assert g.is_connected()
        assert g.m >= 32

    def test_density_sweep(self):
        gs = density_sweep_workloads(40, [2, 4, 8], seed=1)
        assert len(gs) == 3
        ms = [g.m for g in gs]
        assert ms == sorted(ms)

    def test_measured_point(self):
        p = MeasuredPoint(n=10, m=20, work=5.0, depth=2.0, extra={"x": 1.0})
        assert p.extra["x"] == 1.0


class TestFits:
    def test_power_law_exact(self):
        xs = [10.0, 100.0, 1000.0]
        ys = [3 * x**2 for x in xs]
        alpha, c = fit_power_law(xs, ys)
        assert alpha == pytest.approx(2.0)
        assert c == pytest.approx(3.0)

    def test_normalised_curve(self):
        assert normalised_curve([2.0, 4.0, 8.0]) == [1.0, 2.0, 4.0]
        assert normalised_curve([0.0, 5.0]) == [0.0, 0.0]
