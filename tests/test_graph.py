"""Graph container (repro.graphs.graph)."""

import numpy as np
import pytest

from repro.errors import GraphFormatError, IntegerWeightsRequired
from repro.graphs import Graph


def small():
    return Graph.from_edges(4, [(0, 1, 2.0), (1, 2, 3.0), (2, 3, 1.0), (0, 3, 4.0)])


class TestConstruction:
    def test_from_edges_weighted(self):
        g = small()
        assert g.n == 4 and g.m == 4
        assert g.total_weight == 10.0

    def test_from_edges_unweighted(self):
        g = Graph.from_edges(3, [(0, 1), (1, 2)])
        assert g.w.tolist() == [1.0, 1.0]

    def test_empty(self):
        g = Graph.empty(5)
        assert g.n == 5 and g.m == 0

    def test_no_edges_iterable(self):
        g = Graph.from_edges(2, [])
        assert g.m == 0

    def test_rejects_self_loop(self):
        with pytest.raises(GraphFormatError):
            Graph.from_edges(2, [(0, 0, 1.0)])

    def test_rejects_out_of_range(self):
        with pytest.raises(GraphFormatError):
            Graph.from_edges(2, [(0, 2, 1.0)])

    def test_rejects_negative_vertex(self):
        with pytest.raises(GraphFormatError):
            Graph.from_edges(2, [(-1, 1, 1.0)])

    def test_rejects_nonpositive_weight(self):
        with pytest.raises(GraphFormatError):
            Graph.from_edges(2, [(0, 1, 0.0)])

    def test_rejects_nan_weight(self):
        with pytest.raises(GraphFormatError):
            Graph.from_edges(2, [(0, 1, float("nan"))])

    def test_rejects_length_mismatch(self):
        with pytest.raises(GraphFormatError):
            Graph(2, np.array([0]), np.array([1, 0]))

    def test_non_contiguous_arrays_normalized(self):
        u = np.arange(10, dtype=np.int64)[::2]  # strided view
        v = np.arange(1, 11, dtype=np.int64)[::2]
        w = np.linspace(1, 2, 10)[::2]
        g = Graph(12, u, v, w)
        for col in (g.u, g.v, g.w):
            assert col.flags.c_contiguous
        assert g.u.tolist() == [0, 2, 4, 6, 8]
        assert g.w.tolist() == w.tolist()

    def test_wrong_dtype_arrays_converted(self):
        g = Graph(
            3,
            np.array([0, 1], dtype=np.int32),
            np.array([1, 2], dtype=np.uint16),
            np.array([1.5, 2.5], dtype=np.float32),
        )
        assert g.u.dtype == np.int64 and g.v.dtype == np.int64
        assert g.w.dtype == np.float64
        assert g.w.tolist() == [1.5, 2.5]

    def test_contiguous_input_not_copied(self):
        u = np.array([0, 1], dtype=np.int64)
        v = np.array([1, 2], dtype=np.int64)
        w = np.array([1.0, 2.0], dtype=np.float64)
        g = Graph(3, u, v, w)
        assert g.u is u and g.v is v and g.w is w

    def test_nbytes(self):
        g = small()
        assert g.nbytes == 24 * g.m

    def test_parallel_edges_allowed(self):
        g = Graph.from_edges(2, [(0, 1, 1.0), (0, 1, 2.0)])
        assert g.m == 2


class TestQueries:
    def test_weighted_degrees(self):
        g = small()
        assert g.weighted_degrees.tolist() == [6.0, 5.0, 4.0, 5.0]

    def test_neighbors(self):
        g = small()
        nbrs, eids = g.neighbors(1)
        assert sorted(nbrs.tolist()) == [0, 2]
        assert sorted(g.w[eids].tolist()) == [2.0, 3.0]

    def test_incidence_covers_each_edge_twice(self):
        g = small()
        offsets, nbr, eid = g.incidence
        assert nbr.shape[0] == 2 * g.m
        counts = np.bincount(eid, minlength=g.m)
        assert (counts == 2).all()

    def test_connected_components_connected(self):
        k, labels = small().connected_components()
        assert k == 1
        assert len(set(labels.tolist())) == 1

    def test_connected_components_split(self):
        g = Graph.from_edges(4, [(0, 1), (2, 3)])
        k, labels = g.connected_components()
        assert k == 2
        assert labels[0] == labels[1] and labels[2] == labels[3]
        assert labels[0] != labels[2]

    def test_is_connected_empty_graph(self):
        assert not Graph.empty(3).is_connected()
        assert Graph.empty(1).is_connected()


class TestTransformations:
    def test_with_weights_drops_zeros(self):
        g = small()
        g2 = g.with_weights(np.array([1.0, 0.0, 2.0, 0.0]))
        assert g2.m == 2
        assert g2.total_weight == 3.0

    def test_with_weights_length_check(self):
        with pytest.raises(GraphFormatError):
            small().with_weights(np.array([1.0]))

    def test_subgraph_edges_mask(self):
        g = small()
        g2 = g.subgraph_edges(np.array([True, False, True, False]))
        assert g2.m == 2

    def test_coalesced_merges_parallel(self):
        g = Graph.from_edges(3, [(0, 1, 1.0), (1, 0, 2.0), (1, 2, 1.0)])
        g2 = g.coalesced()
        assert g2.m == 2
        assert g2.total_weight == 4.0

    def test_coalesced_idempotent_on_simple(self):
        g = small()
        assert g.coalesced().m == g.m

    def test_require_integer_weights_ok(self):
        g = small()
        w = g.require_integer_weights()
        assert w.dtype == np.int64

    def test_require_integer_weights_rejects_floats(self):
        g = Graph.from_edges(2, [(0, 1, 1.5)])
        with pytest.raises(IntegerWeightsRequired):
            g.require_integer_weights()

    def test_integerized_identity_on_ints(self):
        g = small()
        g2, scale = g.integerized()
        assert g2 is g and scale == 1.0

    def test_integerized_scales_floats(self):
        g = Graph.from_edges(3, [(0, 1, 0.5), (1, 2, 1.25)])
        g2, scale = g.integerized()
        assert scale == pytest.approx(2000.0)
        assert g2.w.tolist() == [1000.0, 2500.0]
        g2.require_integer_weights()  # must not raise

    def test_integerized_relative_error_bounded(self):
        rng = np.random.default_rng(0)
        w = rng.uniform(0.1, 9.0, 20)
        g = Graph(21, np.arange(20), np.arange(1, 21), w)
        g2, scale = g.integerized()
        assert np.allclose(g2.w / scale, g.w, rtol=2e-3)

    def test_contract_roundtrip_total_weight(self):
        g = small()
        q, dense = g.contract(np.array([0, 1, 0, 1]))
        # classes {0,2} | {1,3}: all four edges cross (the 4-cycle is
        # bipartite under this colouring), coalescing into one superedge
        assert q.n == 2
        assert q.m == 1
        assert q.total_weight == pytest.approx(10.0)


class TestCuts:
    def test_cut_value(self):
        g = small()
        side = np.array([True, True, False, False])
        # crossing: (1,2) w3 and (0,3) w4
        assert g.cut_value(side) == 7.0

    def test_cut_edges(self):
        g = small()
        side = np.array([True, False, False, False])
        assert sorted(g.cut_edges(side).tolist()) == [0, 3]

    def test_cut_value_shape_check(self):
        with pytest.raises(GraphFormatError):
            small().cut_value(np.array([True]))


class TestInterop:
    def test_networkx_roundtrip(self):
        g = small()
        g2 = Graph.from_networkx(g.to_networkx())
        assert g2.n == g.n
        assert g2.total_weight == pytest.approx(g.total_weight)

    def test_equality_and_hash(self):
        assert small() == small()
        assert hash(small()) == hash(small())

    def test_edges_iterator(self):
        assert list(small().edges())[0] == (0, 1, 2.0)
