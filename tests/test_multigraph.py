"""Multigraph count algebra (repro.graphs.multigraph)."""

import numpy as np
import pytest

from repro.errors import GraphFormatError, IntegerWeightsRequired
from repro.graphs import Graph, MultiGraph


def mg():
    g = Graph.from_edges(4, [(0, 1, 3.0), (1, 2, 5.0), (2, 3, 2.0), (0, 3, 1.0)])
    return MultiGraph.from_graph(g)


class TestConstruction:
    def test_from_graph_counts(self):
        m = mg()
        assert m.total_copies == 11
        assert m.num_slots == 4

    def test_rejects_float_weights(self):
        g = Graph.from_edges(2, [(0, 1, 1.5)])
        with pytest.raises(IntegerWeightsRequired):
            MultiGraph.from_graph(g)

    def test_rejects_negative_counts(self):
        m = mg()
        with pytest.raises(GraphFormatError):
            m.with_counts(np.array([1, -1, 0, 0]))

    def test_rejects_misaligned(self):
        m = mg()
        with pytest.raises(GraphFormatError):
            MultiGraph(m.n, m.u, m.v, np.array([1]))


class TestAlgebra:
    def test_thin_all_or_nothing(self, rng):
        m = mg()
        assert m.thin(1.0, rng).total_copies == 11
        assert m.thin(0.0, rng).total_copies == 0

    def test_thin_is_subgraph(self, rng):
        m = mg()
        t = m.thin(0.5, rng)
        assert t.is_subgraph_of(m)

    def test_thin_bad_probability(self, rng):
        with pytest.raises(ValueError):
            mg().thin(1.5, rng)

    def test_minus_clamps(self):
        m = mg()
        other = m.with_counts(np.array([5, 0, 1, 0]))
        d = m.minus(other)
        assert d.counts.tolist() == [0, 5, 1, 1]

    def test_union_sums(self):
        m = mg()
        assert m.union(m).total_copies == 22

    def test_cap(self):
        m = mg()
        assert m.cap(2).counts.tolist() == [2, 2, 2, 1]

    def test_alignment_enforced(self):
        m = mg()
        g2 = Graph.from_edges(4, [(0, 1, 1.0)])
        with pytest.raises(GraphFormatError):
            m.minus(MultiGraph.from_graph(g2))


class TestViews:
    def test_support(self):
        m = mg().with_counts(np.array([0, 2, 0, 1]))
        assert m.support().tolist() == [1, 3]

    def test_support_graph_weights(self):
        m = mg().with_counts(np.array([0, 2, 0, 1]))
        sg = m.support_graph()
        assert sg.m == 2
        assert sorted(sg.w.tolist()) == [1.0, 2.0]

    def test_cut_value_counts_copies(self):
        m = mg()
        side = np.array([True, True, False, False])
        # crossing: (1,2) x5 and (0,3) x1
        assert m.cut_value(side) == 6

    def test_connected_components_of_support(self):
        m = mg().with_counts(np.array([1, 0, 1, 0]))
        k, _ = m.connected_components()
        assert k == 2
