#!/usr/bin/env python
"""Randomized-fault chaos soak for the resilient min-cut driver.

Every trial builds a random connected graph, arms a randomized fault
plan (0-3 faults drawn from every instrumented site, including pool
breakage, worker hangs, checkpoint corruption, and mid-run kills), picks
an executor backend, and runs ``resilient_minimum_cut`` under a
wall-clock cap.  The soak asserts the robustness invariant of
``docs/robustness.md``:

    every run ends in a **verified, exact** cut or a **typed**
    ``ReproError`` — never a silent wrong answer and never a hang.

Concretely, a trial passes when either

* the driver returns: the result must carry ``verification.ok`` and its
  value must equal the independent Stoer–Wagner recomputation exactly
  (catching any hypothetical verifier blind spot), or
* a typed :class:`repro.errors.ReproError` escapes (e.g. a
  ``SimulatedCrash`` from an injected kill, or a ``CheckpointError``
  from injected corruption) — for kills, the trial then **resumes** from
  the checkpoint (restoring the fault plan) and requires the resumed
  result to be bit-identical to the same trial run uninterrupted;

and fails when a non-``ReproError`` exception escapes, the value is
wrong, or the trial exceeds the wall-clock cap (hang detection — hangs
are tallied separately and force a non-zero exit on their own).

``--service`` soaks the cut-serving daemon instead: every trial starts
a real :class:`~repro.serve.ThreadedTCPServer` with a randomized fault
plan over the four ``serve.*`` sites (``accept_drop``,
``queue_stall``, ``handler_crash``, ``slow_client``) armed inside the
service, then hammers it with concurrent clients mixing warm queries,
zero-delta requeries, batches, deliberately-tight deadlines, unknown
tenants/graphs, and malformed frames.  The gate is the overload
contract of ``docs/service.md``: **every accepted request receives
exactly one well-formed typed response** — a dropped connection before
any frame is read is acceptable (nothing was accepted), a socket
timeout is a hang, an ill-formed or missing response is a failure, and
any ``min_cut`` *result* must equal the graph's independently-computed
exact value.

Usage::

    python scripts/chaos_soak.py --runs 200 --seed 0            # all backends
    python scripts/chaos_soak.py --runs 20 --seed 0 --backend process
    python scripts/chaos_soak.py --service --trials 10 --seed 0 # daemon soak

Exit status 0 iff every trial passed and no trial hung.
"""

from __future__ import annotations

import argparse
import os
import socket
import struct
import sys
import tempfile
import threading
import time
from dataclasses import dataclass, field
from typing import List, Optional

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import numpy as np  # noqa: E402

from repro.baselines.stoer_wagner import stoer_wagner  # noqa: E402
from repro.errors import ReproError, SimulatedCrash  # noqa: E402
from repro.graphs.generators import random_connected_graph  # noqa: E402
from repro.pram.executor import force_executor, shutdown_shared_pools  # noqa: E402
from repro.resilience.driver import resilient_minimum_cut  # noqa: E402
from repro.resilience.faults import (  # noqa: E402
    ALL_SITES,
    SERVICE_SITES,
    Fault,
    FaultPlan,
    inject,
)
from repro.serve import (  # noqa: E402
    ProtocolError,
    ServerConfig,
    ServiceClient,
    ThreadedTCPServer,
    well_formed,
)

def _soak_backends():
    from repro.shm import shm_available

    base = ("process", "thread", "sync")
    return (("shm",) + base) if shm_available() else base


BACKENDS = _soak_backends()

#: fault sites for driver-mode plans: the ``serve.*`` sites are only
#: polled inside the daemon, so drawing them here would dilute the
#: driver soak's fault density with guaranteed no-ops
DRIVER_SITES = tuple(s for s in ALL_SITES if s not in SERVICE_SITES)

#: resumes allowed per trial before declaring it stuck (each injected
#: kill costs one resume; plans carry at most 3 faults)
MAX_RESUMES = 8


@dataclass
class SoakStats:
    trials: int = 0
    verified: int = 0
    typed_errors: int = 0
    resumed: int = 0
    degradations: int = 0
    fallbacks: int = 0
    #: service mode: total serve.* faults the daemon reported injecting
    faults_injected: int = 0
    #: trials that exceeded the wall-clock cap or timed out a response —
    #: tallied apart from failures so a hang can never hide in the noise
    hangs: List[str] = field(default_factory=list)
    failures: List[str] = field(default_factory=list)


def _random_plan(rng: np.random.Generator) -> FaultPlan:
    """0-3 faults over every driver-side site, deterministically drawn."""
    n_faults = int(rng.integers(0, 4))
    faults = tuple(
        Fault(
            site=str(rng.choice(DRIVER_SITES)),
            at=int(rng.integers(0, 6)),
            index=int(rng.integers(0, 4)),
            seed=int(rng.integers(0, 2**31)),
            scale=float(rng.choice((0.25, 0.5, 2.0, 4.0))),
        )
        for _ in range(n_faults)
    )
    return FaultPlan(faults=faults, name=f"soak[{n_faults}]")


def _fresh(plan: FaultPlan) -> FaultPlan:
    """A structurally-identical plan with a clean firing record (a resume
    simulates a new process: same armed faults, state restored from the
    checkpoint, not from this in-process object)."""
    return FaultPlan(faults=tuple(plan.faults), name=plan.name)


def _run_to_completion(
    graph, seed: int, plan: FaultPlan, ckpt: Optional[str]
):
    """One driver invocation, resuming after injected kills (each resume
    re-arms a fresh copy of the plan, as a restarted process would).
    Returns (result, resumes_used)."""
    resumes = 0
    while True:
        try:
            with inject(_fresh(plan) if resumes else plan):
                return (
                    resilient_minimum_cut(graph, seed=seed, checkpoint=ckpt),
                    resumes,
                )
        except SimulatedCrash:
            if ckpt is None or resumes >= MAX_RESUMES:
                raise
            resumes += 1


def run_trial(
    trial_seed: int, backend: str, stats: SoakStats, time_cap: float
) -> None:
    rng = np.random.default_rng(trial_seed)
    n = int(rng.integers(16, 49))
    m = int(rng.integers(int(2.5 * n), 5 * n))
    graph = random_connected_graph(n, m, rng=int(rng.integers(2**31)), max_weight=8)
    exact = stoer_wagner(graph).value
    plan = _random_plan(rng)
    driver_seed = int(rng.integers(2**31))
    use_ckpt = any(f.site.startswith("checkpoint.") for f in plan.faults)

    stats.trials += 1
    t0 = time.monotonic()
    label = f"trial={trial_seed} backend={backend} plan={plan.name}"
    try:
        with force_executor(backend):
            if use_ckpt:
                with tempfile.TemporaryDirectory() as d:
                    ckpt = os.path.join(d, "soak.ckpt")
                    res, resumes = _run_to_completion(graph, driver_seed, plan, ckpt)
                    stats.resumed += 1 if resumes else 0
            else:
                res, _ = _run_to_completion(graph, driver_seed, plan, None)
    except ReproError:
        # a typed, documented failure is an acceptable outcome — the
        # invariant forbids *silent* wrong answers, not loud errors
        stats.typed_errors += 1
        if time.monotonic() - t0 > time_cap:
            stats.hangs.append(f"{label}: exceeded {time_cap:g}s cap (typed)")
        return
    except BaseException as exc:  # noqa: BLE001 - anything else is a soak failure
        stats.failures.append(f"{label}: untyped {type(exc).__name__}: {exc}")
        return

    elapsed = time.monotonic() - t0
    if elapsed > time_cap:
        stats.hangs.append(f"{label}: exceeded {time_cap:g}s cap")
        return
    if res.verification is None or not res.verification.ok:
        stats.failures.append(f"{label}: returned unverified result")
        return
    if res.value != exact:
        stats.failures.append(
            f"{label}: WRONG ANSWER {res.value} != {exact} "
            f"(fallback={res.fallback_used}, fired={plan.fired})"
        )
        return
    stats.verified += 1
    stats.degradations += len(res.degradations)
    stats.fallbacks += 1 if res.fallback_used else 0


# ---------------------------------------------------------------------------
# service mode: soak the daemon under injected serve.* faults
# ---------------------------------------------------------------------------

#: per-response client timeout in service mode; firing means the daemon
#: broke its never-hang contract for an accepted request
SERVICE_RESPONSE_TIMEOUT = 30.0

#: reconnect attempts per logical request (``serve.accept_drop`` kills a
#: connection before any frame is read — nothing was accepted, so the
#: client simply dials again; each armed fault fires at most once)
MAX_RECONNECTS = 8


def _random_service_plan(rng: np.random.Generator) -> FaultPlan:
    """1-4 faults over the ``serve.*`` sites, deterministically drawn."""
    n_faults = int(rng.integers(1, 5))
    faults = tuple(
        Fault(
            site=str(rng.choice(SERVICE_SITES)),
            at=int(rng.integers(0, 4)),
            index=int(rng.integers(0, 4)),
            seed=int(rng.integers(0, 2**31)),
            scale=float(rng.choice((0.5, 1.0, 2.0, 4.0))),
        )
        for _ in range(n_faults)
    )
    return FaultPlan(faults=faults, name=f"serve-soak[{n_faults}]")


def _service_request(port: int, request: dict, outcomes: List[str]) -> Optional[dict]:
    """Issue one request, reconnecting through injected connection drops.

    Returns the response, or ``None`` after recording a ``hang:`` /
    ``fail:`` line in ``outcomes``.  A connection refused/reset *before
    a response* is not a contract violation (``serve.accept_drop``
    closes pre-read; nothing was accepted) — but running out of
    reconnects is reported as a failure so a wedged daemon can't pass by
    dropping everyone forever.
    """
    request = dict(request)
    request.setdefault("id", 1)  # pin so the echo check below is exact
    for _ in range(MAX_RECONNECTS):
        client = ServiceClient(
            "127.0.0.1", port, timeout=SERVICE_RESPONSE_TIMEOUT
        )
        try:
            resp = client.request(dict(request))
        except socket.timeout:
            outcomes.append(f"hang: no response to {request.get('op')}")
            return None
        except (ProtocolError, ConnectionError, OSError):
            continue  # dropped pre-response; dial again
        finally:
            client.close()
        problem = well_formed(resp, request.get("id"), check_id=True)
        if problem is not True:
            outcomes.append(f"fail: ill-formed response {resp!r}: {problem}")
            return None
        return resp
    outcomes.append(f"fail: {MAX_RECONNECTS} consecutive connection drops")
    return None


def _service_client_script(
    wid: int,
    port: int,
    exact: float,
    requests: int,
    rng_seed: int,
    outcomes: List[str],
) -> None:
    """One concurrent client's request mix; appends outcome lines."""
    rng = np.random.default_rng(rng_seed)
    for qi in range(requests):
        roll = rng.random()
        rid = wid * 1000 + qi
        if roll < 0.45:
            req = {"op": "min_cut", "tenant": "soak", "graph": "g", "id": rid}
        elif roll < 0.60:
            req = {
                "op": "requery", "tenant": "soak", "graph": "g",
                "weights": {}, "id": rid,
            }
        elif roll < 0.70:
            req = {
                "op": "min_cut_batch", "tenant": "soak", "graph": "g",
                "seeds": [int(s) for s in rng.integers(0, 2**20, size=2)],
                "id": rid,
            }
        elif roll < 0.80:
            req = {
                "op": "min_cut", "tenant": "soak", "graph": "g",
                "deadline_ms": 1, "id": rid,
            }
        elif roll < 0.90:
            req = {"op": "min_cut", "tenant": "soak", "graph": "missing", "id": rid}
        else:
            req = {"op": "metrics", "id": rid}
        resp = _service_request(port, req, outcomes)
        if resp is None:
            continue
        if (
            resp["type"] == "result"
            and req["op"] == "min_cut"
            and req.get("graph") == "g"
            and resp.get("value") != exact
        ):
            outcomes.append(
                f"fail: WRONG ANSWER {resp.get('value')} != {exact}"
            )


def _malformed_probe(port: int, outcomes: List[str]) -> None:
    """A garbage frame must earn one ``bad_request`` response, not a hang."""
    try:
        with socket.create_connection(
            ("127.0.0.1", port), timeout=SERVICE_RESPONSE_TIMEOUT
        ) as s:
            s.sendall(struct.pack(">I", 9) + b"not json!")
            header = b""
            while len(header) < 4:
                chunk = s.recv(4 - len(header))
                if not chunk:
                    return  # dropped pre-read (accept_drop): nothing owed
                header += chunk
            (length,) = struct.unpack(">I", header)
            body = b""
            while len(body) < length:
                chunk = s.recv(length - len(body))
                if not chunk:
                    outcomes.append("fail: connection died mid bad_request reply")
                    return
                body += chunk
            import json as _json

            resp = _json.loads(body)
            if resp.get("type") != "error" or resp.get("error") != "bad_request":
                outcomes.append(f"fail: malformed frame answered with {resp!r}")
    except socket.timeout:
        outcomes.append("hang: no response to malformed frame")
    except (ConnectionError, OSError):
        pass  # dropped pre-response: acceptable


def run_service_trial(
    trial_seed: int, stats: SoakStats, *, clients: int = 4, requests: int = 8
) -> None:
    """One daemon lifetime under one randomized serve-fault plan."""
    rng = np.random.default_rng(trial_seed)
    n = int(rng.integers(16, 33))
    m = int(rng.integers(int(2.5 * n), 4 * n))
    graph = random_connected_graph(n, m, rng=int(rng.integers(2**31)), max_weight=8)
    exact = stoer_wagner(graph).value
    plan = _random_service_plan(rng)
    edges = [[int(u), int(v), float(w)] for u, v, w in graph.edges()]

    stats.trials += 1
    label = f"trial={trial_seed} plan={plan.name}"
    outcomes: List[str] = []
    config = ServerConfig(port=0, queue_depth=8, workers=2, debug_ops=True)
    try:
        with ThreadedTCPServer(config, faults=plan) as server:
            for req in (
                {"op": "register_tenant", "tenant": "soak",
                 "budget_class": "interactive"},
                {"op": "register_graph", "tenant": "soak", "graph": "g",
                 "n": graph.n, "edges": edges, "seed": 11, "warm": True},
            ):
                if _service_request(server.port, req, outcomes) is None:
                    break
            else:
                threads = [
                    threading.Thread(
                        target=_service_client_script,
                        args=(wid, server.port, exact, requests,
                              trial_seed * 131 + wid, outcomes),
                        name=f"soak-client-{wid}",
                    )
                    for wid in range(clients)
                ]
                for t in threads:
                    t.start()
                _malformed_probe(server.port, outcomes)
                for t in threads:
                    t.join(timeout=120)
                    if t.is_alive():
                        outcomes.append(f"hang: client thread {t.name} wedged")
            metrics = server.service._metrics(None)
            fired = int(metrics["counters"].get("serve.faults_injected", 0))
    except BaseException as exc:  # noqa: BLE001 - any escape is a soak failure
        stats.failures.append(f"{label}: untyped {type(exc).__name__}: {exc}")
        return

    ok = True
    for line in outcomes:
        if line.startswith("hang:"):
            stats.hangs.append(f"{label}: {line}")
            ok = False
        else:
            stats.failures.append(f"{label}: {line}")
            ok = False
    stats.faults_injected += fired
    if ok:
        stats.verified += 1


def run_service_soak(trials: int, seed: int) -> SoakStats:
    stats = SoakStats()
    for i in range(trials):
        run_service_trial(seed * 1_000_003 + i, stats)
    return stats


def run_soak(
    runs: int, seed: int, backends=BACKENDS, time_cap: float = 60.0
) -> SoakStats:
    stats = SoakStats()
    for i in range(runs):
        backend = backends[i % len(backends)]
        run_trial(seed * 1_000_003 + i, backend, stats, time_cap)
    shutdown_shared_pools()
    return stats


def main(argv: Optional[List[str]] = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--runs", type=int, default=200)
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--backend", choices=("auto",) + BACKENDS, default="auto",
                    help="'auto' round-robins process/thread/sync")
    ap.add_argument("--time-cap", type=float, default=60.0, metavar="SECONDS",
                    help="per-trial wall-clock cap; exceeding it is a hang")
    ap.add_argument("--service", action="store_true",
                    help="soak the serving daemon under serve.* faults "
                         "instead of the driver")
    ap.add_argument("--trials", type=int, default=None,
                    help="service-mode trial count (defaults to --runs)")
    args = ap.parse_args(argv)

    t0 = time.monotonic()
    if args.service:
        stats = run_service_soak(
            args.trials if args.trials is not None else args.runs, args.seed
        )
    else:
        backends = BACKENDS if args.backend == "auto" else (args.backend,)
        stats = run_soak(args.runs, args.seed, backends, args.time_cap)
    wall = time.monotonic() - t0

    print(f"trials {stats.trials}")
    if args.service:
        print(f"clean_trials {stats.verified}")
        print(f"serve_faults_injected {stats.faults_injected}")
    else:
        print(f"verified_exact {stats.verified}")
        print(f"typed_errors {stats.typed_errors}")
        print(f"resumed_runs {stats.resumed}")
        print(f"fallbacks {stats.fallbacks}")
        print(f"degradation_events {stats.degradations}")
    print(f"hangs {len(stats.hangs)}")
    print(f"failures {len(stats.failures)}")
    print(f"wall_s {wall:.1f}")
    for line in stats.hangs:
        print(f"HANG {line}", file=sys.stderr)
    for line in stats.failures:
        print(f"FAIL {line}", file=sys.stderr)
    # hangs force a non-zero exit in their own right: a daemon (or
    # driver) that stops answering must never look green
    return 1 if (stats.failures or stats.hangs) else 0


if __name__ == "__main__":
    sys.exit(main())
