#!/usr/bin/env python
"""Randomized-fault chaos soak for the resilient min-cut driver.

Every trial builds a random connected graph, arms a randomized fault
plan (0-3 faults drawn from every instrumented site, including pool
breakage, worker hangs, checkpoint corruption, and mid-run kills), picks
an executor backend, and runs ``resilient_minimum_cut`` under a
wall-clock cap.  The soak asserts the robustness invariant of
``docs/robustness.md``:

    every run ends in a **verified, exact** cut or a **typed**
    ``ReproError`` — never a silent wrong answer and never a hang.

Concretely, a trial passes when either

* the driver returns: the result must carry ``verification.ok`` and its
  value must equal the independent Stoer–Wagner recomputation exactly
  (catching any hypothetical verifier blind spot), or
* a typed :class:`repro.errors.ReproError` escapes (e.g. a
  ``SimulatedCrash`` from an injected kill, or a ``CheckpointError``
  from injected corruption) — for kills, the trial then **resumes** from
  the checkpoint (restoring the fault plan) and requires the resumed
  result to be bit-identical to the same trial run uninterrupted;

and fails when a non-``ReproError`` exception escapes, the value is
wrong, or the trial exceeds the wall-clock cap (hang detection).

Usage::

    python scripts/chaos_soak.py --runs 200 --seed 0            # all backends
    python scripts/chaos_soak.py --runs 20 --seed 0 --backend process

Exit status 0 iff every trial passed.
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
import time
from dataclasses import dataclass, field
from typing import List, Optional

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import numpy as np  # noqa: E402

from repro.baselines.stoer_wagner import stoer_wagner  # noqa: E402
from repro.errors import ReproError, SimulatedCrash  # noqa: E402
from repro.graphs.generators import random_connected_graph  # noqa: E402
from repro.pram.executor import force_executor, shutdown_shared_pools  # noqa: E402
from repro.resilience.driver import resilient_minimum_cut  # noqa: E402
from repro.resilience.faults import ALL_SITES, Fault, FaultPlan, inject  # noqa: E402

BACKENDS = ("process", "thread", "sync")

#: resumes allowed per trial before declaring it stuck (each injected
#: kill costs one resume; plans carry at most 3 faults)
MAX_RESUMES = 8


@dataclass
class SoakStats:
    trials: int = 0
    verified: int = 0
    typed_errors: int = 0
    resumed: int = 0
    degradations: int = 0
    fallbacks: int = 0
    failures: List[str] = field(default_factory=list)


def _random_plan(rng: np.random.Generator) -> FaultPlan:
    """0-3 faults over every instrumented site, deterministically drawn."""
    n_faults = int(rng.integers(0, 4))
    faults = tuple(
        Fault(
            site=str(rng.choice(ALL_SITES)),
            at=int(rng.integers(0, 6)),
            index=int(rng.integers(0, 4)),
            seed=int(rng.integers(0, 2**31)),
            scale=float(rng.choice((0.25, 0.5, 2.0, 4.0))),
        )
        for _ in range(n_faults)
    )
    return FaultPlan(faults=faults, name=f"soak[{n_faults}]")


def _fresh(plan: FaultPlan) -> FaultPlan:
    """A structurally-identical plan with a clean firing record (a resume
    simulates a new process: same armed faults, state restored from the
    checkpoint, not from this in-process object)."""
    return FaultPlan(faults=tuple(plan.faults), name=plan.name)


def _run_to_completion(
    graph, seed: int, plan: FaultPlan, ckpt: Optional[str]
):
    """One driver invocation, resuming after injected kills (each resume
    re-arms a fresh copy of the plan, as a restarted process would).
    Returns (result, resumes_used)."""
    resumes = 0
    while True:
        try:
            with inject(_fresh(plan) if resumes else plan):
                return (
                    resilient_minimum_cut(graph, seed=seed, checkpoint=ckpt),
                    resumes,
                )
        except SimulatedCrash:
            if ckpt is None or resumes >= MAX_RESUMES:
                raise
            resumes += 1


def run_trial(
    trial_seed: int, backend: str, stats: SoakStats, time_cap: float
) -> None:
    rng = np.random.default_rng(trial_seed)
    n = int(rng.integers(16, 49))
    m = int(rng.integers(int(2.5 * n), 5 * n))
    graph = random_connected_graph(n, m, rng=int(rng.integers(2**31)), max_weight=8)
    exact = stoer_wagner(graph).value
    plan = _random_plan(rng)
    driver_seed = int(rng.integers(2**31))
    use_ckpt = any(f.site.startswith("checkpoint.") for f in plan.faults)

    stats.trials += 1
    t0 = time.monotonic()
    label = f"trial={trial_seed} backend={backend} plan={plan.name}"
    try:
        with force_executor(backend):
            if use_ckpt:
                with tempfile.TemporaryDirectory() as d:
                    ckpt = os.path.join(d, "soak.ckpt")
                    res, resumes = _run_to_completion(graph, driver_seed, plan, ckpt)
                    stats.resumed += 1 if resumes else 0
            else:
                res, _ = _run_to_completion(graph, driver_seed, plan, None)
    except ReproError:
        # a typed, documented failure is an acceptable outcome — the
        # invariant forbids *silent* wrong answers, not loud errors
        stats.typed_errors += 1
        if time.monotonic() - t0 > time_cap:
            stats.failures.append(f"{label}: exceeded {time_cap:g}s cap (typed)")
        return
    except BaseException as exc:  # noqa: BLE001 - anything else is a soak failure
        stats.failures.append(f"{label}: untyped {type(exc).__name__}: {exc}")
        return

    elapsed = time.monotonic() - t0
    if elapsed > time_cap:
        stats.failures.append(f"{label}: exceeded {time_cap:g}s cap")
        return
    if res.verification is None or not res.verification.ok:
        stats.failures.append(f"{label}: returned unverified result")
        return
    if res.value != exact:
        stats.failures.append(
            f"{label}: WRONG ANSWER {res.value} != {exact} "
            f"(fallback={res.fallback_used}, fired={plan.fired})"
        )
        return
    stats.verified += 1
    stats.degradations += len(res.degradations)
    stats.fallbacks += 1 if res.fallback_used else 0


def run_soak(
    runs: int, seed: int, backends=BACKENDS, time_cap: float = 60.0
) -> SoakStats:
    stats = SoakStats()
    for i in range(runs):
        backend = backends[i % len(backends)]
        run_trial(seed * 1_000_003 + i, backend, stats, time_cap)
    shutdown_shared_pools()
    return stats


def main(argv: Optional[List[str]] = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--runs", type=int, default=200)
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--backend", choices=("auto",) + BACKENDS, default="auto",
                    help="'auto' round-robins process/thread/sync")
    ap.add_argument("--time-cap", type=float, default=60.0, metavar="SECONDS",
                    help="per-trial wall-clock cap; exceeding it is a hang")
    args = ap.parse_args(argv)

    backends = BACKENDS if args.backend == "auto" else (args.backend,)
    t0 = time.monotonic()
    stats = run_soak(args.runs, args.seed, backends, args.time_cap)
    wall = time.monotonic() - t0

    print(f"trials {stats.trials}")
    print(f"verified_exact {stats.verified}")
    print(f"typed_errors {stats.typed_errors}")
    print(f"resumed_runs {stats.resumed}")
    print(f"fallbacks {stats.fallbacks}")
    print(f"degradation_events {stats.degradations}")
    print(f"failures {len(stats.failures)}")
    print(f"wall_s {wall:.1f}")
    for line in stats.failures:
        print(f"FAIL {line}", file=sys.stderr)
    return 1 if stats.failures else 0


if __name__ == "__main__":
    sys.exit(main())
