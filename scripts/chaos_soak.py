#!/usr/bin/env python
"""Randomized-fault chaos soak for the resilient min-cut driver.

Every trial builds a random connected graph, arms a randomized fault
plan (0-3 faults drawn from every instrumented site, including pool
breakage, worker hangs, checkpoint corruption, and mid-run kills), picks
an executor backend, and runs ``resilient_minimum_cut`` under a
wall-clock cap.  The soak asserts the robustness invariant of
``docs/robustness.md``:

    every run ends in a **verified, exact** cut or a **typed**
    ``ReproError`` — never a silent wrong answer and never a hang.

Concretely, a trial passes when either

* the driver returns: the result must carry ``verification.ok`` and its
  value must equal the independent Stoer–Wagner recomputation exactly
  (catching any hypothetical verifier blind spot), or
* a typed :class:`repro.errors.ReproError` escapes (e.g. a
  ``SimulatedCrash`` from an injected kill, or a ``CheckpointError``
  from injected corruption) — for kills, the trial then **resumes** from
  the checkpoint (restoring the fault plan) and requires the resumed
  result to be bit-identical to the same trial run uninterrupted;

and fails when a non-``ReproError`` exception escapes, the value is
wrong, or the trial exceeds the wall-clock cap (hang detection — hangs
are tallied separately and force a non-zero exit on their own).

``--service`` soaks the cut-serving daemon instead: every trial starts
a real :class:`~repro.serve.ThreadedTCPServer` with a randomized fault
plan over the four ``serve.*`` sites (``accept_drop``,
``queue_stall``, ``handler_crash``, ``slow_client``) armed inside the
service, then hammers it with concurrent clients mixing warm queries,
zero-delta requeries, batches, deliberately-tight deadlines, unknown
tenants/graphs, and malformed frames.  The gate is the overload
contract of ``docs/service.md``: **every accepted request receives
exactly one well-formed typed response** — a dropped connection before
any frame is read is acceptable (nothing was accepted), a socket
timeout is a hang, an ill-formed or missing response is a failure, and
any ``min_cut`` *result* must equal the graph's independently-computed
exact value.

``--crash-recovery`` soaks the daemon's durable state
(``docs/robustness.md``): trials alternate between (a) a real
``python -m repro serve --state-dir`` subprocess that is SIGKILLed at a
randomized point mid-update-stream and restarted on the same directory,
and (b) an in-process daemon with one armed ``wal.torn_write`` /
``wal.corrupt_record`` / ``snapshot.partial`` fault whose directory is
then recovered cold.  Both kinds round-robin the fsync policies.  The
gate is the ack-durability contract: the recovered engine must be
**bit-identical** (epoch, staleness, chained fingerprint, and exact cut
value) to a never-crashed twin that replayed exactly the acknowledged
updates — the one request in flight *during* the kill may land on
either side, and an injected mid-log corruption may instead surface as
a typed ``WalCorruptionError`` (loud detection, never silent skip).  A
trial also fails if the state directory leaks ``*.tmp`` files across
the crash.

Usage::

    python scripts/chaos_soak.py --runs 200 --seed 0            # all backends
    python scripts/chaos_soak.py --runs 20 --seed 0 --backend process
    python scripts/chaos_soak.py --service --trials 10 --seed 0 # daemon soak
    python scripts/chaos_soak.py --crash-recovery --trials 50 --seed 0

Exit status 0 iff every trial passed and no trial hung.
"""

from __future__ import annotations

import argparse
import os
import socket
import struct
import subprocess
import sys
import tempfile
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import numpy as np  # noqa: E402

from repro.arena.solvers.stoer_wagner import stoer_wagner  # noqa: E402
from repro.durability import DurableState  # noqa: E402
from repro.engine import CutEngine  # noqa: E402
from repro.engine.deltas import as_delta, random_delta  # noqa: E402
from repro.errors import (  # noqa: E402
    RecoveryError,
    ReproError,
    SimulatedCrash,
)
from repro.graphs.generators import random_connected_graph  # noqa: E402
from repro.pram.executor import force_executor, shutdown_shared_pools  # noqa: E402
from repro.resilience.driver import resilient_minimum_cut  # noqa: E402
from repro.resilience.faults import (  # noqa: E402
    ALL_SITES,
    DURABILITY_SITES,
    SERVICE_SITES,
    SITE_WAL_CORRUPT_RECORD,
    Fault,
    FaultPlan,
    inject,
)
from repro.serve import (  # noqa: E402
    InProcServer,
    ProtocolError,
    ServerConfig,
    ServiceClient,
    TenantRegistry,
    ThreadedTCPServer,
    well_formed,
)

def _soak_backends():
    from repro.shm import shm_available

    base = ("process", "thread", "sync")
    return (("shm",) + base) if shm_available() else base


BACKENDS = _soak_backends()

#: fault sites for driver-mode plans: the ``serve.*`` and
#: ``wal.*``/``snapshot.*`` sites are only polled inside the daemon's
#: service/durability layers, so drawing them here would dilute the
#: driver soak's fault density with guaranteed no-ops
DRIVER_SITES = tuple(
    s for s in ALL_SITES if s not in SERVICE_SITES and s not in DURABILITY_SITES
)

#: resumes allowed per trial before declaring it stuck (each injected
#: kill costs one resume; plans carry at most 3 faults)
MAX_RESUMES = 8


@dataclass
class SoakStats:
    trials: int = 0
    verified: int = 0
    typed_errors: int = 0
    resumed: int = 0
    degradations: int = 0
    fallbacks: int = 0
    #: service mode: total serve.* faults the daemon reported injecting
    faults_injected: int = 0
    #: trials that exceeded the wall-clock cap or timed out a response —
    #: tallied apart from failures so a hang can never hide in the noise
    hangs: List[str] = field(default_factory=list)
    failures: List[str] = field(default_factory=list)


def _random_plan(rng: np.random.Generator) -> FaultPlan:
    """0-3 faults over every driver-side site, deterministically drawn."""
    n_faults = int(rng.integers(0, 4))
    faults = tuple(
        Fault(
            site=str(rng.choice(DRIVER_SITES)),
            at=int(rng.integers(0, 6)),
            index=int(rng.integers(0, 4)),
            seed=int(rng.integers(0, 2**31)),
            scale=float(rng.choice((0.25, 0.5, 2.0, 4.0))),
        )
        for _ in range(n_faults)
    )
    return FaultPlan(faults=faults, name=f"soak[{n_faults}]")


def _fresh(plan: FaultPlan) -> FaultPlan:
    """A structurally-identical plan with a clean firing record (a resume
    simulates a new process: same armed faults, state restored from the
    checkpoint, not from this in-process object)."""
    return FaultPlan(faults=tuple(plan.faults), name=plan.name)


def _run_to_completion(
    graph, seed: int, plan: FaultPlan, ckpt: Optional[str]
):
    """One driver invocation, resuming after injected kills (each resume
    re-arms a fresh copy of the plan, as a restarted process would).
    Returns (result, resumes_used)."""
    resumes = 0
    while True:
        try:
            with inject(_fresh(plan) if resumes else plan):
                return (
                    resilient_minimum_cut(graph, seed=seed, checkpoint=ckpt),
                    resumes,
                )
        except SimulatedCrash:
            if ckpt is None or resumes >= MAX_RESUMES:
                raise
            resumes += 1


def run_trial(
    trial_seed: int, backend: str, stats: SoakStats, time_cap: float
) -> None:
    rng = np.random.default_rng(trial_seed)
    n = int(rng.integers(16, 49))
    m = int(rng.integers(int(2.5 * n), 5 * n))
    graph = random_connected_graph(n, m, rng=int(rng.integers(2**31)), max_weight=8)
    exact = stoer_wagner(graph).value
    plan = _random_plan(rng)
    driver_seed = int(rng.integers(2**31))
    use_ckpt = any(f.site.startswith("checkpoint.") for f in plan.faults)

    stats.trials += 1
    t0 = time.monotonic()
    label = f"trial={trial_seed} backend={backend} plan={plan.name}"
    try:
        with force_executor(backend):
            if use_ckpt:
                with tempfile.TemporaryDirectory() as d:
                    ckpt = os.path.join(d, "soak.ckpt")
                    res, resumes = _run_to_completion(graph, driver_seed, plan, ckpt)
                    stats.resumed += 1 if resumes else 0
            else:
                res, _ = _run_to_completion(graph, driver_seed, plan, None)
    except ReproError:
        # a typed, documented failure is an acceptable outcome — the
        # invariant forbids *silent* wrong answers, not loud errors
        stats.typed_errors += 1
        if time.monotonic() - t0 > time_cap:
            stats.hangs.append(f"{label}: exceeded {time_cap:g}s cap (typed)")
        return
    except BaseException as exc:  # noqa: BLE001 - anything else is a soak failure
        stats.failures.append(f"{label}: untyped {type(exc).__name__}: {exc}")
        return

    elapsed = time.monotonic() - t0
    if elapsed > time_cap:
        stats.hangs.append(f"{label}: exceeded {time_cap:g}s cap")
        return
    if res.verification is None or not res.verification.ok:
        stats.failures.append(f"{label}: returned unverified result")
        return
    if res.value != exact:
        stats.failures.append(
            f"{label}: WRONG ANSWER {res.value} != {exact} "
            f"(fallback={res.fallback_used}, fired={plan.fired})"
        )
        return
    stats.verified += 1
    stats.degradations += len(res.degradations)
    stats.fallbacks += 1 if res.fallback_used else 0


# ---------------------------------------------------------------------------
# service mode: soak the daemon under injected serve.* faults
# ---------------------------------------------------------------------------

#: per-response client timeout in service mode; firing means the daemon
#: broke its never-hang contract for an accepted request
SERVICE_RESPONSE_TIMEOUT = 30.0

#: reconnect attempts per logical request (``serve.accept_drop`` kills a
#: connection before any frame is read — nothing was accepted, so the
#: client simply dials again; each armed fault fires at most once)
MAX_RECONNECTS = 8


def _random_service_plan(rng: np.random.Generator) -> FaultPlan:
    """1-4 faults over the ``serve.*`` sites, deterministically drawn."""
    n_faults = int(rng.integers(1, 5))
    faults = tuple(
        Fault(
            site=str(rng.choice(SERVICE_SITES)),
            at=int(rng.integers(0, 4)),
            index=int(rng.integers(0, 4)),
            seed=int(rng.integers(0, 2**31)),
            scale=float(rng.choice((0.5, 1.0, 2.0, 4.0))),
        )
        for _ in range(n_faults)
    )
    return FaultPlan(faults=faults, name=f"serve-soak[{n_faults}]")


def _service_request(port: int, request: dict, outcomes: List[str]) -> Optional[dict]:
    """Issue one request, reconnecting through injected connection drops.

    Returns the response, or ``None`` after recording a ``hang:`` /
    ``fail:`` line in ``outcomes``.  A connection refused/reset *before
    a response* is not a contract violation (``serve.accept_drop``
    closes pre-read; nothing was accepted) — but running out of
    reconnects is reported as a failure so a wedged daemon can't pass by
    dropping everyone forever.
    """
    request = dict(request)
    request.setdefault("id", 1)  # pin so the echo check below is exact
    for _ in range(MAX_RECONNECTS):
        client = ServiceClient(
            "127.0.0.1", port, timeout=SERVICE_RESPONSE_TIMEOUT
        )
        try:
            resp = client.request(dict(request))
        except socket.timeout:
            outcomes.append(f"hang: no response to {request.get('op')}")
            return None
        except (ProtocolError, ConnectionError, OSError):
            continue  # dropped pre-response; dial again
        finally:
            client.close()
        problem = well_formed(resp, request.get("id"), check_id=True)
        if problem is not True:
            outcomes.append(f"fail: ill-formed response {resp!r}: {problem}")
            return None
        return resp
    outcomes.append(f"fail: {MAX_RECONNECTS} consecutive connection drops")
    return None


def _service_client_script(
    wid: int,
    port: int,
    exact: float,
    requests: int,
    rng_seed: int,
    outcomes: List[str],
) -> None:
    """One concurrent client's request mix; appends outcome lines."""
    rng = np.random.default_rng(rng_seed)
    for qi in range(requests):
        roll = rng.random()
        rid = wid * 1000 + qi
        if roll < 0.45:
            req = {"op": "min_cut", "tenant": "soak", "graph": "g", "id": rid}
        elif roll < 0.60:
            req = {"op": "graph_info", "tenant": "soak", "graph": "g", "id": rid}
        elif roll < 0.70:
            req = {
                "op": "min_cut_batch", "tenant": "soak", "graph": "g",
                "seeds": [int(s) for s in rng.integers(0, 2**20, size=2)],
                "id": rid,
            }
        elif roll < 0.80:
            req = {
                "op": "min_cut", "tenant": "soak", "graph": "g",
                "deadline_ms": 1, "id": rid,
            }
        elif roll < 0.90:
            req = {"op": "min_cut", "tenant": "soak", "graph": "missing", "id": rid}
        else:
            req = {"op": "metrics", "id": rid}
        resp = _service_request(port, req, outcomes)
        if resp is None:
            continue
        if (
            resp["type"] == "result"
            and req["op"] == "min_cut"
            and req.get("graph") == "g"
            and resp.get("value") != exact
        ):
            outcomes.append(
                f"fail: WRONG ANSWER {resp.get('value')} != {exact}"
            )


def _malformed_probe(port: int, outcomes: List[str]) -> None:
    """A garbage frame must earn one ``bad_request`` response, not a hang."""
    try:
        with socket.create_connection(
            ("127.0.0.1", port), timeout=SERVICE_RESPONSE_TIMEOUT
        ) as s:
            s.sendall(struct.pack(">I", 9) + b"not json!")
            header = b""
            while len(header) < 4:
                chunk = s.recv(4 - len(header))
                if not chunk:
                    return  # dropped pre-read (accept_drop): nothing owed
                header += chunk
            (length,) = struct.unpack(">I", header)
            body = b""
            while len(body) < length:
                chunk = s.recv(length - len(body))
                if not chunk:
                    outcomes.append("fail: connection died mid bad_request reply")
                    return
                body += chunk
            import json as _json

            resp = _json.loads(body)
            if resp.get("type") != "error" or resp.get("error") != "bad_request":
                outcomes.append(f"fail: malformed frame answered with {resp!r}")
    except socket.timeout:
        outcomes.append("hang: no response to malformed frame")
    except (ConnectionError, OSError):
        pass  # dropped pre-response: acceptable


def run_service_trial(
    trial_seed: int, stats: SoakStats, *, clients: int = 4, requests: int = 8
) -> None:
    """One daemon lifetime under one randomized serve-fault plan."""
    rng = np.random.default_rng(trial_seed)
    n = int(rng.integers(16, 33))
    m = int(rng.integers(int(2.5 * n), 4 * n))
    graph = random_connected_graph(n, m, rng=int(rng.integers(2**31)), max_weight=8)
    exact = stoer_wagner(graph).value
    plan = _random_service_plan(rng)
    edges = [[int(u), int(v), float(w)] for u, v, w in graph.edges()]

    stats.trials += 1
    label = f"trial={trial_seed} plan={plan.name}"
    outcomes: List[str] = []
    config = ServerConfig(port=0, queue_depth=8, workers=2, debug_ops=True)
    try:
        with ThreadedTCPServer(config, faults=plan) as server:
            for req in (
                {"op": "register_tenant", "tenant": "soak",
                 "budget_class": "interactive"},
                {"op": "register_graph", "tenant": "soak", "graph": "g",
                 "n": graph.n, "edges": edges, "seed": 11, "warm": True},
            ):
                if _service_request(server.port, req, outcomes) is None:
                    break
            else:
                threads = [
                    threading.Thread(
                        target=_service_client_script,
                        args=(wid, server.port, exact, requests,
                              trial_seed * 131 + wid, outcomes),
                        name=f"soak-client-{wid}",
                    )
                    for wid in range(clients)
                ]
                for t in threads:
                    t.start()
                _malformed_probe(server.port, outcomes)
                for t in threads:
                    t.join(timeout=120)
                    if t.is_alive():
                        outcomes.append(f"hang: client thread {t.name} wedged")
            metrics = server.service._metrics(None)
            fired = int(metrics["counters"].get("serve.faults_injected", 0))
    except BaseException as exc:  # noqa: BLE001 - any escape is a soak failure
        stats.failures.append(f"{label}: untyped {type(exc).__name__}: {exc}")
        return

    ok = True
    for line in outcomes:
        if line.startswith("hang:"):
            stats.hangs.append(f"{label}: {line}")
            ok = False
        else:
            stats.failures.append(f"{label}: {line}")
            ok = False
    stats.faults_injected += fired
    if ok:
        stats.verified += 1


def run_service_soak(trials: int, seed: int) -> SoakStats:
    stats = SoakStats()
    for i in range(trials):
        run_service_trial(seed * 1_000_003 + i, stats)
    return stats


# ---------------------------------------------------------------------------
# crash-recovery mode: SIGKILL + durability faults against --state-dir
# ---------------------------------------------------------------------------

#: engine seed shared by the daemon registration and the parity twin
DURABLE_SEED = 11

#: every trial index maps onto one policy, so any soak of >= 3 trials
#: exercises the whole fsync matrix
FSYNC_CYCLE = ("always", "batch", "never")

_SRC_DIR = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "src")
)


def _wire_update(kwargs: Dict[str, object]) -> Dict[str, object]:
    """``CutEngine.update`` keywords as JSON-safe wire fields."""
    out: Dict[str, object] = {}
    if "add_edges" in kwargs:
        out["add_edges"] = [
            [int(u), int(v), float(w)] for (u, v, w) in kwargs["add_edges"]
        ]
    if "remove_edges" in kwargs:
        out["remove_edges"] = [int(i) for i in kwargs["remove_edges"]]
    if "reweight" in kwargs:
        out["reweight"] = {
            str(int(k)): float(v) for k, v in kwargs["reweight"].items()
        }
    return out


def _next_delta(shadow, rng) -> Optional[Dict[str, object]]:
    """A non-empty random mutation batch against ``shadow`` (or None if
    the draw keeps coming up empty — vanishingly rare)."""
    for _ in range(16):
        kw = random_delta(shadow, rng)
        if kw:
            return kw
    return None


def _twin_parity(graph, ops: List[Dict[str, object]]) -> Dict[str, object]:
    """The durable ledger a never-crashed twin reaches after ``ops``:
    epoch, staleness, chained fingerprint, and the exact cut value."""
    eng = CutEngine(graph, seed=DURABLE_SEED)
    for kw in ops:
        eng.update(**kw)
    fp = eng.fingerprint_chain()["current"]["fingerprint"]
    return {
        "epoch": int(eng.epoch),
        "staleness": int(eng.staleness),
        "fingerprint": fp,
        "value": float(eng.min_cut().value),
    }


def _parity_mismatch(
    recovered: Dict[str, object], graph, candidates: List[List[Dict[str, object]]]
) -> Optional[str]:
    """None if ``recovered`` bit-matches the twin of *some* acceptable
    op ledger, else a description of the nearest miss."""
    twins = [_twin_parity(graph, ops) for ops in candidates]
    for twin in twins:
        if twin == recovered:
            return None
    return f"recovered {recovered!r} matches none of {twins!r}"


def _spawn_daemon(state_dir: str, fsync: str, snapshot_interval: int):
    """Start ``python -m repro serve --state-dir`` on a free port.
    Returns ``(proc, port)``; raises if the daemon dies before
    announcing its port (e.g. recovery refused to boot)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [
            sys.executable, "-u", "-m", "repro", "serve",
            "--host", "127.0.0.1", "--port", "0", "--workers", "2",
            "--state-dir", state_dir, "--fsync", fsync,
            "--snapshot-interval", str(snapshot_interval),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    banner = []
    while True:
        line = proc.stdout.readline()
        if not line:
            proc.wait(timeout=30)
            raise RuntimeError(
                f"daemon exited rc={proc.returncode} before listening: "
                + " | ".join(x.strip() for x in banner[-5:])
            )
        banner.append(line)
        if "listening on" in line:
            return proc, int(line.rsplit(":", 1)[1])


def _durable_request(port: int, request: Dict[str, object]) -> Dict[str, object]:
    client = ServiceClient("127.0.0.1", port, timeout=SERVICE_RESPONSE_TIMEOUT)
    try:
        return client.request(dict(request))
    finally:
        client.close()


def _register_durable(port: int, graph) -> Optional[str]:
    """Register the soak tenant + graph; returns an error string or None."""
    edges = [[int(u), int(v), float(w)] for u, v, w in graph.edges()]
    for req in (
        {"op": "register_tenant", "tenant": "soak", "budget_class": "standard"},
        {"op": "register_graph", "tenant": "soak", "graph": "g",
         "n": graph.n, "edges": edges, "seed": DURABLE_SEED, "warm": False},
    ):
        resp = _durable_request(port, req)
        if resp.get("type") != "result":
            return f"registration {req['op']} answered {resp!r}"
    return None


def _tmp_leaks(state_dir: str) -> List[str]:
    return sorted(n for n in os.listdir(state_dir) if n.endswith(".tmp"))


def run_kill_trial(trial_seed: int, fsync: str, stats: SoakStats) -> None:
    """One SIGKILL round trip: daemon subprocess, acked update stream,
    kill racing an in-flight update, restart on the same directory,
    bit-parity of the recovered engine against the acked ledger."""
    rng = np.random.default_rng(trial_seed)
    n = int(rng.integers(12, 25))
    m = int(rng.integers(2 * n, 3 * n))
    graph = random_connected_graph(n, m, rng=int(rng.integers(2**31)), max_weight=8)
    snapshot_interval = int(rng.choice((2, 4, 64)))
    total = int(rng.integers(2, 8))

    stats.trials += 1
    label = (
        f"trial={trial_seed} mode=kill fsync={fsync} "
        f"snap={snapshot_interval} updates={total}"
    )
    procs = []
    try:
        with tempfile.TemporaryDirectory() as sdir:
            proc, port = _spawn_daemon(sdir, fsync, snapshot_interval)
            procs.append(proc)
            err = _register_durable(port, graph)
            if err is not None:
                stats.failures.append(f"{label}: {err}")
                return

            shadow = graph
            logged: List[Dict[str, object]] = []
            for _ in range(total):
                kw = _next_delta(shadow, rng)
                if kw is None:
                    break
                resp = _durable_request(
                    port,
                    {"op": "update", "tenant": "soak", "graph": "g",
                     **_wire_update(kw)},
                )
                if resp.get("type") != "result":
                    stats.failures.append(f"{label}: update answered {resp!r}")
                    return
                if not resp.get("noop"):
                    logged.append(kw)
                    shadow = as_delta(shadow, **kw).apply(shadow)

            # the randomized kill point: SIGKILL races one more update —
            # its ack decides which side of the crash the op landed on
            inflight = _next_delta(shadow, rng)
            mid_kill = False
            killer = threading.Timer(float(rng.random()) * 0.05, proc.kill)
            killer.start()
            if inflight is not None:
                mid_kill = True
                try:
                    resp = _durable_request(
                        port,
                        {"op": "update", "tenant": "soak", "graph": "g",
                         **_wire_update(inflight)},
                    )
                    if resp.get("type") == "result":
                        # acked before the kill: durable, full stop
                        if not resp.get("noop"):
                            logged.append(inflight)
                        mid_kill = False
                except (ProtocolError, ConnectionError, OSError, socket.timeout):
                    pass  # killed mid-request: outcome legitimately unknown
            killer.cancel()
            proc.kill()
            proc.wait(timeout=30)

            candidates = [list(logged)]
            if mid_kill:
                candidates.append(list(logged) + [inflight])

            proc2, port2 = _spawn_daemon(sdir, fsync, snapshot_interval)
            procs.append(proc2)
            info = _durable_request(
                port2, {"op": "graph_info", "tenant": "soak", "graph": "g"}
            )
            cut = _durable_request(
                port2, {"op": "min_cut", "tenant": "soak", "graph": "g"}
            )
            if info.get("type") != "result" or cut.get("type") != "result":
                stats.failures.append(
                    f"{label}: recovered daemon answered {info!r} / {cut!r}"
                )
                return
            recovered = {
                "epoch": int(info["epoch"]),
                "staleness": int(info["staleness"]),
                "fingerprint": info["fingerprint"],
                "value": float(cut["value"]),
            }
            miss = _parity_mismatch(recovered, graph, candidates)
            if miss is not None:
                stats.failures.append(f"{label}: PARITY {miss}")
                return
            leaks = _tmp_leaks(sdir)
            if leaks:
                stats.failures.append(f"{label}: leaked temp files {leaks}")
                return
            proc2.terminate()
            proc2.wait(timeout=30)
            stats.resumed += 1 if mid_kill else 0
            stats.verified += 1
    except subprocess.TimeoutExpired:
        stats.hangs.append(f"{label}: daemon ignored its kill")
    except socket.timeout:
        stats.hangs.append(f"{label}: response timeout")
    except BaseException as exc:  # noqa: BLE001 - any escape is a soak failure
        stats.failures.append(f"{label}: untyped {type(exc).__name__}: {exc}")
    finally:
        for p in procs:
            if p.poll() is None:
                p.kill()
                p.wait(timeout=30)


def run_durability_fault_trial(
    trial_seed: int, fsync: str, stats: SoakStats
) -> None:
    """One in-process daemon lifetime with a single armed ``wal.*`` /
    ``snapshot.*`` fault, abandoned (simulated crash) and recovered cold.

    Acceptable outcomes per the durability contract:

    * ``wal.torn_write`` — the torn append crashes its request (typed);
      recovery truncates the torn tail and must bit-match the acked
      ledger (the crashed op was never acked);
    * ``wal.corrupt_record`` — recovery either refuses loudly with
      :class:`WalCorruptionError` (corruption mid-log) or, when the
      corrupted record sits at the tail (or was pruned by rotation),
      recovers to the acked ledger minus at most that one record;
    * ``snapshot.partial`` — the bad snapshot must be quarantined by
      verify-back or fallback; recovery must bit-match the full acked
      ledger.
    """
    rng = np.random.default_rng(trial_seed)
    n = int(rng.integers(12, 25))
    m = int(rng.integers(2 * n, 3 * n))
    graph = random_connected_graph(n, m, rng=int(rng.integers(2**31)), max_weight=8)
    edges = [[int(u), int(v), float(w)] for u, v, w in graph.edges()]
    total = int(rng.integers(3, 9))
    site = str(rng.choice(DURABILITY_SITES))
    # WAL appends 0 and 1 are the tenant/graph registrations; aim write
    # faults at the update records (snapshot faults count snapshots)
    at = (
        int(rng.integers(2, 2 + total))
        if site.startswith("wal.")
        else int(rng.integers(0, 3))
    )
    plan = FaultPlan(
        faults=(Fault(site=site, at=at, index=0,
                      seed=int(rng.integers(0, 2**31)), scale=1.0),),
        name=f"durability[{site}@{at}]",
    )
    snapshot_interval = int(rng.choice((2, 3, 64)))

    stats.trials += 1
    label = (
        f"trial={trial_seed} mode=fault plan={plan.name} fsync={fsync} "
        f"snap={snapshot_interval} updates={total}"
    )
    try:
        with tempfile.TemporaryDirectory() as sdir:
            config = ServerConfig(
                port=0, workers=2, state_dir=sdir, fsync=fsync,
                snapshot_interval=snapshot_interval,
            )
            logged: List[Dict[str, object]] = []
            crashed = False
            with InProcServer(config, faults=plan) as srv:
                for req in (
                    {"op": "register_tenant", "tenant": "soak",
                     "budget_class": "standard"},
                    {"op": "register_graph", "tenant": "soak", "graph": "g",
                     "n": graph.n, "edges": edges, "seed": DURABLE_SEED,
                     "warm": False},
                ):
                    if srv.request(req).get("type") != "result":
                        stats.failures.append(f"{label}: registration failed")
                        return
                shadow = graph
                for _ in range(total):
                    kw = _next_delta(shadow, rng)
                    if kw is None:
                        break
                    resp = srv.request(
                        {"op": "update", "tenant": "soak", "graph": "g", **kw}
                    )
                    if resp.get("type") != "result":
                        # the armed fault fired (e.g. a SimulatedCrash
                        # out of a torn append) — typed, and the stream
                        # stops here exactly as a crashing daemon would
                        crashed = True
                        break
                    if not resp.get("noop"):
                        logged.append(kw)
                        shadow = as_delta(shadow, **kw).apply(shadow)
                # simulated crash: drop the WAL on the floor — close()
                # would flush a clean final snapshot and hide the fault
                if srv.service.durable is not None:
                    srv.service.durable.abandon()

            registry = TenantRegistry()
            durable = DurableState(sdir, fsync=fsync)
            try:
                durable.recover(registry)
            except RecoveryError as exc:
                durable.abandon()
                # injected bit rot may refuse loudly: WalCorruptionError
                # mid-log, or a chain discontinuity when the corrupted
                # record was the last of a rotated-away generation.
                # For every *other* site a refusal to boot is a failure.
                if site == SITE_WAL_CORRUPT_RECORD:
                    stats.typed_errors += 1  # loud detection: documented
                    return
                stats.failures.append(
                    f"{label}: recovery refused: "
                    f"{type(exc).__name__}: {exc}"
                )
                return

            engine, _ = registry.get("soak").engine("g")
            fp = engine.fingerprint_chain()["current"]["fingerprint"]
            recovered = {
                "epoch": int(engine.epoch),
                "staleness": int(engine.staleness),
                "fingerprint": fp,
                "value": float(engine.min_cut().value),
            }
            durable.abandon()
            candidates = [list(logged)]
            if site == SITE_WAL_CORRUPT_RECORD and logged:
                candidates.append(list(logged[:-1]))
            miss = _parity_mismatch(recovered, graph, candidates)
            if miss is not None:
                stats.failures.append(f"{label}: PARITY {miss}")
                return
            leaks = _tmp_leaks(sdir)
            if leaks:
                stats.failures.append(f"{label}: leaked temp files {leaks}")
                return
            stats.resumed += 1 if crashed else 0
            stats.verified += 1
    except BaseException as exc:  # noqa: BLE001 - any escape is a soak failure
        stats.failures.append(f"{label}: untyped {type(exc).__name__}: {exc}")


def run_crash_recovery_soak(trials: int, seed: int) -> SoakStats:
    """Alternate SIGKILL-subprocess and injected-fault trials, cycling
    the fsync policy so every (kind, policy) cell gets coverage."""
    stats = SoakStats()
    for i in range(trials):
        trial_seed = seed * 1_000_003 + i
        fsync = FSYNC_CYCLE[i % len(FSYNC_CYCLE)]
        if i % 2 == 0:
            run_kill_trial(trial_seed, fsync, stats)
        else:
            run_durability_fault_trial(trial_seed, fsync, stats)
    return stats


def run_soak(
    runs: int, seed: int, backends=BACKENDS, time_cap: float = 60.0
) -> SoakStats:
    stats = SoakStats()
    for i in range(runs):
        backend = backends[i % len(backends)]
        run_trial(seed * 1_000_003 + i, backend, stats, time_cap)
    shutdown_shared_pools()
    return stats


def main(argv: Optional[List[str]] = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--runs", type=int, default=200)
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--backend", choices=("auto",) + BACKENDS, default="auto",
                    help="'auto' round-robins process/thread/sync")
    ap.add_argument("--time-cap", type=float, default=60.0, metavar="SECONDS",
                    help="per-trial wall-clock cap; exceeding it is a hang")
    ap.add_argument("--service", action="store_true",
                    help="soak the serving daemon under serve.* faults "
                         "instead of the driver")
    ap.add_argument("--crash-recovery", action="store_true",
                    help="soak --state-dir durability: SIGKILL round "
                         "trips and wal.*/snapshot.* faults, gated on "
                         "bit-parity with a never-crashed twin")
    ap.add_argument("--trials", type=int, default=None,
                    help="service/crash-recovery trial count "
                         "(defaults to --runs)")
    args = ap.parse_args(argv)

    trials = args.trials if args.trials is not None else args.runs
    t0 = time.monotonic()
    if args.crash_recovery:
        stats = run_crash_recovery_soak(trials, args.seed)
    elif args.service:
        stats = run_service_soak(trials, args.seed)
    else:
        backends = BACKENDS if args.backend == "auto" else (args.backend,)
        stats = run_soak(args.runs, args.seed, backends, args.time_cap)
    wall = time.monotonic() - t0

    print(f"trials {stats.trials}")
    if args.crash_recovery:
        print(f"parity_clean {stats.verified}")
        print(f"typed_detections {stats.typed_errors}")
        print(f"mid_crash_trials {stats.resumed}")
    elif args.service:
        print(f"clean_trials {stats.verified}")
        print(f"serve_faults_injected {stats.faults_injected}")
    else:
        print(f"verified_exact {stats.verified}")
        print(f"typed_errors {stats.typed_errors}")
        print(f"resumed_runs {stats.resumed}")
        print(f"fallbacks {stats.fallbacks}")
        print(f"degradation_events {stats.degradations}")
    print(f"hangs {len(stats.hangs)}")
    print(f"failures {len(stats.failures)}")
    print(f"wall_s {wall:.1f}")
    for line in stats.hangs:
        print(f"HANG {line}", file=sys.stderr)
    for line in stats.failures:
        print(f"FAIL {line}", file=sys.stderr)
    # hangs force a non-zero exit in their own right: a daemon (or
    # driver) that stops answering must never look green
    return 1 if (stats.failures or stats.hangs) else 0


if __name__ == "__main__":
    sys.exit(main())
