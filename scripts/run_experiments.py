#!/usr/bin/env python
"""Run the full experiment suite and collect the printed tables.

Usage:  python scripts/run_experiments.py [output.txt]

Thin wrapper over ``pytest benchmarks/ --benchmark-only -s`` that strips
the pytest chrome and keeps the experiment tables — the raw material of
EXPERIMENTS.md.  Exit code mirrors pytest's.
"""

from __future__ import annotations

import re
import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
NOISE = re.compile(
    r"^(\.|F|s|=|-| *\d+ (passed|failed)|platform |rootdir|plugins|collecting"
    r"|Legend:|  Outliers|  OPS|Name \(time|test_)"
)


def main() -> int:
    out_path = Path(sys.argv[1]) if len(sys.argv) > 1 else None
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "pytest",
            str(ROOT / "benchmarks"),
            "--benchmark-only",
            "-s",
            "-q",
        ],
        capture_output=True,
        text=True,
        cwd=ROOT,
    )
    lines = [
        line
        for line in proc.stdout.splitlines()
        if line.strip() and not NOISE.match(line)
    ]
    body = "\n".join(lines) + "\n"
    if out_path:
        out_path.write_text(body)
        print(f"wrote {out_path} ({len(lines)} lines)")
    else:
        print(body)
    if proc.returncode != 0:
        sys.stderr.write(proc.stdout[-4000:])
        sys.stderr.write(proc.stderr[-2000:])
    return proc.returncode


if __name__ == "__main__":
    sys.exit(main())
