#!/usr/bin/env python
"""Build the arena benchmark corpus: versioned binary graph files.

Generates a fixed, seeded family of instances spanning the regimes the
paper cares about (sparse random, non-sparse random, planted cuts,
structured, unweighted simple, and one dense multigraph with more than
a million edges), writes each as a ``.rpg`` binary
(:func:`repro.graphs.write_graph_binary`), and records a
``corpus.json`` manifest with per-instance metadata (n, m, weighted,
column bytes, CRC-carrying header verified on read).

``scripts/bench_arena.py`` consumes the manifest.  Everything is
deterministic: same seed, bit-identical corpus.

Usage::

    PYTHONPATH=src python scripts/build_corpus.py --out corpus
    PYTHONPATH=src python scripts/build_corpus.py --out corpus --smoke
"""

from __future__ import annotations

import argparse
import json
import sys
import zlib
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.graphs import Graph  # noqa: E402
from repro.graphs.generators import (  # noqa: E402
    barbell_graph,
    grid_graph,
    planted_cut_graph,
    random_connected_graph,
)
from repro.graphs.io import graph_binary_info, write_graph_binary  # noqa: E402


def dense_multigraph(n: int, m: int, *, rng: np.random.Generator) -> Graph:
    """A dense weighted multigraph: m random edges over n vertices.

    Parallel edges are left to :class:`Graph`'s coalescing; with
    m >> n^2 the result stays near-complete with heavy integer
    weights — the non-sparse regime the paper targets, at small n so
    the O(n^3) exact anchor stays feasible.
    """
    u = rng.integers(0, n, size=m)
    v = rng.integers(0, n, size=m)
    keep = u != v
    u, v = u[keep], v[keep]
    w = rng.integers(1, 5, size=u.size).astype(np.float64)
    # pad back to exactly m edges with ring edges (always valid)
    short = m - u.size
    if short > 0:
        ring = np.arange(short, dtype=np.int64)
        u = np.concatenate([u, ring % n])
        v = np.concatenate([v, (ring + 1) % n])
        w = np.concatenate([w, np.ones(short)])
    return Graph(n, u, v, w)


def unweighted_simple(n: int, p: float, *, rng: np.random.Generator) -> Graph:
    """Connected G(n, p) with unit weights (for the 2-out contender)."""
    iu, iv = np.triu_indices(n, k=1)
    keep = rng.random(iu.size) < p
    u, v = iu[keep], iv[keep]
    ring = np.arange(n, dtype=np.int64)
    u = np.concatenate([u, ring])
    v = np.concatenate([v, (ring + 1) % n])
    pairs = np.unique(np.stack([np.minimum(u, v), np.maximum(u, v)], axis=1), axis=0)
    return Graph(n, pairs[:, 0], pairs[:, 1], np.ones(pairs.shape[0]))


def corpus_spec(smoke: bool):
    """(name, builder) pairs; builders take a Generator and return a Graph."""
    if smoke:
        return [
            ("sparse-small", lambda rng: random_connected_graph(
                60, 180, rng=rng, max_weight=6)),
            ("dense-small", lambda rng: random_connected_graph(
                40, 500, rng=rng, max_weight=4)),
            ("planted-small", lambda rng: planted_cut_graph(
                24, 24, 3.0, cut_edges=3, rng=rng)),
            ("grid-small", lambda rng: grid_graph(8, 8, rng=rng, max_weight=3)),
            ("unweighted-small", lambda rng: unweighted_simple(32, 0.2, rng=rng)),
            ("multigraph-small", lambda rng: dense_multigraph(30, 4000, rng=rng)),
        ]
    return [
        ("sparse-random", lambda rng: random_connected_graph(
            2000, 8000, rng=rng, max_weight=8)),
        ("nonsparse-random", lambda rng: random_connected_graph(
            300, 20000, rng=rng, max_weight=8)),
        ("planted-cut", lambda rng: planted_cut_graph(
            150, 150, 6.0, cut_edges=6, rng=rng)),
        ("grid", lambda rng: grid_graph(45, 45, rng=rng, max_weight=5)),
        ("barbell", lambda rng: barbell_graph(80, 2.0)),
        ("unweighted-gnp", lambda rng: unweighted_simple(120, 0.15, rng=rng)),
        ("dense-multigraph-1m", lambda rng: dense_multigraph(
            600, 1_050_000, rng=rng)),
    ]


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--out", type=Path, default=Path("corpus"),
                    help="output directory for .rpg files + corpus.json")
    ap.add_argument("--seed", type=int, default=2021)
    ap.add_argument("--smoke", action="store_true",
                    help="tiny corpus for CI (seconds, not minutes)")
    args = ap.parse_args(argv)

    args.out.mkdir(parents=True, exist_ok=True)
    manifest = {"seed": args.seed, "smoke": args.smoke, "graphs": []}
    for name, build in corpus_spec(args.smoke):
        rng = np.random.default_rng([args.seed, zlib.crc32(name.encode())])
        g = build(rng)
        path = args.out / f"{name}.rpg"
        write_graph_binary(g, path)
        info = graph_binary_info(path)
        entry = {
            "name": name,
            "file": path.name,
            "n": info["n"],
            "m": info["m"],
            "weighted": bool(np.any(g.w != 1.0)),
            "column_bytes": info["column_bytes"],
            "file_bytes": info["file_bytes"],
        }
        manifest["graphs"].append(entry)
        print(f"{name}: n={entry['n']} m={entry['m']} "
              f"({entry['file_bytes']} bytes)")
    (args.out / "corpus.json").write_text(json.dumps(manifest, indent=2) + "\n")
    print(f"manifest {args.out / 'corpus.json'}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
