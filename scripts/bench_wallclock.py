#!/usr/bin/env python
"""Wall-clock regression harness for the fast-path kernels.

Runs the E5 (2-respecting work optimality / eps tradeoff) and E8
(density crossover) sweeps once under the reference kernels and once
under the fast kernels (``repro.kernels``), checks the parity contract
on every configuration (bit-identical cut value, identical stats
counters, identical ledger work/depth totals and per-phase records), and
writes ``BENCH_wallclock.json`` at the repo root with per-stage wall
timings, per-experiment aggregate speedups, and a ledger-parity
checksum.  It also fans the E8 sweep out under every executor backend
(sync / thread / process / shm, :mod:`repro.pram.executor`) with
pre-warmed pools and a broadcast context, records each backend's
dispatch overhead counter, and writes a ``brent_bound`` section
comparing achieved T_p against the ledger prediction T_p = W/p + D
(converted to seconds via the sync run).  ``--min-shm-speedup X`` gates
the shm-vs-sync speedup, but only on hosts granting at least
``--workers`` effective CPUs — quota-capped containers record the
measurement without failing.

Usage::

    PYTHONPATH=src python scripts/bench_wallclock.py [--small]
        [--min-speedup X] [--min-shm-speedup X] [--workers N]
        [--output PATH] [--skip-executors]

``--small`` shrinks every sweep for CI smoke runs.  ``--min-speedup X``
exits non-zero when any experiment's aggregate speedup (sum of reference
wall seconds / sum of fast wall seconds) falls below X.  Parity failures
always exit non-zero.

The harness also measures the :mod:`repro.obs` tracing overhead on one
representative configuration: best-of-N wall seconds with tracing off
vs. tracing on (span tree + counter registry armed).  The traced run
must produce the bit-identical cut value and ledger work/depth — the
observability layer never charges the ledger — and ``--max-trace-overhead
R`` exits non-zero when traced/untraced exceeds R (CI gates at 1.05).

``--batch [N]`` (default 8 when given) additionally benchmarks the
staged :class:`repro.engine.CutEngine`: one cold ``min_cut()`` vs a
cold ``min_cut_batch`` of N queries on the same representative
configuration.  The batch pays preprocessing (validate / approximate /
sparsify / pack / index) once, so its amortized per-query wall must
stay under ``--max-batch-ratio`` (default 3.0) times the single cold
query, and every batch query must report the cold query's cut value.

``--updates [N]`` (default 12 when given) benchmarks the engine's
incremental mutation surface: one engine absorbs N seeded random
add/remove/reweight batches through ``CutEngine.update()`` (every
answer verified exact), against a cold engine rebuilt on each mutated
graph.  ``--min-update-speedup X`` gates the **deterministic ledger
work** ratio (cold rebuild work / update work) at X, with rebase
trigger events counted and recorded — wall clock rides along for
information but is never gated, since CI containers are quota-capped.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import platform
import sys
import time
from contextlib import contextmanager
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

import numpy as np  # noqa: E402

from repro.core import branching_for_epsilon  # noqa: E402
from repro.graphs import random_connected_graph  # noqa: E402
from repro.kernels import force_kernels  # noqa: E402
from repro.pram import Ledger, force_executor, parallel_map  # noqa: E402
from repro.primitives import root_tree, spanning_forest_graph  # noqa: E402
from repro.tworespect import two_respecting_min_cut  # noqa: E402


class TimedLedger(Ledger):
    """A Ledger that also records wall seconds spent inside each phase."""

    __slots__ = ("phase_wall",)

    def __init__(self) -> None:
        super().__init__()
        self.phase_wall: dict = {}

    def phase(self, name: str):
        parent = super().phase(name)

        @contextmanager
        def timed():
            t0 = time.perf_counter()
            with parent as rec:
                yield rec
            self.phase_wall[name] = (
                self.phase_wall.get(name, 0.0) + time.perf_counter() - t0
            )

        return timed()


def _spanning_parent(g):
    ids, _ = spanning_forest_graph(g)
    return root_tree(g.n, g.u[ids], g.v[ids], 0)


def _configs(small: bool):
    """(experiment, label, n, m, seed, branching) rows mirroring E5/E8."""
    rows = []
    m_sweep = [1500, 3000] if small else [1500, 3000, 6000, 12000, 24000]
    for m in m_sweep:
        rows.append(("E5_m_sweep", f"n=500 m={m} b=2", 500, m, m, 2))
    eps_sweep = [None, 0.15] if small else [None, 0.15, 0.3, 0.45]
    eps_n, eps_m = (200, 8000) if small else (400, 50000)
    for eps in eps_sweep:
        b = branching_for_epsilon(eps_n, eps)
        tag = "b=2" if eps is None else f"eps={eps:g}"
        rows.append(("E5_eps_sweep", f"n={eps_n} m={eps_m} {tag} (b={b})", eps_n, eps_m, 77, b))
    densities = [2, 8] if small else [2, 4, 8, 16, 32, 64]
    n8 = 256 if small else 512
    for d in densities:
        rows.append(("E8_density", f"n={n8} m/n={d} b=2", n8, d * n8, d, 2))
    return rows


def _run_mode(mode: str, g, parent, branching: int):
    # the instance is built by the caller: generation and spanning-tree
    # construction are mode-independent and must not dilute the ratio
    led = TimedLedger()
    t0 = time.perf_counter()
    with force_kernels(mode):
        res = two_respecting_min_cut(g, parent, branching=branching, ledger=led)
    wall = time.perf_counter() - t0
    return {
        "value": res.value,
        "stats": dict(res.stats),
        "work": led.work,
        "depth": led.depth,
        "wall_s": wall,
        "stages": {k: round(v, 6) for k, v in led.phase_wall.items()},
    }


def _solve_indexed(context, idx):
    """Executor-backend worker: solve prebuilt instance ``idx``.

    The whole instance list travels as a broadcast context — pickled
    once into the pool initializer on the process backend, published
    once into shared memory on the shm backend — so each task carries
    only an integer.
    """
    g, parent, branching = context[idx]
    led = Ledger()
    with force_kernels("fast"):
        res = two_respecting_min_cut(g, parent, branching=branching, ledger=led)
    return res.value, led.work, led.depth


def _effective_cpus() -> float:
    """CPUs this process can actually burn: affinity mask capped by the
    cgroup cpu quota (containers routinely pin this near 1 even when
    ``os.cpu_count()`` reports the host's cores)."""
    import os

    try:
        avail = float(len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux
        avail = float(os.cpu_count() or 1)
    try:
        parts = Path("/sys/fs/cgroup/cpu.max").read_text().split()
        if parts and parts[0] != "max":
            avail = min(avail, float(parts[0]) / float(parts[1]))
    except (OSError, IndexError, ValueError, ZeroDivisionError):
        pass
    return max(1.0, avail)


def _time_executors(configs, workers: int = 4,
                    backends=("sync", "thread", "process", "shm"), reps: int = 3):
    """Time the fast-mode sweep fan-out under every executor backend.

    Instances are prebuilt in the parent and broadcast as a
    ``parallel_map`` context; pools are pre-warmed so the timed region
    measures dispatch + compute, not worker spawn.  ``wall_s`` is the
    best of ``reps`` (steady state: publication/initializer costs are
    amortized by context reuse); ``cold_wall_s`` keeps the first rep.
    """
    from repro.obs.counters import CounterRegistry, counting_scope
    from repro.pram.executor import prewarm_executor
    from repro.shm import shm_available

    instances = []
    for _, _, n, m, seed, b in configs:
        g = random_connected_graph(n, m, rng=seed, max_weight=6)
        instances.append((g, _spanning_parent(g), b))
    context = tuple(instances)
    context_key = f"bench-e8-sweep-{len(instances)}"
    items = list(range(len(instances)))

    out = {"workers": workers, "reps": reps}
    base_values = None
    for backend in backends:
        if backend == "shm" and not shm_available():
            out[backend] = {"skipped": "shared memory unavailable"}
            continue
        reg = CounterRegistry()
        walls = []
        with counting_scope(reg), force_executor(backend):
            prewarm_executor(backend, workers)
            for _ in range(reps):
                t0 = time.perf_counter()
                results = parallel_map(
                    _solve_indexed, items, workers,
                    context=context, context_key=context_key,
                )
                walls.append(time.perf_counter() - t0)
        values = [round(v, 9) for v, _, _ in results]
        if base_values is None:
            base_values = values
        counts = reg.snapshot()
        out[backend] = {
            "wall_s": round(min(walls), 4),
            "cold_wall_s": round(walls[0], 4),
            "values": values,
            "parity": values == base_values,
            "dispatch_overhead_s": round(
                counts.get("executor.dispatch_overhead_s", 0.0), 4
            ),
        }
        if backend == "shm":
            out[backend]["segments_published"] = counts.get(
                "shm.segments_published", 0.0
            )
            out[backend]["worker_attaches"] = counts.get(
                "shm.worker_attaches", 0.0
            )
    # fork-join charge of the sweep (work sums, depth maxes) for Brent
    work = float(sum(w for _, w, _ in results))
    depth = float(max(d for _, _, d in results))
    out["ledger"] = {"work": work, "depth": depth}
    for a, b, key in (("thread", "process", "process_speedup_vs_thread"),
                      ("sync", "shm", "shm_speedup_vs_sync"),
                      ("sync", "process", "process_speedup_vs_sync")):
        wa = out.get(a, {}).get("wall_s")
        wb = out.get(b, {}).get("wall_s")
        if wa and wb:
            out[key] = round(wa / wb, 3)
    return out


def _brent_bound(executors: dict, workers: int) -> dict:
    """Achieved T_p against the Brent prediction T_p = W/p + D.

    The ledger charges abstract work/depth units; the sync run converts
    them to seconds (T_1 = s * W, so s = T_1 / W), making the predicted
    parallel wall ``s * (W/p + D)``.  ``ratio_to_bound`` is achieved /
    predicted: 1.0 means the backend hits the work-optimal schedule,
    large values mean dispatch overhead or too few real cores — which is
    why ``effective_cpus`` rides along: on a quota-capped host every
    backend is rightly pinned near T_1.
    """
    sync_wall = executors.get("sync", {}).get("wall_s")
    ledger = executors.get("ledger", {})
    work, depth = ledger.get("work"), ledger.get("depth")
    if not sync_wall or not work:
        return {"skipped": "no sync baseline"}
    s_per_unit = sync_wall / work
    predicted = s_per_unit * (work / workers + depth)
    achieved = {}
    for backend in ("thread", "process", "shm"):
        wall = executors.get(backend, {}).get("wall_s")
        if wall:
            achieved[backend] = {
                "wall_s": wall,
                "ratio_to_bound": round(wall / predicted, 3),
            }
    return {
        "work": work,
        "depth": depth,
        "workers": workers,
        "effective_cpus": round(_effective_cpus(), 2),
        "t1_wall_s": sync_wall,
        "seconds_per_work_unit": s_per_unit,
        "predicted_tp_s": round(predicted, 4),
        "achieved": achieved,
    }


def _time_trace_overhead(config, reps: int = 3):
    """Best-of-``reps`` traced vs untraced wall seconds on one config.

    Both variants run the fast kernels on the same prebuilt instance.
    The traced variant arms a full Tracer (span tree + counter registry)
    around the solve; parity of value/work/depth across the two variants
    is part of the result because observability must never perturb the
    computation.
    """
    from repro import obs

    _, label, n, m, seed, branching = config
    g = random_connected_graph(n, m, rng=seed, max_weight=6)
    parent = _spanning_parent(g)

    def one(traced: bool):
        led = Ledger()
        t0 = time.perf_counter()
        with force_kernels("fast"):
            if traced:
                tracer = obs.Tracer(ledger=led)
                with tracer.activate():
                    res = two_respecting_min_cut(g, parent, branching=branching, ledger=led)
                tracer.finish()
            else:
                res = two_respecting_min_cut(g, parent, branching=branching, ledger=led)
        return time.perf_counter() - t0, (res.value, led.work, led.depth)

    # warm-up once so neither variant pays first-call numpy/JIT costs
    one(False)
    untraced = [one(False) for _ in range(reps)]
    traced = [one(True) for _ in range(reps)]
    off = min(w for w, _ in untraced)
    on = min(w for w, _ in traced)
    parity = untraced[0][1] == traced[0][1]
    return {
        "label": label,
        "reps": reps,
        "untraced_wall_s": round(off, 4),
        "traced_wall_s": round(on, 4),
        "overhead_ratio": round(on / off, 4) if off > 0 else float("inf"),
        "parity": parity,
    }


def _time_engine_batch(config, batch: int = 8, reps: int = 3):
    """Best-of-``reps`` cold-single vs cold-batch engine wall seconds.

    Both variants start from an empty artifact cache.  The batch variant
    runs preprocessing once and fans ``batch`` independent query seeds
    through the cached :class:`~repro.engine.artifacts.PackedForest`, so
    ``amortized_ratio`` — (batch wall / batch) / single-query wall — is
    the amortization the engine buys; parity requires every batch query
    to land on the cold query's cut value.
    """
    from repro.engine import CutEngine

    _, label, n, m, seed, _branching = config
    g = random_connected_graph(n, m, rng=seed, max_weight=6)

    def cold_single():
        t0 = time.perf_counter()
        res = CutEngine(g, seed=seed).min_cut()
        return time.perf_counter() - t0, res.value

    def cold_batch():
        t0 = time.perf_counter()
        results = CutEngine(g, seed=seed).min_cut_batch(range(batch))
        return time.perf_counter() - t0, [r.value for r in results]

    # warm-up once so neither variant pays first-call import/numpy costs
    cold_single()
    singles = [cold_single() for _ in range(reps)]
    batches = [cold_batch() for _ in range(reps)]
    cold_wall = min(w for w, _ in singles)
    batch_wall = min(w for w, _ in batches)
    value = singles[0][1]
    parity = all(v == value for _, vals in batches for v in vals)
    amortized = batch_wall / batch
    return {
        "label": label,
        "batch": batch,
        "reps": reps,
        "value": value,
        "cold_wall_s": round(cold_wall, 4),
        "batch_wall_s": round(batch_wall, 4),
        "amortized_wall_s": round(amortized, 4),
        "amortized_ratio": (
            round(amortized / cold_wall, 4) if cold_wall > 0 else float("inf")
        ),
        "parity": parity,
    }


def _time_engine_updates(config, updates: int = 12):
    """Amortized ``update()+query`` vs a cold rebuild per mutation.

    One engine absorbs a seeded :func:`repro.engine.deltas.random_delta`
    stream through :meth:`CutEngine.update` (each answer verified exact,
    as the product path does); the baseline pays a cold
    :class:`CutEngine` build on every mutated graph.  ``ratio_work`` —
    cold ledger work / update ledger work — is the amortization the
    delta path buys and is what ``--min-update-speedup`` gates: ledger
    work units are deterministic, so the gate holds on quota-capped CI
    hosts where wall clock is noise.  Rebase-trigger events are counted
    and reported alongside.
    """
    from repro.engine import CutEngine
    from repro.engine.deltas import random_delta
    from repro.obs.counters import CounterRegistry, counting_scope

    _, label, n, m, seed, _branching = config
    g = random_connected_graph(n, m, rng=seed, max_weight=6)

    reg = CounterRegistry()
    upd_led = Ledger()
    engine = CutEngine(g, seed=seed, ledger=upd_led)
    engine.min_cut()
    preprocess_work = upd_led.work
    rng = np.random.default_rng(seed)
    graphs, values = [], []
    with counting_scope(reg):
        t0 = time.perf_counter()
        for _ in range(updates):
            upd = engine.update(**random_delta(engine.graph, rng))
            graphs.append(engine.graph)
            values.append(upd.value)
        update_wall = time.perf_counter() - t0
    update_work = upd_led.work - preprocess_work

    cold_led = Ledger()
    t0 = time.perf_counter()
    cold_values = [
        CutEngine(gg, seed=seed, ledger=cold_led).min_cut().value for gg in graphs
    ]
    cold_wall = time.perf_counter() - t0

    counts = reg.snapshot()
    rebase_events = {
        key.split("engine.rebase.", 1)[1]: v
        for key, v in counts.items()
        if key.startswith("engine.rebase.")
    }
    return {
        "label": label,
        "updates": updates,
        "parity": cold_values == values,
        "update_work": update_work,
        "cold_rebuild_work": cold_led.work,
        "ratio_work": (
            round(cold_led.work / update_work, 4)
            if update_work > 0 else float("inf")
        ),
        "update_wall_s": round(update_wall, 4),
        "cold_rebuild_wall_s": round(cold_wall, 4),
        "rebases": counts.get("engine.rebases", 0.0),
        "rebase_events": rebase_events,
        "noops": counts.get("engine.update_noops", 0.0),
        "verify_failures": counts.get("engine.update_verify_failures", 0.0),
        "final_epoch": engine.epoch,
        "final_staleness": engine.staleness,
    }


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--small", action="store_true", help="CI-sized sweeps")
    ap.add_argument("--min-speedup", type=float, default=None,
                    help="fail if any experiment's aggregate speedup is below this")
    ap.add_argument("--max-trace-overhead", type=float, default=None, metavar="R",
                    help="fail if traced/untraced wall ratio exceeds R (e.g. 1.05)")
    ap.add_argument("--output", type=Path, default=ROOT / "BENCH_wallclock.json")
    ap.add_argument("--skip-executors", action="store_true",
                    help="skip the executor-backend dispatch timing")
    ap.add_argument("--workers", type=int, default=4,
                    help="worker count for the executor-backend timing")
    ap.add_argument("--min-shm-speedup", type=float, default=None, metavar="X",
                    help="fail if shm speedup vs sync is below X — enforced "
                         "only when the host grants >= --workers effective "
                         "CPUs (quota-capped containers record, not gate)")
    ap.add_argument("--batch", type=int, nargs="?", const=8, default=0, metavar="N",
                    help="benchmark a CutEngine batch of N queries (default 8) "
                         "against a single cold query")
    ap.add_argument("--max-batch-ratio", type=float, default=3.0, metavar="R",
                    help="with --batch: fail if the amortized per-query wall "
                         "exceeds R x a single cold query (default 3.0)")
    ap.add_argument("--updates", type=int, nargs="?", const=12, default=0,
                    metavar="N",
                    help="benchmark N incremental engine.update() mutations "
                         "(default 12) against a cold rebuild per mutated "
                         "graph")
    ap.add_argument("--min-update-speedup", type=float, default=None, metavar="X",
                    help="with --updates: fail if cold-rebuild ledger work / "
                         "update ledger work falls below X (deterministic "
                         "work units, so enforced even on quota-capped hosts)")
    args = ap.parse_args()

    configs = _configs(args.small)
    experiments: dict = {}
    parity_ok = True
    hasher = hashlib.sha256()

    for exp, label, n, m, seed, b in configs:
        g = random_connected_graph(n, m, rng=seed, max_weight=6)
        parent = _spanning_parent(g)
        ref = _run_mode("reference", g, parent, b)
        fast = _run_mode("fast", g, parent, b)
        same = (
            ref["value"] == fast["value"]
            and ref["stats"] == fast["stats"]
            and (ref["work"], ref["depth"]) == (fast["work"], fast["depth"])
        )
        parity_ok &= same
        hasher.update(
            f"{label}|{ref['value']!r}|{ref['work']!r}|{ref['depth']!r}|{same}".encode()
        )
        speedup = ref["wall_s"] / fast["wall_s"] if fast["wall_s"] > 0 else float("inf")
        entry = experiments.setdefault(exp, {"configs": []})
        entry["configs"].append(
            {
                "label": label,
                "n": n,
                "m": m,
                "branching": b,
                "value": ref["value"],
                "ledger": {"work": ref["work"], "depth": ref["depth"]},
                "parity": same,
                "wall_s": {"reference": round(ref["wall_s"], 4),
                           "fast": round(fast["wall_s"], 4)},
                "speedup": round(speedup, 3),
                "stages": {"reference": ref["stages"], "fast": fast["stages"]},
            }
        )
        status = "ok" if same else "PARITY MISMATCH"
        print(f"[{exp}] {label}: ref {ref['wall_s']:.3f}s fast {fast['wall_s']:.3f}s "
              f"({speedup:.2f}x) {status}")

    total_ref = total_fast = 0.0
    for exp, entry in experiments.items():
        ref_s = sum(c["wall_s"]["reference"] for c in entry["configs"])
        fast_s = sum(c["wall_s"]["fast"] for c in entry["configs"])
        entry["aggregate_speedup"] = round(ref_s / fast_s, 3) if fast_s else float("inf")
        total_ref += ref_s
        total_fast += fast_s
        print(f"== {exp}: aggregate speedup {entry['aggregate_speedup']:.2f}x "
              f"({ref_s:.2f}s -> {fast_s:.2f}s)")

    report = {
        "generated_by": "scripts/bench_wallclock.py",
        "small": args.small,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "experiments": experiments,
        "aggregate_speedup": round(total_ref / total_fast, 3) if total_fast else None,
        "parity_ok": bool(parity_ok),
        "parity_checksum": hasher.hexdigest(),
    }
    # observability overhead: the densest E8 row is the representative
    # config (kernel-heavy, so per-site counter guards are exercised most)
    trace_config = max(
        (c for c in configs if c[0] == "E8_density"), key=lambda c: c[3]
    )
    trace_overhead = _time_trace_overhead(trace_config)
    report["trace_overhead"] = trace_overhead
    parity_ok &= trace_overhead["parity"]
    report["parity_ok"] = bool(parity_ok)
    print(f"trace overhead [{trace_overhead['label']}]: "
          f"off {trace_overhead['untraced_wall_s']:.3f}s "
          f"on {trace_overhead['traced_wall_s']:.3f}s "
          f"({trace_overhead['overhead_ratio']:.3f}x)")

    executors = None
    if not args.skip_executors:
        # fan the fast-mode E8 sweep out under every executor backend
        # (sync is the T_1 baseline; branches are pure-Python bound, so
        # only the process/shm pools can beat a single core, and only
        # shm does it without re-pickling the instances per dispatch)
        exec_configs = [c for c in configs if c[0] == "E8_density"]
        executors = _time_executors(exec_configs, workers=args.workers)
        report["executor_backends"] = executors
        report["brent_bound"] = _brent_bound(executors, args.workers)
        for backend in ("sync", "thread", "process", "shm"):
            entry = executors.get(backend, {})
            if "wall_s" in entry:
                print(f"executor {backend}: {entry['wall_s']:.3f}s "
                      f"(dispatch {entry['dispatch_overhead_s']:.3f}s)")
            elif "skipped" in entry:
                print(f"executor {backend}: skipped ({entry['skipped']})")
        bb = report["brent_bound"]
        if "predicted_tp_s" in bb:
            print(f"brent bound: T_{args.workers} >= {bb['predicted_tp_s']:.3f}s "
                  f"(W={bb['work']:.0f}, D={bb['depth']:.0f}, "
                  f"effective cpus {bb['effective_cpus']})")
        if "shm_speedup_vs_sync" in executors:
            print(f"shm speedup vs sync: {executors['shm_speedup_vs_sync']:.2f}x")
        from repro.pram.executor import shutdown_shared_pools

        shutdown_shared_pools()

    engine_batch = None
    if args.batch:
        # same representative row as the trace-overhead probe: the engine
        # amortization story only matters where preprocessing is heavy
        engine_batch = _time_engine_batch(trace_config, batch=args.batch)
        report["engine_batch"] = engine_batch
        parity_ok &= engine_batch["parity"]
        report["parity_ok"] = bool(parity_ok)
        print(f"engine batch [{engine_batch['label']}]: "
              f"cold {engine_batch['cold_wall_s']:.3f}s "
              f"batch/{engine_batch['batch']} {engine_batch['batch_wall_s']:.3f}s "
              f"(amortized {engine_batch['amortized_ratio']:.3f}x)")

    engine_updates = None
    if args.updates:
        # same representative row again: the incremental story is about
        # skipping heavy preprocessing, so measure it where that's heavy
        engine_updates = _time_engine_updates(trace_config, updates=args.updates)
        report["engine_updates"] = engine_updates
        parity_ok &= engine_updates["parity"]
        report["parity_ok"] = bool(parity_ok)
        print(f"engine updates [{engine_updates['label']}]: "
              f"{engine_updates['updates']} mutations, "
              f"update work {engine_updates['update_work']:.0f} vs cold "
              f"{engine_updates['cold_rebuild_work']:.0f} "
              f"({engine_updates['ratio_work']:.2f}x), "
              f"rebases {engine_updates['rebases']:.0f} "
              f"{engine_updates['rebase_events']}")

    args.output.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.output}")

    if not parity_ok:
        print("FAIL: ledger/value parity violated", file=sys.stderr)
        return 1
    if (args.max_trace_overhead is not None
            and trace_overhead["overhead_ratio"] > args.max_trace_overhead):
        print(f"FAIL: trace overhead {trace_overhead['overhead_ratio']}x "
              f"> {args.max_trace_overhead}x", file=sys.stderr)
        return 1
    if (engine_batch is not None
            and engine_batch["amortized_ratio"] > args.max_batch_ratio):
        print(f"FAIL: engine batch amortized ratio "
              f"{engine_batch['amortized_ratio']}x > {args.max_batch_ratio}x",
              file=sys.stderr)
        return 1
    if (engine_updates is not None
            and args.min_update_speedup is not None
            and engine_updates["ratio_work"] < args.min_update_speedup):
        print(f"FAIL: engine update work ratio "
              f"{engine_updates['ratio_work']}x < {args.min_update_speedup}x",
              file=sys.stderr)
        return 1
    if args.min_speedup is not None:
        for exp, entry in experiments.items():
            if entry["aggregate_speedup"] < args.min_speedup:
                print(f"FAIL: {exp} aggregate speedup "
                      f"{entry['aggregate_speedup']}x < {args.min_speedup}x",
                      file=sys.stderr)
                return 1
    if args.min_shm_speedup is not None and executors is not None:
        if any("parity" in executors.get(b, {})
               and not executors[b]["parity"]
               for b in ("thread", "process", "shm")):
            print("FAIL: executor backend values diverge from sync",
                  file=sys.stderr)
            return 1
        speedup = executors.get("shm_speedup_vs_sync")
        cpus = _effective_cpus()
        if speedup is None:
            print("NOTE: shm backend unavailable; speedup gate skipped")
        elif cpus < args.workers:
            print(f"NOTE: host grants {cpus:.1f} effective CPUs "
                  f"(< {args.workers} workers); measured shm speedup "
                  f"{speedup}x recorded, gate not enforced")
        elif speedup < args.min_shm_speedup:
            print(f"FAIL: shm speedup vs sync {speedup}x "
                  f"< {args.min_shm_speedup}x at {cpus:.1f} effective CPUs",
                  file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
