#!/usr/bin/env python
"""Validate a ``repro --trace`` JSON file against the documented schema.

The schema (``docs/observability.md``) is small enough to check by
hand — no jsonschema dependency:

* top level: object with ``traceEvents`` (list), ``displayTimeUnit``
  (``"ms"``), and the ``repro`` sidecar object;
* every event: Chrome complete-event shape — ``name`` (str), ``cat``
  (``"repro"``), ``ph`` (``"X"``), numeric non-negative ``ts``/``dur``,
  int ``pid``/``tid``, ``args`` object with numeric ``work``/``depth``
  (and an optional ``counters`` object of floats);
* sidecar: numeric ``work``/``depth``, ``counters`` object, ``phases``
  list of {name, wall_s, work, depth, count}, ``meta`` object of
  strings, optional ``schedule_bounds`` of 2-lists with lower <= upper;
* cross-checks: exactly one root span named ``run``; the sidecar's
  work equals the root event's ``args.work``; child events nest inside
  their parent's [ts, ts+dur] window (0.5 us slack for rounding).

Usage::

    python scripts/validate_trace.py TRACE.json

Exits 0 and prints ``ok`` on success; prints every violation and exits
1 otherwise.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

#: rounding slack (microseconds) for nesting checks — ts/dur are
#: rounded to 3 decimals on export
_SLACK_US = 0.5


def _is_num(x) -> bool:
    return isinstance(x, (int, float)) and not isinstance(x, bool)


def validate(payload: dict) -> list:
    """Return a list of violation strings (empty = valid)."""
    errs: list = []

    def need(cond: bool, msg: str) -> bool:
        if not cond:
            errs.append(msg)
        return cond

    if not need(isinstance(payload, dict), "top level must be a JSON object"):
        return errs
    events = payload.get("traceEvents")
    if not need(isinstance(events, list), "traceEvents must be a list"):
        return errs
    need(payload.get("displayTimeUnit") == "ms", "displayTimeUnit must be 'ms'")
    sidecar = payload.get("repro")
    if not need(isinstance(sidecar, dict), "missing 'repro' sidecar object"):
        return errs

    need(len(events) >= 1, "traceEvents must contain at least the root span")
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not need(isinstance(ev, dict), f"{where} must be an object"):
            continue
        need(isinstance(ev.get("name"), str) and ev.get("name"),
             f"{where}.name must be a nonempty string")
        need(ev.get("cat") == "repro", f"{where}.cat must be 'repro'")
        need(ev.get("ph") == "X", f"{where}.ph must be 'X' (complete event)")
        for k in ("ts", "dur"):
            need(_is_num(ev.get(k)) and ev.get(k, -1) >= 0,
                 f"{where}.{k} must be a non-negative number")
        for k in ("pid", "tid"):
            need(isinstance(ev.get(k), int), f"{where}.{k} must be an int")
        args = ev.get("args")
        if need(isinstance(args, dict), f"{where}.args must be an object"):
            for k in ("work", "depth"):
                need(_is_num(args.get(k)), f"{where}.args.{k} must be a number")
            if "counters" in args:
                ctr = args["counters"]
                if need(isinstance(ctr, dict), f"{where}.args.counters must be an object"):
                    for name, v in ctr.items():
                        need(_is_num(v), f"{where}.args.counters[{name!r}] must be a number")

    for k in ("work", "depth"):
        need(_is_num(sidecar.get(k)), f"repro.{k} must be a number")
    ctr = sidecar.get("counters")
    if need(isinstance(ctr, dict), "repro.counters must be an object"):
        for name, v in ctr.items():
            need(_is_num(v), f"repro.counters[{name!r}] must be a number")
    phases = sidecar.get("phases")
    if need(isinstance(phases, list), "repro.phases must be a list"):
        for i, p in enumerate(phases):
            where = f"repro.phases[{i}]"
            if not need(isinstance(p, dict), f"{where} must be an object"):
                continue
            need(isinstance(p.get("name"), str), f"{where}.name must be a string")
            for k in ("wall_s", "work", "depth"):
                need(_is_num(p.get(k)), f"{where}.{k} must be a number")
            need(isinstance(p.get("count"), int) and p.get("count", 0) >= 1,
                 f"{where}.count must be a positive int")
    meta = sidecar.get("meta")
    if need(isinstance(meta, dict), "repro.meta must be an object"):
        for name, v in meta.items():
            need(isinstance(v, str), f"repro.meta[{name!r}] must be a string")
    if "schedule_bounds" in sidecar:
        sb = sidecar["schedule_bounds"]
        if need(isinstance(sb, dict), "repro.schedule_bounds must be an object"):
            for p, pair in sb.items():
                ok = (isinstance(pair, list) and len(pair) == 2
                      and all(_is_num(x) for x in pair) and pair[0] <= pair[1])
                need(ok, f"repro.schedule_bounds[{p!r}] must be [lower, upper]")

    if errs:
        return errs

    # ---- cross-checks on the span tree ------------------------------------
    roots = [ev for ev in events if ev["name"] == "run"]
    need(len(roots) == 1, f"expected exactly one 'run' root span, got {len(roots)}")
    if roots:
        root = roots[0]
        need(abs(sidecar["work"] - root["args"]["work"]) < 1e-9,
             "repro.work must equal the root span's args.work")
        t0, t1 = root["ts"], root["ts"] + root["dur"]
        for i, ev in enumerate(events):
            inside = (ev["ts"] >= t0 - _SLACK_US
                      and ev["ts"] + ev["dur"] <= t1 + _SLACK_US)
            need(inside, f"traceEvents[{i}] ({ev['name']!r}) escapes the root window")
    return errs


def main(argv: list | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 1:
        print(__doc__.strip().splitlines()[0], file=sys.stderr)
        print("usage: validate_trace.py TRACE.json", file=sys.stderr)
        return 2
    payload = json.loads(Path(argv[0]).read_text())
    errs = validate(payload)
    if errs:
        for e in errs:
            print(f"INVALID: {e}", file=sys.stderr)
        return 1
    n = len(payload["traceEvents"])
    print(f"ok ({n} spans, work={payload['repro']['work']:g})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
