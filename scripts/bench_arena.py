#!/usr/bin/env python
"""The arena benchmark: every contender against every corpus graph.

Loads the corpus built by ``scripts/build_corpus.py`` (versioned
CRC-checked binaries, opened as read-only memmaps), runs the full
contender x instance matrix through :mod:`repro.arena`, and gates:

* **pairwise exactness** — every ``exact`` contender returns the
  bit-identical value on every instance it runs on;
* **montecarlo soundness** — contraction-based values never undershoot
  the exact answer (agreement rate is reported, not gated);
* **approx certificates** — ``lower_bound <= lambda <= value`` and
  ``value <= claimed_ratio * lambda`` for every ``approx`` contender;
* **binary round-trip** — re-serializing each corpus graph reproduces
  the file byte-for-byte;
* **mmap frugality** — loading the largest graph in a fresh subprocess
  adds less than 2x the raw column bytes of peak RSS.

Cells skipped for feasibility (the log^2 n Karger–Stein schedule on a
million-edge multigraph) are recorded in the output, never silently
dropped.  Writes ``BENCH_arena.json``; non-zero exit on any gate
failure.

Usage::

    PYTHONPATH=src python scripts/build_corpus.py --out corpus
    PYTHONPATH=src python scripts/bench_arena.py --corpus corpus
    PYTHONPATH=src python scripts/bench_arena.py --corpus corpus --smoke
"""

from __future__ import annotations

import argparse
import json
import platform
import subprocess
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro._version import __version__  # noqa: E402
from repro.arena import contender_names, get_contender  # noqa: E402
from repro.arena.contenders import KargerSteinContender  # noqa: E402
from repro.graphs.io import read_graph_binary, write_graph_binary  # noqa: E402

#: value tolerance for *inequality* gates (approx brackets, montecarlo
#: no-undershoot); the exact-agreement gate is == with no tolerance
_TOL = 1e-9

#: past either bound the default log^2 n Karger–Stein repetition
#: schedule is replaced by a 3-repetition run (recorded in the cell's
#: stats): the recursion tree alone is Theta(n^2) nodes, so vertex
#: count — not just edge count — decides feasibility
_KS_FULL_SCHEDULE_MAX_M = 50_000
_KS_FULL_SCHEDULE_MAX_N = 128

#: past this vertex count even a single repetition is infeasible in
#: Python (measured: 3 repetitions at n=2000 exceed 400s) — the cell
#: is skipped with an explicit reason
_KS_MAX_N = 1_000

#: the paper pipeline (its engine/resilient spellings, and the
#: Section 3 approximation it starts from) is super-linear in m and
#: takes tens of minutes past this; those cells are skipped with an
#: explicit reason rather than run open-endedly
_PIPELINE_MAX_M = 400_000
_PIPELINE_FAMILY = ("paper", "engine", "resilient", "approx-s3")


def _roundtrip_ok(path: Path, tmp: Path) -> bool:
    g = read_graph_binary(path)
    out = tmp / (path.name + ".rt")
    write_graph_binary(g, out)
    same = out.read_bytes() == path.read_bytes()
    out.unlink()
    return same


_RSS_PROBE = r"""
import sys

def rss_kib():
    with open("/proc/self/status") as fh:
        for line in fh:
            if line.startswith("VmRSS:"):
                return int(line.split()[1])
    raise RuntimeError("no VmRSS")

sys.path.insert(0, sys.argv[2])
from repro.graphs.io import read_graph_binary

before = rss_kib()
g = read_graph_binary(sys.argv[1])   # CRC verify streams all columns
total = g.total_weight               # touch the weight column again
after = rss_kib()
print((after - before) * 1024, total)
"""


def _mmap_rss_delta(path: Path, src_dir: Path) -> tuple[int, float]:
    """Load ``path`` in a fresh interpreter; return (RSS delta bytes,
    total weight) so the load provably happened."""
    out = subprocess.run(
        [sys.executable, "-c", _RSS_PROBE, str(path), str(src_dir)],
        capture_output=True, text=True, check=True,
    )
    delta, total = out.stdout.split()
    return int(delta), float(total)


def run_matrix(
    manifest: dict, corpus_dir: Path, seed: int, *, smoke: bool = False
) -> tuple[list, list]:
    cells, skipped = [], []
    names = contender_names()
    for entry in manifest["graphs"]:
        path = corpus_dir / entry["file"]
        graph = read_graph_binary(path)
        for name in names:
            if name in _PIPELINE_FAMILY and entry["m"] > _PIPELINE_MAX_M:
                skipped.append({"graph": entry["name"], "contender": name,
                                "reason": "pipeline-size-cap"})
                continue
            if name == "karger-stein" and not smoke and entry["n"] > _KS_MAX_N:
                skipped.append({"graph": entry["name"], "contender": name,
                                "reason": "ks-recursion-cap"})
                continue
            contender = get_contender(name)
            if name == "karger-stein" and (
                smoke
                or entry["m"] > _KS_FULL_SCHEDULE_MAX_M
                or entry["n"] > _KS_FULL_SCHEDULE_MAX_N
            ):
                contender = KargerSteinContender(repetitions=3)
            if not contender.supports(graph):
                skipped.append({"graph": entry["name"], "contender": name,
                                "reason": "unsupported"})
                continue
            t = time.perf_counter()
            res = contender.solve(graph, seed=seed)
            cell = res.to_json()
            cell["graph"] = entry["name"]
            cells.append(cell)
            print(f"{entry['name']:22s} {name:14s} value={res.value:<14g} "
                  f"wall={time.perf_counter() - t:8.3f}s", flush=True)
    return cells, skipped


def gate_matrix(cells: list) -> tuple[dict, list]:
    """Cross-check the matrix; returns (gates summary, failures)."""
    failures = []
    by_graph: dict[str, list] = {}
    for cell in cells:
        by_graph.setdefault(cell["graph"], []).append(cell)

    agree_pairs = 0
    mc_hits = mc_total = 0
    approx_checked = 0
    for gname, group in by_graph.items():
        exact = [c for c in group if c["kind"] == "exact"]
        values = sorted({c["value"] for c in exact})
        if len(values) > 1:
            failures.append(
                f"{gname}: exact contenders disagree: "
                + ", ".join(f"{c['contender']}={c['value']!r}" for c in exact)
            )
            continue
        agree_pairs += len(exact) * (len(exact) - 1) // 2
        lam = values[0] if values else None
        if lam is None:
            continue
        for c in group:
            if c["kind"] == "montecarlo":
                mc_total += 1
                if c["value"] < lam - _TOL:
                    failures.append(
                        f"{gname}/{c['contender']}: montecarlo value "
                        f"{c['value']} undershoots lambda={lam}"
                    )
                elif abs(c["value"] - lam) <= _TOL:
                    mc_hits += 1
            elif c["kind"] == "approx":
                approx_checked += 1
                if c["lower_bound"] > lam + _TOL:
                    failures.append(
                        f"{gname}/{c['contender']}: lower_bound "
                        f"{c['lower_bound']} exceeds lambda={lam}"
                    )
                if c["value"] < lam - _TOL:
                    failures.append(
                        f"{gname}/{c['contender']}: approx value "
                        f"{c['value']} below lambda={lam}"
                    )
                if c["value"] > c["claimed_ratio"] * lam + _TOL:
                    failures.append(
                        f"{gname}/{c['contender']}: value {c['value']} breaks "
                        f"claimed ratio {c['claimed_ratio']} * lambda={lam}"
                    )
    gates = {
        "exact_pairwise_agreements": agree_pairs,
        "montecarlo_hit_rate": (mc_hits / mc_total) if mc_total else None,
        "approx_cells_checked": approx_checked,
    }
    return gates, failures


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--corpus", type=Path, default=Path("corpus"))
    ap.add_argument("--output", type=Path, default=Path("BENCH_arena.json"))
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--smoke", action="store_true",
                    help="CI mode: 3-repetition Karger–Stein everywhere and "
                         "no subprocess RSS probe (CI runners lie about "
                         "memory); all other gates still apply")
    args = ap.parse_args(argv)

    manifest = json.loads((args.corpus / "corpus.json").read_text())
    src_dir = Path(__file__).resolve().parent.parent / "src"

    roundtrip = {}
    for entry in manifest["graphs"]:
        roundtrip[entry["name"]] = _roundtrip_ok(
            args.corpus / entry["file"], args.corpus
        )

    cells, skipped = run_matrix(manifest, args.corpus, args.seed, smoke=args.smoke)
    gates, failures = gate_matrix(cells)
    for gname, ok in roundtrip.items():
        if not ok:
            failures.append(f"{gname}: binary round-trip not bit-identical")

    rss = None
    if not args.smoke:
        largest = max(manifest["graphs"], key=lambda e: e["m"])
        delta, total = _mmap_rss_delta(args.corpus / largest["file"], src_dir)
        rss = {
            "graph": largest["name"],
            "column_bytes": largest["column_bytes"],
            "rss_delta_bytes": delta,
            "total_weight": total,
            "limit_bytes": 2 * largest["column_bytes"],
        }
        if delta >= 2 * largest["column_bytes"]:
            failures.append(
                f"mmap load of {largest['name']} used {delta} bytes RSS "
                f">= 2x column bytes ({2 * largest['column_bytes']})"
            )

    report = {
        "version": __version__,
        "host": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "numpy": np.__version__,
        },
        "seed": args.seed,
        "smoke": bool(args.smoke),
        "corpus": manifest,
        "cells": cells,
        "skipped": skipped,
        "roundtrip_bit_identical": roundtrip,
        "mmap_rss": rss,
        "gates": gates,
        "failures": failures,
        "ok": not failures,
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"cells {len(cells)}  skipped {len(skipped)}")
    print(f"gates {json.dumps(gates)}")
    for f in failures:
        print(f"FAIL {f}", file=sys.stderr)
    print(f"{'ok' if not failures else 'FAILED'} -> {args.output}")
    return 0 if not failures else 1


if __name__ == "__main__":
    sys.exit(main())
