#!/usr/bin/env python
"""Load generator for the cut-serving daemon (:mod:`repro.serve`).

Starts a :class:`~repro.serve.ThreadedTCPServer` in-process, registers a
few tenants with named graphs, then drives sustained query traffic from
concurrent client threads: mostly warm ``min_cut`` hits and zero-delta
``update`` no-ops, a slice of ``min_cut_batch``, and a slice of deliberately-short
deadlines to exercise shedding.  Clients honor ``retry_after``
backpressure (sleeping the server's hint), so the run demonstrates the
full admission contract under load, not just the happy path.

Writes ``BENCH_service.json`` at the repo root with:

* latency percentiles (p50 / p90 / p99, milliseconds) over successful
  queries, per op and overall;
* throughput (completed queries per wall second);
* admission-control counts — retries absorbed, requests shed on
  deadline (queued vs inflight), errors;
* the daemon's own ``serve.*`` counters and per-tenant cache hit rates.

The run fails (non-zero exit) when any request goes unanswered (socket
timeout — the daemon's never-hang contract), any response is ill-formed,
or any ``min_cut`` result disagrees with the graph's precomputed exact
value.

Usage::

    PYTHONPATH=src python scripts/bench_service.py            # full run
    PYTHONPATH=src python scripts/bench_service.py --smoke    # CI smoke
    PYTHONPATH=src python scripts/bench_service.py \
        --queries 5000 --clients 16 --output BENCH_service.json
"""

from __future__ import annotations

import argparse
import json
import platform
import socket
import sys
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

import numpy as np  # noqa: E402

from repro.arena.solvers.stoer_wagner import stoer_wagner  # noqa: E402
from repro.graphs.generators import random_connected_graph  # noqa: E402
from repro.serve import (  # noqa: E402
    ServerConfig,
    ServiceClient,
    ThreadedTCPServer,
    well_formed,
)

TENANTS = ("alpha", "beta", "gamma")


@dataclass
class ClientStats:
    """One worker thread's tally (merged single-threaded afterwards)."""

    latencies_ms: Dict[str, List[float]] = field(default_factory=dict)
    completed: int = 0
    retries: int = 0
    shed_queued: int = 0
    shed_inflight: int = 0
    errors: int = 0
    failures: List[str] = field(default_factory=list)

    def record(self, op: str, ms: float) -> None:
        self.latencies_ms.setdefault(op, []).append(ms)
        self.completed += 1


def _percentile(values: List[float], q: float) -> float:
    if not values:
        return 0.0
    return float(np.percentile(np.asarray(values, dtype=np.float64), q))


def _build_corpus(rng: np.random.Generator, per_tenant: int, small: bool):
    """(tenant, graph_name) -> (edges payload, n, exact value)."""
    corpus = {}
    for tenant in TENANTS:
        for gi in range(per_tenant):
            n = int(rng.integers(24, 40 if small else 64))
            m = int(rng.integers(3 * n, 5 * n))
            g = random_connected_graph(
                n, m, rng=int(rng.integers(2**31)), max_weight=8
            )
            edges = [[int(u), int(v), float(w)] for u, v, w in g.edges()]
            corpus[(tenant, f"g{gi}")] = (edges, g.n, stoer_wagner(g).value)
    return corpus


def _register_all(port: int, corpus, timeout: float) -> None:
    with ServiceClient("127.0.0.1", port, timeout=timeout) as client:
        for tenant in TENANTS:
            client.call({"op": "register_tenant", "tenant": tenant})
        for (tenant, name), (edges, n, _exact) in corpus.items():
            client.call(
                {
                    "op": "register_graph",
                    "tenant": tenant,
                    "graph": name,
                    "n": n,
                    "edges": edges,
                    "seed": 17,
                    "warm": True,
                }
            )


def _client_worker(
    wid: int,
    port: int,
    corpus,
    queries: int,
    timeout: float,
    stats: ClientStats,
) -> None:
    rng = np.random.default_rng(1000 + wid)
    keys = sorted(corpus)
    client = ServiceClient("127.0.0.1", port, timeout=timeout)
    try:
        for qi in range(queries):
            tenant, name = keys[int(rng.integers(len(keys)))]
            _edges, _n, exact = corpus[(tenant, name)]
            roll = rng.random()
            if roll < 0.70:
                req = {"op": "min_cut", "tenant": tenant, "graph": name}
            elif roll < 0.85:
                req = {
                    "op": "update",
                    "tenant": tenant,
                    "graph": name,
                    # zero-delta perturbation: a pure cache hit server-side
                    "reweight": {},
                }
            elif roll < 0.95:
                req = {
                    "op": "min_cut_batch",
                    "tenant": tenant,
                    "graph": name,
                    "seeds": [int(s) for s in rng.integers(0, 2**20, size=3)],
                }
            else:
                # deliberately tight deadline: exercises the shedding path
                req = {
                    "op": "min_cut",
                    "tenant": tenant,
                    "graph": name,
                    "deadline_ms": 1,
                }
            t0 = time.monotonic()
            attempts = 0
            while True:
                attempts += 1
                try:
                    resp = client.request(dict(req))
                except socket.timeout:
                    stats.failures.append(
                        f"worker={wid} q={qi}: UNANSWERED after {timeout:g}s ({req['op']})"
                    )
                    return
                except (ConnectionError, OSError) as exc:
                    stats.failures.append(
                        f"worker={wid} q={qi}: connection failed: {exc}"
                    )
                    return
                problem = well_formed(resp, req.get("id"))
                if problem is not True:
                    stats.failures.append(
                        f"worker={wid} q={qi}: ill-formed response {resp!r}: {problem}"
                    )
                    return
                if resp["type"] == "retry_after" and attempts < 32:
                    stats.retries += 1
                    time.sleep(resp.get("retry_after_ms", 50) / 1000.0)
                    continue
                break
            elapsed_ms = (time.monotonic() - t0) * 1000.0
            if resp["type"] == "result":
                if req["op"] == "min_cut" and resp.get("value") != exact:
                    stats.failures.append(
                        f"worker={wid} q={qi}: WRONG ANSWER "
                        f"{resp.get('value')} != {exact} ({tenant}/{name})"
                    )
                    return
                stats.record(req["op"], elapsed_ms)
            elif resp["type"] == "deadline_exceeded":
                if resp.get("shed") == "queued":
                    stats.shed_queued += 1
                else:
                    stats.shed_inflight += 1
            elif resp["type"] == "retry_after":
                stats.retries += 1  # retry budget exhausted; still answered
            else:
                stats.errors += 1
    finally:
        client.close()


def run_bench(
    *,
    queries: int,
    clients: int,
    graphs_per_tenant: int,
    queue_depth: int,
    workers: int,
    timeout: float,
    seed: int,
    small: bool,
) -> dict:
    rng = np.random.default_rng(seed)
    corpus = _build_corpus(rng, graphs_per_tenant, small)
    per_client = max(1, queries // clients)

    config = ServerConfig(port=0, queue_depth=queue_depth, workers=workers)
    with ThreadedTCPServer(config) as server:
        _register_all(server.port, corpus, timeout)
        all_stats = [ClientStats() for _ in range(clients)]
        threads = [
            threading.Thread(
                target=_client_worker,
                args=(wid, server.port, corpus, per_client, timeout, all_stats[wid]),
                name=f"bench-client-{wid}",
            )
            for wid in range(clients)
        ]
        t0 = time.monotonic()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        wall = time.monotonic() - t0
        with ServiceClient("127.0.0.1", server.port, timeout=timeout) as client:
            metrics = client.call({"op": "metrics"})

    merged: Dict[str, List[float]] = {}
    completed = retries = shed_q = shed_i = errors = 0
    failures: List[str] = []
    for s in all_stats:
        for op, vals in s.latencies_ms.items():
            merged.setdefault(op, []).extend(vals)
        completed += s.completed
        retries += s.retries
        shed_q += s.shed_queued
        shed_i += s.shed_inflight
        errors += s.errors
        failures.extend(s.failures)

    overall = [v for vals in merged.values() for v in vals]
    counters = metrics["counters"]
    hits = sum(
        t["cache"]["hits"] for t in metrics["tenants"].values()
    )
    misses = sum(
        t["cache"]["misses"] for t in metrics["tenants"].values()
    )
    report = {
        "config": {
            "queries_requested": per_client * clients,
            "clients": clients,
            "graphs_per_tenant": graphs_per_tenant,
            "queue_depth": queue_depth,
            "workers": workers,
            "seed": seed,
        },
        "wall_s": round(wall, 3),
        "throughput_qps": round(completed / wall, 1) if wall > 0 else 0.0,
        "latency_ms": {
            "overall": {
                "p50": round(_percentile(overall, 50), 3),
                "p90": round(_percentile(overall, 90), 3),
                "p99": round(_percentile(overall, 99), 3),
                "count": len(overall),
            },
            **{
                op: {
                    "p50": round(_percentile(vals, 50), 3),
                    "p90": round(_percentile(vals, 90), 3),
                    "p99": round(_percentile(vals, 99), 3),
                    "count": len(vals),
                }
                for op, vals in sorted(merged.items())
            },
        },
        "admission": {
            "completed": completed,
            "retries_absorbed": retries,
            "shed_queued": shed_q,
            "shed_inflight": shed_i,
            "errors": errors,
        },
        "cache": {
            "hits": hits,
            "misses": misses,
            "hit_rate": round(hits / (hits + misses), 4) if hits + misses else 0.0,
        },
        "serve_counters": {
            k: v for k, v in sorted(counters.items()) if k.startswith("serve.")
        },
        "queue": metrics["queue"],
        "platform": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "failures": failures,
    }
    return report


def main(argv: Optional[List[str]] = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--queries", type=int, default=4000,
                    help="total queries across all clients")
    ap.add_argument("--clients", type=int, default=12)
    ap.add_argument("--graphs-per-tenant", type=int, default=3)
    ap.add_argument("--queue-depth", type=int, default=32)
    ap.add_argument("--workers", type=int, default=4)
    ap.add_argument("--timeout", type=float, default=60.0,
                    help="client response timeout; firing means the daemon hung")
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--smoke", action="store_true",
                    help="small CI run (fewer queries, smaller graphs)")
    ap.add_argument("--small-graphs", action="store_true",
                    help="use smoke-sized graphs without capping the "
                         "query count (sustained-load runs on busy boxes)")
    ap.add_argument("--output", default=str(ROOT / "BENCH_service.json"))
    args = ap.parse_args(argv)

    if args.smoke:
        args.queries = min(args.queries, 200)
        args.clients = min(args.clients, 6)
        args.graphs_per_tenant = min(args.graphs_per_tenant, 2)

    report = run_bench(
        queries=args.queries,
        clients=args.clients,
        graphs_per_tenant=args.graphs_per_tenant,
        queue_depth=args.queue_depth,
        workers=args.workers,
        timeout=args.timeout,
        seed=args.seed,
        small=args.smoke or args.small_graphs,
    )

    Path(args.output).write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    lat = report["latency_ms"]["overall"]
    print(f"completed {report['admission']['completed']}")
    print(f"throughput_qps {report['throughput_qps']}")
    print(f"p50_ms {lat['p50']}  p90_ms {lat['p90']}  p99_ms {lat['p99']}")
    print(f"retries_absorbed {report['admission']['retries_absorbed']}")
    print(
        f"shed queued={report['admission']['shed_queued']} "
        f"inflight={report['admission']['shed_inflight']}"
    )
    print(f"cache_hit_rate {report['cache']['hit_rate']}")
    print(f"failures {len(report['failures'])}")
    for line in report["failures"]:
        print(f"FAIL {line}", file=sys.stderr)
    return 1 if report["failures"] else 0


if __name__ == "__main__":
    sys.exit(main())
