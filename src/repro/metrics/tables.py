"""ASCII table / series rendering for the benchmark harness.

The benches print tables shaped like the paper's (Table 1) plus scaling
series for the theorem-bound experiments; this module keeps that
formatting in one place so every bench output looks alike.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["format_table", "format_ratio"]


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Monospace table with right-aligned numeric columns."""
    str_rows: List[List[str]] = []
    for row in rows:
        str_rows.append([_fmt(cell) for cell in row])
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(
            "  ".join(
                cell.rjust(widths[i]) if _numericish(cell) else cell.ljust(widths[i])
                for i, cell in enumerate(row)
            )
        )
    return "\n".join(lines)


def format_ratio(a: float, b: float) -> str:
    """Human ratio 'a/b' with sane handling of zeros."""
    if b == 0:
        return "inf" if a > 0 else "1.0"
    return f"{a / b:.2f}"


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1e5 or abs(cell) < 1e-3:
            return f"{cell:.3g}"
        return f"{cell:,.2f}".rstrip("0").rstrip(".")
    return str(cell)


def _numericish(cell: str) -> bool:
    return bool(cell) and (cell[0].isdigit() or cell[0] in "+-." or cell == "inf")
