"""Shared experiment harness: workload builders and measured records.

Each bench in ``benchmarks/`` runs a sweep, collects
:class:`MeasuredPoint` records, prints a table via
:mod:`repro.metrics.tables`, and asserts the *shape* claims from the
paper (who wins, scaling exponents) — see EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.graphs.generators import random_connected_graph
from repro.graphs.graph import Graph

__all__ = [
    "MeasuredPoint",
    "dense_workload",
    "density_sweep_workloads",
    "fit_power_law",
    "normalised_curve",
]


@dataclass
class MeasuredPoint:
    """One sweep point: problem size + measured counters."""

    n: int
    m: int
    work: float
    depth: float
    extra: Dict[str, float] = field(default_factory=dict)


def dense_workload(n: int, exponent: float, seed: int, max_weight: int = 8) -> Graph:
    """The paper's non-sparse workload: m ~ n^exponent, exponent > 1."""
    m = int(round(n**exponent))
    m = max(m, n - 1)
    m = min(m, n * (n - 1) // 2)
    return random_connected_graph(n, m, rng=seed, max_weight=max_weight)


def density_sweep_workloads(
    n: int, densities: Sequence[float], seed: int = 0, max_weight: int = 8
) -> List[Graph]:
    """Fixed n, m = density * n for each density."""
    out = []
    for k, d in enumerate(densities):
        m = min(int(d * n), n * (n - 1) // 2)
        out.append(random_connected_graph(n, max(m, n - 1), rng=seed + k, max_weight=max_weight))
    return out


def fit_power_law(xs: Sequence[float], ys: Sequence[float]) -> Tuple[float, float]:
    """Least-squares fit ``y ~ c * x^alpha``; returns (alpha, c).

    Used to check scaling claims: e.g. measured 2-respecting work vs m
    should fit alpha ~ 1 (up to log factors).
    """
    lx = np.log(np.asarray(xs, dtype=np.float64))
    ly = np.log(np.asarray(ys, dtype=np.float64))
    alpha, logc = np.polyfit(lx, ly, 1)
    return float(alpha), float(math.exp(logc))


def normalised_curve(values: Sequence[float], anchor_index: int = 0) -> List[float]:
    """Scale a series so the anchor point equals 1 — how the benches
    compare measured work against model curves (shape, not constants)."""
    anchor = float(values[anchor_index])
    if anchor == 0:
        return [0.0 for _ in values]
    return [float(v) / anchor for v in values]
