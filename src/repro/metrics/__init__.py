"""Experiment harness utilities: tables, workloads, scaling fits."""

from repro.metrics.experiments import (
    MeasuredPoint,
    dense_workload,
    density_sweep_workloads,
    fit_power_law,
    normalised_curve,
)
from repro.metrics.records import dump_records, load_records, points_to_records
from repro.metrics.tables import format_ratio, format_table

__all__ = [
    "MeasuredPoint",
    "dense_workload",
    "density_sweep_workloads",
    "fit_power_law",
    "normalised_curve",
    "format_table",
    "format_ratio",
    "dump_records",
    "load_records",
    "points_to_records",
]
