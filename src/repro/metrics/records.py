"""Persisting experiment records as JSON.

The benches dump their measured points to ``benchmarks/results/*.json``
so runs can be diffed across machines/versions without re-parsing
stdout.  Records are plain dicts — no pickle, stable field order.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List, Mapping, Sequence

from repro.metrics.experiments import MeasuredPoint

__all__ = ["dump_records", "load_records", "points_to_records"]


def points_to_records(points: Sequence[MeasuredPoint]) -> List[dict]:
    """MeasuredPoints -> JSON-ready dicts (extras flattened)."""
    out = []
    for p in points:
        rec = {"n": p.n, "m": p.m, "work": float(p.work), "depth": float(p.depth)}
        for k, v in sorted(p.extra.items()):
            rec[k] = float(v)
        out.append(rec)
    return out


def dump_records(
    path: str | Path,
    experiment: str,
    records: Iterable[Mapping],
    *,
    meta: Mapping | None = None,
) -> Path:
    """Write ``{experiment, meta, records}`` to ``path`` (dirs created)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "experiment": experiment,
        "meta": dict(meta or {}),
        "records": [dict(r) for r in records],
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n")
    return path


def load_records(path: str | Path) -> dict:
    """Inverse of :func:`dump_records`."""
    return json.loads(Path(path).read_text())
