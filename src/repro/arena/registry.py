"""The contender registry.

One flat namespace of solver names -> :class:`~repro.arena.result.
Contender` factories.  The built-in contenders register when
:mod:`repro.arena.contenders` first loads (lazily, on the first
registry query), so ``import repro.arena`` stays light; third-party
code extends the arena with :func:`register`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Type

from repro.arena.result import Contender
from repro.errors import InvalidParameterError

__all__ = [
    "register",
    "get_contender",
    "contender_names",
    "all_contenders",
]

_REGISTRY: Dict[str, Callable[[], Contender]] = {}
_builtins_loaded = False


def register(
    factory: Optional[Callable[[], Contender]] = None,
    *,
    name: Optional[str] = None,
) -> Callable:
    """Register a contender factory (usable as a decorator on a
    :class:`Contender` subclass or any zero-arg factory).

    The registry name defaults to the class attribute ``name``.
    Re-registering an existing name raises — shadowing a contender
    silently would poison every future benchmark comparison.
    """

    def _do(fac: Callable[[], Contender]) -> Callable[[], Contender]:
        reg_name = name
        if reg_name is None:
            reg_name = getattr(fac, "name", None) or getattr(fac, "__name__", None)
        if not reg_name or not isinstance(reg_name, str):
            raise InvalidParameterError("contender must have a string name")
        if reg_name in _REGISTRY:
            raise InvalidParameterError(
                f"contender {reg_name!r} is already registered"
            )
        _REGISTRY[reg_name] = fac
        return fac

    if factory is not None:
        return _do(factory)
    return _do


def _ensure_builtins() -> None:
    global _builtins_loaded
    if not _builtins_loaded:
        _builtins_loaded = True
        import repro.arena.contenders  # noqa: F401  (registers on import)


def contender_names() -> List[str]:
    """Registered contender names, sorted."""
    _ensure_builtins()
    return sorted(_REGISTRY)


def get_contender(name: str) -> Contender:
    """Instantiate the named contender."""
    _ensure_builtins()
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise InvalidParameterError(
            f"unknown contender {name!r}; registered: {', '.join(sorted(_REGISTRY))}"
        ) from None
    return factory()


def all_contenders() -> List[Contender]:
    """One instance of every registered contender, name-sorted."""
    return [get_contender(name) for name in contender_names()]
