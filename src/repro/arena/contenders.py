"""Built-in contenders: the repo's own solvers plus classical baselines.

Importing this module registers everything with
:mod:`repro.arena.registry`.  The heavy algorithm layers are imported
inside ``_run`` so that listing the registry stays cheap.

+-------------------+------------+--------------------------------------------+
| name              | kind       | wraps                                      |
+===================+============+============================================+
| ``paper``         | exact      | :func:`repro.minimum_cut`                  |
| ``engine``        | exact      | :class:`repro.CutEngine` (cold query)      |
| ``resilient``     | exact      | :func:`repro.resilient_minimum_cut`        |
| ``stoer-wagner``  | exact      | the deterministic O(n^3) baseline          |
| ``viecut-reduce`` | exact      | kernelization -> Stoer–Wagner              |
| ``karger-stein``  | montecarlo | vectorized recursive contraction           |
| ``two-out``       | montecarlo | 2-out contraction (unweighted only)        |
| ``matula``        | approx     | (2+eps) certificate contraction            |
| ``approx-s3``     | approx     | :func:`repro.approximate_minimum_cut`      |
+-------------------+------------+--------------------------------------------+
"""

from __future__ import annotations

from typing import Mapping, Optional, Tuple

import numpy as np

from repro.arena.registry import register
from repro.arena.result import Contender
from repro.graphs.graph import Graph

__all__ = [
    "PaperContender",
    "EngineContender",
    "ResilientContender",
    "StoerWagnerContender",
    "ViecutContender",
    "KargerSteinContender",
    "TwoOutContender",
    "MatulaContender",
    "ApproxSection3Contender",
]

RunReturn = Tuple[float, Optional[np.ndarray], Mapping[str, float]]


@register
class PaperContender(Contender):
    """The paper's exact parallel pipeline (:func:`repro.minimum_cut`)."""

    name = "paper"
    kind = "exact"

    def _run(self, graph, *, seed, budget, ledger) -> RunReturn:
        from repro.core.mincut import minimum_cut

        res = minimum_cut(graph, rng=np.random.default_rng(seed), ledger=ledger)
        return res.value, res.side, {}


@register
class EngineContender(Contender):
    """The staged/cached engine, measured cold (:class:`repro.CutEngine`)."""

    name = "engine"
    kind = "exact"

    def _run(self, graph, *, seed, budget, ledger) -> RunReturn:
        from repro.engine.service import CutEngine

        engine = CutEngine(graph, seed=seed, ledger=ledger)
        res = engine.min_cut()
        return res.value, res.side, {"cache_entries": float(len(engine.cache))}


@register
class ResilientContender(Contender):
    """The resilient driver: verified retries + fallback chain.

    The only contender that honours ``budget`` natively (cooperative
    deadline shedding through :class:`repro.resilience.Budget`).
    """

    name = "resilient"
    kind = "exact"

    def _run(self, graph, *, seed, budget, ledger) -> RunReturn:
        from repro.resilience.driver import resilient_minimum_cut

        res = resilient_minimum_cut(graph, seed=seed, deadline=budget, ledger=ledger)
        return res.value, res.side, {
            "attempts": float(res.attempts),
            "fallback": 1.0 if res.fallback_used else 0.0,
        }


@register
class StoerWagnerContender(Contender):
    """Deterministic O(n^3) Stoer–Wagner — the sequential exact anchor."""

    name = "stoer-wagner"
    kind = "exact"

    def _run(self, graph, *, seed, budget, ledger) -> RunReturn:
        from repro.arena.solvers.stoer_wagner import stoer_wagner

        res = stoer_wagner(graph)
        ledger.charge(work=float(graph.n) ** 3, depth=float(graph.n))
        return res.value, res.side, {}


@register
class ViecutContender(Contender):
    """VieCut-style exact reductions feeding Stoer–Wagner on the kernel."""

    name = "viecut-reduce"
    kind = "exact"

    def _run(self, graph, *, seed, budget, ledger) -> RunReturn:
        from repro.arena.solvers.reductions import viecut_minimum_cut

        res = viecut_minimum_cut(graph, ledger=ledger)
        return res.value, res.side, dict(res.stats)


@register
class KargerSteinContender(Contender):
    """Vectorized Karger–Stein recursive contraction (exact w.h.p.).

    ``repetitions=None`` means the log^2 n default; benchmarks pass a
    smaller count on very large instances (recorded in ``stats``).
    """

    name = "karger-stein"
    kind = "montecarlo"

    def __init__(self, repetitions: Optional[int] = None) -> None:
        self.repetitions = repetitions

    def _run(self, graph, *, seed, budget, ledger) -> RunReturn:
        from repro.arena.solvers.karger_stein import karger_stein

        res = karger_stein(
            graph, repetitions=self.repetitions, rng=np.random.default_rng(seed)
        )
        ledger.charge(work=float(graph.m + graph.n), depth=1.0)
        return res.value, res.side, dict(res.stats)


@register
class TwoOutContender(Contender):
    """Random 2-out contraction (unweighted simple graphs only)."""

    name = "two-out"
    kind = "montecarlo"

    def supports(self, graph: Graph) -> bool:
        return bool(np.all(graph.w == 1.0))

    def _run(self, graph, *, seed, budget, ledger) -> RunReturn:
        from repro.arena.solvers.two_out import two_out_contraction_min_cut

        res = two_out_contraction_min_cut(
            graph, rng=np.random.default_rng(seed), ledger=ledger
        )
        return res.value, res.side, {}


@register
class MatulaContender(Contender):
    """Matula's (2+eps) certificate-contraction approximation.

    ``max_certificate_rounds`` keeps dense weighted multigraphs
    feasible; the certified ratio (inflated if the cap ever binds) is
    reported as ``claimed_ratio`` and gated by the benchmark.
    """

    name = "matula"
    kind = "approx"

    def __init__(self, epsilon: float = 0.5, max_certificate_rounds: int = 32) -> None:
        self.epsilon = epsilon
        self.max_certificate_rounds = max_certificate_rounds

    def _run(self, graph, *, seed, budget, ledger) -> RunReturn:
        from repro.arena.solvers.matula import matula_approx

        res = matula_approx(
            graph,
            epsilon=self.epsilon,
            ledger=ledger,
            max_certificate_rounds=self.max_certificate_rounds,
        )
        ratio = float(res.stats.get("ratio", 2.0 + self.epsilon))
        return res.value, res.side, {
            "claimed_ratio": ratio,
            "lower_bound": res.value / ratio,
            "iterations": float(res.stats.get("iterations", 0.0)),
        }


@register
class ApproxSection3Contender(Contender):
    """The paper's Section 3 (1 +- eps) approximation.

    ``value`` is the certified upper bracket, ``lower_bound`` the lower
    one; no witness side (the algorithm estimates the value only).
    """

    name = "approx-s3"
    kind = "approx"

    def _run(self, graph, *, seed, budget, ledger) -> RunReturn:
        from repro.approx.approximate import approximate_minimum_cut

        res = approximate_minimum_cut(
            graph, rng=np.random.default_rng(seed), ledger=ledger
        )
        low = max(float(res.low), 1e-300)
        return res.high, None, {
            "claimed_ratio": float(res.high) / low,
            "lower_bound": float(res.low),
            "estimate": float(res.estimate),
            "skeleton_layer": float(res.skeleton_layer),
        }
