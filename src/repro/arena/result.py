"""Typed results and the contender protocol for the solver arena.

Every solver in the arena — the paper pipeline, the staged engine, the
resilient driver, and the classical baselines — is wrapped as a
:class:`Contender`: a named, kinded object whose ``solve`` method runs
the underlying algorithm under a private work/depth ledger and a
wall-clock timer and returns an :class:`ArenaResult`.

Kinds
-----
``exact``
    Deterministically exact, or exact w.h.p. with an explicit seed —
    the benchmark cross-checks these bit-for-bit against each other.
``montecarlo``
    Randomized with a constant/1-1/poly success probability per run
    (Karger–Stein, 2-out contraction).  Values never undershoot the
    true minimum; agreement is reported, not gated.
``approx``
    Carries a certified approximation ratio (``claimed_ratio``); the
    benchmark gates ``lower_bound <= lambda`` and
    ``value <= claimed_ratio * lambda``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Mapping, Optional, Tuple

import numpy as np

from repro.graphs.graph import Graph
from repro.pram.ledger import Ledger

__all__ = ["ArenaResult", "Contender", "KINDS"]

KINDS = ("exact", "montecarlo", "approx")


@dataclass(frozen=True)
class ArenaResult:
    """One contender's answer on one instance.

    Attributes
    ----------
    contender, kind:
        The contender's registry name and kind (see module docstring).
    value:
        The cut value returned (for ``approx`` contenders: the
        certified *upper* end of the bracket).
    side:
        Boolean side mask over the input's vertices when the solver
        produces a witness cut; ``None`` for value-only answers.
    wall_s:
        Wall-clock seconds for the solve call.
    work, depth:
        Ledger charges recorded by the solver (0 for baselines that
        predate the ledger contract).
    seed:
        The seed the contender was handed.
    n, m:
        Instance size, recorded so results are self-describing.
    claimed_ratio:
        Certified ``value / lambda`` upper bound (1.0 for exact).
    lower_bound:
        Certified lower bracket on lambda (``approx`` contenders;
        0.0 otherwise).
    stats:
        Read-only solver diagnostics (kernel sizes, repetitions, ...).
    """

    contender: str
    kind: str
    value: float
    side: Optional[np.ndarray]
    wall_s: float
    work: float
    depth: float
    seed: int
    n: int
    m: int
    claimed_ratio: float = 1.0
    lower_bound: float = 0.0
    stats: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"kind must be one of {KINDS}, got {self.kind!r}")
        if self.side is not None:
            object.__setattr__(self, "side", np.asarray(self.side, dtype=bool))
        object.__setattr__(self, "stats", MappingProxyType(dict(self.stats)))

    def to_json(self) -> dict:
        """JSON-safe summary (the side mask is reduced to its sizes)."""
        side_sizes = None
        if self.side is not None:
            k = int(self.side.sum())
            side_sizes = [k, int(self.side.shape[0]) - k]
        return {
            "contender": self.contender,
            "kind": self.kind,
            "value": self.value,
            "side_sizes": side_sizes,
            "wall_s": self.wall_s,
            "work": self.work,
            "depth": self.depth,
            "seed": self.seed,
            "n": self.n,
            "m": self.m,
            "claimed_ratio": self.claimed_ratio,
            "lower_bound": self.lower_bound,
            "stats": dict(self.stats),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ArenaResult({self.contender}, value={self.value:g}, "
            f"wall={self.wall_s:.3f}s)"
        )


class Contender:
    """Base class: a named solver with a uniform ``solve`` surface.

    Subclasses set :attr:`name`, :attr:`kind`, :attr:`deterministic`
    and implement :meth:`_run`; ``solve`` adds the private ledger, the
    wall-clock timer, and the :class:`ArenaResult` packaging.
    ``budget`` (wall-clock seconds) is best effort: solvers built on
    the resilience layer honour it cooperatively, classical baselines
    ignore it.
    """

    name: str = ""
    kind: str = "exact"
    #: same seed -> bit-identical answer (all contenders here qualify;
    #: a future contender with irreducible nondeterminism would not)
    deterministic: bool = True

    def supports(self, graph: Graph) -> bool:
        """Whether this contender can run on ``graph`` at all (e.g. the
        2-out contraction is defined only for unweighted graphs)."""
        return True

    def solve(
        self, graph: Graph, *, seed: int = 0, budget: Optional[float] = None
    ) -> ArenaResult:
        ledger = Ledger()
        start = time.perf_counter()
        value, side, extras = self._run(graph, seed=seed, budget=budget, ledger=ledger)
        wall = time.perf_counter() - start
        extras = dict(extras)
        return ArenaResult(
            contender=self.name,
            kind=self.kind,
            value=float(value),
            side=side,
            wall_s=wall,
            work=float(ledger.work),
            depth=float(ledger.depth),
            seed=seed,
            n=graph.n,
            m=graph.m,
            claimed_ratio=float(extras.pop("claimed_ratio", 1.0)),
            lower_bound=float(extras.pop("lower_bound", 0.0)),
            stats=extras,
        )

    def _run(
        self,
        graph: Graph,
        *,
        seed: int,
        budget: Optional[float],
        ledger: Ledger,
    ) -> Tuple[float, Optional[np.ndarray], Mapping[str, float]]:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Contender {self.name} [{self.kind}]>"
