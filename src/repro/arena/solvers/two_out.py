"""Random 2-out contraction (Ghaffari–Nowicki–Thorup style) for simple
unweighted graphs.

The introduction cites [GNT20] for the best bounds on *simple* graphs
via "random 2-out contractions": every vertex marks two incident edges
uniformly at random; contracting all marked edges shrinks the graph to
O(n/delta) vertices while, with constant probability, preserving every
non-trivial minimum cut (singleton cuts are checked directly via
degrees).  Repeating O(log n) times and finishing exactly on the
contracted graph gives a fast unweighted baseline.

This implementation is the natural Monte-Carlo variant: ``rounds``
independent 2-out contractions, each finished by Stoer–Wagner on the
(small) contracted graph, min'd with the best singleton (degree) cut.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.errors import GraphFormatError
from repro.graphs.graph import Graph
from repro.pram.ledger import Ledger, NULL_LEDGER
from repro.primitives.dsu import DisjointSets
from repro.results import CutResult

__all__ = ["two_out_contraction_min_cut"]


def _one_round(
    graph: Graph, rng: np.random.Generator, ledger: Ledger
) -> CutResult:
    n = graph.n
    offsets, nbrs, eids = graph.incidence
    dsu = DisjointSets(n)
    for v in range(n):
        lo, hi = int(offsets[v]), int(offsets[v + 1])
        deg = hi - lo
        if deg == 0:
            continue
        picks = rng.integers(lo, hi, size=min(2, deg))
        for j in picks:
            dsu.union(v, int(nbrs[j]))
    labels = dsu.labels()
    ledger.charge(work=float(2 * graph.m + n), depth=1.0)
    quotient, dense = graph.contract(labels)
    if quotient.n < 2:
        # contraction collapsed everything: no non-trivial cut survived
        # this round; report +inf so the singleton check dominates
        return CutResult(value=math.inf, side=np.zeros(n, dtype=bool))
    from repro.arena.solvers.stoer_wagner import stoer_wagner

    sub = stoer_wagner(quotient)
    ledger.charge(work=float(quotient.n**3), depth=float(quotient.n))
    side = sub.side[dense[labels]]
    return CutResult(value=sub.value, side=side)


def two_out_contraction_min_cut(
    graph: Graph,
    rounds: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
    ledger: Ledger = NULL_LEDGER,
) -> CutResult:
    """Minimum cut of a simple unweighted graph, w.h.p. exact.

    ``rounds`` defaults to ``ceil(3 log2 n)`` independent contractions.
    Weighted inputs are rejected (the 2-out argument is for unweighted
    simple graphs; use :func:`repro.core.minimum_cut` instead).
    """
    if graph.n < 2:
        raise GraphFormatError("min cut needs at least 2 vertices")
    if not np.all(graph.w == 1.0):
        raise GraphFormatError("2-out contraction expects an unweighted simple graph")
    k, labels = graph.connected_components()
    if k > 1:
        return CutResult(value=0.0, side=labels == labels[0])
    rng = rng if rng is not None else np.random.default_rng()
    if rounds is None:
        rounds = max(int(math.ceil(3 * math.log2(max(graph.n, 2)))), 3)

    # singleton cuts: the minimum degree
    degrees = graph.weighted_degrees
    v_min = int(np.argmin(degrees))
    best_side = np.zeros(graph.n, dtype=bool)
    best_side[v_min] = True
    best = CutResult(value=float(degrees[v_min]), side=best_side)
    ledger.charge(work=float(graph.n), depth=1.0)

    for _ in range(rounds):
        cand = _one_round(graph, rng, ledger)
        if cand.value < best.value and 0 < cand.side.sum() < graph.n:
            best = cand
    return best
