"""Matula's deterministic (2+eps)-approximation of edge connectivity.

The paper's introduction cites this [Mat93] as the linear-time
*sequential* approximation whose parallel counterpart was missing —
the gap Section 3 fills.  We include it as the sequential baseline the
Theorem 3.1 experiments compare against, and as the arena's
deterministic-approximation contender.

The algorithm alternates two facts:

* the minimum weighted degree delta is itself a cut, so lambda <= delta;
* a sparse k-connectivity certificate with k = delta/(2+eps) contains
  every cut of value < k, so edges carrying weight *beyond* the
  certificate join endpoints that are >= k connected and can be
  contracted without touching any cut of value < k — in particular the
  minimum cut, unless lambda >= k = delta/(2+eps), in which case delta
  is already a (2+eps)-approximation.

Iterating until the graph collapses yields
``lambda <= min_iterations(delta) <= (2+eps) lambda``.

Everything inside one iteration is vectorized over the array-backed
:class:`~repro.graphs.Graph`: the certificate weights come back
aligned to the edge arrays (:func:`repro.sparsify.certificate.
certificate_weights`), the "weight beyond the certificate" test is one
array subtraction, and the resulting contraction is a single
connected-components call on the beyond-certificate subgraph.

On weighted graphs the exact rule needs ``ceil(delta / (2+eps))``
certificate forests per iteration, which is prohibitive when the
minimum weighted degree is large (dense multigraphs).
``max_certificate_rounds`` caps the per-iteration forest count; a
capped round contracts *more* aggressively (a lighter certificate
leaves more weight beyond it), which stays sound but weakens the
guarantee by the capping factor — the returned ``stats["ratio"]``
always reports the ratio actually certified.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np
from scipy.sparse import coo_matrix
from scipy.sparse.csgraph import connected_components as _scipy_cc

from repro.errors import GraphFormatError
from repro.graphs.graph import Graph
from repro.pram.ledger import Ledger, NULL_LEDGER
from repro.results import CutResult
from repro.sparsify.certificate import certificate_weights

__all__ = ["matula_approx"]

#: slack for "carries weight beyond the certificate"
_TOL = 1e-12


def matula_approx(
    graph: Graph,
    epsilon: float = 0.5,
    ledger: Ledger = NULL_LEDGER,
    *,
    max_certificate_rounds: Optional[int] = None,
) -> CutResult:
    """(2+eps)-approximate minimum cut value with a degree-cut witness.

    Returns a :class:`CutResult` whose value is the best (smallest)
    supervertex degree-cut seen — always >= lambda, and <= ratio *
    lambda — and whose side is that supervertex's preimage (a real cut
    of the input attaining the value).  ``stats["ratio"]`` is the
    certified approximation ratio: ``2 + epsilon`` exactly when
    ``max_certificate_rounds`` never binds, inflated by the worst
    per-iteration capping factor otherwise.
    """
    if graph.n < 2:
        raise GraphFormatError("min cut needs at least 2 vertices")
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    if max_certificate_rounds is not None and max_certificate_rounds < 1:
        raise ValueError("max_certificate_rounds must be >= 1")
    k_comp, comp = graph.connected_components()
    if k_comp > 1:
        return CutResult(value=0.0, side=comp == comp[0])

    current = graph.coalesced()
    mapping = np.arange(graph.n, dtype=np.int64)  # original -> current id
    best_value = math.inf
    best_vertex_preimage: Optional[np.ndarray] = None
    cap_factor = 1.0  # worst k_exact / k_used over contracting iterations
    iterations = 0

    while current.n >= 2:
        iterations += 1
        degrees = current.weighted_degrees
        v_min = int(np.argmin(degrees))
        delta = float(degrees[v_min])
        ledger.charge(work=float(current.m + current.n), depth=1.0)
        if delta < best_value:
            best_value = delta
            best_vertex_preimage = mapping == v_min
        k_exact = max(int(math.ceil(delta / (2.0 + epsilon))), 1)
        k_used = k_exact
        if max_certificate_rounds is not None:
            k_used = min(k_exact, max_certificate_rounds)
        cert_w, _ = certificate_weights(current, k_used, ledger=ledger)
        # weight beyond the certificate == endpoints are > k_used connected
        beyond = np.flatnonzero(current.w - cert_w > _TOL)
        if beyond.size == 0:
            break
        adj = coo_matrix(
            (
                np.ones(beyond.size, dtype=np.int8),
                (current.u[beyond], current.v[beyond]),
            ),
            shape=(current.n, current.n),
        )
        k_cc, labels = _scipy_cc(adj, directed=False)
        ledger.charge(work=float(beyond.size + current.n), depth=1.0)
        if k_cc == current.n:  # pragma: no cover - beyond.size>0 implies a merge
            break
        cap_factor = max(cap_factor, k_exact / k_used)
        current, dense = current.contract(labels.astype(np.int64))
        mapping = dense[mapping]
    assert best_vertex_preimage is not None
    side = best_vertex_preimage
    if side.all():  # pragma: no cover - defensive
        side = ~side
    return CutResult(
        value=float(best_value),
        side=side,
        stats={
            "ratio": (2.0 + epsilon) * cap_factor,
            "iterations": float(iterations),
        },
    )
