"""Karger–Stein recursive contraction — the classic randomized baseline.

Success probability Omega(1/log n) per run; ``repetitions`` independent
runs drive the failure probability down.  Used in tests as an
independent implementation to cross-check values, and in the arena as
the randomized-contraction contender.

The contraction step is vectorized over the array-backed
:class:`~repro.graphs.Graph`: weight-proportional sequential edge
picking is simulated with one exponential clock per edge
(``Exp(w_e)`` — by memorylessness the globally sorted clock order,
skipping edges that have become self loops, is exactly the weighted
contraction process), so one contraction phase is a single
``argsort`` plus a short union–find scan instead of ``m``-element
rebuilds per pick.  The ``n <= 6`` base case enumerates all
``2^(n-1) - 1`` bipartitions in one batched matrix product, which is
exact on the quotient.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from repro.errors import GraphFormatError
from repro.graphs.graph import Graph
from repro.primitives.dsu import DisjointSets
from repro.results import CutResult

__all__ = ["karger_stein"]

#: quotients at or below this size are solved exactly by enumeration
_BASE_N = 6


def _contract_to(
    graph: Graph, target: int, rng: np.random.Generator
) -> Tuple[Graph, np.ndarray]:
    """Weighted random contraction down to ``target`` supervertices.

    Returns ``(quotient, dense_labels)`` — the coalesced quotient and
    the vertex relabelling, exactly like :meth:`Graph.contract`.
    """
    # one exponential clock per edge; sorted clock order == sequential
    # weight-proportional picking (self loops skipped as they appear)
    priority = rng.exponential(scale=1.0, size=graph.m) / graph.w
    order = np.argsort(priority)
    dsu = DisjointSets(graph.n)
    components = graph.n
    u, v = graph.u, graph.v
    for e in order:
        if components <= target:
            break
        if dsu.union(int(u[e]), int(v[e])):
            components -= 1
    return graph.contract(dsu.labels())


def _exact_small(graph: Graph) -> Tuple[float, np.ndarray]:
    """Exact min cut of a tiny graph by enumerating all bipartitions."""
    n = graph.n
    masks = np.arange(1, 1 << (n - 1), dtype=np.uint32)
    # vertex n-1 pinned to side False => each cut enumerated once
    bits = ((masks[:, None] >> np.arange(n)) & 1).astype(bool)
    cross = bits[:, graph.u] != bits[:, graph.v]
    values = cross.astype(np.float64) @ graph.w
    best = int(np.argmin(values))
    return float(values[best]), bits[best]


def _recursive(
    graph: Graph, mapping: np.ndarray, rng: np.random.Generator
) -> Tuple[float, np.ndarray]:
    """Returns (cut value, side mask over original vertices)."""
    if graph.n <= _BASE_N:
        value, side_q = _exact_small(graph)
        return value, side_q[mapping]
    target = max(int(math.ceil(1 + graph.n / math.sqrt(2))), 2)
    best: Optional[Tuple[float, np.ndarray]] = None
    for _ in range(2):
        quotient, dense = _contract_to(graph, target, rng)
        result = _recursive(quotient, dense[mapping], rng)
        if best is None or result[0] < best[0]:
            best = result
    assert best is not None
    return best


def karger_stein(
    graph: Graph,
    repetitions: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
) -> CutResult:
    """Randomized min cut; exact with probability >= 1 - 1/poly(n) for
    ``repetitions ~ log^2 n`` (default)."""
    if graph.n < 2:
        raise GraphFormatError("min cut needs at least 2 vertices")
    k, labels = graph.connected_components()
    if k > 1:
        return CutResult(value=0.0, side=labels == labels[0])
    rng = rng if rng is not None else np.random.default_rng()
    if repetitions is None:
        lg = math.log2(max(graph.n, 2))
        repetitions = max(int(math.ceil(lg * lg / 2)), 3)
    g = graph.coalesced()
    mapping = np.arange(g.n, dtype=np.int64)
    best_val, best_side = math.inf, None
    for _ in range(repetitions):
        val, side = _recursive(g, mapping, rng)
        if val < best_val:
            best_val, best_side = val, side
    assert best_side is not None
    return CutResult(
        value=float(best_val),
        side=best_side,
        stats={"repetitions": float(repetitions)},
    )
