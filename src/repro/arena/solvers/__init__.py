"""Classical baseline solvers, each vectorized over the array Graph.

These are the algorithms the arena benchmarks the paper pipeline
against: Stoer–Wagner (deterministic exact), Karger–Stein (Monte
Carlo exact w.h.p.), 2-out contraction (Monte Carlo, unweighted),
Matula's (2+eps)-approximation, and the VieCut-style exact reduction
pipeline.  They were previously housed under ``repro.baselines``,
which still re-exports them with a :class:`DeprecationWarning`.
"""

from repro.arena.solvers.karger_stein import karger_stein
from repro.arena.solvers.matula import matula_approx
from repro.arena.solvers.reductions import reduce_graph, viecut_minimum_cut
from repro.arena.solvers.stoer_wagner import stoer_wagner
from repro.arena.solvers.two_out import two_out_contraction_min_cut

__all__ = [
    "stoer_wagner",
    "karger_stein",
    "matula_approx",
    "two_out_contraction_min_cut",
    "reduce_graph",
    "viecut_minimum_cut",
]
