"""VieCut-style exact kernelization feeding Stoer–Wagner.

Henzinger, Noe, Schulz & Strash, *Practical Minimum Cut Algorithms*
(VieCut), showed that a handful of exact reductions shrink real
instances dramatically before any search runs.  This module implements
the three reductions named there that are exact for *global* minimum
cuts, each vectorized over the array-backed :class:`~repro.graphs.
Graph`:

* **parallel-edge** — coalesce parallel edges, summing weights (one
  group-by; :meth:`Graph.coalesced` / :meth:`Graph.contract` do this
  for free);
* **degree-one** — a vertex with a single incident edge has exactly one
  cut separating it from the rest (itself), whose value — its degree —
  is at least the recorded minimum-degree candidate, so the vertex can
  be contracted into its neighbour;
* **heavy-edge** — an edge of weight >= the best candidate cut value
  lambda-hat cannot cross any cut *better* than the candidate, so its
  endpoints can be contracted.  All heavy edges contract at once via
  one connected-components call on the heavy subgraph.

Every round records the minimum-weighted-degree cut as a candidate
(that is what makes the other two rules sound), contracts, and repeats
to a fixpoint.  The kernel then goes to the deterministic
:func:`~repro.arena.solvers.stoer_wagner.stoer_wagner`; the final
answer is the better of the kernel cut (mapped back through the
contraction) and the best candidate.  The whole pipeline is exact and
deterministic.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np
from scipy.sparse import coo_matrix
from scipy.sparse.csgraph import connected_components as _scipy_cc

from repro.errors import GraphFormatError
from repro.graphs.graph import Graph
from repro.pram.ledger import Ledger, NULL_LEDGER
from repro.results import CutResult

__all__ = ["reduce_graph", "viecut_minimum_cut"]


def reduce_graph(
    graph: Graph, ledger: Ledger = NULL_LEDGER
) -> Tuple[Graph, np.ndarray, float, np.ndarray, int]:
    """Run the reduction rounds to a fixpoint.

    Returns ``(kernel, mapping, candidate_value, candidate_side,
    rounds)`` where ``mapping[orig_vertex] -> kernel_vertex`` and the
    candidate is the best (minimum) degree cut recorded along the way
    — a real cut of the input attaining ``candidate_value``.  The
    kernel preserves every cut of the input with value strictly below
    ``candidate_value``.
    """
    current = graph.coalesced()
    mapping = np.arange(graph.n, dtype=np.int64)
    best_value = math.inf
    best_side: Optional[np.ndarray] = None
    rounds = 0

    while current.n >= 2:
        rounds += 1
        degrees = current.weighted_degrees
        v_min = int(np.argmin(degrees))
        delta = float(degrees[v_min])
        ledger.charge(work=float(current.m + current.n), depth=1.0)
        if delta < best_value:
            best_value = delta
            best_side = mapping == v_min

        # degree-one: vertices with exactly one incident (coalesced) edge
        incident = np.bincount(current.u, minlength=current.n) + np.bincount(
            current.v, minlength=current.n
        )
        deg_one = incident == 1
        pick = deg_one[current.u] | deg_one[current.v]
        # heavy-edge: weight >= the candidate means the edge cannot
        # cross any strictly better cut
        pick |= current.w >= best_value
        sel = np.flatnonzero(pick)
        if sel.size == 0:
            break
        adj = coo_matrix(
            (
                np.ones(sel.size, dtype=np.int8),
                (current.u[sel], current.v[sel]),
            ),
            shape=(current.n, current.n),
        )
        k_cc, labels = _scipy_cc(adj, directed=False)
        ledger.charge(work=float(sel.size + current.n), depth=1.0)
        if k_cc == current.n:  # pragma: no cover - sel nonempty implies merge
            break
        current, dense = current.contract(labels.astype(np.int64))
        mapping = dense[mapping]

    if best_side is None:
        # n < 2 on entry, or the input collapsed before a degree was read
        best_side = np.zeros(graph.n, dtype=bool)
    return current, mapping, best_value, best_side, rounds


def viecut_minimum_cut(graph: Graph, ledger: Ledger = NULL_LEDGER) -> CutResult:
    """Exact minimum cut: kernelize, then Stoer–Wagner on the kernel.

    Deterministic; raises for n < 2 and answers 0 with a component
    side for disconnected inputs, like the other exact solvers.
    """
    if graph.n < 2:
        raise GraphFormatError("min cut needs at least 2 vertices")
    k, comp_labels = graph.connected_components()
    if k > 1:
        return CutResult(value=0.0, side=comp_labels == comp_labels[0])

    kernel, mapping, cand_value, cand_side, rounds = reduce_graph(graph, ledger)
    value, side = cand_value, cand_side
    if kernel.n >= 2:
        from repro.arena.solvers.stoer_wagner import stoer_wagner

        sub = stoer_wagner(kernel)
        ledger.charge(work=float(kernel.n**3), depth=float(kernel.n))
        if sub.value < value:
            value, side = sub.value, sub.side[mapping]
    return CutResult(
        value=float(value),
        side=side,
        stats={
            "kernel_n": float(kernel.n),
            "kernel_m": float(kernel.m),
            "reduction_rounds": float(rounds),
        },
    )
