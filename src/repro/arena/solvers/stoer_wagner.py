"""Stoer–Wagner deterministic global minimum cut — the sequential exact
baseline used for correctness anchoring and for Table 1's sequential
reference point.

O(n^3) with dense numpy adjacency (O(n m + n^2 log n) conceptually; the
dense variant is simplest and fast enough at benchmark scale).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.errors import GraphFormatError
from repro.graphs.graph import Graph
from repro.results import CutResult

__all__ = ["stoer_wagner"]


def stoer_wagner(graph: Graph) -> CutResult:
    """Exact minimum cut by n-1 minimum-cut-phase contractions.

    Handles disconnected inputs (value 0.0 with one component as the
    side).  Raises for n < 2.
    """
    n = graph.n
    if n < 2:
        raise GraphFormatError("min cut needs at least 2 vertices")
    k, labels = graph.connected_components()
    if k > 1:
        return CutResult(value=0.0, side=labels == labels[0])

    # dense adjacency with parallel edges coalesced
    adj = np.zeros((n, n), dtype=np.float64)
    np.add.at(adj, (graph.u, graph.v), graph.w)
    np.add.at(adj, (graph.v, graph.u), graph.w)

    # groups[i]: original vertices merged into supernode i
    groups: List[List[int]] = [[i] for i in range(n)]
    active = list(range(n))
    best_value = np.inf
    best_group: List[int] = []

    while len(active) > 1:
        # minimum cut phase: maximum adjacency ordering
        a_idx = np.array(active)
        weights = np.zeros(n)
        in_a = np.zeros(n, dtype=bool)
        order: List[int] = []
        first = active[0]
        in_a[first] = True
        order.append(first)
        weights[a_idx] = adj[first, a_idx]
        for _ in range(len(active) - 1):
            masked = np.where(in_a[a_idx], -np.inf, weights[a_idx])
            nxt = int(a_idx[int(np.argmax(masked))])
            order.append(nxt)
            in_a[nxt] = True
            weights[a_idx] += adj[nxt, a_idx]
        s, t = order[-2], order[-1]
        cut_of_phase = float(
            sum(adj[t, x] for x in active if x != t)
        )
        if cut_of_phase < best_value:
            best_value = cut_of_phase
            best_group = list(groups[t])
        # merge t into s
        adj[s, :] += adj[t, :]
        adj[:, s] += adj[:, t]
        adj[s, s] = 0.0
        adj[t, :] = 0.0
        adj[:, t] = 0.0
        groups[s].extend(groups[t])
        groups[t] = []
        active.remove(t)

    side = np.zeros(n, dtype=bool)
    side[np.asarray(best_group, dtype=np.int64)] = True
    return CutResult(value=float(best_value), side=side)
