"""The solver arena: every min-cut algorithm behind one surface.

``repro.arena`` turns the repo's solvers — the paper pipeline, the
staged engine, the resilient driver — and the classical baselines
implemented under :mod:`repro.arena.solvers` into uniform
:class:`Contender` objects: named, kinded, seeded, returning a typed
:class:`ArenaResult` with the cut value, witness side, wall-clock time
and work/depth charges.  ``scripts/bench_arena.py`` runs the full
contender x corpus matrix and cross-checks the exact contenders
bit-for-bit.

>>> from repro.arena import get_contender
>>> get_contender("stoer-wagner").solve(graph, seed=0).value

See ``docs/arena.md`` for the contender table and how to add one.
"""

from repro.arena.registry import (
    all_contenders,
    contender_names,
    get_contender,
    register,
)
from repro.arena.result import KINDS, ArenaResult, Contender

__all__ = [
    "ArenaResult",
    "Contender",
    "KINDS",
    "register",
    "get_contender",
    "contender_names",
    "all_contenders",
]
