"""Batch subtree aggregation: w(T_e) for every tree edge in one pass.

Karger's classic trick for evaluating all 1-respecting cuts at once:
for a graph edge (x, y, w), charge +w at x, +w at y and -2w at
lca(x, y); then the subtree sum at u equals the total weight crossing
u's subtree boundary,

    w(T_u) = sum_{z in T_u} charge(z).

Because postorder makes every subtree a contiguous range, the subtree
sums are a prefix-sum difference over the postorder-ordered charges —
O(m log n) work for the LCAs (batched binary lifting) plus O(n) for the
scan, O(log n) depth.

This both (a) accelerates the 1-respecting stage and the interest
predicates (the oracle's per-edge ``cost`` cache is pre-filled in one
shot) and (b) gives an oracle-independent cross-check of Lemma A.1's
``cost`` query, which the tests exploit.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import Graph
from repro.pram.combinators import log2ceil, pscan_exclusive
from repro.pram.ledger import Ledger, NULL_LEDGER
from repro.primitives.euler import RootedTree
from repro.primitives.lca import LCA

__all__ = ["all_subtree_costs"]


def all_subtree_costs(
    graph: Graph,
    tree: RootedTree,
    ledger: Ledger = NULL_LEDGER,
    lca: LCA | None = None,
) -> np.ndarray:
    """w(T_u) for every vertex u (0 for the root), length ``tree.n``.

    ``tree`` may be a binarized supertree of the graph's vertex set
    (virtual vertices simply carry no charge of their own).
    """
    n = tree.n
    charges = np.zeros(n, dtype=np.float64)
    if graph.m:
        if lca is None:
            # memoised per tree instance; builds (and charges) once
            from repro.kernels.treecache import shared_lca

            lca = shared_lca(tree, ledger=ledger)
        anc = lca.query(graph.u, graph.v, ledger=ledger)
        # one weighted bincount over the concatenated charge lists: adds
        # each (vertex, weight) in the same sequential order as the
        # former three np.add.at passes (u entries, then v, then lca),
        # so the per-vertex float accumulation is bit-identical — and
        # several times faster than np.add.at's unbuffered inner loop
        idx = np.concatenate([graph.u, graph.v, anc])
        wts = np.concatenate([graph.w, graph.w, -2.0 * graph.w])
        charges = np.bincount(idx, weights=wts, minlength=n)
    # subtree sums via the postorder prefix trick
    by_post = charges[tree.order]
    prefix = pscan_exclusive(by_post, ledger=ledger)
    total = prefix[-1] + by_post[-1] if n else 0.0
    # inclusive prefix up to post(u) minus prefix before start(u)
    post = tree.post
    start = post - (tree.size - 1)
    incl = np.concatenate([prefix[1:], [total]]) if n else prefix
    out = incl[post] - prefix[start]
    ledger.charge(work=float(n + graph.m), depth=float(log2ceil(max(n, 2))))
    return out
