"""Sorting primitives with PRAM radix-sort charging.

The paper repeatedly invokes "parallel radix sort [Ble96]: O(m) work,
O(log n) depth" (Lemmas 4.24/4.25 preprocessing, Lemma A.1 point
mapping).  We sort with numpy (stable mergesort) and charge that model
cost — a *model* charge per DESIGN.md's charging disciplines.
"""

from __future__ import annotations

import numpy as np

from repro.pram.combinators import log2ceil
from repro.pram.ledger import Ledger, NULL_LEDGER

__all__ = ["parallel_argsort", "parallel_sort_ranks"]


def parallel_argsort(keys: np.ndarray, ledger: Ledger = NULL_LEDGER) -> np.ndarray:
    """Stable argsort of ``keys``; charged O(n) work, O(log n) depth."""
    keys = np.asarray(keys)
    n = int(keys.shape[0])
    order = np.argsort(keys, kind="stable")
    ledger.charge(work=float(max(n, 1)), depth=float(log2ceil(max(n, 2))))
    return order


def parallel_sort_ranks(keys: np.ndarray, ledger: Ledger = NULL_LEDGER) -> np.ndarray:
    """Dense rank (0..n-1) of every element under stable ordering.

    All ranks are distinct; equal keys rank by position, which is how
    every caller breaks ties deterministically.
    """
    order = parallel_argsort(keys, ledger=ledger)
    rank = np.empty_like(order)
    rank[order] = np.arange(order.shape[0])
    return rank
