"""Borůvka minimum spanning forest over integer key ranks.

This is the workhorse behind both the spanning-forest primitive
(Halperin–Zwick substitute, Theorem 2.6's building block) and the
repeated load-ordered MSTs of the tree-packing phase (Pettie–Ramachandran
substitute, Section 4.2).  See DESIGN.md's substitution table for the
cost-model discussion.

The algorithm is the classic parallel Borůvka: every component picks its
minimum-key incident cross edge; the picked edges are merged (the PRAM
algorithm hooks + pointer-jumps, we merge through a DSU and charge the
same per-round cost); components at least halve per round, so there are
at most ``ceil(log2 n)`` rounds.

Keys are *ranks* (int64 obtained by pre-sorting the true keys) so that
``np.minimum.at`` resolves weight ties by edge index deterministically.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.pram.combinators import log2ceil
from repro.pram.ledger import Ledger, NULL_LEDGER
from repro.primitives.dsu import DisjointSets
from repro.primitives.sort import parallel_sort_ranks

__all__ = ["minimum_spanning_forest", "boruvka_forest_from_ranks"]


def boruvka_forest_from_ranks(
    n: int,
    u: np.ndarray,
    v: np.ndarray,
    rank: np.ndarray,
    ledger: Ledger = NULL_LEDGER,
) -> Tuple[np.ndarray, np.ndarray]:
    """Minimum spanning forest by Borůvka rounds over pre-ranked keys.

    Parameters
    ----------
    rank:
        int64 array, a permutation-rank of the edge keys (lower = lighter,
        all distinct).

    Returns
    -------
    (forest_edge_ids, component_labels):
        indices into the edge arrays forming a minimum spanning forest,
        and the component label of every vertex.

    Work/depth charged per round: O(live_edges + n) work, O(log n) depth
    (min-reduction plus pointer jumping), for at most ceil(log2 n) rounds
    — the Borůvka schedule the paper's substrates assume.
    """
    m = int(u.shape[0])
    labels = np.arange(n, dtype=np.int64)
    if m == 0 or n == 0:
        return np.empty(0, np.int64), labels
    dsu = DisjointSets(n)
    by_rank = np.empty(m, dtype=np.int64)
    by_rank[rank] = np.arange(m)
    live = np.arange(m)
    chosen: list[int] = []
    sentinel = np.iinfo(np.int64).max
    rounds = 0
    while live.size:
        rounds += 1
        lu = labels[u[live]]
        lv = labels[v[live]]
        cross = lu != lv
        live = live[cross]
        if live.size == 0:
            break
        lu, lv = lu[cross], lv[cross]
        r = rank[live]
        best = np.full(n, sentinel, dtype=np.int64)
        np.minimum.at(best, lu, r)
        np.minimum.at(best, lv, r)
        winners = np.unique(best[best != sentinel])
        # merge the winning edges; mutual picks of the same edge dedupe
        # via np.unique, genuine cycles are impossible because every
        # selected edge is the minimum of at least one of its endpoints'
        # components (cycle => some edge is the max on the cycle and the
        # min of neither side, with distinct ranks).
        for rk in winners:
            e = int(by_rank[rk])
            if dsu.union(int(u[e]), int(v[e])):
                chosen.append(e)
        labels = dsu.labels()
        ledger.charge(
            work=float(live.size + n + winners.size),
            depth=float(log2ceil(max(n, 2)) + 1),
        )
    return np.asarray(sorted(chosen), dtype=np.int64), labels


def minimum_spanning_forest(
    n: int,
    u: np.ndarray,
    v: np.ndarray,
    keys: Optional[np.ndarray] = None,
    ledger: Ledger = NULL_LEDGER,
) -> Tuple[np.ndarray, np.ndarray]:
    """Minimum spanning forest of edge arrays under ``keys``.

    ``keys`` default to the edge index (arbitrary spanning forest).  Ties
    break by edge index.  Charges the key-ranking sort (O(m) work,
    O(log m) depth, radix model) plus the Borůvka rounds.
    """
    m = int(u.shape[0])
    if keys is None:
        rank = np.arange(m, dtype=np.int64)
        ledger.charge(work=m, depth=1)
    else:
        rank = parallel_sort_ranks(np.asarray(keys), ledger=ledger)
    return boruvka_forest_from_ranks(n, u, v, rank, ledger=ledger)
