"""Batched lowest common ancestors via binary lifting.

Substrate for :mod:`repro.primitives.treesums` (Karger-style subtree
aggregation: w(T_e) for *every* tree edge in one pass).  Preprocessing
is O(n log n) work / O(log n) depth (each lifting level is one
vectorised gather); a batch of q queries costs O(q log n) work and
O(log n) depth (all queries proceed level-synchronously in parallel).
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphFormatError
from repro.pram.combinators import log2ceil
from repro.pram.ledger import Ledger, NULL_LEDGER
from repro.primitives.euler import RootedTree

__all__ = ["LCA"]


class LCA:
    """Binary-lifting LCA over a rooted tree."""

    __slots__ = ("tree", "up", "levels")

    def __init__(self, tree: RootedTree, ledger: Ledger = NULL_LEDGER) -> None:
        self.tree = tree
        n = tree.n
        self.levels = max(log2ceil(max(n, 2)) + 1, 1)
        up = np.empty((self.levels, n), dtype=np.int64)
        parent = tree.parent.copy()
        parent_safe = np.where(parent < 0, np.arange(n), parent)
        up[0] = parent_safe
        for k in range(1, self.levels):
            up[k] = up[k - 1][up[k - 1]]
        self.up = up
        ledger.charge(work=float(n * self.levels), depth=float(self.levels))

    def query(self, a: np.ndarray, b: np.ndarray, ledger: Ledger = NULL_LEDGER) -> np.ndarray:
        """LCAs of the vertex pairs ``(a[i], b[i])`` (vectorised)."""
        tree = self.tree
        a = np.asarray(a, dtype=np.int64).copy()
        b = np.asarray(b, dtype=np.int64).copy()
        if a.shape != b.shape:
            raise GraphFormatError("LCA batch shapes differ")
        depth = tree.depth
        # lift the deeper endpoint up to the same depth
        for k in range(self.levels - 1, -1, -1):
            step = 1 << k
            lift_a = (depth[a] - depth[b]) >= step
            a[lift_a] = self.up[k][a[lift_a]]
            lift_b = (depth[b] - depth[a]) >= step
            b[lift_b] = self.up[k][b[lift_b]]
        # binary-lift both while they differ
        for k in range(self.levels - 1, -1, -1):
            differ = self.up[k][a] != self.up[k][b]
            move = differ & (a != b)
            a[move] = self.up[k][a[move]]
            b[move] = self.up[k][b[move]]
        out = np.where(a == b, a, self.up[0][a])
        ledger.charge(
            work=float(max(a.shape[0], 1) * self.levels),
            depth=float(self.levels),
        )
        return out
