"""Array-based disjoint-set union.

Used *inside* one round of the Borůvka-style hooking loops to merge the
per-component winners; the per-round merge work is charged analytically
by the caller (the PRAM algorithm would use pointer jumping here, with
the same O(#roots) work per round and O(log n) depth — see
:mod:`repro.primitives.connectivity`)."""

from __future__ import annotations

import numpy as np

__all__ = ["DisjointSets"]


class DisjointSets:
    """Union-find with path halving and union by size."""

    __slots__ = ("parent", "size")

    def __init__(self, n: int) -> None:
        self.parent = np.arange(n, dtype=np.int64)
        self.size = np.ones(n, dtype=np.int64)

    def find(self, x: int) -> int:
        p = self.parent
        while p[x] != x:
            p[x] = p[p[x]]
            x = p[x]
        return int(x)

    def union(self, a: int, b: int) -> bool:
        """Merge the sets of a and b; True if they were distinct."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self.size[ra] < self.size[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        self.size[ra] += self.size[rb]
        return True

    def labels(self) -> np.ndarray:
        """Root label of every element (fully compressed)."""
        p = self.parent
        # pointer-jump until stable: O(log n) vectorised rounds
        while True:
            pp = p[p]
            if np.array_equal(pp, p):
                break
            p = pp
        self.parent = p
        return p.copy()
