"""Parallel algorithm primitives (charged against the work-depth ledger)."""

from repro.primitives.connectivity import components, spanning_forest, spanning_forest_graph
from repro.primitives.dsu import DisjointSets
from repro.primitives.euler import RootedTree, postorder, root_tree, tree_depths
from repro.primitives.lca import LCA
from repro.primitives.treesums import all_subtree_costs
from repro.primitives.mst import boruvka_forest_from_ranks, minimum_spanning_forest
from repro.primitives.random_bits import binomial_layer_counts, capped_binomial
from repro.primitives.sort import parallel_argsort, parallel_sort_ranks

__all__ = [
    "DisjointSets",
    "spanning_forest",
    "spanning_forest_graph",
    "components",
    "minimum_spanning_forest",
    "boruvka_forest_from_ranks",
    "RootedTree",
    "root_tree",
    "postorder",
    "tree_depths",
    "LCA",
    "all_subtree_costs",
    "capped_binomial",
    "binomial_layer_counts",
    "parallel_argsort",
    "parallel_sort_ranks",
]
