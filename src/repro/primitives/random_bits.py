"""Randomness primitives: capped binomial sampling (KS88 substitute).

Skeleton construction (Section 4.2.1) draws, for every weighted edge, a
binomial ``B(w(e), p)`` — but by Observation 4.22 the drawn value never
needs to exceed the skeleton's max possible min-cut ``cap = O(log n)``,
so inverse-transform sampling can stop after ``cap`` steps, making the
per-edge work O(log n) instead of O(w(e)).

``min(B(N, p), cap)`` is exactly the distribution the truncated
inverse-transform sampler produces, so we compute it that way
(vectorised) and charge O(cap) work per edge.
"""

from __future__ import annotations

import numpy as np

from repro.pram.ledger import Ledger, NULL_LEDGER

__all__ = ["capped_binomial", "binomial_layer_counts"]


def capped_binomial(
    trials: np.ndarray,
    p: float,
    cap: int,
    rng: np.random.Generator,
    ledger: Ledger = NULL_LEDGER,
) -> np.ndarray:
    """Sample ``min(Binomial(trials_i, p), cap)`` for every i.

    Work charge: O(cap) per edge, O(log cap) depth overall (every edge
    samples independently in parallel; the inverse transform walks at
    most ``cap`` CDF steps but these are charged as sequential work of a
    single processor lane, which Brent amortises).
    """
    trials = np.asarray(trials, dtype=np.int64)
    if cap < 0:
        raise ValueError("cap must be non-negative")
    if not 0.0 <= p <= 1.0:
        raise ValueError("probability out of range")
    x = rng.binomial(trials, p)
    out = np.minimum(x, cap).astype(np.int64)
    ledger.charge(work=float(trials.shape[0] * max(cap, 1)), depth=float(max(cap, 1)))
    return out


def binomial_layer_counts(
    counts: np.ndarray,
    rng: np.random.Generator,
    ledger: Ledger = NULL_LEDGER,
) -> np.ndarray:
    """One hierarchy halving step: ``Binomial(counts_i, 1/2)`` per edge —
    the per-copy coin flips of Definition 3.3 in aggregate.  Charged O(1)
    per live copy in expectation (each copy flips one coin)."""
    counts = np.asarray(counts, dtype=np.int64)
    out = rng.binomial(counts, 0.5).astype(np.int64)
    ledger.charge(work=float(counts.sum()), depth=1.0)
    return out
