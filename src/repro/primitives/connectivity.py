"""Spanning forests and connected components (Halperin–Zwick substitute).

Theorem 2.6 of the paper builds k-connectivity certificates from k
successive spanning-forest computations, each assumed to cost O(m + n)
work and O(log n) depth [HZ01].  Our substitute runs the Borůvka hooking
loop of :mod:`repro.primitives.mst` with the edge index as the key; the
round structure (and hence the depth charge) matches, and the work
charge is O(live edges + n) per round, summing to O((m + n) log n) in
the worst case — within one log factor of HZ01, recorded as such in
EXPERIMENTS.md wherever the difference matters.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.graphs.graph import Graph
from repro.pram.ledger import Ledger, NULL_LEDGER
from repro.primitives.mst import minimum_spanning_forest

__all__ = ["spanning_forest", "spanning_forest_graph", "components"]


def spanning_forest(
    n: int,
    u: np.ndarray,
    v: np.ndarray,
    ledger: Ledger = NULL_LEDGER,
) -> Tuple[np.ndarray, np.ndarray]:
    """``(forest_edge_ids, component_labels)`` of the edge arrays."""
    return minimum_spanning_forest(n, u, v, keys=None, ledger=ledger)


def spanning_forest_graph(graph: Graph, ledger: Ledger = NULL_LEDGER) -> Tuple[np.ndarray, np.ndarray]:
    """Spanning forest of a :class:`Graph`; see :func:`spanning_forest`."""
    return spanning_forest(graph.n, graph.u, graph.v, ledger=ledger)


def components(
    n: int, u: np.ndarray, v: np.ndarray, ledger: Ledger = NULL_LEDGER
) -> np.ndarray:
    """Connected-component labels only."""
    _, labels = spanning_forest(n, u, v, ledger=ledger)
    return labels
