"""Rooted-tree computations via the Euler-tour technique.

The paper uses the Euler-tour technique [J92] for three quantities, each
O(n) work and O(log n) depth on a PRAM:

* rooting an undirected tree at ``r`` (parent pointers),
* postorder numbering ``post(u)`` (Lemma A.1's coordinate system), and
* subtree sizes ``size(u)`` (centroid decomposition, Lemma 4.12).

We compute them with an iterative traversal (Python recursion depth is
too small for path-shaped trees) and charge the Euler-tour model cost.
The *consistency contract* that the whole range-search layer relies on
(Lemma A.1, facts (1)-(2)) is::

    start(u) = post(u) - (size(u) - 1)
    subtree(u)  == the contiguous postorder range [start(u), post(u)]

which :func:`postorder` guarantees by construction and the tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import GraphFormatError
from repro.pram.combinators import log2ceil
from repro.pram.ledger import Ledger, NULL_LEDGER

__all__ = ["RootedTree", "root_tree", "postorder", "tree_depths"]


@dataclass(frozen=True)
class RootedTree:
    """A rooted spanning tree in parent-array form, with the Euler-tour
    derived quantities the cut-query layer needs.

    Tree *edges* are identified by their child endpoint: edge ``u`` is
    ``(u, parent[u])`` for every non-root ``u`` (as in the paper's
    Appendix A notation ``e = (u, p(u))``).
    """

    root: int
    parent: np.ndarray  # parent[root] == -1
    post: np.ndarray  # postorder rank, 0-based
    size: np.ndarray  # number of vertices in subtree (incl. self)
    depth: np.ndarray  # edge-distance from root
    order: np.ndarray  # vertices in postorder: order[post[u]] == u

    def __getstate__(self) -> dict:
        # derived-structure memos (treecache's LCA table, centroid's
        # children lists) live on the instance under "_repro_*" keys;
        # they are pure functions of the tree and must not ride along
        # through pickling or shared-memory publication — each consumer
        # process rebuilds (and re-charges) its own, exactly as a fresh
        # instance would
        return {
            k: v for k, v in self.__dict__.items() if not k.startswith("_repro_")
        }

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    @property
    def n(self) -> int:
        return int(self.parent.shape[0])

    def start(self, u) -> np.ndarray | int:
        """Leftmost postorder rank in u's subtree (Lemma A.1's start)."""
        return self.post[u] - (self.size[u] - 1)

    def is_ancestor(self, a: int, b: int) -> bool:
        """True iff ``a`` is an ancestor of ``b`` (or equal)."""
        return bool(self.start(a) <= self.post[b] <= self.post[a])

    def tree_edges(self) -> np.ndarray:
        """Child endpoints of all n-1 tree edges."""
        return np.flatnonzero(self.parent >= 0)

    def children_lists(self) -> List[List[int]]:
        ch: List[List[int]] = [[] for _ in range(self.n)]
        for u in range(self.n):
            p = int(self.parent[u])
            if p >= 0:
                ch[p].append(u)
        return ch


def _children_arrays(parent: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """CSR-style (offsets, children) from a parent array."""
    n = parent.shape[0]
    nonroot = np.flatnonzero(parent >= 0)
    order = np.argsort(parent[nonroot], kind="stable")
    kids = nonroot[order]
    offsets = np.zeros(n + 1, dtype=np.int64)
    np.add.at(offsets, parent[nonroot] + 1, 1)
    np.cumsum(offsets, out=offsets)
    return offsets, kids


def root_tree(
    n: int,
    u: np.ndarray,
    v: np.ndarray,
    root: int = 0,
    ledger: Ledger = NULL_LEDGER,
) -> np.ndarray:
    """Orient an undirected tree (n-1 edges) away from ``root``.

    Returns the parent array.  Charged at the Euler-tour cost: O(n) work,
    O(log n) depth.
    """
    if u.shape[0] != max(n - 1, 0):
        raise GraphFormatError(f"a tree on {n} vertices needs {n - 1} edges, got {u.shape[0]}")
    parent = np.full(n, -1, dtype=np.int64)
    if n <= 1:
        ledger.charge(work=max(n, 1), depth=1)
        return parent
    # adjacency over both directions
    ends = np.concatenate([u, v])
    other = np.concatenate([v, u])
    order = np.argsort(ends, kind="stable")
    ends_s, other_s = ends[order], other[order]
    offsets = np.zeros(n + 1, dtype=np.int64)
    np.add.at(offsets, ends_s + 1, 1)
    np.cumsum(offsets, out=offsets)
    seen = np.zeros(n, dtype=bool)
    seen[root] = True
    frontier = [int(root)]
    visited = 1
    while frontier:
        nxt: List[int] = []
        for x in frontier:
            lo, hi = offsets[x], offsets[x + 1]
            for y in other_s[lo:hi]:
                y = int(y)
                if not seen[y]:
                    seen[y] = True
                    parent[y] = x
                    nxt.append(y)
                    visited += 1
        frontier = nxt
    if visited != n:
        raise GraphFormatError("edge set does not span a connected tree")
    ledger.charge(work=float(n), depth=float(log2ceil(max(n, 2))))
    return parent


def postorder(
    parent: np.ndarray,
    root: Optional[int] = None,
    ledger: Ledger = NULL_LEDGER,
) -> RootedTree:
    """Postorder numbering, subtree sizes and depths of a rooted tree.

    The traversal visits children in increasing vertex order, so the
    numbering is deterministic.  Charged at the Euler-tour cost.
    """
    parent = np.asarray(parent, dtype=np.int64)
    n = int(parent.shape[0])
    roots = np.flatnonzero(parent < 0)
    if roots.shape[0] != 1:
        raise GraphFormatError("parent array must have exactly one root")
    r = int(roots[0])
    if root is not None and root != r:
        raise GraphFormatError(f"declared root {root} but parent array roots at {r}")
    offsets, kids = _children_arrays(parent)
    post = np.empty(n, dtype=np.int64)
    size = np.ones(n, dtype=np.int64)
    depth = np.zeros(n, dtype=np.int64)
    order_arr = np.empty(n, dtype=np.int64)
    counter = 0
    # iterative DFS: (vertex, next-child cursor)
    stack: List[List[int]] = [[r, 0]]
    visited = 1
    while stack:
        frame = stack[-1]
        x, cursor = frame
        lo, hi = int(offsets[x]), int(offsets[x + 1])
        if cursor < hi - lo:
            frame[1] += 1
            child = int(kids[lo + cursor])
            depth[child] = depth[x] + 1
            stack.append([child, 0])
            visited += 1
        else:
            stack.pop()
            post[x] = counter
            order_arr[counter] = x
            counter += 1
            if stack:
                size[stack[-1][0]] += size[x]
    if visited != n or counter != n:
        raise GraphFormatError("parent array contains a cycle or unreachable vertex")
    ledger.charge(work=float(n), depth=float(log2ceil(max(n, 2))))
    return RootedTree(root=r, parent=parent, post=post, size=size, depth=depth, order=order_arr)


def tree_depths(parent: np.ndarray) -> np.ndarray:
    """Edge-distance of every vertex from the root (convenience)."""
    return postorder(parent).depth
