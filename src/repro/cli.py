"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``cut FILE``
    Exact minimum cut of a graph file (edgelist or DIMACS via --format).
``approx FILE``
    The Section 3 (1 +- eps) approximation.
``bench N M``
    One instrumented run on a random graph: value + work/depth profile.
``engine FILE``
    The staged :class:`repro.engine.CutEngine`: preprocess once, then
    answer ``--batch N`` independent queries (and optionally a second
    warm query) with per-stage cache statistics; ``--updates N``
    additionally streams N random edge mutations through
    ``engine.update()`` and reports the amortized update work.
``arena FILE``
    Run registered contenders (:mod:`repro.arena`) on one graph, print
    per-contender value/wall/work lines, and cross-check the exact
    answers (non-zero exit on disagreement).  ``--list`` enumerates
    the registry.  See ``docs/arena.md``.
``serve``
    The cut-serving daemon (:mod:`repro.serve`): length-prefixed JSON
    over TCP, multi-tenant admission control, deadline shedding — see
    ``docs/service.md``.  Runs until the ``shutdown`` op or Ctrl-C.

All commands accept ``--seed`` and print machine-greppable ``key value``
lines.  ``--trace OUT.json`` additionally records the run through
:mod:`repro.obs` and writes a Chrome-trace-viewer compatible file
(phase spans with wall/work/depth, counter registry, schedule bounds —
see ``docs/observability.md``).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

from repro.errors import ReproError
from repro.graphs.graph import Graph
from repro.graphs.generators import random_connected_graph
from repro.graphs.io import read_dimacs, read_edgelist, read_graph_binary
from repro.pram.trace import TraceLedger

__all__ = ["main"]

#: exit status for well-formed invocations that fail inside the library
#: (malformed graph files, exhausted budgets, invalid parameters, ...)
EXIT_REPRO_ERROR = 2


def _load(path: str, fmt: str) -> Graph:
    if fmt == "auto":
        suffix = Path(path).suffix
        if suffix in (".dimacs", ".max", ".col"):
            fmt = "dimacs"
        elif suffix in (".rpg", ".bin"):
            fmt = "binary"
        else:
            fmt = "edgelist"
    if fmt == "dimacs":
        return read_dimacs(path)
    if fmt == "binary":
        return read_graph_binary(path)
    return read_edgelist(path)


def _write_trace(res, out: Path) -> None:
    """Export a traced result's RunReport and print the summary lines."""
    report = res.report
    assert report is not None
    report.write_trace(out)
    print(f"trace {out}")
    for p in report.phases(top_level_only=True):
        print(f"trace.phase.{p.name}.wall_s {p.wall_s:.6f}")
        print(f"trace.phase.{p.name}.work {p.work}")
    print(f"trace.spans {sum(1 for _ in report.span.walk())}")


def _cmd_cut(args: argparse.Namespace) -> int:
    graph = _load(args.file, args.format)
    # a TraceLedger also records the series-parallel shape, so --trace
    # reports carry schedule bounds on top of the span timeline
    ledger = TraceLedger()
    trace = args.trace is not None
    resilient = (
        args.deadline is not None
        or args.max_attempts is not None
        or args.checkpoint is not None
    )
    if resilient:
        from repro.resilience import resilient_minimum_cut

        res = resilient_minimum_cut(
            graph,
            deadline=args.deadline,
            max_attempts=args.max_attempts if args.max_attempts is not None else 3,
            epsilon=args.epsilon,
            seed=args.seed,
            checkpoint=args.checkpoint,
            resume=not args.no_resume,
            ledger=ledger,
            trace=trace,
        )
    else:
        from repro.core.mincut import minimum_cut

        res = minimum_cut(
            graph,
            epsilon=args.epsilon,
            rng=np.random.default_rng(args.seed),
            ledger=ledger,
            trace=trace,
        )
    print(f"value {res.value}")
    small = res.side if res.side.sum() * 2 <= graph.n else ~res.side
    print(f"side {' '.join(str(int(v)) for v in np.flatnonzero(small))}")
    print(f"work {ledger.work}")
    print(f"depth {ledger.depth}")
    if resilient:
        print(f"attempts {res.attempts}")
        print(f"fallback {res.fallback_used or 'none'}")
        print(f"verified {int(res.verification.ok if res.verification else 0)}")
        print(f"degradations {len(res.degradations)}")
    if trace:
        _write_trace(res, args.trace)
    return 0


def _cmd_approx(args: argparse.Namespace) -> int:
    from repro.approx.approximate import approximate_minimum_cut
    from repro.sparsify.hierarchy import HierarchyParams

    graph = _load(args.file, args.format)
    ledger = TraceLedger()
    res = approximate_minimum_cut(
        graph,
        params=HierarchyParams(scale=args.scale),
        rng=np.random.default_rng(args.seed),
        ledger=ledger,
        trace=args.trace is not None,
    )
    print(f"estimate {res.estimate}")
    print(f"low {res.low}")
    print(f"high {res.high}")
    print(f"layer {res.skeleton_layer}")
    print(f"work {ledger.work}")
    print(f"depth {ledger.depth}")
    if args.trace is not None:
        _write_trace(res, args.trace)
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.core.mincut import minimum_cut

    graph = random_connected_graph(
        args.n, args.m, rng=args.seed, max_weight=args.max_weight
    )
    ledger = TraceLedger()
    res = minimum_cut(
        graph,
        rng=np.random.default_rng(args.seed),
        ledger=ledger,
        trace=args.trace is not None,
    )
    print(f"n {graph.n}")
    print(f"m {graph.m}")
    print(f"value {res.value}")
    print(f"work {ledger.work}")
    print(f"depth {ledger.depth}")
    for name, rec in sorted(ledger.phases.items()):
        print(f"phase.{name}.work {rec.work}")
        print(f"phase.{name}.depth {rec.depth}")
    if args.trace is not None:
        _write_trace(res, args.trace)
    return 0


def _cmd_engine(args: argparse.Namespace) -> int:
    from repro.engine.service import CutEngine
    from repro.obs import CounterRegistry, counting_scope

    graph = _load(args.file, args.format)
    ledger = TraceLedger()
    engine = CutEngine(
        graph, seed=args.seed, epsilon=args.epsilon, ledger=ledger
    )
    registry = CounterRegistry()
    with counting_scope(registry):
        res = engine.min_cut(trace=args.trace is not None)
        cold_work = ledger.work
        if args.batch > 0:
            batch = engine.min_cut_batch(range(args.seed, args.seed + args.batch))
        else:
            batch = []
        last_update = None
        if args.updates > 0:
            from repro.engine.deltas import random_delta

            pre_update_work = ledger.work
            rng = np.random.default_rng(args.seed)
            for _ in range(args.updates):
                last_update = engine.update(**random_delta(engine.graph, rng))
    print(f"value {res.value}")
    small = res.side if res.side.sum() * 2 <= graph.n else ~res.side
    print(f"side {' '.join(str(int(v)) for v in np.flatnonzero(small))}")
    print(f"cold.work {cold_work}")
    print(f"work {ledger.work}")
    print(f"depth {ledger.depth}")
    if batch:
        print(f"batch.queries {len(batch)}")
        print(f"batch.values {' '.join(str(b.value) for b in batch)}")
        # warm batch work beyond the cold query is pure search fan-out
        print(f"batch.extra_work {ledger.work - cold_work}")
    if last_update is not None:
        print(f"updates {args.updates}")
        print(f"updates.work {ledger.work - pre_update_work}")
        print(f"updates.rebases {int(registry.get('engine.rebases'))}")
        print(f"updates.epoch {engine.epoch}")
        print(f"updates.staleness {engine.staleness}")
        print(f"updates.value {last_update.value}")
        verified = last_update.verification
        print(f"updates.verified {int(verified.ok) if verified else 0}")
    print(f"cache.entries {len(engine.cache)}")
    print(f"cache.hits {engine.cache.stats['hits']}")
    print(f"cache.misses {engine.cache.stats['misses']}")
    print(f"engine.stage_runs {registry.get('engine.stage_runs')}")
    if args.trace is not None:
        _write_trace(res, args.trace)
    return 0


def _cmd_arena(args: argparse.Namespace) -> int:
    from repro.arena import contender_names, get_contender

    if args.list:
        for name in contender_names():
            c = get_contender(name)
            print(f"{name} {c.kind}")
        return 0
    if args.file is None:
        print("error: a graph file is required unless --list", file=sys.stderr)
        return EXIT_REPRO_ERROR
    graph = _load(args.file, args.format)
    names = args.contenders.split(",") if args.contenders else contender_names()
    exact_values = {}
    for name in names:
        c = get_contender(name.strip())
        if not c.supports(graph):
            print(f"{c.name}.skipped unsupported")
            continue
        res = c.solve(graph, seed=args.seed, budget=args.budget)
        print(f"{c.name}.value {res.value}")
        print(f"{c.name}.kind {res.kind}")
        print(f"{c.name}.wall_s {res.wall_s:.6f}")
        print(f"{c.name}.work {res.work}")
        print(f"{c.name}.depth {res.depth}")
        if res.kind == "approx":
            print(f"{c.name}.claimed_ratio {res.claimed_ratio}")
            print(f"{c.name}.lower_bound {res.lower_bound}")
        else:
            exact_values[c.name] = res.value
    if len(exact_values) > 1:
        vals = sorted(set(exact_values.values()))
        agree = int(len(vals) == 1)
        print(f"exact.agree {agree}")
        if not agree:
            for name, v in sorted(exact_values.items()):
                print(f"exact.disagreement.{name} {v}", file=sys.stderr)
            return EXIT_REPRO_ERROR
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import ServerConfig
    from repro.serve.server import run_tcp

    config = ServerConfig(
        host=args.host,
        port=args.port,
        queue_depth=args.queue_depth,
        workers=args.workers,
        default_budget_class=args.budget_class,
        allow_shutdown=not args.no_shutdown_op,
        seed=args.seed,
        state_dir=None if args.state_dir is None else str(args.state_dir),
        fsync=args.fsync,
        snapshot_interval=args.snapshot_interval,
        snapshot_retention=args.snapshot_retention,
    )
    run_tcp(config)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Work-optimal parallel minimum cuts (SPAA 2021 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_trace(p: argparse.ArgumentParser) -> None:
        p.add_argument("--trace", type=Path, default=None, metavar="OUT.json",
                       help="record phase spans + counters and write a "
                            "Chrome-trace-viewer JSON file")

    p_cut = sub.add_parser("cut", help="exact minimum cut of a graph file")
    p_cut.add_argument("file")
    p_cut.add_argument("--format", choices=("auto", "edgelist", "dimacs"), default="auto")
    p_cut.add_argument("--epsilon", type=float, default=None,
                       help="Section 4.3 range-tree degree exponent")
    p_cut.add_argument("--seed", type=int, default=0)
    p_cut.add_argument("--deadline", type=float, default=None, metavar="SECONDS",
                       help="wall-clock budget; routes through the resilient "
                            "driver (verified retries, Stoer-Wagner fallback)")
    p_cut.add_argument("--max-attempts", type=int, default=None, metavar="N",
                       help="exact-pipeline attempts before falling back "
                            "(implies the resilient driver; default 3)")
    p_cut.add_argument("--checkpoint", type=Path, default=None, metavar="PATH",
                       help="persist completed-phase artifacts to PATH "
                            "(implies the resilient driver); a killed run "
                            "re-invoked with the same arguments resumes "
                            "mid-pipeline bit-identically")
    p_cut.add_argument("--no-resume", action="store_true",
                       help="ignore an existing checkpoint file at "
                            "--checkpoint and start fresh")
    add_trace(p_cut)
    p_cut.set_defaults(func=_cmd_cut)

    p_apx = sub.add_parser("approx", help="(1 +- eps) approximation")
    p_apx.add_argument("file")
    p_apx.add_argument("--format", choices=("auto", "edgelist", "dimacs"), default="auto")
    p_apx.add_argument("--scale", type=float, default=0.02,
                       help="hierarchy constant scale (1.0 = paper constants)")
    p_apx.add_argument("--seed", type=int, default=0)
    add_trace(p_apx)
    p_apx.set_defaults(func=_cmd_approx)

    p_bench = sub.add_parser("bench", help="instrumented run on a random graph")
    p_bench.add_argument("n", type=int)
    p_bench.add_argument("m", type=int)
    p_bench.add_argument("--max-weight", type=int, default=8)
    p_bench.add_argument("--seed", type=int, default=0)
    add_trace(p_bench)
    p_bench.set_defaults(func=_cmd_bench)

    p_eng = sub.add_parser(
        "engine",
        help="staged engine: preprocess once, answer batched queries",
    )
    p_eng.add_argument("file")
    p_eng.add_argument("--format", choices=("auto", "edgelist", "dimacs"), default="auto")
    p_eng.add_argument("--epsilon", type=float, default=None,
                       help="Section 4.3 range-tree degree exponent")
    p_eng.add_argument("--seed", type=int, default=0)
    p_eng.add_argument("--batch", type=int, default=0, metavar="N",
                       help="after the cold query, answer N independent "
                            "warm queries (seeds seed..seed+N-1) through "
                            "the cached artifacts")
    p_eng.add_argument("--updates", type=int, default=0, metavar="N",
                       help="after the cold query, apply N random edge "
                            "mutations (add/remove/reweight, seeded by "
                            "--seed) through engine.update() and report "
                            "the amortized work, rebase count, and final "
                            "epoch/staleness")
    add_trace(p_eng)
    p_eng.set_defaults(func=_cmd_engine)

    p_arena = sub.add_parser(
        "arena",
        help="run registered contenders on a graph and cross-check (docs/arena.md)",
    )
    p_arena.add_argument("file", nargs="?", default=None)
    p_arena.add_argument("--format",
                         choices=("auto", "edgelist", "dimacs", "binary"),
                         default="auto")
    p_arena.add_argument("--contenders", default=None, metavar="A,B,...",
                         help="comma-separated registry names (default: all "
                              "supported contenders)")
    p_arena.add_argument("--seed", type=int, default=0)
    p_arena.add_argument("--budget", type=float, default=None, metavar="SECONDS",
                         help="best-effort wall-clock budget handed to each "
                              "contender")
    p_arena.add_argument("--list", action="store_true",
                         help="list registered contenders and exit")
    p_arena.set_defaults(func=_cmd_arena)

    p_srv = sub.add_parser(
        "serve",
        help="run the multi-tenant cut-serving daemon (docs/service.md)",
    )
    p_srv.add_argument("--host", default="127.0.0.1")
    p_srv.add_argument("--port", type=int, default=7471,
                       help="TCP port (0 = ephemeral, printed on start)")
    p_srv.add_argument("--queue-depth", type=int, default=64,
                       help="bounded admission queue; overflow is answered "
                            "with a typed retry_after")
    p_srv.add_argument("--workers", type=int, default=4,
                       help="concurrent dispatch workers")
    p_srv.add_argument("--budget-class",
                       choices=("interactive", "standard", "batch"),
                       default="standard",
                       help="default budget class for tenants registered "
                            "without one")
    p_srv.add_argument("--no-shutdown-op", action="store_true",
                       help="disable the remote 'shutdown' op")
    p_srv.add_argument("--seed", type=int, default=0,
                       help="supervisor jitter seed")
    p_srv.add_argument("--state-dir", type=Path, default=None, metavar="DIR",
                       help="durable state: write-ahead log + snapshots in "
                            "DIR; on start, recovery restores registered "
                            "tenants/graphs and every acked update "
                            "(docs/robustness.md).  Omitted = in-memory "
                            "only")
    p_srv.add_argument("--fsync", choices=("always", "batch", "never"),
                       default="always",
                       help="WAL fsync policy: 'always' makes every ack "
                            "machine-crash durable; 'batch' fsyncs every "
                            "few appends; 'never' leaves it to the kernel "
                            "(process-crash durable only)")
    p_srv.add_argument("--snapshot-interval", type=int, default=64,
                       metavar="N",
                       help="WAL records between automatic snapshots")
    p_srv.add_argument("--snapshot-retention", type=int, default=2,
                       metavar="K",
                       help="verified snapshot generations to keep")
    p_srv.set_defaults(func=_cmd_serve)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        # library errors are user-facing: one line on stderr, exit 2,
        # no traceback
        print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return EXIT_REPRO_ERROR
    except BrokenPipeError:
        # downstream consumer (e.g. `| head`) closed the pipe: exit quietly
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
