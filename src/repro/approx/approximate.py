"""Theorem 3.1: the parallel (1 +- eps)-approximation of the minimum cut.

Pipeline (Section 3):

1. build the truncated + exclusive hierarchies (Algorithm 3.14);
2. build the certificate hierarchy (Algorithm 3.17);
3. compute the min-cut of every cumulative certificate — O(log n)
   instances of the exact algorithm on O(n polylog n)-size graphs,
   solved in parallel (Claim 3.20);
4. locate the skeleton layer s (Claims 3.6-3.13) and rescale:
   lambda ~ mincut(G_s^trunc) * 2^s.

Work O(m log n + n log^5 n), depth O(log^3 n).

Like the other entry points, everything after ``graph`` is
keyword-only (the one-release positional-argument deprecation shim has
been removed).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Optional

import numpy as np

from repro import obs
from repro.approx.layers import layer_min_cuts, locate_skeleton_layer
from repro.errors import GraphFormatError
from repro.graphs.graph import Graph
from repro.pram.ledger import Ledger, NULL_LEDGER
from repro.results import ApproxResult
from repro.sparsify.certhierarchy import build_certificate_hierarchy
from repro.sparsify.hierarchy import HierarchyParams, build_truncated_hierarchy

__all__ = ["approximate_minimum_cut"]


def _default_solver(ledger: Ledger) -> Callable[[Graph], float]:
    """Exact min-cut on a certificate graph.

    Uses this package's own exact algorithm (Section 4) with the
    approximation stage *disabled* — the expected layer min-cut is a
    valid O(1)-approximation by construction (the paper's Claim 3.20
    remark) — falling back to Stoer–Wagner for the tiny instances where
    the tree-packing machinery costs more than it saves.
    """

    def solve(g: Graph) -> float:
        if g.n <= 64:
            from repro.arena.solvers.stoer_wagner import stoer_wagner

            return stoer_wagner(g).value
        import math

        from repro.core.mincut import minimum_cut

        # The layer values only need to land in the right separation
        # window (a crude O(1)-approximation suffices — Claims 3.11-3.13
        # leave a x2.4 gap), so the inner exact solver runs a slimmer
        # schedule than the top-level driver.
        lg = math.log2(g.n)
        return minimum_cut(
            g,
            approx_value=float(g.weighted_degrees.min()),
            max_trees=max(4, int(math.ceil(lg / 2))),
            packing_iterations=max(8, int(math.ceil(lg**1.5))),
            ledger=ledger,
        ).value

    return solve


def approximate_minimum_cut(
    graph: Graph,
    *,
    params: HierarchyParams = HierarchyParams(),
    rng: Optional[np.random.Generator] = None,
    ledger: Ledger = NULL_LEDGER,
    solver: Optional[Callable[[Graph], float]] = None,
    epsilon: float = 1.0 / 3.0,
    repeats: int = 1,
    trace: bool = False,
) -> ApproxResult:
    """(1 +- epsilon)-approximate the minimum cut value of ``graph``.

    Parameters
    ----------
    graph:
        Weighted graph.  Real weights are transparently scaled to the
        multigraph (integer) semantics of Section 3 via
        :meth:`repro.graphs.Graph.integerized`; the returned estimate is
        already rescaled back.
    params:
        Hierarchy constants; ``HierarchyParams(scale=...)`` shrinks the
        paper's constants proportionally (DESIGN.md section 5).  This is
        the same object as :attr:`repro.params.CutPipelineParams.hierarchy`
        — see :mod:`repro.params` for the one documented home of the
        pipeline knobs.
    solver:
        Exact min-cut callable used on the certificate layers; defaults
        to this package's exact algorithm (Stoer–Wagner under n <= 64).
    epsilon:
        Reported bracket half-width.  The sampling constants inside
        ``params`` govern the actual concentration; the paper proves the
        combination for epsilon = 1/3 (Theorem 3.1 discussion).
    repeats:
        The paper's remark that the algorithm "can be modified to obtain
        a (1 + eps)-approximation for any small constant eps without any
        change in the performance guarantee": run ``repeats`` independent
        hierarchies (logically in parallel — work scales by the constant
        ``repeats``, depth is unchanged) and return the median estimate,
        shrinking the sampling error like 1/sqrt(repeats).
    trace:
        Attach a :class:`repro.obs.RunReport` as ``.report`` (see
        :func:`repro.minimum_cut`).

    Returns
    -------
    ApproxResult with the estimate, the [low, high] bracket, the located
    skeleton layer and every layer's measured min-cut.
    """
    if trace and not obs.tracing_active():
        if ledger is NULL_LEDGER:
            ledger = Ledger()
        tracer = obs.Tracer(ledger=ledger)
        with tracer.activate():
            res = _approximate_impl(
                graph, params, rng, ledger, solver, epsilon, repeats
            )
        report = tracer.report(
            algorithm="approximate_minimum_cut", n=graph.n, m=graph.m
        )
        return dataclasses.replace(res, report=report)
    return _approximate_impl(graph, params, rng, ledger, solver, epsilon, repeats)


def _approximate_impl(
    graph: Graph,
    params: HierarchyParams,
    rng: Optional[np.random.Generator],
    ledger: Ledger,
    solver: Optional[Callable[[Graph], float]],
    epsilon: float,
    repeats: int,
) -> ApproxResult:
    if graph.n < 2:
        raise GraphFormatError("min cut needs at least 2 vertices")
    k, labels = graph.connected_components()
    if k > 1:
        return ApproxResult(
            estimate=0.0, low=0.0, high=0.0, skeleton_layer=0, layer_cuts={}
        )
    rng = rng if rng is not None else np.random.default_rng()
    solver = solver if solver is not None else _default_solver(ledger)
    graph, weight_scale = graph.integerized()
    if weight_scale != 1.0:
        inner = _approximate_impl(
            graph, params, rng, ledger, solver, epsilon, repeats
        )
        return ApproxResult(
            estimate=inner.estimate / weight_scale,
            low=inner.low / weight_scale,
            high=inner.high / weight_scale,
            skeleton_layer=inner.skeleton_layer,
            layer_cuts=inner.layer_cuts,
            stats=dict(inner.stats, weight_scale=weight_scale),
        )
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    if repeats > 1:
        runs = []
        with ledger.parallel() as par:
            for i in range(repeats):
                with par.branch():
                    with obs.current_tracer().span(f"repeat[{i}]"):
                        runs.append(
                            _approximate_impl(
                                graph, params, rng, ledger, solver, epsilon, 1
                            )
                        )
        estimates = sorted(r.estimate for r in runs)
        med = estimates[len(estimates) // 2]
        pick = min(runs, key=lambda r: abs(r.estimate - med))
        stats = dict(pick.stats)
        stats["repeats"] = float(repeats)
        stats["estimate_spread"] = float(estimates[-1] - estimates[0])
        return ApproxResult(
            estimate=med,
            low=med * (1.0 - epsilon),
            high=med * (1.0 + epsilon),
            skeleton_layer=pick.skeleton_layer,
            layer_cuts=pick.layer_cuts,
            stats=stats,
        )

    with obs.phase("hierarchy", ledger):
        hierarchy = build_truncated_hierarchy(graph, params=params, rng=rng, ledger=ledger)
    with obs.phase("certificates", ledger):
        certs = build_certificate_hierarchy(hierarchy, ledger=ledger)
    with obs.phase("layer-cuts", ledger):
        _, hi = params.window(graph.n)
        cuts = layer_min_cuts(
            certs, solver, ledger=ledger, stop_below=params.scale
            * params.below_low * params.log_n(graph.n)
        )
    s = locate_skeleton_layer(cuts, graph.n, params)
    estimate = float(cuts.get(s, 0.0)) * (2.0 ** s)
    reg = obs.counters()
    if reg.enabled:
        reg.add("approx.layers_cut", float(len(cuts)))
    return ApproxResult(
        estimate=estimate,
        low=estimate * (1.0 - epsilon),
        high=estimate * (1.0 + epsilon),
        skeleton_layer=int(s),
        layer_cuts=cuts,
        stats={
            "hierarchy_depth": float(hierarchy.depth),
            "total_certificate_weight": float(
                sum(int(c.total_copies) for c in certs.certificates)
            ),
        },
    )
