"""Skeleton-layer location in the certificate hierarchy (Section 3.1.4).

Claims 3.11-3.13 establish three separated regimes for the min-cut of
``G_i^trunc``: above ``below_low * log n`` for layers denser than the
skeleton layer, inside ``[window_low, window_high] * log n`` at the
skeleton layer s, and below ``above_high * log n`` past it.  Because the
cumulative certificates preserve every cut below the certificate
parameter ``k > below_low * log n`` exactly (and only inflate larger
ones), the same separation is visible on the certificates, so the
skeleton layer is simply the first layer whose certificate min-cut drops
out of the dense regime.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.graphs.graph import Graph
from repro.pram.ledger import Ledger, NULL_LEDGER
from repro.sparsify.certhierarchy import CertificateHierarchy

__all__ = ["layer_min_cuts", "locate_skeleton_layer"]

Solver = Callable[[Graph], float]


def layer_min_cuts(
    certs: CertificateHierarchy,
    solver: Solver,
    ledger: Ledger = NULL_LEDGER,
    *,
    stop_below: float | None = None,
) -> Dict[int, float]:
    """Min-cut value of every cumulative certificate ``union_{j>=i} H_j``.

    Layers are solved in parallel branches (the paper solves the
    O(log n) instances concurrently, Claim 3.20).  ``stop_below``
    (optional) skips denser layers once a layer's cut already fell below
    the threshold — the located layer does not depend on them, and the
    saved work matters at benchmark scale.  Empty/trivial layers report
    0.0.
    """
    out: Dict[int, float] = {}
    depth = certs.depth
    with ledger.parallel() as par:
        for i in range(depth - 1, -1, -1):
            g = certs.cumulative(i)
            if g.m == 0 or g.n < 2:
                out[i] = 0.0
                continue
            if not g.is_connected():
                out[i] = 0.0
                continue
            with par.branch():
                out[i] = float(solver(g))
            if stop_below is not None and out[i] >= stop_below:
                # we are in the dense regime; all denser layers are too
                for j in range(i - 1, -1, -1):
                    out[j] = out[i]
                break
    return out


def locate_skeleton_layer(
    layer_cuts: Dict[int, float],
    n: int,
    params,
) -> int:
    """Definition 3.5: the layer s with ``2^{-s} ~ p_s``.

    Identified as the sparsest-to-densest scan's first layer whose
    min-cut reaches the dense side of the separation window; claims
    3.11-3.13 make this unambiguous w.h.p.  Concretely we return the
    layer whose cut is closest to the window centre among layers inside
    the window, falling back to the boundary layer between the dense and
    sparse regimes.
    """
    lo, hi = params.window(n)
    centre = (lo + hi) / 2.0
    inside = [i for i, v in layer_cuts.items() if lo <= v <= hi]
    if inside:
        return min(inside, key=lambda i: abs(layer_cuts[i] - centre))
    # fallback: the last (sparsest) layer still above the window —
    # its successor underestimates; pick whichever is closer to centre
    above = [i for i, v in layer_cuts.items() if v > hi]
    below = [i for i, v in layer_cuts.items() if v < lo]
    candidates = []
    if above:
        candidates.append(max(above))
    if below:
        candidates.append(min(below))
    if not candidates:
        return 0
    return min(candidates, key=lambda i: abs(layer_cuts[i] - centre))
