"""Section 3: parallel (1 +- eps)-approximate minimum cut."""

from repro.approx.approximate import approximate_minimum_cut
from repro.approx.layers import layer_min_cuts, locate_skeleton_layer

__all__ = ["approximate_minimum_cut", "layer_min_cuts", "locate_skeleton_layer"]
