"""The shared pipeline knobs, documented once.

Historically the three entry points (:func:`repro.minimum_cut`,
:func:`repro.resilient_minimum_cut`,
:func:`repro.approximate_minimum_cut`) each grew their own copies of
the tree/skeleton/hierarchy parameters with diverging names and
defaults.  This module is now the single home:

* :class:`SkeletonParams` — skeleton sampling constants (Section 4.2),
  re-exported from :mod:`repro.sparsify.skeleton`;
* :class:`HierarchyParams` — the Section 3 hierarchy constants,
  re-exported from :mod:`repro.sparsify.hierarchy`;
* :class:`CutPipelineParams` — everything the exact pipeline accepts,
  bundled so configurations travel as one value.

Every entry point still accepts the individual keyword arguments (all
keyword-only); ``minimum_cut`` and ``resilient_minimum_cut``
additionally accept ``pipeline=CutPipelineParams(...)`` as the bundled
spelling.  Passing both the bundle and a conflicting individual knob
raises :class:`repro.errors.InvalidParameterError` — there is exactly
one source of truth per run.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Literal, Optional

from repro.errors import InvalidParameterError
from repro.sparsify.hierarchy import HierarchyParams
from repro.sparsify.skeleton import SkeletonParams

__all__ = ["CutPipelineParams", "SkeletonParams", "HierarchyParams"]


@dataclass(frozen=True)
class CutPipelineParams:
    """Every knob of the exact pipeline, as one frozen value.

    Attributes
    ----------
    epsilon:
        The Section 4.3 work/query tradeoff: range trees of degree
        ``~n^epsilon`` give O(m/eps + n^{1+2eps} log n / eps^2 +
        n log n) work for the cut-finding step.  ``None`` = degree-2
        trees (the general Theorem 4.1 configuration).
    max_trees:
        How many candidate trees the cut-finding step tests.  ``"auto"``
        samples ``ceil(3 log2 n)`` distinct trees proportional to
        packing multiplicity — the paper's O(log n) schedule.  An int
        samples that many; ``None`` = thorough mode, every distinct
        packed tree (O(log^2 n) worst case).
    decomposition:
        Path decomposition flavour for the 2-respecting search; both
        ``"heavy"`` and ``"bough"`` satisfy Property 4.3.
    skeleton:
        :class:`SkeletonParams` — skeleton sampling / certification
        constants (Theorem 4.18).  The resilient driver escalates
        ``skeleton.sample_constant`` geometrically across retries.
    hierarchy:
        :class:`HierarchyParams` for the Section 3 approximation stage;
        ``None`` uses that stage's defaults.
    packing_iterations:
        Override for the greedy packing's iteration count (``None`` =
        the Theorem 4.18 schedule).
    """

    epsilon: Optional[float] = None
    max_trees: "int | None | Literal['auto']" = "auto"
    decomposition: Literal["heavy", "bough"] = "heavy"
    skeleton: SkeletonParams = field(default_factory=SkeletonParams)
    hierarchy: Optional[HierarchyParams] = None
    packing_iterations: Optional[int] = None

    @classmethod
    def resolve(
        cls,
        pipeline: Optional["CutPipelineParams"],
        **individual: object,
    ) -> "CutPipelineParams":
        """Merge the bundled and individual spellings of the knobs.

        ``individual`` maps field names to the entry point's received
        keyword values.  With no ``pipeline`` the individual values are
        bundled as-is; with one, any individual knob that differs from
        its field default conflicts with the bundle and raises.
        """
        if pipeline is None:
            return cls(**individual)  # type: ignore[arg-type]
        defaults = cls()
        for f in fields(cls):
            if f.name not in individual:
                continue
            if individual[f.name] != getattr(defaults, f.name):
                raise InvalidParameterError(
                    f"pass {f.name!r} either inside pipeline= or as a "
                    "keyword, not both"
                )
        return pipeline
