"""Work-depth accounting: the PRAM substitute at the heart of this repro.

The paper analyses algorithms in the *work-depth* model (Section 2.1):

* **work** -- total number of primitive operations, and
* **depth** -- length of the longest chain of dependent operations.

CPython cannot demonstrate shared-memory speedups (the GIL serialises
Python bytecode), so instead of timing wall-clock on p cores, every
parallel algorithm in this library *charges* its operations to a
:class:`Ledger`.  Sequential charges advance a depth clock; parallel
regions fork the clock, run each branch from the fork point, and join at
the maximum branch end time — exactly the semantics of the work-depth
model.  Brent's theorem (:mod:`repro.pram.scheduler`) then converts the
counters into a predicted p-processor running time ``W/p + D``.

Two charging disciplines coexist, both documented per call site:

* *structural* charges count operations the code actually performs
  (range-tree nodes visited, matrix entries evaluated, hook-compress
  rounds executed); these dominate the experiment benchmarks;
* *model* charges account for bulk primitives (radix sort, prefix sums)
  at their textbook PRAM cost, because their numpy implementation does
  not expose a meaningful per-element loop to count.

Usage::

    ledger = Ledger()
    ledger.charge(work=5, depth=1)           # 5 ops in sequence-step 1
    with ledger.parallel() as par:           # fork
        for chunk in chunks:
            with par.branch():               # each branch starts at fork time
                ledger.charge(len(chunk), depth=1)
    # after the with-block the clock sits at max branch end time

Ledgers nest arbitrarily and are cheap (two ints and a small stack).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

from repro.errors import LedgerError

__all__ = ["Ledger", "ParallelFrame", "PhaseRecord", "NULL_LEDGER"]


@dataclass
class PhaseRecord:
    """Work/depth attributed to one named phase of an algorithm."""

    name: str
    work: float = 0.0
    #: depth consumed between phase entry and exit (critical path length
    #: of the phase itself, not of the whole computation so far).
    depth: float = 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PhaseRecord({self.name!r}, work={self.work:g}, depth={self.depth:g})"


class ParallelFrame:
    """A fork point.  Each :meth:`branch` replays the clock from the fork
    time; closing the frame advances the clock to the latest branch end."""

    __slots__ = ("_ledger", "_fork_time", "_max_end", "_open", "_closed")

    def __init__(self, ledger: "Ledger") -> None:
        self._ledger = ledger
        self._fork_time = ledger._now
        self._max_end = ledger._now
        self._open = 0
        self._closed = False

    @contextmanager
    def branch(self) -> Iterator[None]:
        """Run one parallel branch.  Branches may themselves open nested
        parallel frames.  Branches must not overlap in (Python) time —
        they are *logically* parallel, executed one after another."""
        if self._closed:
            raise LedgerError("branch() on a closed parallel frame")
        self._open += 1
        saved = self._ledger._now
        self._ledger._now = self._fork_time
        try:
            yield
        finally:
            end = self._ledger._now
            if end > self._max_end:
                self._max_end = end
            # restore so sibling bookkeeping between branches is unaffected
            self._ledger._now = saved
            self._open -= 1

    def _close(self) -> None:
        if self._open:
            raise LedgerError("closing a parallel frame with an open branch")
        self._closed = True
        self._ledger._now = self._max_end


class Ledger:
    """Accumulates work and tracks the depth clock of one computation.

    Attributes
    ----------
    work:
        Total operations charged so far.
    depth:
        Current value of the depth clock (critical-path length).
    """

    __slots__ = ("work", "_now", "_phases", "_phase_stack")

    def __init__(self) -> None:
        self.work: float = 0.0
        self._now: float = 0.0
        self._phases: Dict[str, PhaseRecord] = {}
        self._phase_stack: List[Tuple[str, float, float]] = []

    # ------------------------------------------------------------------
    # core charging API
    # ------------------------------------------------------------------
    @property
    def depth(self) -> float:
        return self._now

    def charge(self, work: float, depth: float = 1.0) -> None:
        """Charge ``work`` operations forming a dependent chain of length
        ``depth`` (i.e. ``work`` ops spread over ``depth`` sequential
        steps; with work > depth the surplus is implicitly parallel)."""
        if work < 0 or depth < 0:
            raise LedgerError("negative work/depth charge")
        self.work += work
        self._now += depth

    @contextmanager
    def parallel(self) -> Iterator[ParallelFrame]:
        """Open a fork/join region; see module docstring for usage."""
        frame = ParallelFrame(self)
        try:
            yield frame
        finally:
            frame._close()

    @contextmanager
    def batch(self, depth: float) -> Iterator[None]:
        """Treat the enclosed computation as one parallel batch.

        Work accumulates normally, but on exit the depth clock advances
        by exactly ``depth`` from its entry value, regardless of what the
        enclosed charges did to it.  This is how call sites encode "these
        k sub-operations run concurrently with critical path ``depth``"
        when the sub-operations are executed (and charged) sequentially
        in Python — e.g. the entry inspections of one SMAWK call, or the
        auxiliary 1-D queries inside a 2-D range query.
        """
        if depth < 0:
            raise LedgerError("negative batch depth")
        start = self._now
        try:
            yield
        finally:
            self._now = start + depth

    # ------------------------------------------------------------------
    # phases
    # ------------------------------------------------------------------
    @contextmanager
    def phase(self, name: str) -> Iterator[PhaseRecord]:
        """Attribute all work/depth charged inside the block to ``name``.

        Phases aggregate across repeated entries (entering the same phase
        twice sums into one record).  Nested phases each see the full
        charge (a charge inside phases A>B counts toward both)."""
        start_work, start_now = self.work, self._now
        self._phase_stack.append((name, start_work, start_now))
        try:
            yield self._phases.setdefault(name, PhaseRecord(name))
        finally:
            self._phase_stack.pop()
            rec = self._phases.setdefault(name, PhaseRecord(name))
            rec.work += self.work - start_work
            rec.depth += self._now - start_now

    @property
    def phases(self) -> Dict[str, PhaseRecord]:
        return dict(self._phases)

    # ------------------------------------------------------------------
    # snapshots / merging
    # ------------------------------------------------------------------
    def snapshot(self) -> Tuple[float, float]:
        """Return ``(work, depth)`` as of now."""
        return self.work, self._now

    def since(self, snap: Tuple[float, float]) -> Tuple[float, float]:
        """Work and depth consumed since ``snap`` (from :meth:`snapshot`)."""
        w0, d0 = snap
        return self.work - w0, self._now - d0

    def absorb_parallel(self, *others: "Ledger") -> None:
        """Merge independent sub-computations that ran logically in
        parallel with each other (work sums, depth maxes onto the clock).

        Useful when a sub-algorithm was measured on its own ledger."""
        if not others:
            return
        self.work += sum(o.work for o in others)
        self._now += max(o._now for o in others)
        for o in others:
            for name, rec in o._phases.items():
                mine = self._phases.setdefault(name, PhaseRecord(name))
                mine.work += rec.work
                mine.depth = max(mine.depth, rec.depth)

    def reset(self) -> None:
        self.work = 0.0
        self._now = 0.0
        self._phases.clear()
        self._phase_stack.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Ledger(work={self.work:g}, depth={self._now:g})"


class _NullLedger(Ledger):
    """A ledger that discards all charges.  Passed by default so that the
    algorithms can be called without accounting."""

    __slots__ = ()

    def charge(self, work: float, depth: float = 1.0) -> None:  # noqa: D102
        if work < 0 or depth < 0:
            raise LedgerError("negative work/depth charge")

    @contextmanager
    def batch(self, depth: float) -> Iterator[None]:  # noqa: D102
        if depth < 0:
            raise LedgerError("negative batch depth")
        yield

    def absorb_parallel(self, *others: "Ledger") -> None:  # noqa: D102
        # absorbing mutates work/depth directly (it does not go through
        # charge), so it must be discarded here like every other charge
        pass


#: Shared sink for un-instrumented calls.  Never read its counters.
NULL_LEDGER = _NullLedger()
