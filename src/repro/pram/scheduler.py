"""Brent's theorem: turning (work, depth) counters into p-processor time.

An algorithm with work ``W`` and depth ``D`` runs in time ``O(W/p + D)``
on ``p`` processors [Bre74].  This module evaluates that bound, derives
speedup/efficiency curves, and computes the *parallelism* ``W/D`` — the
processor count beyond which adding hardware stops helping.

These projections are what the benchmark harness reports in place of
wall-clock measurements (see DESIGN.md, substitution table).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.pram.ledger import Ledger

__all__ = ["BrentProjection", "brent_time", "parallelism", "speedup_curve"]


def brent_time(work: float, depth: float, processors: int) -> float:
    """Predicted running time ``W/p + D`` on ``processors`` processors."""
    if processors < 1:
        raise ValueError("processors must be >= 1")
    return work / processors + depth


def parallelism(work: float, depth: float) -> float:
    """``W / D`` — the asymptotic limit on useful processors."""
    if depth <= 0:
        return float("inf")
    return work / depth


@dataclass(frozen=True)
class BrentProjection:
    """Speedup/efficiency of one algorithm at one processor count."""

    processors: int
    time: float
    speedup: float
    efficiency: float


def speedup_curve(
    work: float,
    depth: float,
    processor_counts: Sequence[int],
    baseline_sequential: float | None = None,
) -> List[BrentProjection]:
    """Project speedups over a sweep of processor counts.

    ``baseline_sequential`` is the time a *sequential* algorithm takes
    (defaults to ``work``, i.e. self-relative speedup).  Passing the best
    sequential algorithm's work yields absolute speedup, which is what
    work-optimality is about: a work-optimal parallel algorithm has
    speedup ``~p`` against the best sequential one until ``p ~ W/D``.
    """
    t1 = float(work) if baseline_sequential is None else float(baseline_sequential)
    out: List[BrentProjection] = []
    for p in processor_counts:
        t = brent_time(work, depth, p)
        s = t1 / t if t > 0 else float("inf")
        out.append(BrentProjection(processors=p, time=t, speedup=s, efficiency=s / p))
    return out


def ledger_curve(
    ledger: Ledger,
    processor_counts: Sequence[int],
    baseline_sequential: float | None = None,
) -> List[BrentProjection]:
    """:func:`speedup_curve` directly from a ledger's counters."""
    return speedup_curve(ledger.work, ledger.depth, processor_counts, baseline_sequential)
