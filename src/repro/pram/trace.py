"""Series-parallel cost traces: tighter-than-Brent schedule analysis.

The plain :class:`~repro.pram.ledger.Ledger` reduces a run to two
numbers (W, D), for which Brent gives ``T_p <= W/p + D``.  A
:class:`TraceLedger` additionally records the *series-parallel shape* of
the computation — which work happened inside which parallel region —
enabling per-p makespan **bounds** computed recursively over the shape:

* a sequential composition sums its children's bounds;
* a parallel composition of children with profiles ``(W_i, D_i)``
  satisfies  ``max(sum W_i / p, max_i lower_i(p))  <=  T_p  <=
  sum W_i / p + max_i (upper_i(p) - W_i/p)`` — the classical malleable-
  task sandwich, applied recursively.

The gap between the recursive upper bound and the recursive lower bound
is usually far smaller than Brent's global slack, because depth that
lives *inside* a wide parallel region no longer pays the additive D at
the top level.  Experiment E7 uses these bounds to sandwich the
projected speedups.

Traces aggregate aggressively (consecutive sequential charges merge into
one segment), so memory stays proportional to the number of *parallel
regions*, not the number of charges.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

from repro.pram.ledger import Ledger

__all__ = ["TraceLedger", "SPNode", "schedule_bounds"]


@dataclass
class SPNode:
    """One node of the series-parallel cost tree.

    ``kind`` is "seq" (children run one after another; a bare work
    segment is a seq with no children and nonzero ``work``/``depth``)
    or "par" (children run concurrently).  ``work``/``depth`` on a seq
    node hold the merged sequential charges recorded directly at that
    level (between / around child regions).
    """

    kind: str  # "seq" | "par"
    work: float = 0.0
    depth: float = 0.0
    children: List["SPNode"] = field(default_factory=list)
    #: when set, the node's depth was pinned by Ledger.batch(depth)
    forced_depth: Optional[float] = None

    # ------------------------------------------------------------------
    def total_work(self) -> float:
        return self.work + sum(c.total_work() for c in self.children)

    def total_depth(self) -> float:
        if self.forced_depth is not None:
            return self.forced_depth
        if self.kind == "par":
            kids = max((c.total_depth() for c in self.children), default=0.0)
            return self.depth + kids
        return self.depth + sum(c.total_depth() for c in self.children)

    def count_nodes(self) -> int:
        return 1 + sum(c.count_nodes() for c in self.children)


def schedule_bounds(node: SPNode, processors: int) -> Tuple[float, float]:
    """(lower, upper) bounds on the p-processor makespan of the trace.

    Both bounds are recursive:

    * seq: bounds add over children plus the node's own (sequential)
      ``depth`` -- its own work runs on one processor by definition of a
      sequential segment, so it contributes ``depth`` exactly (the
      convention is that a segment's surplus work/depth was charged as
      ``charge(w, d)`` meaning w ops across d dependent steps, i.e. the
      segment itself is internally parallel: it contributes
      ``max(w/p, d)`` lower and ``w/p + d`` upper);
    * par: the malleable-task sandwich over the children.
    """
    if processors < 1:
        raise ValueError("processors must be >= 1")
    p = float(processors)

    def go(n: SPNode) -> Tuple[float, float]:
        own_lo = max(n.work / p, n.depth)
        own_hi = n.work / p + n.depth
        if not n.children:
            lo, hi = own_lo, own_hi
        elif n.kind == "seq":
            lo, hi = own_lo, own_hi
            for c in n.children:
                clo, chi = go(c)
                lo += clo
                hi += chi
        else:  # par
            child_bounds = [go(c) for c in n.children]
            child_work = [c.total_work() for c in n.children]
            area = sum(child_work) / p
            lo = own_lo + max(area, max((b[0] for b in child_bounds), default=0.0))
            hi = own_hi + area + max(
                (b[1] - w / p for (b, w) in zip(child_bounds, child_work)),
                default=0.0,
            )
        if n.forced_depth is not None:
            # a batch region: depth pinned, work unchanged
            w = n.total_work()
            lo = max(w / p, n.forced_depth)
            hi = w / p + n.forced_depth
        return lo, hi

    return go(node)


class TraceLedger(Ledger):
    """A Ledger that additionally records the series-parallel shape.

    Drop-in replacement: every algorithm accepting ``ledger=`` works
    unchanged; afterwards ``trace`` holds the SP tree and
    :func:`schedule_bounds` evaluates it.
    """

    __slots__ = ("trace", "_node_stack")

    def __init__(self) -> None:
        super().__init__()
        self.trace = SPNode(kind="seq")
        self._node_stack: List[SPNode] = [self.trace]

    # ------------------------------------------------------------------
    def charge(self, work: float, depth: float = 1.0) -> None:
        super().charge(work, depth)
        top = self._node_stack[-1]
        # merge into the current node's own segment
        top.work += work
        top.depth += depth

    @contextmanager
    def parallel(self):  # type: ignore[override]
        par_node = SPNode(kind="par")
        self._node_stack[-1].children.append(par_node)
        self._node_stack.append(par_node)
        try:
            with super().parallel() as frame:
                yield _TracingFrame(frame, self, par_node)
        finally:
            self._node_stack.pop()

    @contextmanager
    def batch(self, depth: float):  # type: ignore[override]
        node = SPNode(kind="seq", forced_depth=depth)
        self._node_stack[-1].children.append(node)
        self._node_stack.append(node)
        try:
            with super().batch(depth):
                yield
        finally:
            self._node_stack.pop()

    def reset(self) -> None:
        super().reset()
        self.trace = SPNode(kind="seq")
        self._node_stack = [self.trace]

    # ------------------------------------------------------------------
    def bounds(self, processors: int) -> Tuple[float, float]:
        """Schedule bounds of the recorded trace on p processors."""
        return schedule_bounds(self.trace, processors)


class _TracingFrame:
    """Wraps a ParallelFrame so branches open child seq nodes."""

    __slots__ = ("_frame", "_ledger", "_par_node")

    def __init__(self, frame, ledger: TraceLedger, par_node: SPNode) -> None:
        self._frame = frame
        self._ledger = ledger
        self._par_node = par_node

    @contextmanager
    def branch(self) -> Iterator[None]:
        child = SPNode(kind="seq")
        self._par_node.children.append(child)
        self._ledger._node_stack.append(child)
        try:
            with self._frame.branch():
                yield
        finally:
            self._ledger._node_stack.pop()
