"""Optional *real* execution backends for coarse-grained parallel loops.

The accounting in :mod:`repro.pram.ledger` is the primary experimental
instrument (see DESIGN.md); this module exists so examples and the
wall-clock harness can also run independent coarse-grained units (trees
in a packing, layers of a hierarchy, sweep configurations) on a real
executor.  Three backends are available, selected by the
``REPRO_EXECUTOR`` environment variable or :func:`force_executor`:

``thread`` (default)
    A lazily-created module-level :class:`ThreadPoolExecutor`, reused
    across calls.  Because CPython holds the GIL during pure-Python
    execution, wall-clock speedup is limited to whatever time the
    branches spend in numpy kernels that release the GIL — which is
    precisely why the repro's measured quantities are work and depth
    rather than wall-clock (repro band 2/5).
``process``
    A lazily-created module-level :class:`ProcessPoolExecutor` for
    coarse branches that are pure-Python bound.  Worker processes do
    not see the caller's :mod:`contextvars`, so fault plans and budget
    checkpoints are polled in the *parent* before each branch is
    dispatched — injected executor-branch faults and budget blowouts
    fire with the same per-item failure semantics as the thread
    backend.  Branch callables must be picklable; a call whose ``fn``
    cannot be pickled (lambdas, closures) transparently falls back to
    the thread backend.
``sync``
    An in-line sequential loop (deterministic debugging).  Cooperative
    timeouts need concurrency and are ignored.

Robustness: one failed branch must not destroy the whole pool.
:func:`parallel_map` supports per-item retries, per-item timeouts, and
error aggregation — with ``on_error="aggregate"`` every branch runs to
completion and the failures are raised together as one
:class:`repro.errors.BranchErrors`.  Worker threads run in a copy of the
caller's :mod:`contextvars` context, so fault plans and budgets armed in
the caller are visible inside branches.  Shared pools are reserved for
untimed calls: a call with a ``timeout`` gets a private pool, because a
timed-out branch keeps its worker occupied and must not poison the
shared pool for later callers.  A broken shared process pool (a worker
died) is evicted so the next attempt starts fresh, and any
``BaseException`` escaping a shared-pool dispatch (``KeyboardInterrupt``
included) evicts the pool on the way out — an interrupted run cannot
leak a poisoned pool into the next call.

When a :class:`repro.resilience.supervisor.Supervisor` is armed
(:func:`~repro.resilience.supervisor.supervised_scope`), every dispatch
round is routed through its health model: a backend with recent broken
pools or timeouts is skipped down the ``process → thread → sync``
degradation chain (with exponential backoff and recovery probes), and
each downgrade is recorded as a typed
:class:`~repro.results.DegradationEvent` plus ``supervisor.*`` counters.
"""

from __future__ import annotations

import contextvars
import os
import pickle
import threading
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from contextlib import contextmanager
from contextvars import ContextVar
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Literal,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

from repro.errors import BranchErrors, FaultInjected, InvalidParameterError
from repro.obs.counters import counters
from repro.resilience.faults import (
    SITE_EXECUTOR_BRANCH,
    SITE_POOL_BREAK,
    SITE_WORKER_HANG,
    poll as _poll_site,
    poll_indexed as _poll_fault,
)
from repro.resilience.supervisor import Supervisor, active_supervisor

__all__ = [
    "parallel_map",
    "executor_backend",
    "force_executor",
    "shutdown_shared_pools",
]

T = TypeVar("T")
U = TypeVar("U")

_BACKENDS = ("thread", "process", "sync")

_override: ContextVar[Optional[str]] = ContextVar("repro_executor_backend", default=None)


def executor_backend() -> str:
    """The active executor backend: ``"thread"``, ``"process"`` or
    ``"sync"``.

    Resolution order: :func:`force_executor` override, then the
    ``REPRO_EXECUTOR`` environment variable, then ``"thread"``.
    """
    forced = _override.get()
    if forced is not None:
        return forced
    backend = os.environ.get("REPRO_EXECUTOR", "thread").strip().lower() or "thread"
    if backend not in _BACKENDS:
        raise InvalidParameterError(
            f"REPRO_EXECUTOR must be one of {_BACKENDS}, got {backend!r}"
        )
    return backend


@contextmanager
def force_executor(backend: str) -> Iterator[None]:
    """Force the executor backend for the duration of the block
    (contextvar scoped, so concurrent callers are unaffected)."""
    if backend not in _BACKENDS:
        raise InvalidParameterError(
            f"executor backend must be one of {_BACKENDS}, got {backend!r}"
        )
    token = _override.set(backend)
    try:
        yield
    finally:
        _override.reset(token)


# --------------------------------------------------------------------------
# Shared pools: created lazily, keyed by (kind, workers), reused across
# parallel_map calls.  Only untimed calls use them — see module docstring.
# --------------------------------------------------------------------------

_pool_lock = threading.Lock()
_shared_pools: Dict[Tuple[str, int], Executor] = {}


def _shared_pool(kind: str, workers: int) -> Executor:
    key = (kind, workers)
    with _pool_lock:
        pool = _shared_pools.get(key)
        if pool is None:
            factory = ThreadPoolExecutor if kind == "thread" else ProcessPoolExecutor
            pool = factory(max_workers=max(workers, 1))
            _shared_pools[key] = pool
    return pool


def _evict_shared_pool(kind: str, workers: int) -> None:
    with _pool_lock:
        pool = _shared_pools.pop((kind, workers), None)
    if pool is not None:
        pool.shutdown(wait=False, cancel_futures=True)


def shutdown_shared_pools() -> None:
    """Shut down and forget every lazily-created shared pool.

    For harness teardown and end-of-run cleanup; the next
    :func:`parallel_map` call lazily recreates what it needs.
    """
    with _pool_lock:
        pools = list(_shared_pools.values())
        _shared_pools.clear()
    for pool in pools:
        pool.shutdown(wait=False, cancel_futures=True)


def _run_item(fn: Callable[[T], U], item: T, index: int) -> U:
    if _poll_fault(SITE_EXECUTOR_BRANCH, index) is not None:
        raise FaultInjected(f"injected failure in executor branch {index}")
    return fn(item)


def _drain(
    futures: dict,
    timeout: Optional[float],
    results: dict,
    failures: dict,
) -> bool:
    """Collect completed futures into ``results``/``failures``; returns
    True when a timeout fired (pending branches recorded as failures)."""
    pending = set(futures)
    timed_out = False
    while pending:
        done, pending = wait(pending, timeout=timeout, return_when=FIRST_COMPLETED)
        if not done:  # timed out with work still in flight
            # queued branches are cancelled; running ones cannot be
            # interrupted, but we stop waiting and record the timeout
            timed_out = True
            for fut in pending:
                fut.cancel()
                i = futures[fut]
                failures[i] = TimeoutError(f"branch {i} exceeded {timeout:g}s")
            break
        for fut in done:
            i = futures[fut]
            try:
                results[i] = fut.result()
            except Exception as exc:  # noqa: BLE001 - aggregated for the caller
                failures[i] = exc
    return timed_out


def _attempt_process(
    fn: Callable[[T], U],
    items: List[T],
    indices: Sequence[int],
    workers: int,
    timeout: Optional[float],
) -> Tuple[dict, dict]:
    """One process-pool pass over ``indices``.

    Worker processes cannot see the caller's contextvars, so the fault
    plan and the armed budget are polled here in the parent, once per
    branch before dispatch; a hit is recorded as that branch's failure
    (the same per-item semantics an in-branch raise has on the thread
    backend, so retries and aggregation compose identically).
    """
    from repro.errors import BudgetExceeded
    from repro.resilience.budget import checkpoint as _budget_checkpoint

    results: dict = {}
    failures: dict = {}
    dispatch: List[int] = []
    for i in indices:
        if _poll_fault(SITE_EXECUTOR_BRANCH, i) is not None:
            failures[i] = FaultInjected(f"injected failure in executor branch {i}")
            continue
        if _poll_fault(SITE_WORKER_HANG, i) is not None:
            failures[i] = TimeoutError(
                f"injected worker hang in branch {i} (heartbeat stall)"
            )
            continue
        try:
            _budget_checkpoint(f"executor.branch[{i}]")
        except BudgetExceeded as exc:
            failures[i] = exc
            continue
        dispatch.append(i)
    if not dispatch:
        return results, failures

    if _poll_site(SITE_POOL_BREAK) is not None:
        # injected pool breakage: every branch of this round dies with
        # the pool, which is evicted — the same shape a real worker
        # death has, so retry/degradation paths are exercised exactly
        _evict_shared_pool("process", workers)
        for i in dispatch:
            failures[i] = BrokenExecutor(
                "injected process pool breakage (fault site executor.pool_break)"
            )
        return results, failures

    transient = timeout is not None
    pool = (
        ProcessPoolExecutor(max_workers=max(workers, 1))
        if transient
        else _shared_pool("process", workers)
    )
    timed_out = False
    try:
        futures = {pool.submit(fn, items[i]): i for i in dispatch}
        timed_out = _drain(futures, timeout, results, failures)
    except BrokenExecutor as exc:
        for i in dispatch:
            if i not in results and i not in failures:
                failures[i] = exc
    except BaseException:
        # KeyboardInterrupt & friends: the pool may hold in-flight
        # branches; evict so the interrupted run cannot leak a poisoned
        # shared pool into the next call
        if not transient:
            _evict_shared_pool("process", workers)
        raise
    finally:
        if transient:
            # don't block shutdown on a branch we already declared timed out
            pool.shutdown(wait=not timed_out, cancel_futures=timed_out)
    if not transient and any(isinstance(e, BrokenExecutor) for e in failures.values()):
        # a dead worker poisons the whole ProcessPoolExecutor; evict so
        # the retry (or the next caller) gets a fresh pool
        _evict_shared_pool("process", workers)
    return results, failures


def _attempt(
    fn: Callable[[T], U],
    items: List[T],
    indices: Sequence[int],
    workers: int,
    timeout: Optional[float],
    backend: str,
) -> Tuple[dict, dict]:
    """One pass over ``indices``; returns ``(results, failures)`` by index."""
    if backend == "process":
        return _attempt_process(fn, items, indices, workers, timeout)

    results: dict = {}
    failures: dict = {}
    live: List[int] = []
    for i in indices:
        if _poll_fault(SITE_WORKER_HANG, i) is not None:
            failures[i] = TimeoutError(
                f"injected worker hang in branch {i} (heartbeat stall)"
            )
        else:
            live.append(i)
    ctx = contextvars.copy_context()

    def call(i: int) -> U:
        return ctx.copy().run(_run_item, fn, items[i], i)

    if backend == "sync" or (workers <= 1 and timeout is None):
        for i in live:
            try:
                results[i] = call(i)
            except Exception as exc:  # noqa: BLE001 - aggregated for the caller
                failures[i] = exc
        return results, failures

    if timeout is None:
        pool = _shared_pool("thread", workers)
        try:
            futures = {pool.submit(call, i): i for i in live}
            _drain(futures, None, results, failures)
        except BaseException:
            # KeyboardInterrupt mid-drain: branches may still be running
            # on the shared pool — evict it so the next call starts fresh
            _evict_shared_pool("thread", workers)
            raise
        return results, failures

    # timed call: private pool, because a timed-out branch keeps its
    # worker occupied and must not poison the shared pool
    pool = ThreadPoolExecutor(max_workers=max(workers, 1))
    timed_out = False
    try:
        futures = {pool.submit(call, i): i for i in live}
        timed_out = _drain(futures, timeout, results, failures)
    finally:
        pool.shutdown(wait=not timed_out, cancel_futures=timed_out)
    return results, failures


def _route(requested: str, supervisor: Optional[Supervisor], fn: Callable) -> str:
    """Resolve the backend for one dispatch round: supervisor health
    first, then the process backend's picklability requirement."""
    backend = supervisor.select(requested) if supervisor is not None else requested
    if backend == "process":
        try:
            pickle.dumps(fn)
        except Exception:  # noqa: BLE001 - lambdas/closures can't cross processes
            backend = "thread"
    return backend


def _report_health(supervisor: Supervisor, backend: str, failures: dict) -> None:
    """Classify one round's failures into backend-health signals.

    Broken pools and timeouts are substrate failures and enter backoff;
    branch-level application errors (including injected branch faults)
    say nothing about the backend and are ignored here.
    """
    if any(isinstance(e, BrokenExecutor) for e in failures.values()):
        supervisor.record_failure(backend, "broken_pool")
    elif any(isinstance(e, TimeoutError) for e in failures.values()):
        supervisor.record_failure(backend, "timeout")
    elif not failures:
        supervisor.record_success(backend)


def parallel_map(
    fn: Callable[[T], U],
    items: Sequence[T],
    max_workers: Optional[int] = None,
    *,
    retries: int = 0,
    timeout: Optional[float] = None,
    on_error: Literal["raise", "aggregate"] = "raise",
) -> List[U]:
    """Map ``fn`` over ``items`` on the active backend, preserving order.

    Parameters
    ----------
    max_workers:
        Defaults to ``os.cpu_count()`` (1 when the platform cannot
        report a count).  The thread backend falls back to a sequential
        loop for empty or single-item inputs (unless a timeout is
        requested).
    retries:
        Per-item retry count: a failed item re-runs up to this many
        extra times before counting as failed.
    timeout:
        Per-wait timeout in seconds.  A branch still running once no
        other branch has completed for ``timeout`` seconds is recorded
        as a ``TimeoutError`` (cooperative: the worker itself cannot be
        killed, but the caller stops waiting for it).  Ignored by the
        ``sync`` backend.
    on_error:
        ``"raise"`` re-raises the first failure (after retries), the
        historical behaviour.  ``"aggregate"`` runs every branch to
        completion and raises a single :class:`BranchErrors` carrying
        *all* failures — so one bad branch cannot hide the others'
        outcomes or poison the pool.

    Notes
    -----
    With a :class:`~repro.resilience.supervisor.Supervisor` armed in the
    calling context, the backend is re-resolved through its health model
    before **every** dispatch round: a round whose pool broke (or timed
    out) records a backend failure, and the retry round runs on the next
    healthy stage of the degradation chain.
    """
    if retries < 0:
        raise InvalidParameterError("retries must be >= 0")
    if timeout is not None and timeout <= 0:
        raise InvalidParameterError("timeout must be positive seconds")
    items = list(items)
    if not items:
        return []
    requested = executor_backend()
    supervisor = active_supervisor()
    backend = _route(requested, supervisor, fn)
    # explicit guard: os.cpu_count() may return None on exotic platforms
    workers = max_workers or os.cpu_count() or 1
    if backend == "thread" and len(items) == 1 and timeout is None:
        workers = 1

    reg = counters()
    if reg.enabled:
        reg.add("executor.dispatches")
        reg.add("executor.items", float(len(items)))
    results: dict = {}
    failed: dict = {}
    todo: List[int] = list(range(len(items)))
    for round_no in range(retries + 1):
        if round_no and reg.enabled:
            reg.add("executor.retries", float(len(todo)))
        got, bad = _attempt(fn, items, todo, workers, timeout, backend)
        results.update(got)
        failed = bad
        todo = sorted(bad)
        if supervisor is not None:
            _report_health(supervisor, backend, bad)
        if not todo:
            break
        if supervisor is not None:
            # the next round dispatches on whatever the health model now
            # considers the best backend at or below the requested one
            backend = _route(requested, supervisor, fn)

    if failed:
        ordered = sorted(failed.items())
        if on_error == "raise":
            raise ordered[0][1]
        raise BranchErrors(ordered)
    return [results[i] for i in range(len(items))]
