"""Optional *real* thread-pool execution of coarse-grained parallel loops.

The accounting in :mod:`repro.pram.ledger` is the primary experimental
instrument (see DESIGN.md); this module exists so examples can also run
independent coarse-grained units (trees in a packing, layers of a
hierarchy) on a real thread pool.  Because CPython holds the GIL during
pure-Python execution, wall-clock speedup from this executor is limited
to whatever time the branches spend in numpy kernels that release the
GIL — which is precisely why the repro's measured quantities are work
and depth rather than wall-clock (repro band 2/5).

Robustness: one failed branch must not destroy the whole pool.
:func:`parallel_map` supports per-item retries, per-item timeouts, and
error aggregation — with ``on_error="aggregate"`` every branch runs to
completion and the failures are raised together as one
:class:`repro.errors.BranchErrors`.  Worker threads run in a copy of the
caller's :mod:`contextvars` context, so fault plans and budgets armed in
the caller are visible inside branches.
"""

from __future__ import annotations

import contextvars
import os
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from typing import Callable, List, Literal, Optional, Sequence, Tuple, TypeVar

from repro.errors import BranchErrors, FaultInjected, InvalidParameterError
from repro.resilience.faults import SITE_EXECUTOR_BRANCH, poll_indexed as _poll_fault

__all__ = ["parallel_map"]

T = TypeVar("T")
U = TypeVar("U")


def _run_item(fn: Callable[[T], U], item: T, index: int) -> U:
    if _poll_fault(SITE_EXECUTOR_BRANCH, index) is not None:
        raise FaultInjected(f"injected failure in executor branch {index}")
    return fn(item)


def _attempt(
    fn: Callable[[T], U],
    items: List[T],
    indices: Sequence[int],
    workers: int,
    timeout: Optional[float],
) -> Tuple[dict, dict]:
    """One pass over ``indices``; returns ``(results, failures)`` by index."""
    results: dict = {}
    failures: dict = {}
    ctx = contextvars.copy_context()

    def call(i: int) -> U:
        return ctx.copy().run(_run_item, fn, items[i], i)

    if workers <= 1 and timeout is None:
        for i in indices:
            try:
                results[i] = call(i)
            except Exception as exc:  # noqa: BLE001 - aggregated for the caller
                failures[i] = exc
        return results, failures

    pool = ThreadPoolExecutor(max_workers=max(workers, 1))
    timed_out = False
    try:
        futures: dict = {pool.submit(call, i): i for i in indices}
        pending = set(futures)
        while pending:
            done, pending = wait(pending, timeout=timeout, return_when=FIRST_COMPLETED)
            if not done:  # timed out with work still in flight
                # queued branches are cancelled; running ones cannot be
                # interrupted, but we stop waiting and record the timeout
                timed_out = True
                for fut in pending:
                    fut.cancel()
                    i = futures[fut]
                    failures[i] = TimeoutError(f"branch {i} exceeded {timeout:g}s")
                break
            for fut in done:
                i = futures[fut]
                try:
                    results[i] = fut.result()
                except Exception as exc:  # noqa: BLE001 - aggregated
                    failures[i] = exc
    finally:
        # don't block shutdown on a branch we already declared timed out
        pool.shutdown(wait=not timed_out, cancel_futures=timed_out)
    return results, failures


def parallel_map(
    fn: Callable[[T], U],
    items: Sequence[T],
    max_workers: Optional[int] = None,
    *,
    retries: int = 0,
    timeout: Optional[float] = None,
    on_error: Literal["raise", "aggregate"] = "raise",
) -> List[U]:
    """Map ``fn`` over ``items`` on a thread pool, preserving order.

    Parameters
    ----------
    max_workers:
        Defaults to ``os.cpu_count()``.  Falls back to a sequential loop
        for empty or single-item inputs (unless a timeout is requested).
    retries:
        Per-item retry count: a failed item re-runs up to this many
        extra times before counting as failed.
    timeout:
        Per-wait timeout in seconds.  A branch still running once no
        other branch has completed for ``timeout`` seconds is recorded
        as a ``TimeoutError`` (cooperative: the thread itself cannot be
        killed, but the caller stops waiting for it).
    on_error:
        ``"raise"`` re-raises the first failure (after retries), the
        historical behaviour.  ``"aggregate"`` runs every branch to
        completion and raises a single :class:`BranchErrors` carrying
        *all* failures — so one bad branch cannot hide the others'
        outcomes or poison the pool.
    """
    if retries < 0:
        raise InvalidParameterError("retries must be >= 0")
    if timeout is not None and timeout <= 0:
        raise InvalidParameterError("timeout must be positive seconds")
    items = list(items)
    if not items:
        return []
    workers = max_workers or os.cpu_count() or 1
    if len(items) == 1 and timeout is None:
        workers = 1

    results: dict = {}
    failed: dict = {}
    todo: List[int] = list(range(len(items)))
    for _ in range(retries + 1):
        got, bad = _attempt(fn, items, todo, workers, timeout)
        results.update(got)
        failed = bad
        todo = sorted(bad)
        if not todo:
            break

    if failed:
        ordered = sorted(failed.items())
        if on_error == "raise":
            raise ordered[0][1]
        raise BranchErrors(ordered)
    return [results[i] for i in range(len(items))]
