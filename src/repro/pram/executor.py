"""Optional *real* execution backends for coarse-grained parallel loops.

The accounting in :mod:`repro.pram.ledger` is the primary experimental
instrument (see DESIGN.md); this module exists so examples and the
wall-clock harness can also run independent coarse-grained units (trees
in a packing, layers of a hierarchy, sweep configurations) on a real
executor.  Four backends are available, selected by the
``REPRO_EXECUTOR`` environment variable or :func:`force_executor`:

``thread`` (default)
    A lazily-created module-level :class:`ThreadPoolExecutor`, reused
    across calls.  Because CPython holds the GIL during pure-Python
    execution, wall-clock speedup is limited to whatever time the
    branches spend in numpy kernels that release the GIL — which is
    precisely why the repro's measured quantities are work and depth
    rather than wall-clock (repro band 2/5).
``process``
    A lazily-created module-level :class:`ProcessPoolExecutor` for
    coarse branches that are pure-Python bound.  Worker processes do
    not see the caller's :mod:`contextvars`, so fault plans and budget
    checkpoints are polled in the *parent* before each branch is
    dispatched — injected executor-branch faults and budget blowouts
    fire with the same per-item failure semantics as the thread
    backend.  Branch callables must be picklable; a call whose ``fn``
    cannot be pickled (lambdas, closures) transparently falls back to
    the thread backend.  An immutable broadcast ``context`` is pickled
    **once** and installed into each worker by a pool initializer, not
    re-pickled per item (the root cause of the pre-shm process-backend
    regression).
``shm``
    The zero-copy shared-memory backend: the broadcast ``context`` is
    published once into a :mod:`repro.shm` segment (large ndarrays as
    raw blocks, everything else as a small pickle) and each task
    carries only a :class:`~repro.shm.codec.ShmRef` descriptor plus the
    item.  Persistent pool workers attach the segment once, rebuild
    read-only zero-copy views, and serve every subsequent item from
    their attach cache — no graph bytes ever cross the pipe.  Published
    segments are cached by fingerprint across calls (bounded LRU) and
    all released by :func:`shutdown_shared_pools`.  Requires a working
    POSIX shared-memory mount; otherwise routes to ``process``.
``sync``
    An in-line sequential loop (deterministic debugging).  Cooperative
    timeouts need concurrency and are ignored.

Robustness: one failed branch must not destroy the whole pool.
:func:`parallel_map` supports per-item retries, per-item timeouts, and
error aggregation — with ``on_error="aggregate"`` every branch runs to
completion and the failures are raised together as one
:class:`repro.errors.BranchErrors`.  Worker threads run in a copy of the
caller's :mod:`contextvars` context, so fault plans and budgets armed in
the caller are visible inside branches.  Shared pools are reserved for
untimed calls: a call with a ``timeout`` gets a private pool, because a
timed-out branch keeps its worker occupied and must not poison the
shared pool for later callers.  A broken shared process pool (a worker
died) is evicted so the next attempt starts fresh, and any
``BaseException`` escaping a shared-pool dispatch (``KeyboardInterrupt``
included) evicts the pool on the way out — an interrupted run cannot
leak a poisoned pool into the next call.

On the shm backend a lost segment
(:class:`~repro.shm.arena.ShmSegmentLost`, also injectable via the
``shm.segment_lost`` fault site) fails the round's branches, drops the
cached publication so a retry republishes fresh, and — being a
``BrokenExecutor`` — registers as a substrate failure that degrades
``shm → process`` under a supervisor.

When a :class:`repro.resilience.supervisor.Supervisor` is armed
(:func:`~repro.resilience.supervisor.supervised_scope`), every dispatch
round is routed through its health model: a backend with recent broken
pools or timeouts is skipped down the ``shm → process → thread → sync``
degradation chain (with exponential backoff and recovery probes), and
each downgrade is recorded as a typed
:class:`~repro.results.DegradationEvent` plus ``supervisor.*`` counters.

Counters: ``executor.dispatches`` / ``executor.items`` /
``executor.retries`` as before, plus ``executor.dispatch_overhead_s``
(parent-side time spent preparing + submitting a process/shm round:
context pickling or publication and task submission, i.e. everything
that is overhead rather than branch work) and ``shm.worker_attaches``
(fresh segment attaches reported back by shm workers).
"""

from __future__ import annotations

import contextvars
import hashlib
import os
import pickle
import threading
import time
from collections import OrderedDict
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    Executor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from contextlib import contextmanager
from contextvars import ContextVar
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Literal,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

from repro.errors import BranchErrors, FaultInjected, InvalidParameterError
from repro.obs.counters import counters
from repro.resilience.faults import (
    SITE_EXECUTOR_BRANCH,
    SITE_POOL_BREAK,
    SITE_SHM_SEGMENT_LOST,
    SITE_WORKER_HANG,
    poll as _poll_site,
    poll_indexed as _poll_fault,
)
from repro.resilience.supervisor import Supervisor, active_supervisor

__all__ = [
    "parallel_map",
    "executor_backend",
    "force_executor",
    "prewarm_executor",
    "shutdown_shared_pools",
]

T = TypeVar("T")
U = TypeVar("U")

_BACKENDS = ("thread", "process", "shm", "sync")

_override: ContextVar[Optional[str]] = ContextVar("repro_executor_backend", default=None)

#: "no broadcast context" sentinel — ``None`` is a legitimate context
_NO_CONTEXT = object()


def executor_backend() -> str:
    """The active executor backend: ``"thread"``, ``"process"``,
    ``"shm"`` or ``"sync"``.

    Resolution order: :func:`force_executor` override, then the
    ``REPRO_EXECUTOR`` environment variable, then ``"thread"``.
    """
    forced = _override.get()
    if forced is not None:
        return forced
    backend = os.environ.get("REPRO_EXECUTOR", "thread").strip().lower() or "thread"
    if backend not in _BACKENDS:
        raise InvalidParameterError(
            f"REPRO_EXECUTOR must be one of {_BACKENDS}, got {backend!r}"
        )
    return backend


@contextmanager
def force_executor(backend: str) -> Iterator[None]:
    """Force the executor backend for the duration of the block
    (contextvar scoped, so concurrent callers are unaffected)."""
    if backend not in _BACKENDS:
        raise InvalidParameterError(
            f"executor backend must be one of {_BACKENDS}, got {backend!r}"
        )
    token = _override.set(backend)
    try:
        yield
    finally:
        _override.reset(token)


def _shm_ready() -> bool:
    try:
        from repro.shm.arena import shm_available
    except Exception:  # pragma: no cover - repro.shm must always import
        return False
    return shm_available()


# --------------------------------------------------------------------------
# Shared pools: created lazily, keyed by (kind, workers, tag), reused
# across parallel_map calls.  Only untimed calls use them — see module
# docstring.  ``tag`` distinguishes context-bound process pools (whose
# workers were initialized with one pickled broadcast context) from the
# plain persistent pool (tag ""), which the shm backend and contextless
# calls share.
# --------------------------------------------------------------------------

_pool_lock = threading.Lock()
_shared_pools: Dict[Tuple[str, int, str], Executor] = {}


def _ensure_tracker() -> None:
    """Start the multiprocessing resource tracker in the parent *before*
    forking pool workers.

    A worker forked while no tracker is running spawns its own on first
    shared-memory attach; that private tracker believes it owns the
    parent's segments and will unlink them when the worker dies (and
    warn about "leaks" at exit).  Forking after ``ensure_running`` makes
    every worker inherit the parent's tracker, whose registry is a set —
    worker attach registrations are no-ops against the creator's entry.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.ensure_running()
    except Exception:  # noqa: BLE001 - platforms without a tracker
        pass


def _shared_pool(
    kind: str,
    workers: int,
    tag: str = "",
    initializer: Optional[Callable[..., None]] = None,
    initargs: Tuple = (),
) -> Executor:
    key = (kind, workers, tag)
    stale: List[Executor] = []
    with _pool_lock:
        pool = _shared_pools.get(key)
        if pool is None:
            if tag:
                # a new context supersedes older context-bound pools of
                # the same shape; drop them so pools don't accumulate
                for k in [
                    k
                    for k in _shared_pools
                    if k[0] == kind and k[1] == workers and k[2] and k[2] != tag
                ]:
                    stale.append(_shared_pools.pop(k))
            if kind == "thread":
                pool = ThreadPoolExecutor(max_workers=max(workers, 1))
            else:
                _ensure_tracker()
                pool = ProcessPoolExecutor(
                    max_workers=max(workers, 1),
                    initializer=initializer,
                    initargs=initargs,
                )
            _shared_pools[key] = pool
    for old in stale:
        old.shutdown(wait=False, cancel_futures=True)
    return pool


def _evict_shared_pool(kind: str, workers: int, tag: str = "") -> None:
    with _pool_lock:
        pool = _shared_pools.pop((kind, workers, tag), None)
    if pool is not None:
        pool.shutdown(wait=False, cancel_futures=True)


def shutdown_shared_pools() -> None:
    """Shut down and forget every lazily-created shared pool, and
    release every shm context publication held by the executor.

    For harness teardown and end-of-run cleanup; the next
    :func:`parallel_map` call lazily recreates what it needs.
    """
    with _pool_lock:
        pools = list(_shared_pools.values())
        _shared_pools.clear()
    for pool in pools:
        pool.shutdown(wait=False, cancel_futures=True)
    with _shm_ref_lock:
        refs = list(_shm_refs.values())
        _shm_refs.clear()
    if refs:
        from repro.shm.codec import release_object

        for ref in refs:
            release_object(ref)


def prewarm_executor(
    backend: Optional[str] = None, max_workers: Optional[int] = None
) -> str:
    """Spin up the shared pool for ``backend`` before any timed region.

    Process workers are forked on first use; without prewarming, the
    first timed dispatch pays pool construction and worker start-up and
    the measurement blames the backend for one-time costs.  Submits one
    no-op per worker and waits, so worker start-up has actually
    happened (not merely been scheduled) on return.  Returns the
    backend that was warmed (``sync`` warms nothing).
    """
    backend = backend or executor_backend()
    if backend not in _BACKENDS:
        raise InvalidParameterError(
            f"executor backend must be one of {_BACKENDS}, got {backend!r}"
        )
    workers = max_workers or os.cpu_count() or 1
    if backend in ("process", "shm"):
        pool = _shared_pool("process", workers)
        futures = [pool.submit(_noop) for _ in range(max(workers, 1))]
        for fut in futures:
            fut.result()
    elif backend == "thread":
        _shared_pool("thread", workers)
    return backend


def _noop() -> None:
    return None


# --------------------------------------------------------------------------
# Broadcast-context plumbing.
#
# process backend: the context is pickled once per round and installed
# into every worker by the pool initializer (workers of a context-bound
# pool unpickle it exactly once, at start-up).
#
# shm backend: the context is published into a shared-memory segment and
# each task carries only the ShmRef; workers attach + decode once, then
# hit their per-process cache.
# --------------------------------------------------------------------------

_WORKER_CONTEXT: Any = _NO_CONTEXT


def _install_worker_context(payload: bytes) -> None:
    global _WORKER_CONTEXT
    _WORKER_CONTEXT = pickle.loads(payload)


def _invoke_installed(fn: Callable[[Any, T], U], item: T) -> U:
    if _WORKER_CONTEXT is _NO_CONTEXT:  # pragma: no cover - initializer contract
        raise RuntimeError("worker context was never installed")
    return fn(_WORKER_CONTEXT, item)


def _shm_invoke(fn: Callable[[Any, T], U], ref, item: T) -> Tuple[bool, U]:
    from repro.shm.codec import fetch_object

    context, fresh = fetch_object(ref)
    return fresh, fn(context, item)


#: bounded LRU of live shm publications (fingerprint -> ShmRef); each
#: entry holds one arena refcount, dropped on eviction or shutdown
_shm_ref_lock = threading.Lock()
_shm_refs: "OrderedDict[str, Any]" = OrderedDict()
_SHM_REF_CAP = 8


def _acquire_shm_ref(context: Any, context_key: Optional[str]):
    """Publish ``context`` (or reuse the cached publication) and return
    its :class:`~repro.shm.codec.ShmRef`.  The cache owns one reference
    per key; callers never release."""
    from repro.shm.codec import publish_object, release_object

    with _shm_ref_lock:
        if context_key is not None and context_key in _shm_refs:
            _shm_refs.move_to_end(context_key)
            return _shm_refs[context_key]
    ref = publish_object(context_key, context)
    evicted = []
    extra = None
    with _shm_ref_lock:
        cached = _shm_refs.get(ref.key)
        if cached is not None:
            # raced with another thread (or keyless digest collision):
            # keep the cache's reference, return the extra one we hold
            _shm_refs.move_to_end(ref.key)
            extra = ref
            ref = cached
        else:
            _shm_refs[ref.key] = ref
            while len(_shm_refs) > _SHM_REF_CAP:
                _, old = _shm_refs.popitem(last=False)
                evicted.append(old)
    if extra is not None:
        release_object(extra)
    for old in evicted:
        release_object(old)
    return ref


def _discard_shm_ref(key: str) -> None:
    """Drop ``key``'s publication entirely (segment unlinked now): the
    recovery path after a lost segment, so a retry republishes instead
    of handing workers a dead name."""
    from repro.shm.arena import arena

    with _shm_ref_lock:
        _shm_refs.pop(key, None)
    arena().discard(key)


def _run_item(fn: Callable[[T], U], item: T, index: int) -> U:
    if _poll_fault(SITE_EXECUTOR_BRANCH, index) is not None:
        raise FaultInjected(f"injected failure in executor branch {index}")
    return fn(item)


def _run_item_ctx(fn: Callable[[Any, T], U], context: Any, item: T, index: int) -> U:
    if _poll_fault(SITE_EXECUTOR_BRANCH, index) is not None:
        raise FaultInjected(f"injected failure in executor branch {index}")
    return fn(context, item)


def _drain(
    futures: dict,
    timeout: Optional[float],
    results: dict,
    failures: dict,
) -> bool:
    """Collect completed futures into ``results``/``failures``; returns
    True when a timeout fired (pending branches recorded as failures)."""
    pending = set(futures)
    timed_out = False
    while pending:
        done, pending = wait(pending, timeout=timeout, return_when=FIRST_COMPLETED)
        if not done:  # timed out with work still in flight
            # queued branches are cancelled; running ones cannot be
            # interrupted, but we stop waiting and record the timeout
            timed_out = True
            for fut in pending:
                fut.cancel()
                i = futures[fut]
                failures[i] = TimeoutError(f"branch {i} exceeded {timeout:g}s")
            break
        for fut in done:
            i = futures[fut]
            try:
                results[i] = fut.result()
            except Exception as exc:  # noqa: BLE001 - aggregated for the caller
                failures[i] = exc
    return timed_out


def _parent_side_polls(indices: Sequence[int], failures: dict) -> List[int]:
    """Shared parent-side pre-dispatch polls for process-family
    backends: branch faults, injected hangs, and budget checkpoints are
    applied here because workers cannot see the caller's contextvars."""
    from repro.errors import BudgetExceeded
    from repro.resilience.budget import checkpoint as _budget_checkpoint

    dispatch: List[int] = []
    for i in indices:
        if _poll_fault(SITE_EXECUTOR_BRANCH, i) is not None:
            failures[i] = FaultInjected(f"injected failure in executor branch {i}")
            continue
        if _poll_fault(SITE_WORKER_HANG, i) is not None:
            failures[i] = TimeoutError(
                f"injected worker hang in branch {i} (heartbeat stall)"
            )
            continue
        try:
            _budget_checkpoint(f"executor.branch[{i}]")
        except BudgetExceeded as exc:
            failures[i] = exc
            continue
        dispatch.append(i)
    return dispatch


def _attempt_process(
    fn: Callable[..., U],
    items: List[T],
    indices: Sequence[int],
    workers: int,
    timeout: Optional[float],
    context: Any,
    context_key: Optional[str],
) -> Tuple[dict, dict]:
    """One process-pool pass over ``indices``.

    Worker processes cannot see the caller's contextvars, so the fault
    plan and the armed budget are polled here in the parent, once per
    branch before dispatch; a hit is recorded as that branch's failure
    (the same per-item semantics an in-branch raise has on the thread
    backend, so retries and aggregation compose identically).

    A broadcast ``context`` is pickled once and installed by the pool
    initializer of a context-bound pool (keyed by the payload digest),
    so per-item tasks carry only ``(fn, item)``.
    """
    results: dict = {}
    failures: dict = {}
    dispatch = _parent_side_polls(indices, failures)
    if not dispatch:
        return results, failures

    t0 = time.perf_counter()
    tag = ""
    initializer = None
    initargs: Tuple = ()
    submit_fn: Callable = fn
    pack = lambda i: (items[i],)  # noqa: E731 - tiny dispatch shim
    if context is not _NO_CONTEXT:
        try:
            payload = pickle.dumps(context, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as exc:  # noqa: BLE001 - unpicklable context
            for i in dispatch:
                failures[i] = exc
            return results, failures
        tag = context_key or hashlib.sha256(payload).hexdigest()[:24]
        initializer = _install_worker_context
        initargs = (payload,)
        submit_fn = _invoke_installed
        pack = lambda i: (fn, items[i])  # noqa: E731

    if _poll_site(SITE_POOL_BREAK) is not None:
        # injected pool breakage: every branch of this round dies with
        # the pool, which is evicted — the same shape a real worker
        # death has, so retry/degradation paths are exercised exactly
        _evict_shared_pool("process", workers, tag)
        for i in dispatch:
            failures[i] = BrokenExecutor(
                "injected process pool breakage (fault site executor.pool_break)"
            )
        return results, failures

    transient = timeout is not None
    if transient:
        _ensure_tracker()
    pool = (
        ProcessPoolExecutor(
            max_workers=max(workers, 1), initializer=initializer, initargs=initargs
        )
        if transient
        else _shared_pool("process", workers, tag, initializer, initargs)
    )
    timed_out = False
    reg = counters()
    try:
        futures = {pool.submit(submit_fn, *pack(i)): i for i in dispatch}
        if reg.enabled:
            reg.add("executor.dispatch_overhead_s", time.perf_counter() - t0)
        timed_out = _drain(futures, timeout, results, failures)
    except BrokenExecutor as exc:
        for i in dispatch:
            if i not in results and i not in failures:
                failures[i] = exc
    except BaseException:
        # KeyboardInterrupt & friends: the pool may hold in-flight
        # branches; evict so the interrupted run cannot leak a poisoned
        # shared pool into the next call
        if not transient:
            _evict_shared_pool("process", workers, tag)
        raise
    finally:
        if transient:
            # don't block shutdown on a branch we already declared timed out
            pool.shutdown(wait=not timed_out, cancel_futures=timed_out)
    if not transient and any(isinstance(e, BrokenExecutor) for e in failures.values()):
        # a dead worker poisons the whole ProcessPoolExecutor; evict so
        # the retry (or the next caller) gets a fresh pool
        _evict_shared_pool("process", workers, tag)
    return results, failures


def _attempt_shm(
    fn: Callable[..., U],
    items: List[T],
    indices: Sequence[int],
    workers: int,
    timeout: Optional[float],
    context: Any,
    context_key: Optional[str],
) -> Tuple[dict, dict]:
    """One zero-copy pass: publish (or reuse) the context segment, send
    only ``(fn, ref, item)`` per task, and let persistent workers serve
    from their attach cache.

    Failure shapes: a lost segment (injected via ``shm.segment_lost``
    or raised by a worker whose attach found the name gone) fails the
    round's branches with :class:`~repro.shm.arena.ShmSegmentLost` and
    drops the cached publication so the retry republishes — the pool
    itself is healthy and is *not* evicted.  Any other
    ``BrokenExecutor`` means a dead worker and evicts the pool exactly
    like the process backend.
    """
    from repro.shm.arena import ShmSegmentLost

    results: dict = {}
    failures: dict = {}
    dispatch = _parent_side_polls(indices, failures)
    if not dispatch:
        return results, failures

    if _poll_site(SITE_POOL_BREAK) is not None:
        _evict_shared_pool("process", workers)
        for i in dispatch:
            failures[i] = BrokenExecutor(
                "injected process pool breakage (fault site executor.pool_break)"
            )
        return results, failures

    t0 = time.perf_counter()
    ref = _acquire_shm_ref(context, context_key)

    if _poll_site(SITE_SHM_SEGMENT_LOST) is not None:
        # genuinely unlink the segment: the round dies the way it would
        # if the publication vanished between dispatch and attach, and
        # the retry must republish under a fresh segment name
        _discard_shm_ref(ref.key)
        for i in dispatch:
            failures[i] = ShmSegmentLost(
                f"injected loss of shared-memory segment {ref.segment!r} "
                "(fault site shm.segment_lost)"
            )
        return results, failures

    transient = timeout is not None
    if transient:
        _ensure_tracker()
    pool = (
        ProcessPoolExecutor(max_workers=max(workers, 1))
        if transient
        else _shared_pool("process", workers)
    )
    timed_out = False
    reg = counters()
    raw: dict = {}
    try:
        futures = {pool.submit(_shm_invoke, fn, ref, items[i]): i for i in dispatch}
        if reg.enabled:
            reg.add("executor.dispatch_overhead_s", time.perf_counter() - t0)
        timed_out = _drain(futures, timeout, raw, failures)
    except BrokenExecutor as exc:
        for i in dispatch:
            if i not in raw and i not in failures:
                failures[i] = exc
    except BaseException:
        if not transient:
            _evict_shared_pool("process", workers)
        raise
    finally:
        if transient:
            pool.shutdown(wait=not timed_out, cancel_futures=timed_out)

    attaches = 0
    for i, (fresh, value) in raw.items():
        results[i] = value
        if fresh:
            attaches += 1
    if attaches and reg.enabled:
        reg.add("shm.worker_attaches", float(attaches))

    lost = any(isinstance(e, ShmSegmentLost) for e in failures.values())
    if lost:
        _discard_shm_ref(ref.key)
    if not transient and any(
        isinstance(e, BrokenExecutor) and not isinstance(e, ShmSegmentLost)
        for e in failures.values()
    ):
        _evict_shared_pool("process", workers)
    return results, failures


def _attempt(
    fn: Callable[..., U],
    items: List[T],
    indices: Sequence[int],
    workers: int,
    timeout: Optional[float],
    backend: str,
    context: Any,
    context_key: Optional[str],
) -> Tuple[dict, dict]:
    """One pass over ``indices``; returns ``(results, failures)`` by index."""
    if backend == "shm" and context is not _NO_CONTEXT:
        return _attempt_shm(fn, items, indices, workers, timeout, context, context_key)
    if backend in ("process", "shm"):
        # shm without a broadcast context has nothing to share — the
        # plain persistent process pool is the same thing
        return _attempt_process(
            fn, items, indices, workers, timeout, context, context_key
        )

    results: dict = {}
    failures: dict = {}
    live: List[int] = []
    for i in indices:
        if _poll_fault(SITE_WORKER_HANG, i) is not None:
            failures[i] = TimeoutError(
                f"injected worker hang in branch {i} (heartbeat stall)"
            )
        else:
            live.append(i)
    ctx = contextvars.copy_context()

    if context is _NO_CONTEXT:

        def call(i: int) -> U:
            return ctx.copy().run(_run_item, fn, items[i], i)

    else:

        def call(i: int) -> U:
            return ctx.copy().run(_run_item_ctx, fn, context, items[i], i)

    if backend == "sync" or (workers <= 1 and timeout is None):
        for i in live:
            try:
                results[i] = call(i)
            except Exception as exc:  # noqa: BLE001 - aggregated for the caller
                failures[i] = exc
        return results, failures

    if timeout is None:
        pool = _shared_pool("thread", workers)
        try:
            futures = {pool.submit(call, i): i for i in live}
            _drain(futures, None, results, failures)
        except BaseException:
            # KeyboardInterrupt mid-drain: branches may still be running
            # on the shared pool — evict it so the next call starts fresh
            _evict_shared_pool("thread", workers)
            raise
        return results, failures

    # timed call: private pool, because a timed-out branch keeps its
    # worker occupied and must not poison the shared pool
    pool = ThreadPoolExecutor(max_workers=max(workers, 1))
    timed_out = False
    try:
        futures = {pool.submit(call, i): i for i in live}
        timed_out = _drain(futures, timeout, results, failures)
    finally:
        pool.shutdown(wait=not timed_out, cancel_futures=timed_out)
    return results, failures


def _route(requested: str, supervisor: Optional[Supervisor], fn: Callable) -> str:
    """Resolve the backend for one dispatch round: supervisor health
    first, then capability requirements (shared memory actually
    mounted; ``fn`` picklable for the process-family backends)."""
    backend = supervisor.select(requested) if supervisor is not None else requested
    if backend == "shm" and not _shm_ready():
        backend = "process"
    if backend in ("process", "shm"):
        try:
            pickle.dumps(fn)
        except Exception:  # noqa: BLE001 - lambdas/closures can't cross processes
            backend = "thread"
    return backend


def _report_health(supervisor: Supervisor, backend: str, failures: dict) -> None:
    """Classify one round's failures into backend-health signals.

    Broken pools, lost segments, and timeouts are substrate failures and
    enter backoff; branch-level application errors (including injected
    branch faults) say nothing about the backend and are ignored here.
    """
    if any(isinstance(e, BrokenExecutor) for e in failures.values()):
        supervisor.record_failure(backend, "broken_pool")
    elif any(isinstance(e, TimeoutError) for e in failures.values()):
        supervisor.record_failure(backend, "timeout")
    elif not failures:
        supervisor.record_success(backend)


def parallel_map(
    fn: Callable[..., U],
    items: Sequence[T],
    max_workers: Optional[int] = None,
    *,
    retries: int = 0,
    timeout: Optional[float] = None,
    on_error: Literal["raise", "aggregate"] = "raise",
    context: Any = _NO_CONTEXT,
    context_key: Optional[str] = None,
) -> List[U]:
    """Map ``fn`` over ``items`` on the active backend, preserving order.

    Parameters
    ----------
    max_workers:
        Defaults to ``os.cpu_count()`` (1 when the platform cannot
        report a count).  The thread backend falls back to a sequential
        loop for empty or single-item inputs (unless a timeout is
        requested).
    retries:
        Per-item retry count: a failed item re-runs up to this many
        extra times before counting as failed.
    timeout:
        Per-wait timeout in seconds.  A branch still running once no
        other branch has completed for ``timeout`` seconds is recorded
        as a ``TimeoutError`` (cooperative: the worker itself cannot be
        killed, but the caller stops waiting for it).  Ignored by the
        ``sync`` backend.
    on_error:
        ``"raise"`` re-raises the first failure (after retries), the
        historical behaviour.  ``"aggregate"`` runs every branch to
        completion and raises a single :class:`BranchErrors` carrying
        *all* failures — so one bad branch cannot hide the others'
        outcomes or poison the pool.
    context:
        Optional immutable broadcast argument.  When provided, ``fn``
        is called as ``fn(context, item)`` and the context crosses the
        pool boundary **once per round**, not once per item: pickled
        into the worker initializer on the process backend, published
        as a zero-copy shared-memory segment on the shm backend, passed
        by reference on thread/sync.  Must not be mutated by branches.
    context_key:
        Stable fingerprint of ``context`` (e.g. the engine's artifact
        fingerprint).  Lets the shm backend reuse a live publication
        and the process backend reuse a context-bound pool across
        ``parallel_map`` calls without hashing the payload; optional
        (a content digest is computed when omitted).

    Notes
    -----
    With a :class:`~repro.resilience.supervisor.Supervisor` armed in the
    calling context, the backend is re-resolved through its health model
    before **every** dispatch round: a round whose pool broke (or timed
    out, or lost its shared-memory segment) records a backend failure,
    and the retry round runs on the next healthy stage of the
    degradation chain.
    """
    if retries < 0:
        raise InvalidParameterError("retries must be >= 0")
    if timeout is not None and timeout <= 0:
        raise InvalidParameterError("timeout must be positive seconds")
    items = list(items)
    if not items:
        return []
    requested = executor_backend()
    supervisor = active_supervisor()
    backend = _route(requested, supervisor, fn)
    # explicit guard: os.cpu_count() may return None on exotic platforms
    workers = max_workers or os.cpu_count() or 1
    if backend == "thread" and len(items) == 1 and timeout is None:
        workers = 1

    reg = counters()
    if reg.enabled:
        reg.add("executor.dispatches")
        reg.add("executor.items", float(len(items)))
    results: dict = {}
    failed: dict = {}
    todo: List[int] = list(range(len(items)))
    for round_no in range(retries + 1):
        if round_no and reg.enabled:
            reg.add("executor.retries", float(len(todo)))
        got, bad = _attempt(
            fn, items, todo, workers, timeout, backend, context, context_key
        )
        results.update(got)
        failed = bad
        todo = sorted(bad)
        if supervisor is not None:
            _report_health(supervisor, backend, bad)
        if not todo:
            break
        if supervisor is not None:
            # the next round dispatches on whatever the health model now
            # considers the best backend at or below the requested one
            backend = _route(requested, supervisor, fn)

    if failed:
        ordered = sorted(failed.items())
        if on_error == "raise":
            raise ordered[0][1]
        raise BranchErrors(ordered)
    return [results[i] for i in range(len(items))]
