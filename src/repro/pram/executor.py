"""Optional *real* thread-pool execution of coarse-grained parallel loops.

The accounting in :mod:`repro.pram.ledger` is the primary experimental
instrument (see DESIGN.md); this module exists so examples can also run
independent coarse-grained units (trees in a packing, layers of a
hierarchy) on a real thread pool.  Because CPython holds the GIL during
pure-Python execution, wall-clock speedup from this executor is limited
to whatever time the branches spend in numpy kernels that release the
GIL — which is precisely why the repro's measured quantities are work
and depth rather than wall-clock (repro band 2/5).
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence, TypeVar

__all__ = ["parallel_map"]

T = TypeVar("T")
U = TypeVar("U")


def parallel_map(
    fn: Callable[[T], U],
    items: Sequence[T],
    max_workers: Optional[int] = None,
) -> List[U]:
    """Map ``fn`` over ``items`` on a thread pool, preserving order.

    ``max_workers`` defaults to ``os.cpu_count()``.  Falls back to a
    sequential loop for empty or single-item inputs.
    """
    items = list(items)
    if len(items) <= 1:
        return [fn(x) for x in items]
    workers = max_workers or os.cpu_count() or 1
    if workers <= 1:
        return [fn(x) for x in items]
    with ThreadPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(fn, items))
