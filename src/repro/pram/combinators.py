"""Parallel combinators over the work-depth ledger.

These are the verbs the algorithm layers speak: ``pmap`` (parallel for),
``preduce`` (balanced tree reduction), ``pscan`` (Blelloch prefix sums),
``pfilter`` (scan + compress).  Each combinator both *computes* its result
(sequentially, on this machine) and *charges* the work/depth a CRCW PRAM
would spend on it.

Coarse-grained collections (trees in a packing, paths in a decomposition,
layers of a hierarchy) use :func:`pmap`, which forks a real ledger branch
per item so that heterogeneous branch costs are maxed correctly.  Fine
grained bulk operations over numpy arrays use the ``*_charge`` helpers
with their textbook PRAM cost (documented per call site).
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional, Sequence, TypeVar

import numpy as np

from repro.pram.ledger import Ledger, NULL_LEDGER
from repro.resilience.budget import checkpoint as _checkpoint

__all__ = [
    "pmap",
    "preduce",
    "pscan_exclusive",
    "pfilter",
    "bulk_charge",
    "log2ceil",
]

T = TypeVar("T")
U = TypeVar("U")


def log2ceil(n: float) -> int:
    """``ceil(log2(n))`` with the conventions ``log2ceil(x<=1) == 0``
    used throughout the cost charges."""
    if n <= 1:
        return 0
    return int(math.ceil(math.log2(n)))


def pmap(
    fn: Callable[[T], U],
    items: Sequence[T],
    ledger: Ledger = NULL_LEDGER,
    spawn_depth: float = 0.0,
) -> List[U]:
    """Apply ``fn`` to every item in a logically-parallel loop.

    Each item runs in its own ledger branch: work sums over items, depth
    is the max over items, plus ``spawn_depth`` for the fork/join overhead
    (O(1) in a work-depth analysis; callers that model spawn trees pass
    ``log2ceil(len(items))``).
    """
    out: List[U] = []
    if not items:
        return out
    with ledger.parallel() as par:
        for item in items:
            _checkpoint("pmap")  # cooperative cancellation; charges nothing
            with par.branch():
                out.append(fn(item))
    if spawn_depth:
        ledger.charge(work=0.0, depth=spawn_depth)
    return out


def preduce(
    op: Callable[[U, U], U],
    values: Sequence[U],
    unit: U,
    ledger: Ledger = NULL_LEDGER,
) -> U:
    """Balanced-tree reduction.

    Charges the PRAM cost of a tree reduce: work ``n - 1`` combine
    operations, depth ``ceil(log2 n)``.  The combines are *actually*
    performed in tree order, so non-associative floating point effects
    match what a parallel machine would produce.
    """
    vals = list(values)
    n = len(vals)
    if n == 0:
        return unit
    rounds = 0
    while len(vals) > 1:
        _checkpoint("preduce")
        nxt: List[U] = []
        for i in range(0, len(vals) - 1, 2):
            nxt.append(op(vals[i], vals[i + 1]))
        if len(vals) % 2:
            nxt.append(vals[-1])
        vals = nxt
        rounds += 1
    ledger.charge(work=max(n - 1, 0), depth=rounds)
    return vals[0]


def pscan_exclusive(
    values: np.ndarray,
    ledger: Ledger = NULL_LEDGER,
) -> np.ndarray:
    """Exclusive prefix sum (Blelloch up-sweep/down-sweep).

    Computed with numpy for speed; charged at the PRAM cost of the
    two-sweep algorithm: work ``2n``, depth ``2 ceil(log2 n)``.
    """
    values = np.asarray(values)
    n = int(values.shape[0])
    out = np.zeros_like(values)
    if n:
        np.cumsum(values[:-1], out=out[1:])
    ledger.charge(work=2 * n, depth=2 * log2ceil(n))
    return out


def pfilter(
    mask: np.ndarray,
    ledger: Ledger = NULL_LEDGER,
) -> np.ndarray:
    """Return the indices where ``mask`` is true (parallel compaction).

    PRAM cost: one scan over ``n`` flags plus a scatter — work ``O(n)``
    (charged ``3n``), depth ``O(log n)``.
    """
    mask = np.asarray(mask, dtype=bool)
    n = int(mask.shape[0])
    idx = np.flatnonzero(mask)
    ledger.charge(work=3 * n, depth=2 * log2ceil(n) + 1)
    return idx


def bulk_charge(
    ledger: Ledger,
    n: int,
    per_item_work: float = 1.0,
    depth: Optional[float] = None,
) -> None:
    """Charge an n-wide data-parallel step: work ``n * per_item_work``,
    depth ``depth`` (default: the per-item work, i.e. every lane runs the
    same straight-line code)."""
    ledger.charge(work=n * per_item_work, depth=per_item_work if depth is None else depth)
