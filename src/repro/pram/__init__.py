"""Work-depth (PRAM) simulation substrate.

See :mod:`repro.pram.ledger` for the accounting model, DESIGN.md for why
this substitutes for the paper's CRCW PRAM.
"""

from repro.pram.combinators import (
    bulk_charge,
    log2ceil,
    pfilter,
    pmap,
    preduce,
    pscan_exclusive,
)
from repro.pram.executor import (
    executor_backend,
    force_executor,
    parallel_map,
    prewarm_executor,
    shutdown_shared_pools,
)
from repro.pram.ledger import NULL_LEDGER, Ledger, ParallelFrame, PhaseRecord
from repro.pram.trace import SPNode, TraceLedger, schedule_bounds
from repro.pram.scheduler import (
    BrentProjection,
    brent_time,
    ledger_curve,
    parallelism,
    speedup_curve,
)

__all__ = [
    "Ledger",
    "ParallelFrame",
    "PhaseRecord",
    "NULL_LEDGER",
    "pmap",
    "preduce",
    "pscan_exclusive",
    "pfilter",
    "bulk_charge",
    "log2ceil",
    "parallel_map",
    "executor_backend",
    "force_executor",
    "prewarm_executor",
    "shutdown_shared_pools",
    "BrentProjection",
    "brent_time",
    "parallelism",
    "speedup_curve",
    "ledger_curve",
    "TraceLedger",
    "SPNode",
    "schedule_bounds",
]
