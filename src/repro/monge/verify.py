"""Empirical (inverse-)Monge property checkers.

The SMAWK orientation used by the 2-respecting search rests on two
structural facts (derived in the module docs of
:mod:`repro.monge.partial` and :mod:`repro.tworespect.path_pairs`):

* *cross* blocks (disjoint subtrees, both paths ordered shallow->deep)
  are Monge (submodular), and
* *nested* blocks (one path inside the other's subtrees) are
  inverse-Monge (supermodular).

These checkers verify the inequalities exhaustively on explicit
matrices; the property-based tests run them over random graphs/trees to
pin the orientation.  :class:`repro.errors.MongeViolation` is raised on
failure with the offending quadruple.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.errors import MongeViolation

__all__ = ["check_monge", "check_inverse_monge", "materialize"]


def materialize(
    rows: Sequence[int], cols: Sequence[int], lookup: Callable[[int, int], float]
) -> np.ndarray:
    """Evaluate the full matrix (tests only — O(rows x cols) lookups)."""
    out = np.empty((len(rows), len(cols)))
    for i, r in enumerate(rows):
        for j, c in enumerate(cols):
            out[i, j] = lookup(r, c)
    return out


def check_monge(matrix: np.ndarray, *, atol: float = 1e-9) -> None:
    """Raise unless M[i][j] + M[i+1][j+1] <= M[i][j+1] + M[i+1][j] for all
    adjacent quadruples (adjacent quadruples imply the general case)."""
    m = np.asarray(matrix, dtype=np.float64)
    if m.shape[0] < 2 or m.shape[1] < 2:
        return
    lhs = m[:-1, :-1] + m[1:, 1:]
    rhs = m[:-1, 1:] + m[1:, :-1]
    bad = lhs > rhs + atol
    if bad.any():
        i, j = map(int, np.argwhere(bad)[0])
        raise MongeViolation(
            f"Monge violated at ({i},{j}): {lhs[i, j]} > {rhs[i, j]}"
        )


def check_inverse_monge(matrix: np.ndarray, *, atol: float = 1e-9) -> None:
    """Raise unless the matrix is supermodular (Monge after reversing the
    column order)."""
    check_monge(np.asarray(matrix)[:, ::-1], atol=atol)
