"""Monge-matrix searching (Sections 4.1.2-4.1.3 substrates)."""

from repro.monge.partial import triangle_minimum
from repro.monge.smawk import matrix_minimum, smawk_row_minima
from repro.monge.verify import check_inverse_monge, check_monge, materialize

__all__ = [
    "smawk_row_minima",
    "matrix_minimum",
    "triangle_minimum",
    "check_monge",
    "check_inverse_monge",
    "materialize",
]
