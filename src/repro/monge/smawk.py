"""SMAWK row-minima for totally monotone matrices.

The path-pair step of the 2-respecting algorithm needs the minimum entry
of Monge matrices whose entries are cut-oracle queries; the paper uses
the randomized O(ell)-query algorithm of Raman–Vishkin [RV94].  We
substitute the deterministic SMAWK algorithm, which also inspects only
O(rows + cols) entries (see DESIGN.md's substitution table), and count
every entry evaluation.

A matrix is *totally monotone* (for minima) when, for rows i < i' and
columns j < j': ``M[i][j] >= M[i][j']  =>  M[i'][j] >= M[i'][j']``.
Monge matrices (``M[i][j] + M[i'][j'] <= M[i][j'] + M[i'][j]``) satisfy
this including ties, which is what the weak comparisons below rely on.
Inverse-Monge matrices become Monge by reversing the column order —
callers do so via an index mapping.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

from repro.obs.counters import counters
from repro.pram.combinators import log2ceil
from repro.pram.ledger import Ledger, NULL_LEDGER

__all__ = ["smawk_row_minima", "matrix_minimum"]

Lookup = Callable[[int, int], float]


class _CountingLookup:
    __slots__ = ("fn", "count", "cache")

    def __init__(self, fn: Lookup) -> None:
        self.fn = fn
        self.count = 0
        self.cache: Dict[Tuple[int, int], float] = {}

    def __call__(self, i: int, j: int) -> float:
        key = (i, j)
        hit = self.cache.get(key)
        if hit is not None:
            return hit
        self.count += 1
        val = self.fn(i, j)
        self.cache[key] = val
        return val


def smawk_row_minima(
    rows: Sequence[int],
    cols: Sequence[int],
    lookup: Lookup,
    ledger: Ledger = NULL_LEDGER,
) -> Dict[int, Tuple[float, int]]:
    """Row minima of a totally monotone matrix.

    Parameters
    ----------
    rows, cols:
        Row/column *labels* in matrix order (the lookup receives labels,
        so callers can present reversed or re-indexed views).
    lookup:
        ``lookup(row_label, col_label) -> value``.  Every evaluation is
        charged to the ledger (work 0 here — the lookup is expected to
        charge its own oracle cost; SMAWK's bookkeeping charges
        O(rows + cols) work and O(log) depth).

    Returns
    -------
    ``{row_label: (min_value, argmin_col_label)}``.
    """
    counting = _CountingLookup(lookup)
    result: Dict[int, Tuple[float, int]] = {}
    _smawk(list(rows), list(cols), counting, result)
    n = len(rows) + len(cols)
    ledger.charge(work=float(max(n, 1)), depth=float(log2ceil(max(n, 2)) + 1))
    reg = counters()
    if reg.enabled:
        reg.add("smawk.calls")
        reg.add("smawk.evals", float(counting.count))
    return result


def _smawk(
    rows: List[int],
    cols: List[int],
    lookup: _CountingLookup,
    result: Dict[int, Tuple[float, int]],
) -> None:
    if not rows:
        return
    # REDUCE: prune columns that cannot host any row minimum, keeping at
    # most len(rows) columns.  Invariant: survivor k (0-based stack
    # position) can only host minima of rows[k:].
    stack: List[int] = []
    for c in cols:
        while stack:
            r = rows[len(stack) - 1]
            if lookup(r, stack[-1]) <= lookup(r, c):
                break
            stack.pop()
        if len(stack) < len(rows):
            stack.append(c)
    cols2 = stack
    _smawk(rows[1::2], cols2, lookup, result)
    # INTERPOLATE: fill even-index rows; by total monotonicity each row's
    # argmin lies between its neighbors' argmins in cols2 order.
    col_pos = {c: k for k, c in enumerate(cols2)}
    start = 0
    for i in range(0, len(rows), 2):
        r = rows[i]
        stop = col_pos[result[rows[i + 1]][1]] if i + 1 < len(rows) else len(cols2) - 1
        best_val = None
        best_col = None
        for c in cols2[start : stop + 1]:
            val = lookup(r, c)
            if best_val is None or val < best_val:
                best_val, best_col = val, c
        assert best_col is not None
        result[r] = (best_val, best_col)
        start = stop


def matrix_minimum(
    rows: Sequence[int],
    cols: Sequence[int],
    lookup: Lookup,
    ledger: Ledger = NULL_LEDGER,
) -> Tuple[float, int, int]:
    """Global minimum ``(value, row_label, col_label)`` of a totally
    monotone matrix via SMAWK row minima + a tree reduce."""
    if not rows or not cols:
        return float("inf"), -1, -1
    minima = smawk_row_minima(rows, cols, lookup, ledger=ledger)
    best_val, best_r, best_c = float("inf"), -1, -1
    for r, (val, c) in minima.items():
        if val < best_val:
            best_val, best_r, best_c = val, r, c
    ledger.charge(work=float(len(rows)), depth=float(log2ceil(max(len(rows), 2))))
    return best_val, best_r, best_c
