"""Minimum over the strict upper triangle of a partial (inverse-)Monge
matrix — the single-path case of Section 4.1.2.

For a descending tree path with edges e_1 (shallowest) .. e_ell
(deepest), the matrix ``M[i][j] = cut(e_i, e_j)`` restricted to i < j is
*inverse*-Monge (supermodular; the annulus decomposition in
``tests/test_monge_properties.py`` verifies this empirically), because
e_j's subtree is nested inside e_i's.  Reversing the column order makes
every fully-defined rectangular block Monge, so:

    triangle_min(edges) =
        min( SMAWK-min of the block  [first half] x [second half],
             triangle_min(first half),
             triangle_min(second half) )

which inspects O(ell log ell) entries — within the budget the paper
allots to this step via [AKPS90] (O(ell log ell) inspected entries;
see the DESIGN.md substitution note).
"""

from __future__ import annotations

from typing import Callable, Sequence, Tuple

from repro.monge.smawk import matrix_minimum
from repro.pram.combinators import log2ceil
from repro.pram.ledger import Ledger, NULL_LEDGER

__all__ = ["triangle_minimum"]

Lookup = Callable[[int, int], float]


def triangle_minimum(
    labels: Sequence[int],
    lookup: Lookup,
    ledger: Ledger = NULL_LEDGER,
    *,
    inverse: bool = True,
) -> Tuple[float, int, int]:
    """Minimum of ``lookup(a, b)`` over ordered pairs a = labels[i],
    b = labels[j] with i < j.

    ``inverse=True`` treats fully-defined blocks as inverse-Monge (the
    nested single-path case) and reverses columns before SMAWK;
    ``inverse=False`` treats them as Monge directly.

    Returns ``(value, label_i, label_j)`` (labels, not positions), or
    ``(inf, -1, -1)`` when fewer than two labels are given.
    """
    labels = list(labels)
    best: Tuple[float, int, int] = (float("inf"), -1, -1)
    if len(labels) < 2:
        return best
    stack = [labels]
    while stack:
        seg = stack.pop()
        ell = len(seg)
        if ell < 2:
            continue
        if ell == 2:
            val = lookup(seg[0], seg[1])
            if val < best[0]:
                best = (val, seg[0], seg[1])
            continue
        mid = ell // 2
        rows = seg[:mid]
        cols = seg[mid:]
        if inverse:
            cols = cols[::-1]
        val, r, c = matrix_minimum(rows, cols, lookup, ledger=ledger)
        if val < best[0]:
            best = (val, r, c)
        stack.append(seg[:mid])
        stack.append(seg[mid:])
    # divide-and-conquer control charge: the recursion tree has depth
    # O(log ell); each level's SMAWK calls run in parallel.
    ledger.charge(work=0.0, depth=float(log2ceil(max(len(labels), 2))))
    return best
