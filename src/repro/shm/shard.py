"""Sharded flat2d batch queries over a published tree.

:meth:`repro.kernels.flat2d.FlatRangeTree2D.query_many` is the hot
batch driver of the 2-respecting search.  This module fans one large
batch out over the active executor backend: the tree and the four
query-bound arrays are broadcast **once** as a ``parallel_map``
context (a zero-copy shared-memory segment on the shm backend, one
initializer pickle on the process backend), and each task carries only
a ``(lo, hi)`` shard range.  Workers answer their contiguous slice and
return three small per-shard arrays, which concatenate back — shard
boundaries cannot change any answer because every query is independent.

Parity: ``sharded_query_many`` returns exactly what a single
``query_many`` call over the whole batch returns — same totals, same
per-query work/depth charge arrays (``query_many`` charges no ledger
itself; callers emulate the reference charge structure from the
returned arrays, which is why sharding composes without touching the
accounting).  The only observable difference is stats/counter
attribution: worker-side ``RangeQueryStats`` live and die in the
worker processes, as with every other process-backend dispatch.

The one *behavioural* caveat: ``query_many`` switches to a scalar loop
below ``_SCALAR_BATCH_CUTOFF`` entries.  Shards below the cutoff would
answer identically (the contract pins that) but waste the vectorized
path, so the shard planner never cuts a batch into pieces smaller than
the cutoff.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.pram.executor import parallel_map

__all__ = ["sharded_query_many", "plan_shards"]

#: keep shards on query_many's vectorized path (see module docstring)
_MIN_SHARD = 256


def plan_shards(total: int, shards: int) -> List[Tuple[int, int]]:
    """Split ``range(total)`` into at most ``shards`` contiguous,
    near-equal, non-empty ranges of at least ``_MIN_SHARD`` entries."""
    if total <= 0:
        return []
    shards = max(1, min(shards, max(1, total // _MIN_SHARD)))
    bounds = np.linspace(0, total, shards + 1, dtype=np.int64)
    return [
        (int(lo), int(hi)) for lo, hi in zip(bounds[:-1], bounds[1:]) if hi > lo
    ]


def _shard_query(ctx, bounds: Tuple[int, int]):
    tree, x1, x2, y1, y2 = ctx
    lo, hi = bounds
    return tree.query_many(x1[lo:hi], x2[lo:hi], y1[lo:hi], y2[lo:hi])


def sharded_query_many(
    tree,
    x1: np.ndarray,
    x2: np.ndarray,
    y1: np.ndarray,
    y2: np.ndarray,
    *,
    shards: Optional[int] = None,
    max_workers: Optional[int] = None,
    context_key: Optional[str] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``tree.query_many`` over the whole batch, answered in parallel
    shards on the active executor backend.

    Parameters
    ----------
    shards:
        Target shard count; defaults to ``max_workers`` (or the CPU
        count).  Clamped so no shard drops below the vectorized-path
        cutoff; a batch too small to split runs in-process directly.
    context_key:
        Stable fingerprint for the ``(tree, queries)`` broadcast — pass
        one when the same tree is queried repeatedly so the shm backend
        reuses its published segment across calls.
    """
    import os

    x1 = np.ascontiguousarray(x1, dtype=np.int64)
    x2 = np.ascontiguousarray(x2, dtype=np.int64)
    y1 = np.ascontiguousarray(y1, dtype=np.int64)
    y2 = np.ascontiguousarray(y2, dtype=np.int64)
    total = int(x1.shape[0])
    workers = max_workers or os.cpu_count() or 1
    ranges = plan_shards(total, shards or workers)
    if len(ranges) <= 1:
        return tree.query_many(x1, x2, y1, y2)
    parts = parallel_map(
        _shard_query,
        ranges,
        workers,
        context=(tree, x1, x2, y1, y2),
        context_key=context_key,
    )
    totals = np.concatenate([p[0] for p in parts])
    works = np.concatenate([p[1] for p in parts])
    depths = np.concatenate([p[2] for p in parts])
    return totals, works, depths
