"""Zero-copy object codec over shared-memory segments.

The problem the ``process`` backend has is structural: every dispatch
pickles the whole payload — graph arrays, packed forests, flat2d tables
— through a pipe, and the worker materialises a private copy.  This
codec splits an object into two parts instead:

* a small **payload** — an ordinary pickle of the object with every
  large, C-contiguous, non-object ndarray replaced by a persistent-id
  stub ``(block_index, dtype, shape)``;
* the raw **blocks** — those arrays' bytes, copied exactly once into a
  shared-memory segment by :class:`repro.shm.arena.ShmArena`.

Workers attach the segment and rebuild the object with
``np.frombuffer`` views over the mapped blocks: no copy, no per-dispatch
pickling of array data, and one physical page set shared by every
worker.  Reconstructed arrays are marked read-only — the published
object is immutable by contract, and a stray write from one worker must
not corrupt every other worker's view.

Externalisation happens via ``pickle``'s ``persistent_id`` hook, so
arrays are captured wherever they sit — inside ``Graph``,
``GreedyPacking``, ``FlatRangeTree2D``, tuples, dataclasses — without
per-type codec code.  Types whose ``__reduce__`` hides arrays inside
opaque bytes won't benefit, but every container in this repo pickles
arrays as arrays.

Worker-side, :func:`fetch_object` memoises the decoded object per
segment name: a persistent pool worker attaches + decodes each
published context exactly once, then serves every subsequent shard from
the cache.
"""

from __future__ import annotations

import hashlib
import io
import pickle
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.obs.counters import counters
from repro.shm.arena import _DETACH_HOOKS, ShmArena, arena, attach_segment

__all__ = [
    "ShmRef",
    "encode_object",
    "decode_object",
    "publish_object",
    "release_object",
    "fetch_object",
    "forget_object",
]

#: arrays smaller than this stay inline in the payload pickle — the
#: stub + block bookkeeping costs more than it saves below ~a page
_MIN_EXTERN_BYTES = 2048

_STUB_TAG = "repro.shm.ndarray"


@dataclass(frozen=True)
class ShmRef:
    """Ticket for a published object: everything a worker needs to
    attach (``segment``) and everything the parent needs to release
    (``key``).  Small and cheaply picklable by design."""

    key: str
    segment: str
    nbytes: int
    blocks: int


class _ShmPickler(pickle.Pickler):
    def __init__(self, file, blocks: List[memoryview]) -> None:
        super().__init__(file, protocol=pickle.HIGHEST_PROTOCOL)
        self._blocks = blocks

    def persistent_id(self, obj: Any) -> Optional[Tuple[str, int, str, Tuple[int, ...]]]:
        if (
            type(obj) is np.ndarray
            and obj.dtype != object
            and obj.nbytes >= _MIN_EXTERN_BYTES
        ):
            if not obj.flags["C_CONTIGUOUS"]:
                obj = np.ascontiguousarray(obj)
            index = len(self._blocks)
            self._blocks.append(obj.data.cast("B"))
            return (_STUB_TAG, index, obj.dtype.str, obj.shape)
        return None


class _ShmUnpickler(pickle.Unpickler):
    def __init__(self, file, blocks: List[memoryview]) -> None:
        super().__init__(file)
        self._blocks = blocks

    def persistent_load(self, pid: Tuple[str, int, str, Tuple[int, ...]]) -> np.ndarray:
        tag, index, dtype, shape = pid
        if tag != _STUB_TAG:
            raise pickle.UnpicklingError(f"unknown persistent id tag {tag!r}")
        arr = np.frombuffer(self._blocks[index], dtype=np.dtype(dtype)).reshape(shape)
        arr.flags.writeable = False
        return arr


def encode_object(obj: Any) -> Tuple[bytes, List[memoryview]]:
    """Split ``obj`` into a small payload pickle + raw array blocks."""
    blocks: List[memoryview] = []
    buf = io.BytesIO()
    _ShmPickler(buf, blocks).dump(obj)
    return buf.getvalue(), blocks


def decode_object(payload: bytes, blocks: List[memoryview]) -> Any:
    """Rebuild an object from :func:`encode_object` output; arrays come
    back as read-only views over ``blocks``."""
    return _ShmUnpickler(io.BytesIO(payload), blocks).load()


# ---------------------------------------------------------------------------
# parent side
# ---------------------------------------------------------------------------
def publish_object(
    key: Optional[str], obj: Any, *, into: Optional[ShmArena] = None
) -> ShmRef:
    """Publish ``obj`` under fingerprint ``key``; returns the attach
    ticket.  Publishing a live key again skips encoding entirely and
    just bumps the segment's refcount.

    With ``key=None`` a content digest of the encoded bytes is used
    instead — dedup still works, but the encode cost is paid before the
    reuse check, so callers with a cheap stable fingerprint (the engine
    artifact chain) should pass it.
    """
    a = into if into is not None else arena()
    if key is not None:
        existing = a.retain(key)
        if existing is not None:
            name, nbytes = existing
            return ShmRef(key=key, segment=name, nbytes=nbytes, blocks=-1)
        payload, blocks = encode_object(obj)
    else:
        payload, blocks = encode_object(obj)
        digest = hashlib.sha256(payload)
        for block in blocks:
            digest.update(block)
        key = "sha256:" + digest.hexdigest()[:32]
        existing = a.retain(key)
        if existing is not None:
            name, nbytes = existing
            return ShmRef(key=key, segment=name, nbytes=nbytes, blocks=-1)
    name, nbytes = a.publish(key, payload, blocks)
    return ShmRef(key=key, segment=name, nbytes=nbytes, blocks=len(blocks))


def release_object(ref: ShmRef, *, into: Optional[ShmArena] = None) -> None:
    """Drop one reference to ``ref``'s segment (unlinks at zero)."""
    a = into if into is not None else arena()
    a.release(ref.key)


# ---------------------------------------------------------------------------
# worker side
# ---------------------------------------------------------------------------
#: per-process decode cache: segment name -> reconstructed object
_DECODED: Dict[str, Any] = {}

# decoded objects hold views into the mapped segments; detach_all must
# drop them before closing the maps
_DETACH_HOOKS.append(_DECODED.clear)


def fetch_object(ref: ShmRef) -> Tuple[Any, bool]:
    """Attach ``ref``'s segment and return ``(object, freshly_attached)``.

    Decoding is memoised per segment name, so a pool worker pays the
    attach + unpickle cost once per published context and zero-copy
    thereafter.  Raises :class:`repro.shm.arena.ShmSegmentLost` when the
    segment no longer exists.
    """
    cached = _DECODED.get(ref.segment)
    if cached is not None:
        return cached, False
    payload, blocks, fresh = attach_segment(ref.segment)
    obj = decode_object(payload, blocks)
    _DECODED[ref.segment] = obj
    if fresh:
        counters().add("shm.attaches")
    return obj, fresh


def forget_object(segment: str) -> None:
    """Drop the decode cache for one segment (tests / long-lived
    in-process consumers; note the mmap stays cached in the arena's
    attach table until :func:`repro.shm.arena.detach_all`)."""
    _DECODED.pop(segment, None)
