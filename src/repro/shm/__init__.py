"""Zero-copy shared-memory publication layer.

``repro.shm`` lets the parent process publish large immutable objects
(graphs, packed forests, flat2d range trees) into POSIX shared-memory
segments exactly once, and lets pool workers attach read-only
zero-copy views instead of receiving pickled copies per dispatch.  It
is the substrate of the ``shm`` executor backend
(``REPRO_EXECUTOR=shm``) — see :mod:`repro.pram.executor`.

Three modules:

* :mod:`repro.shm.arena` — refcounted, fingerprint-keyed segment
  lifecycle (:class:`ShmArena`), guaranteed cleanup, leak
  introspection;
* :mod:`repro.shm.codec` — generic pickle-based object splitter that
  externalises large ndarrays into segment blocks
  (:func:`publish_object` / :func:`fetch_object`);
* :mod:`repro.shm.shard` — sharded flat2d batch queries over a
  published tree.
"""

from repro.shm.arena import (
    ShmArena,
    ShmSegmentLost,
    arena,
    detach_all,
    live_segments,
    shm_available,
    shutdown_arena,
)
from repro.shm.codec import (
    ShmRef,
    decode_object,
    encode_object,
    fetch_object,
    publish_object,
    release_object,
)
from repro.shm.shard import plan_shards, sharded_query_many

__all__ = [
    "ShmArena",
    "ShmSegmentLost",
    "ShmRef",
    "arena",
    "detach_all",
    "live_segments",
    "shm_available",
    "shutdown_arena",
    "encode_object",
    "decode_object",
    "publish_object",
    "fetch_object",
    "release_object",
    "plan_shards",
    "sharded_query_many",
]
