"""Refcounted shared-memory segment arena.

A :class:`ShmArena` owns a set of ``multiprocessing.shared_memory``
segments, each holding the packed byte blocks of one published object
(see :mod:`repro.shm.codec`) and keyed by a caller-supplied
**fingerprint** — publishing the same fingerprint twice returns the
existing segment instead of copying the data again, which is what makes
repeated dispatches over the same graph free.

Lifecycle is explicit and guaranteed:

* every ``publish`` increments the segment's refcount, every
  ``release`` decrements it; at zero the segment is unlinked;
* :meth:`ShmArena.shutdown` (also the context-manager ``__exit__`` and
  a module-level ``atexit`` hook for the default arena) unlinks
  everything unconditionally — a crashed caller cannot leak segments
  past interpreter exit;
* :func:`live_segments` exposes the surviving names so tests can assert
  the zero-leak contract.

Attach (the worker side) lives here too.  Pool workers are forked from
the parent and share its ``resource_tracker`` process, whose registry
is a *set* — a worker's attach-time registration is a no-op against the
creator's entry, so attaching transfers no ownership and needs no
``unregister`` (calling it would strip the parent's crash-safety
registration).  Attached handles are cached per process
(:data:`_ATTACHED`), so a persistent pool worker maps each segment
exactly once no matter how many shards it processes.

Counters (parent side): ``shm.segments_published``, ``shm.bytes_published``,
``shm.segments_reused``, ``shm.segments_unlinked``; worker attaches are
reported back through the executor as ``shm.worker_attaches`` (a child
process cannot reach the parent's counter registry directly).
"""

from __future__ import annotations

import atexit
import threading
from concurrent.futures import BrokenExecutor
from typing import Dict, List, Optional, Tuple

from repro.errors import InvalidParameterError
from repro.obs.counters import counters

__all__ = [
    "ShmArena",
    "ShmSegmentLost",
    "arena",
    "shutdown_arena",
    "live_segments",
    "shm_available",
    "attach_segment",
    "detach_all",
]

#: block payloads start at multiples of this, so float64/int64 views are
#: always aligned regardless of the header's byte length
_ALIGN = 64


class ShmSegmentLost(BrokenExecutor):
    """A published segment vanished (unlinked, or the publisher died)
    between dispatch and attach.

    Subclasses :class:`concurrent.futures.BrokenExecutor` on purpose:
    the supervisor's health model already classifies broken executors as
    substrate failures, so a lost segment enters backoff and degrades
    ``shm → process`` without any special casing.
    """


def shm_available() -> bool:
    """True when POSIX shared memory actually works on this platform
    (probed once with a tiny create/unlink round trip)."""
    global _AVAILABLE
    if _AVAILABLE is None:
        try:
            from multiprocessing import shared_memory

            probe = shared_memory.SharedMemory(create=True, size=16)
            probe.close()
            probe.unlink()
            _AVAILABLE = True
        except Exception:  # noqa: BLE001 - any failure means "don't use shm"
            _AVAILABLE = False
    return _AVAILABLE


_AVAILABLE: Optional[bool] = None


class _Segment:
    __slots__ = ("shm", "key", "refs", "nbytes")

    def __init__(self, shm, key: str, nbytes: int) -> None:
        self.shm = shm
        self.key = key
        self.refs = 1
        self.nbytes = nbytes


class ShmArena:
    """Fingerprint-keyed, refcounted shared-memory segments.

    Thread-safe; usable as a context manager (``with ShmArena() as a:``)
    whose exit unlinks every segment the arena still owns.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._by_key: Dict[str, _Segment] = {}
        self._closed = False

    # ------------------------------------------------------------------
    # publish / release
    # ------------------------------------------------------------------
    def publish(self, key: str, payload: bytes, blocks: List[memoryview]) -> Tuple[str, int]:
        """Copy ``payload`` + ``blocks`` into one segment keyed by ``key``.

        Returns ``(segment_name, total_bytes)``.  Re-publishing a live
        key is free: the existing segment's refcount is bumped and its
        name returned (``shm.segments_reused``).

        Layout: ``[8B payload length][payload][pad][8B nblocks]`` then,
        per block, ``[8B length][bytes][pad to 64]`` — the codec stores
        dtype/shape metadata inside ``payload``, the arena only moves
        bytes.
        """
        with self._lock:
            if self._closed:
                raise InvalidParameterError("arena is shut down")
            seg = self._by_key.get(key)
            if seg is not None:
                seg.refs += 1
                counters().add("shm.segments_reused")
                return seg.shm.name, seg.nbytes

        from multiprocessing import shared_memory

        sizes = [len(payload)] + [len(b) for b in blocks]
        total = 0
        offsets = []
        for s in sizes:
            offsets.append(total)
            total += _aligned(8 + s)
        shm = shared_memory.SharedMemory(create=True, size=max(total, 1))
        buf = shm.buf
        for off, chunk in zip(offsets, [payload] + list(blocks)):
            buf[off : off + 8] = len(chunk).to_bytes(8, "little")
            buf[off + 8 : off + 8 + len(chunk)] = bytes(chunk) if isinstance(chunk, memoryview) else chunk
        with self._lock:
            # lost the publish race: keep the winner, drop ours
            seg = self._by_key.get(key)
            if seg is not None:
                seg.refs += 1
                counters().add("shm.segments_reused")
                name, nbytes = seg.shm.name, seg.nbytes
            else:
                self._by_key[key] = _Segment(shm, key, total)
                reg = counters()
                reg.add("shm.segments_published")
                reg.add("shm.bytes_published", float(total))
                return shm.name, total
        shm.close()
        shm.unlink()
        return name, nbytes

    def retain(self, key: str) -> Optional[Tuple[str, int]]:
        """Bump the refcount of an existing segment without re-encoding.

        Returns ``(segment_name, nbytes)`` when ``key`` is live, else
        ``None`` — the caller should then encode and :meth:`publish`.
        """
        with self._lock:
            seg = self._by_key.get(key)
            if seg is None:
                return None
            seg.refs += 1
            counters().add("shm.segments_reused")
            return seg.shm.name, seg.nbytes

    def release(self, key: str) -> None:
        """Drop one reference; the last reference unlinks the segment."""
        with self._lock:
            seg = self._by_key.get(key)
            if seg is None:
                return
            seg.refs -= 1
            if seg.refs > 0:
                return
            del self._by_key[key]
        _unlink(seg.shm)

    def discard(self, key: str) -> None:
        """Forcibly unlink ``key`` regardless of refcount (used by the
        ``shm.segment_lost`` fault site and failure recovery — a retry
        must republish rather than attach a dead name)."""
        with self._lock:
            seg = self._by_key.pop(key, None)
        if seg is not None:
            _unlink(seg.shm)

    # ------------------------------------------------------------------
    # introspection / teardown
    # ------------------------------------------------------------------
    def segment_name(self, key: str) -> Optional[str]:
        with self._lock:
            seg = self._by_key.get(key)
            return None if seg is None else seg.shm.name

    def live(self) -> Tuple[str, ...]:
        """Names of every segment this arena still owns."""
        with self._lock:
            return tuple(seg.shm.name for seg in self._by_key.values())

    @property
    def live_bytes(self) -> int:
        with self._lock:
            return sum(seg.nbytes for seg in self._by_key.values())

    def shutdown(self) -> None:
        """Unlink every owned segment, refcounts notwithstanding."""
        with self._lock:
            segments = list(self._by_key.values())
            self._by_key.clear()
            self._closed = True
        for seg in segments:
            _unlink(seg.shm)

    def __enter__(self) -> "ShmArena":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ShmArena(segments={len(self._by_key)}, bytes={self.live_bytes})"


def _aligned(n: int) -> int:
    return (n + _ALIGN - 1) // _ALIGN * _ALIGN


def _quiet_close(shm) -> None:
    """Close a SharedMemory handle without ever raising or leaving a
    noisy ``__del__`` behind.

    When a consumer still holds views into the map, ``close`` raises
    BufferError — and would raise again from ``__del__`` at interpreter
    exit, spamming stderr.  In that case we close the file descriptor
    and neuter the handle: the mapping itself stays alive until the
    views die (at worst, process exit), which is safe because the
    backing segment is unlinked separately.
    """
    try:
        shm.close()
    except BufferError:
        import os

        try:
            if shm._fd >= 0:  # noqa: SLF001
                os.close(shm._fd)  # noqa: SLF001
        except OSError:  # pragma: no cover
            pass
        shm._fd = -1  # noqa: SLF001
        shm._mmap = None  # noqa: SLF001


def _unlink(shm) -> None:
    counters().add("shm.segments_unlinked")
    _quiet_close(shm)
    try:
        shm.unlink()
    except FileNotFoundError:  # pragma: no cover - already gone
        pass


# ---------------------------------------------------------------------------
# default arena (parent-process side)
# ---------------------------------------------------------------------------
_default_lock = threading.Lock()
_default: Optional[ShmArena] = None


def arena() -> ShmArena:
    """The process-wide default arena, created lazily; guaranteed to be
    emptied at interpreter exit by an ``atexit`` hook."""
    global _default
    with _default_lock:
        if _default is None:
            _default = ShmArena()
        return _default


def shutdown_arena() -> None:
    """Unlink every segment of the default arena and forget it; the next
    :func:`arena` call starts fresh.  Harness/engine teardown hook."""
    global _default
    with _default_lock:
        a = _default
        _default = None
    if a is not None:
        a.shutdown()


def live_segments() -> Tuple[str, ...]:
    """Names of segments the default arena still owns (leak tests)."""
    with _default_lock:
        return () if _default is None else _default.live()


atexit.register(shutdown_arena)


# ---------------------------------------------------------------------------
# attach (worker-process side)
# ---------------------------------------------------------------------------
#: per-process attach cache: segment name -> (SharedMemory, payload, blocks)
_ATTACHED: Dict[str, Tuple[object, bytes, List[memoryview]]] = {}

#: callbacks run by :func:`detach_all` before closing maps — consumers
#: (the codec's decode cache) register here so their views are dropped
#: first and ``close`` doesn't hit live exported pointers
_DETACH_HOOKS: List = []


def attach_segment(name: str) -> Tuple[bytes, List[memoryview], bool]:
    """Map segment ``name`` and split it back into payload + blocks.

    Returns ``(payload, block_views, freshly_attached)``.  The views are
    zero-copy windows into the mapped segment; the handle is cached so a
    pool worker maps each name once and keeps it for its lifetime (the
    map dies with the process).  Attaching takes no ownership — see the
    module docstring for the resource-tracker rationale.

    Raises :class:`ShmSegmentLost` when the name no longer exists.
    """
    cached = _ATTACHED.get(name)
    if cached is not None:
        _, payload, blocks = cached
        return payload, blocks, False
    from multiprocessing import shared_memory

    try:
        shm = shared_memory.SharedMemory(name=name)
    except FileNotFoundError as exc:
        raise ShmSegmentLost(f"shared-memory segment {name!r} is gone") from exc
    buf = shm.buf
    plen = int.from_bytes(bytes(buf[0:8]), "little")
    payload = bytes(buf[8 : 8 + plen])
    blocks: List[memoryview] = []
    off = _aligned(8 + plen)
    while off + 8 <= len(buf):
        blen = int.from_bytes(bytes(buf[off : off + 8]), "little")
        blocks.append(buf[off + 8 : off + 8 + blen])
        off = off + _aligned(8 + blen)
    _ATTACHED[name] = (shm, payload, blocks)
    return payload, blocks, True


def detach_all() -> int:
    """Close every cached attach in this process; returns the count.

    For tests and long-lived in-process consumers — pool workers simply
    let the cache die with the process.
    """
    for hook in _DETACH_HOOKS:
        try:
            hook()
        except Exception:  # noqa: BLE001 - cleanup must keep going
            pass
    n = len(_ATTACHED)
    entries = list(_ATTACHED.values())
    _ATTACHED.clear()
    for shm, _, blocks in entries:
        del blocks
        _quiet_close(shm)
    if n:
        counters().add("shm.detaches", float(n))
    return n


# LIFO atexit order: detach (registered last, runs first) releases this
# process's views before shutdown_arena tries to close and unlink.
atexit.register(detach_all)
