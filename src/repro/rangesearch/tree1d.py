"""1-D weighted range counting with configurable branching (Lemma 4.24).

A complete tree of degree ``b = Theta(n^eps)`` over the points sorted by
key, with per-node weight totals.  Preprocessing is O(m/eps) work and
O(log n) depth; a range query touches O(b) nodes per level over
O(1/eps) = O(log_b m) levels, i.e. O(n^eps / eps) work — the tradeoff
that Section 4.3 exploits (b = 2 recovers the classic O(log m) segment
tree used for the general-graph bound of Lemma 4.9).

Queries return exact sums; *visited node counts* are recorded both on
the instance (``stats``) and on the ledger, because they are the
structural work measure benchmarked in experiment E5.

Implementation note: the query path deliberately uses Python lists and
:mod:`bisect` rather than numpy — the workload is millions of scalar
lookups, where numpy's per-call boxing dominates (see the profiling
notes in DESIGN.md's guide-compliance section).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.pram.combinators import log2ceil
from repro.pram.ledger import Ledger, NULL_LEDGER
from repro.primitives.sort import parallel_argsort

__all__ = ["RangeTree1D", "RangeQueryStats"]


@dataclass
class RangeQueryStats:
    """Structural work counters for range structures."""

    queries: int = 0
    nodes_visited: int = 0

    def merge(self, other: "RangeQueryStats") -> None:
        self.queries += other.queries
        self.nodes_visited += other.nodes_visited


class RangeTree1D:
    """Weighted points on a line; total weight over key intervals.

    Parameters
    ----------
    keys, weights:
        Point coordinates and weights (any order; sorted internally).
    branching:
        Tree degree b >= 2.
    presorted:
        Skip the sort when the caller already provides ascending keys
        (the 2-D structure builds thousands of these from pre-sorted
        slices).
    """

    __slots__ = ("keys", "branching", "levels", "stats", "_depth", "size", "_searchcost")

    def __init__(
        self,
        keys: np.ndarray,
        weights: np.ndarray,
        branching: int = 2,
        ledger: Ledger = NULL_LEDGER,
        *,
        presorted: bool = False,
    ) -> None:
        if branching < 2:
            raise ValueError("branching must be >= 2")
        keys = np.asarray(keys)
        weights = np.asarray(weights, dtype=np.float64)
        if keys.shape != weights.shape:
            raise ValueError("keys/weights length mismatch")
        if not presorted:
            order = parallel_argsort(keys, ledger=ledger)
            keys = keys[order]
            weights = weights[order]
        self.keys: List = keys.tolist()
        self.size = len(self.keys)
        self.branching = int(branching)
        # level 0 = leaf weights; level i+1 = b-ary block sums of level i
        np_levels: List[np.ndarray] = [weights]
        b = self.branching
        while np_levels[-1].shape[0] > 1:
            cur = np_levels[-1]
            pad = (-cur.shape[0]) % b
            if pad:
                cur = np.concatenate([cur, np.zeros(pad)])
            np_levels.append(cur.reshape(-1, b).sum(axis=1))
        self.levels: List[List[float]] = [lv.tolist() for lv in np_levels]
        self._depth = len(self.levels)
        self._searchcost = 2 * log2ceil(max(self.size, 2))
        self.stats = RangeQueryStats()
        # preprocessing charge: up-sweep work = total cells
        ledger.charge(
            work=float(sum(len(lv) for lv in self.levels)),
            depth=float(max(self._depth - 1, 1)),
        )

    # ------------------------------------------------------------------
    def query_value_range(self, lo, hi, ledger: Ledger = NULL_LEDGER) -> float:
        """Total weight of points with key in the *inclusive* [lo, hi]."""
        total, visited = self.counted_value_range(lo, hi)
        ledger.charge(work=float(max(visited, 1)), depth=float(self._depth))
        return total

    def query_index_range(self, l: int, r: int, ledger: Ledger = NULL_LEDGER) -> float:
        """Total weight of points with sorted-index in half-open [l, r)."""
        total, visited = self.counted_index_range(l, r)
        ledger.charge(work=float(max(visited, 1)), depth=float(self._depth))
        return total

    # ------------------------------------------------------------------
    # counted variants: return (sum, nodes_visited) without charging a
    # ledger — used by RangeTree2D, whose auxiliary queries run logically
    # in parallel and must be depth-charged as one batch.
    # ------------------------------------------------------------------
    def counted_value_range(self, lo, hi) -> Tuple[float, int]:
        if self.size == 0 or hi < lo:
            self.stats.queries += 1
            return 0.0, 1
        l = bisect_left(self.keys, lo)
        r = bisect_right(self.keys, hi)
        total, visited = self.counted_index_range(l, r)
        return total, visited + self._searchcost

    def counted_index_range(self, l: int, r: int) -> Tuple[float, int]:
        if l < 0:
            l = 0
        if r > self.size:
            r = self.size
        total = 0.0
        visited = 0
        b = self.branching
        level = 0
        levels = self.levels
        while l < r:
            arr = levels[level]
            while l % b and l < r:
                total += arr[l]
                l += 1
                visited += 1
            while r % b and l < r:
                r -= 1
                total += arr[r]
                visited += 1
            if l >= r:
                break
            l //= b
            r //= b
            level += 1
        stats = self.stats
        stats.queries += 1
        stats.nodes_visited += visited
        return total, visited
