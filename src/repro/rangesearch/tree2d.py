"""2-D weighted orthogonal range counting (Lemma 4.25).

A first-level b-ary tree over the points sorted by x; each internal node
carries an auxiliary 1-D structure (:class:`RangeTree1D`) over its
points sorted by y.  With ``b = Theta(n^eps)``:

* preprocessing: O(m/eps) work, O(log^2 n) depth — each of the O(1/eps)
  x-levels sorts/merges m points and up-sweeps its auxiliary trees;
* query: the canonical cover of [x1, x2] touches O(b) nodes per level
  (O(n^eps/eps) total), each answering a 1-D y-query in O(n^eps/eps)
  work — O(n^{2eps}/eps^2) work and O(log n) depth per query.

With b = 2 this degrades gracefully to the classic range tree with
O(log^2 n)-work queries — exactly the structure Lemma 4.9 uses for the
general-graph bound.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import List

import numpy as np

from repro.pram.combinators import log2ceil
from repro.pram.ledger import Ledger, NULL_LEDGER
from repro.primitives.sort import parallel_argsort
from repro.rangesearch.tree1d import RangeQueryStats, RangeTree1D

__all__ = ["RangeTree2D"]


class RangeTree2D:
    """Weighted points in the plane; total weight over query rectangles.

    Parameters
    ----------
    xs, ys, ws:
        Point coordinates and weights.
    branching:
        Degree b of the first-level tree and of every auxiliary tree.
    """

    __slots__ = (
        "xs",
        "branching",
        "leaf_ys",
        "leaf_ws",
        "aux_levels",
        "stats",
        "_x_depth",
        "size",
    )

    def __init__(
        self,
        xs: np.ndarray,
        ys: np.ndarray,
        ws: np.ndarray,
        branching: int = 2,
        ledger: Ledger = NULL_LEDGER,
    ) -> None:
        if branching < 2:
            raise ValueError("branching must be >= 2")
        xs = np.asarray(xs)
        ys = np.asarray(ys)
        ws = np.asarray(ws, dtype=np.float64)
        if not (xs.shape == ys.shape == ws.shape):
            raise ValueError("point array length mismatch")
        order = parallel_argsort(xs, ledger=ledger)
        xs_sorted = xs[order]
        ys_sorted = ys[order]
        ws_sorted = ws[order]
        # Python lists on the query path: millions of scalar lookups are
        # far cheaper through bisect/list-indexing than numpy boxing
        self.xs: list = xs_sorted.tolist()
        self.leaf_ys: list = ys_sorted.tolist()
        self.leaf_ws: list = ws_sorted.tolist()
        self.size = len(self.xs)
        b = self.branching = int(branching)

        # aux_levels[L][k]: auxiliary 1-D tree of the k-th node at x-level
        # L+1 (blocks of size b**(L+1) leaves).  Level 0 (single leaves)
        # is answered directly from leaf_ys/leaf_ws.  Each level's
        # y-sorted slices are built by per-block sorts, charged at the
        # merge model cost O(m) work / O(log m) depth per level.
        self.aux_levels: List[List[RangeTree1D]] = []
        cur_ys = ys_sorted
        cur_ws = ws_sorted
        block = 1
        while block < max(self.size, 1):
            nxt = block * b
            ny = cur_ys.copy()
            nw = cur_ws.copy()
            nodes: List[RangeTree1D] = []
            for k in range(-(-self.size // nxt)):
                lo, hi = k * nxt, min((k + 1) * nxt, self.size)
                o = np.argsort(ny[lo:hi], kind="stable")
                ny[lo:hi] = ny[lo:hi][o]
                nw[lo:hi] = nw[lo:hi][o]
                nodes.append(
                    RangeTree1D(ny[lo:hi], nw[lo:hi], branching=b, presorted=True)
                )
            self.aux_levels.append(nodes)
            ledger.charge(
                work=float(2 * max(self.size, 1)),
                depth=float(log2ceil(max(self.size, 2))),
            )
            cur_ys, cur_ws = ny, nw
            block = nxt
        self._x_depth = len(self.aux_levels) + 1
        self.stats = RangeQueryStats()

    # ------------------------------------------------------------------
    def query(self, x1, x2, y1, y2, ledger: Ledger = NULL_LEDGER) -> float:
        """Total weight of points with x in [x1, x2] and y in [y1, y2]
        (all bounds inclusive)."""
        stats = self.stats
        stats.queries += 1
        if self.size == 0 or x2 < x1 or y2 < y1:
            ledger.charge(work=1.0, depth=1.0)
            return 0.0
        l = bisect_left(self.xs, x1)
        r = bisect_right(self.xs, x2)
        total = 0.0
        visited = 2 * log2ceil(max(self.size, 2))
        b = self.branching
        leaf_ys, leaf_ws = self.leaf_ys, self.leaf_ws
        # level 0: single leaves, direct membership test
        while l % b and l < r:
            if y1 <= leaf_ys[l] <= y2:
                total += leaf_ws[l]
            visited += 1
            l += 1
        while r % b and l < r:
            r -= 1
            if y1 <= leaf_ys[r] <= y2:
                total += leaf_ws[r]
            visited += 1
        l //= b
        r //= b
        level = 0
        aux_work = 0
        aux_depth = 0
        while l < r:
            nodes = self.aux_levels[level]
            while l % b and l < r:
                part, vis = nodes[l].counted_value_range(y1, y2)
                total += part
                aux_work += vis
                aux_depth = max(aux_depth, nodes[l]._depth)
                visited += 1
                l += 1
            while r % b and l < r:
                r -= 1
                part, vis = nodes[r].counted_value_range(y1, y2)
                total += part
                aux_work += vis
                aux_depth = max(aux_depth, nodes[r]._depth)
                visited += 1
            if l >= r:
                break
            l //= b
            r //= b
            level += 1
        stats.nodes_visited += visited
        # the auxiliary queries of the canonical nodes run in parallel:
        # depth is the x-descent plus ONE auxiliary query's depth.
        ledger.charge(
            work=float(visited + aux_work), depth=float(self._x_depth + aux_depth)
        )
        return float(total)

    def collect_aux_stats(self) -> RangeQueryStats:
        """Aggregate the visited-node counters of every auxiliary tree
        (the 1-D query work performed inside 2-D queries)."""
        agg = RangeQueryStats()
        for lvl in self.aux_levels:
            for nd in lvl:
                agg.merge(nd.stats)
        return agg

    @property
    def total_nodes_visited(self) -> int:
        """First-level + auxiliary visited nodes across all queries — the
        structural work measure used by experiment E5."""
        return self.stats.nodes_visited + self.collect_aux_stats().nodes_visited
