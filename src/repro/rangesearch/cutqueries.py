"""The cut-query oracle of Appendix A (Lemmas A.1 and A.2).

Given a graph G and a rooted spanning tree T (possibly binarized — see
:mod:`repro.trees.binary`), each graph edge (x, y, w) is mapped to the
two plane points (post(x), post(y)) and (post(y), post(x)), both with
weight w, over the postorder numbering of T.  Because every subtree is a
contiguous postorder interval, subtree-boundary and subtree-to-subtree
weights become O(1) rectangle queries on a :class:`RangeTree2D`:

* ``cost(u)``            = w(T_e),            e = (u, p(u)),
* ``cross_cost(u, v)``   = w(T_e, T_f)        for disjoint subtrees,
* ``down_cost(u, v)``    = w(T_e, V \\ T_f)    for u inside T_v,

each counted exactly once thanks to the double (ordered-pair) insertion.
On top of these, ``cut(e, f)`` evaluates the three-case formula of
Lemma A.2, and the *interest* predicates of Definition 4.7 are decided
per Claim 4.8 (the ancestor case of cross-interest uses
``w(T_e, T_f \\ T_e) = cost(e) - down_cost(e, f)``).

Work: O(log^2 n) per query with branching 2 — or O(n^{2eps}/eps^2) with
branching n^eps (Section 4.3) — and O(log n) depth, all charged
structurally by the underlying range trees.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.graphs.graph import Graph
from repro.pram.combinators import log2ceil
from repro.pram.ledger import Ledger, NULL_LEDGER
from repro.primitives.euler import RootedTree
from repro.rangesearch.tree2d import RangeTree2D

__all__ = ["CutOracle", "NaiveCutOracle"]


class CutOracle:
    """Lemma A.1/A.2 data structure over (graph, rooted tree).

    Parameters
    ----------
    graph:
        The input graph; endpoints must be *real* vertices of the tree.
    tree:
        Rooted (and typically binarized) spanning tree; ``tree.n`` may
        exceed ``graph.n`` when virtual vertices are present.
    branching:
        Degree of the range trees (2 = the Lemma 4.9 general-graph
        structure; ``~n^eps`` = the Lemma 4.25 dense-graph structure).
    """

    def __init__(
        self,
        graph: Graph,
        tree: RootedTree,
        branching: int = 2,
        ledger: Ledger = NULL_LEDGER,
    ) -> None:
        if graph.n > tree.n:
            raise ValueError("tree must span at least the graph's vertices")
        self.graph = graph
        self.tree = tree
        post = tree.post
        px = post[graph.u]
        py = post[graph.v]
        xs = np.concatenate([px, py])
        ys = np.concatenate([py, px])
        ws = np.concatenate([graph.w, graph.w])
        self.points = RangeTree2D(xs, ys, ws, branching=branching, ledger=ledger)
        self._nb = tree.n
        self._cost_cache = np.full(tree.n, np.nan)
        # Lemma A.1 preprocessing beyond the 2-D build: postorder mapping
        ledger.charge(work=float(2 * graph.m + tree.n), depth=float(log2ceil(max(tree.n, 2))))

    # ------------------------------------------------------------------
    # the three primitive queries of Lemma A.1
    # ------------------------------------------------------------------
    def prefill_costs(self, ledger: Ledger = NULL_LEDGER) -> None:
        """Populate the w(T_e) cache for every tree edge at once via the
        Karger subtree-aggregation trick (O(m log n) work, O(log n)
        depth) — cheaper than n separate rectangle queries; used by the
        2-respecting driver before the interest searches."""
        from repro.primitives.treesums import all_subtree_costs

        costs = all_subtree_costs(self.graph, self.tree, ledger=ledger)
        self._cost_cache[:] = costs
        self._cost_cache[self.tree.root] = np.nan  # the root has no edge

    def cost(self, u: int, ledger: Ledger = NULL_LEDGER) -> float:
        """w(T_e) for e = (u, p(u)): total weight leaving u's subtree."""
        c = self._cost_cache[u]
        if not np.isnan(c):
            ledger.charge(work=1.0, depth=1.0)
            return float(c)
        t = self.tree
        s, p = int(t.start(u)), int(t.post[u])
        val = self.points.query(s, p, 0, s - 1, ledger=ledger) + self.points.query(
            s, p, p + 1, self._nb - 1, ledger=ledger
        )
        self._cost_cache[u] = val
        return float(val)

    def cross_cost(self, u: int, v: int, ledger: Ledger = NULL_LEDGER) -> float:
        """w(T_e, T_f) for vertex-disjoint subtrees T_u, T_v."""
        t = self.tree
        return self.points.query(
            int(t.start(v)), int(t.post[v]), int(t.start(u)), int(t.post[u]), ledger=ledger
        )

    def down_cost(self, u: int, v: int, ledger: Ledger = NULL_LEDGER) -> float:
        """w(T_u, V \\ T_v) for u inside T_v (u a descendant of v)."""
        t = self.tree
        su, pu = int(t.start(u)), int(t.post[u])
        sv, pv = int(t.start(v)), int(t.post[v])
        return self.points.query(su, pu, 0, sv - 1, ledger=ledger) + self.points.query(
            su, pu, pv + 1, self._nb - 1, ledger=ledger
        )

    # ------------------------------------------------------------------
    # Lemma A.2: the 2-respecting cut value
    # ------------------------------------------------------------------
    def cut(self, u: int, v: int, ledger: Ledger = NULL_LEDGER) -> float:
        """Value of the cut determined by tree edges e = (u, p(u)) and
        f = (v, p(v)); ``u == v`` gives the 1-respecting cut w(T_e)."""
        if u == v:
            return self.cost(u, ledger=ledger)
        t = self.tree
        if t.is_ancestor(v, u):  # e inside T_f
            return (
                self.cost(u, ledger=ledger)
                + self.cost(v, ledger=ledger)
                - 2.0 * self.down_cost(u, v, ledger=ledger)
            )
        if t.is_ancestor(u, v):  # f inside T_e
            return (
                self.cost(u, ledger=ledger)
                + self.cost(v, ledger=ledger)
                - 2.0 * self.down_cost(v, u, ledger=ledger)
            )
        return (
            self.cost(u, ledger=ledger)
            + self.cost(v, ledger=ledger)
            - 2.0 * self.cross_cost(u, v, ledger=ledger)
        )

    def cut_side_mask(self, u: int, v: Optional[int] = None) -> np.ndarray:
        """Boolean side mask (over the graph's *real* vertices) of the cut
        determined by edges e=(u,p(u)) and f=(v,p(v)): a vertex is on the
        True side iff exactly one of e, f separates it from the root."""
        t = self.tree
        posts = t.post[: self.graph.n]
        in_u = (t.start(u) <= posts) & (posts <= t.post[u])
        if v is None or v == u:
            return in_u
        in_v = (t.start(v) <= posts) & (posts <= t.post[v])
        return in_u ^ in_v

    # ------------------------------------------------------------------
    # Definition 4.7: interest predicates
    # ------------------------------------------------------------------
    def cross_interested(self, u: int, v: int, ledger: Ledger = NULL_LEDGER) -> bool:
        """Is e = (u, p(u)) cross-interested in f = (v, p(v))?

        Per Claim 4.8 the qualifying f form a root-descending path which
        may pass through ancestors of e; for an ancestor f the relevant
        mass is w(T_e, T_f \\ T_e) = cost(e) - down_cost(e, f).
        """
        if u == v:
            return False
        t = self.tree
        if t.is_ancestor(u, v):  # f strictly inside T_e: down-interest domain
            return False
        ce = self.cost(u, ledger=ledger)
        if t.is_ancestor(v, u):  # f an ancestor edge of e
            mass = ce - self.down_cost(u, v, ledger=ledger)
        else:
            mass = self.cross_cost(u, v, ledger=ledger)
        return ce < 2.0 * mass

    def down_interested(self, u: int, v: int, ledger: Ledger = NULL_LEDGER) -> bool:
        """Is e = (u, p(u)) down-interested in f = (v, p(v)) in T_e?"""
        if u == v:
            return False
        t = self.tree
        if not t.is_ancestor(u, v):
            return False
        return self.cost(u, ledger=ledger) < 2.0 * self.down_cost(v, u, ledger=ledger)

    # ------------------------------------------------------------------
    @property
    def total_nodes_visited(self) -> int:
        """Structural work of all queries so far (experiment E5)."""
        return self.points.total_nodes_visited

    @property
    def query_depth(self) -> int:
        """Model depth of one cut query: the x-descent of the 2-D tree
        plus one (parallel) auxiliary 1-D query — O(log n) for b = 2."""
        return 2 * self.points._x_depth + 2


class NaiveCutOracle:
    """Reference oracle: every query scans all m edges (O(m) work).

    Used by tests to validate :class:`CutOracle` and by the GG18-style
    baseline's cost model.  API-compatible with :class:`CutOracle` for
    the query subset it implements.
    """

    def __init__(self, graph: Graph, tree: RootedTree) -> None:
        self.graph = graph
        self.tree = tree
        t = tree
        self._pu = t.post[graph.u]
        self._pv = t.post[graph.v]

    def _in_subtree(self, posts: np.ndarray, x: int) -> np.ndarray:
        t = self.tree
        return (t.start(x) <= posts) & (posts <= t.post[x])

    def cost(self, u: int, ledger: Ledger = NULL_LEDGER) -> float:
        a = self._in_subtree(self._pu, u)
        b = self._in_subtree(self._pv, u)
        ledger.charge(work=float(self.graph.m), depth=1.0)
        return float(self.graph.w[a != b].sum())

    def cross_cost(self, u: int, v: int, ledger: Ledger = NULL_LEDGER) -> float:
        au, bu = self._in_subtree(self._pu, u), self._in_subtree(self._pv, u)
        av, bv = self._in_subtree(self._pu, v), self._in_subtree(self._pv, v)
        ledger.charge(work=float(self.graph.m), depth=1.0)
        return float(self.graph.w[(au & bv) | (av & bu)].sum())

    def down_cost(self, u: int, v: int, ledger: Ledger = NULL_LEDGER) -> float:
        au, bu = self._in_subtree(self._pu, u), self._in_subtree(self._pv, u)
        av, bv = self._in_subtree(self._pu, v), self._in_subtree(self._pv, v)
        ledger.charge(work=float(self.graph.m), depth=1.0)
        return float(self.graph.w[(au & ~bv) | (bu & ~av)].sum())

    def cut(self, u: int, v: int, ledger: Ledger = NULL_LEDGER) -> float:
        side = self.cut_side_mask_tree(u, v)
        cross = side[self.tree.post[self.graph.u]] != side[self.tree.post[self.graph.v]]
        ledger.charge(work=float(self.graph.m), depth=1.0)
        return float(self.graph.w[cross].sum())

    def cut_side_mask_tree(self, u: int, v: Optional[int]) -> np.ndarray:
        """Side mask indexed by *postorder rank* over all tree vertices."""
        t = self.tree
        ranks = np.arange(t.n)
        in_u = (t.start(u) <= ranks) & (ranks <= t.post[u])
        if v is None or v == u:
            return in_u
        in_v = (t.start(v) <= ranks) & (ranks <= t.post[v])
        return in_u ^ in_v
