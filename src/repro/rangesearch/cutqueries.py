"""The cut-query oracle of Appendix A (Lemmas A.1 and A.2).

Given a graph G and a rooted spanning tree T (possibly binarized — see
:mod:`repro.trees.binary`), each graph edge (x, y, w) is mapped to the
two plane points (post(x), post(y)) and (post(y), post(x)), both with
weight w, over the postorder numbering of T.  Because every subtree is a
contiguous postorder interval, subtree-boundary and subtree-to-subtree
weights become O(1) rectangle queries on a :class:`RangeTree2D`:

* ``cost(u)``            = w(T_e),            e = (u, p(u)),
* ``cross_cost(u, v)``   = w(T_e, T_f)        for disjoint subtrees,
* ``down_cost(u, v)``    = w(T_e, V \\ T_f)    for u inside T_v,

each counted exactly once thanks to the double (ordered-pair) insertion.
On top of these, ``cut(e, f)`` evaluates the three-case formula of
Lemma A.2, and the *interest* predicates of Definition 4.7 are decided
per Claim 4.8 (the ancestor case of cross-interest uses
``w(T_e, T_f \\ T_e) = cost(e) - down_cost(e, f)``).

Work: O(log^2 n) per query with branching 2 — or O(n^{2eps}/eps^2) with
branching n^eps (Section 4.3) — and O(log n) depth, all charged
structurally by the underlying range trees.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.graphs.graph import Graph
from repro.kernels import use_fast_kernels
from repro.pram.combinators import log2ceil
from repro.pram.ledger import Ledger, NULL_LEDGER
from repro.primitives.euler import RootedTree
from repro.rangesearch.tree2d import RangeTree2D

__all__ = ["CutOracle", "NaiveCutOracle"]

_BatchResult = Tuple[np.ndarray, np.ndarray, np.ndarray]


class CutOracle:
    """Lemma A.1/A.2 data structure over (graph, rooted tree).

    Parameters
    ----------
    graph:
        The input graph; endpoints must be *real* vertices of the tree.
    tree:
        Rooted (and typically binarized) spanning tree; ``tree.n`` may
        exceed ``graph.n`` when virtual vertices are present.
    branching:
        Degree of the range trees (2 = the Lemma 4.9 general-graph
        structure; ``~n^eps`` = the Lemma 4.25 dense-graph structure).
    """

    def __init__(
        self,
        graph: Graph,
        tree: RootedTree,
        branching: int = 2,
        ledger: Ledger = NULL_LEDGER,
    ) -> None:
        if graph.n > tree.n:
            raise ValueError("tree must span at least the graph's vertices")
        self.graph = graph
        self.tree = tree
        post = tree.post
        px = post[graph.u]
        py = post[graph.v]
        xs = np.concatenate([px, py])
        ys = np.concatenate([py, px])
        ws = np.concatenate([graph.w, graph.w])
        if use_fast_kernels():
            # ledger-parity fast path (see repro.kernels): identical
            # answers, charges and counters, flat-array traversal.
            # Imported lazily — kernels.flat2d needs rangesearch.tree1d,
            # so a module-level import would cycle through this package.
            from repro.kernels.flat2d import FlatRangeTree2D

            self.points = FlatRangeTree2D(xs, ys, ws, branching=branching, ledger=ledger)
        else:
            self.points = RangeTree2D(xs, ys, ws, branching=branching, ledger=ledger)
        self._nb = tree.n
        self._cost_cache = np.full(tree.n, np.nan)
        # Lemma A.1 preprocessing beyond the 2-D build: postorder mapping
        ledger.charge(work=float(2 * graph.m + tree.n), depth=float(log2ceil(max(tree.n, 2))))

    # ------------------------------------------------------------------
    # the three primitive queries of Lemma A.1
    # ------------------------------------------------------------------
    def prefill_costs(self, ledger: Ledger = NULL_LEDGER) -> None:
        """Populate the w(T_e) cache for every tree edge at once via the
        Karger subtree-aggregation trick (O(m log n) work, O(log n)
        depth) — cheaper than n separate rectangle queries; used by the
        2-respecting driver before the interest searches."""
        from repro.primitives.treesums import all_subtree_costs

        costs = all_subtree_costs(self.graph, self.tree, ledger=ledger)
        self._cost_cache[:] = costs
        self._cost_cache[self.tree.root] = np.nan  # the root has no edge

    def cost(self, u: int, ledger: Ledger = NULL_LEDGER) -> float:
        """w(T_e) for e = (u, p(u)): total weight leaving u's subtree."""
        c = self._cost_cache[u]
        if not np.isnan(c):
            ledger.charge(work=1.0, depth=1.0)
            return float(c)
        t = self.tree
        s, p = int(t.start(u)), int(t.post[u])
        val = self.points.query(s, p, 0, s - 1, ledger=ledger) + self.points.query(
            s, p, p + 1, self._nb - 1, ledger=ledger
        )
        self._cost_cache[u] = val
        return float(val)

    def cross_cost(self, u: int, v: int, ledger: Ledger = NULL_LEDGER) -> float:
        """w(T_e, T_f) for vertex-disjoint subtrees T_u, T_v."""
        t = self.tree
        return self.points.query(
            int(t.start(v)), int(t.post[v]), int(t.start(u)), int(t.post[u]), ledger=ledger
        )

    def down_cost(self, u: int, v: int, ledger: Ledger = NULL_LEDGER) -> float:
        """w(T_u, V \\ T_v) for u inside T_v (u a descendant of v)."""
        t = self.tree
        su, pu = int(t.start(u)), int(t.post[u])
        sv, pv = int(t.start(v)), int(t.post[v])
        pts = self.points
        if self.batched:
            # both rectangles share x-span [su, pu]: the flat tree walks
            # the canonical x-decomposition once for the pair (identical
            # answers, charges and stats — see query_pair_x)
            v1, v2 = pts.query_pair_x(
                su, pu, 0, sv - 1, pv + 1, self._nb - 1, ledger=ledger
            )
            return v1 + v2
        return pts.query(su, pu, 0, sv - 1, ledger=ledger) + pts.query(
            su, pu, pv + 1, self._nb - 1, ledger=ledger
        )

    # ------------------------------------------------------------------
    # batched evaluation (fast kernels)
    #
    # Each *_many method answers an array of queries at once via the flat
    # tree's query_many and returns ``(values, works, depths)``: values
    # are bit-identical to the scalar methods, works[i]/depths[i] are
    # exactly what the scalar call for query i would charge its ledger
    # (sums over the sequential sub-queries of that scalar call).  No
    # ledger is charged here — callers replay the reference charge
    # structure from the per-query arrays.  Stats counters update exactly
    # as the equivalent scalar calls would.
    #
    # Charge parity requires a prefilled cost cache (prefill_costs):
    # batches evaluate all cost() lookups up front, so an uncached vertex
    # repeated within a batch charges the miss cost each time where the
    # scalar sequence would hit the cache from the second call on.  The
    # 2-respecting driver always prefills before its batched stages.
    # ------------------------------------------------------------------
    @property
    def batched(self) -> bool:
        """True when the point structure supports batched queries."""
        return hasattr(self.points, "query_many")

    def _spans(self, us: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        t = self.tree
        p = t.post[us]
        return p - (t.size[us] - 1), p

    def cost_many(self, us: np.ndarray) -> _BatchResult:
        """Batched :meth:`cost`.  Cache misses are deduplicated: each
        distinct uncached vertex is evaluated (and cached) once with the
        two-rectangle miss charge on its *first* occurrence; later
        occurrences charge the (1, 1) cache hit — exactly the scalar
        call sequence."""
        us = np.asarray(us, dtype=np.int64)
        vals = self._cost_cache[us].copy()
        works = np.ones(us.shape[0], dtype=np.float64)
        depths = np.ones(us.shape[0], dtype=np.float64)
        miss = np.isnan(vals)
        if miss.any():
            mi = np.flatnonzero(miss)
            uniq, first, inv = np.unique(us[mi], return_index=True, return_inverse=True)
            s, p = self._spans(uniq)
            zero = np.zeros(uniq.shape[0], dtype=np.int64)
            last = np.full(uniq.shape[0], self._nb - 1, dtype=np.int64)
            v1, w1, d1 = self.points.query_many(s, p, zero, s - 1)
            v2, w2, d2 = self.points.query_many(s, p, p + 1, last)
            v = v1 + v2
            self._cost_cache[uniq] = v
            vals[mi] = v[inv]
            works[mi[first]] = w1 + w2
            depths[mi[first]] = d1 + d2
        return vals, works, depths

    def cost_argmin(self) -> Tuple[float, int]:
        """Minimum prefilled ``w(T_e)`` and the smallest edge (child
        vertex) attaining it — the 1-respecting minimum.  Requires
        ``prefill_costs``; charges nothing (the caller replays the
        reference's per-edge hit charges)."""
        c = np.where(np.isnan(self._cost_cache), np.inf, self._cost_cache)
        u = int(np.argmin(c))
        return float(c[u]), u

    def cross_cost_many(self, us: np.ndarray, vs: np.ndarray) -> _BatchResult:
        """Batched :meth:`cross_cost` (vertex-disjoint subtree pairs)."""
        us = np.asarray(us, dtype=np.int64)
        vs = np.asarray(vs, dtype=np.int64)
        su, pu = self._spans(us)
        sv, pv = self._spans(vs)
        return self.points.query_many(sv, pv, su, pu)

    def down_cost_many(self, us: np.ndarray, vs: np.ndarray) -> _BatchResult:
        """Batched :meth:`down_cost` (u a descendant of v)."""
        us = np.asarray(us, dtype=np.int64)
        vs = np.asarray(vs, dtype=np.int64)
        return self._mixed_pair_costs(us, vs, np.ones(us.shape[0], dtype=bool))

    def _mixed_pair_costs(
        self, a: np.ndarray, b: np.ndarray, down: np.ndarray
    ) -> _BatchResult:
        """Rows with ``down[i]`` get ``down_cost(a[i], b[i])``, the rest
        ``cross_cost(a[i], b[i])`` — all rectangles of the whole batch in
        ONE ``query_many`` call (its per-row answers and charges do not
        depend on what else is in the batch, so fusing is parity-neutral
        and pays the vectorized traversal's fixed cost once)."""
        n = a.shape[0]
        vals = np.empty(n, dtype=np.float64)
        works = np.empty(n, dtype=np.float64)
        depths = np.empty(n, dtype=np.float64)
        di = np.flatnonzero(down)
        ci = np.flatnonzero(~down)
        sa, pa = self._spans(a)
        sb, pb = self._spans(b)
        k = di.shape[0]
        zero = np.zeros(k, dtype=np.int64)
        last = np.full(k, self._nb - 1, dtype=np.int64)
        # down rows contribute their two complement rectangles, cross
        # rows the single (b-span x a-span) rectangle
        x1 = np.concatenate([sa[di], sa[di], sb[ci]])
        x2 = np.concatenate([pa[di], pa[di], pb[ci]])
        y1 = np.concatenate([zero, pb[di] + 1, sa[ci]])
        y2 = np.concatenate([sb[di] - 1, last, pa[ci]])
        v, w, d = self.points.query_many(x1, x2, y1, y2)
        vals[di] = v[:k] + v[k : 2 * k]
        works[di] = w[:k] + w[k : 2 * k]
        depths[di] = d[:k] + d[k : 2 * k]
        vals[ci] = v[2 * k :]
        works[ci] = w[2 * k :]
        depths[ci] = d[2 * k :]
        return vals, works, depths

    def _ancestor_mask(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """is_ancestor(a[i], b[i]) elementwise."""
        t = self.tree
        pa = t.post[a]
        pb = t.post[b]
        return (pa - (t.size[a] - 1) <= pb) & (pb <= pa)

    def cut_many(self, us: np.ndarray, vs: np.ndarray) -> _BatchResult:
        """Batched :meth:`cut` over pairs of tree edges."""
        us = np.asarray(us, dtype=np.int64)
        vs = np.asarray(vs, dtype=np.int64)
        n = us.shape[0]
        vals = np.empty(n, dtype=np.float64)
        works = np.empty(n, dtype=np.float64)
        depths = np.empty(n, dtype=np.float64)
        same = us == vs
        cu, wu, du = self.cost_many(us)
        vals[same] = cu[same]
        works[same] = wu[same]
        depths[same] = du[same]
        ns = np.flatnonzero(~same)
        if ns.shape[0]:
            cv, wv, dv = self.cost_many(vs[ns])
            anc_vu = self._ancestor_mask(vs[ns], us[ns])  # e inside T_f
            anc_uv = self._ancestor_mask(us[ns], vs[ns])  # f inside T_e
            # three disjoint cases, one fused query batch:
            #   anc_vu          -> down_cost(u, v)
            #   anc_uv & ~anc_vu-> down_cost(v, u)
            #   neither         -> cross_cost(u, v)
            swap = anc_uv & ~anc_vu
            a = np.where(swap, vs[ns], us[ns])
            b = np.where(swap, us[ns], vs[ns])
            pv, pw, pd = self._mixed_pair_costs(a, b, anc_vu | anc_uv)
            vals[ns] = cu[ns] + cv - 2.0 * pv
            works[ns] = wu[ns] + wv + pw
            depths[ns] = du[ns] + dv + pd
        return vals, works, depths

    def cross_interested_many(self, us: np.ndarray, vs: np.ndarray) -> _BatchResult:
        """Batched :meth:`cross_interested`; values are 0.0/1.0."""
        us = np.asarray(us, dtype=np.int64)
        vs = np.asarray(vs, dtype=np.int64)
        n = us.shape[0]
        vals = np.zeros(n, dtype=np.float64)
        works = np.zeros(n, dtype=np.float64)
        depths = np.zeros(n, dtype=np.float64)
        live = (us != vs) & ~self._ancestor_mask(us, vs)
        li = np.flatnonzero(live)
        if li.shape[0]:
            ce, wc, dc = self.cost_many(us[li])
            anc = self._ancestor_mask(vs[li], us[li])  # f an ancestor edge of e
            # ancestor rows need down_cost(u, v), the rest cross_cost —
            # one fused query batch for the whole round
            qv, mw, md = self._mixed_pair_costs(us[li], vs[li], anc)
            mass = np.where(anc, ce - qv, qv)
            vals[li] = (ce < 2.0 * mass).astype(np.float64)
            works[li] = wc + mw
            depths[li] = dc + md
        return vals, works, depths

    def interested_many(
        self, us: np.ndarray, vs: np.ndarray, cross: np.ndarray
    ) -> _BatchResult:
        """Rows with ``cross[i]`` evaluate ``cross_interested(us[i],
        vs[i])``, the rest ``down_interested(us[i], vs[i])`` — the whole
        mixed batch in one fused rectangle query (the terminal search's
        per-round call)."""
        us = np.asarray(us, dtype=np.int64)
        vs = np.asarray(vs, dtype=np.int64)
        cross = np.asarray(cross, dtype=bool)
        n = us.shape[0]
        vals = np.zeros(n, dtype=np.float64)
        works = np.zeros(n, dtype=np.float64)
        depths = np.zeros(n, dtype=np.float64)
        anc_uv = self._ancestor_mask(us, vs)
        # cross rows are live when f is NOT inside T_e, down rows when
        # it is — exactly the two predicates' guards
        live = (us != vs) & (cross ^ anc_uv)
        li = np.flatnonzero(live)
        if li.shape[0]:
            ce, wc, dc = self.cost_many(us[li])
            cr = cross[li]
            anc2 = self._ancestor_mask(vs[li], us[li])  # f ancestor of e
            # down rows probe down_cost(v, u); cross rows down_cost(u, v)
            # when f is an ancestor edge, else cross_cost(u, v)
            a = np.where(cr, us[li], vs[li])
            b = np.where(cr, vs[li], us[li])
            qv, mw, md = self._mixed_pair_costs(a, b, ~cr | anc2)
            mass = np.where(cr & anc2, ce - qv, qv)
            vals[li] = (ce < 2.0 * mass).astype(np.float64)
            works[li] = wc + mw
            depths[li] = dc + md
        return vals, works, depths

    def down_interested_many(self, us: np.ndarray, vs: np.ndarray) -> _BatchResult:
        """Batched :meth:`down_interested`; values are 0.0/1.0."""
        us = np.asarray(us, dtype=np.int64)
        vs = np.asarray(vs, dtype=np.int64)
        n = us.shape[0]
        vals = np.zeros(n, dtype=np.float64)
        works = np.zeros(n, dtype=np.float64)
        depths = np.zeros(n, dtype=np.float64)
        live = (us != vs) & self._ancestor_mask(us, vs)
        li = np.flatnonzero(live)
        if li.shape[0]:
            ce, wc, dc = self.cost_many(us[li])
            dv, dw, dd = self.down_cost_many(vs[li], us[li])
            vals[li] = (ce < 2.0 * dv).astype(np.float64)
            works[li] = wc + dw
            depths[li] = dc + dd
        return vals, works, depths

    # ------------------------------------------------------------------
    # Lemma A.2: the 2-respecting cut value
    # ------------------------------------------------------------------
    def cut(self, u: int, v: int, ledger: Ledger = NULL_LEDGER) -> float:
        """Value of the cut determined by tree edges e = (u, p(u)) and
        f = (v, p(v)); ``u == v`` gives the 1-respecting cut w(T_e)."""
        if u == v:
            return self.cost(u, ledger=ledger)
        t = self.tree
        if t.is_ancestor(v, u):  # e inside T_f
            return (
                self.cost(u, ledger=ledger)
                + self.cost(v, ledger=ledger)
                - 2.0 * self.down_cost(u, v, ledger=ledger)
            )
        if t.is_ancestor(u, v):  # f inside T_e
            return (
                self.cost(u, ledger=ledger)
                + self.cost(v, ledger=ledger)
                - 2.0 * self.down_cost(v, u, ledger=ledger)
            )
        return (
            self.cost(u, ledger=ledger)
            + self.cost(v, ledger=ledger)
            - 2.0 * self.cross_cost(u, v, ledger=ledger)
        )

    def cut_side_mask(self, u: int, v: Optional[int] = None) -> np.ndarray:
        """Boolean side mask (over the graph's *real* vertices) of the cut
        determined by edges e=(u,p(u)) and f=(v,p(v)): a vertex is on the
        True side iff exactly one of e, f separates it from the root."""
        t = self.tree
        posts = t.post[: self.graph.n]
        in_u = (t.start(u) <= posts) & (posts <= t.post[u])
        if v is None or v == u:
            return in_u
        in_v = (t.start(v) <= posts) & (posts <= t.post[v])
        return in_u ^ in_v

    # ------------------------------------------------------------------
    # Definition 4.7: interest predicates
    # ------------------------------------------------------------------
    def cross_interested(self, u: int, v: int, ledger: Ledger = NULL_LEDGER) -> bool:
        """Is e = (u, p(u)) cross-interested in f = (v, p(v))?

        Per Claim 4.8 the qualifying f form a root-descending path which
        may pass through ancestors of e; for an ancestor f the relevant
        mass is w(T_e, T_f \\ T_e) = cost(e) - down_cost(e, f).
        """
        if u == v:
            return False
        t = self.tree
        if t.is_ancestor(u, v):  # f strictly inside T_e: down-interest domain
            return False
        ce = self.cost(u, ledger=ledger)
        if t.is_ancestor(v, u):  # f an ancestor edge of e
            mass = ce - self.down_cost(u, v, ledger=ledger)
        else:
            mass = self.cross_cost(u, v, ledger=ledger)
        return ce < 2.0 * mass

    def down_interested(self, u: int, v: int, ledger: Ledger = NULL_LEDGER) -> bool:
        """Is e = (u, p(u)) down-interested in f = (v, p(v)) in T_e?"""
        if u == v:
            return False
        t = self.tree
        if not t.is_ancestor(u, v):
            return False
        return self.cost(u, ledger=ledger) < 2.0 * self.down_cost(v, u, ledger=ledger)

    # ------------------------------------------------------------------
    @property
    def total_nodes_visited(self) -> int:
        """Structural work of all queries so far (experiment E5)."""
        return self.points.total_nodes_visited

    @property
    def query_depth(self) -> int:
        """Model depth of one cut query: the x-descent of the 2-D tree
        plus one (parallel) auxiliary 1-D query — O(log n) for b = 2."""
        return 2 * self.points._x_depth + 2


class NaiveCutOracle:
    """Reference oracle: every query scans all m edges (O(m) work).

    Used by tests to validate :class:`CutOracle` and by the GG18-style
    baseline's cost model.  API-compatible with :class:`CutOracle` for
    the query subset it implements.
    """

    def __init__(self, graph: Graph, tree: RootedTree) -> None:
        self.graph = graph
        self.tree = tree
        t = tree
        self._pu = t.post[graph.u]
        self._pv = t.post[graph.v]

    def _in_subtree(self, posts: np.ndarray, x: int) -> np.ndarray:
        t = self.tree
        return (t.start(x) <= posts) & (posts <= t.post[x])

    def cost(self, u: int, ledger: Ledger = NULL_LEDGER) -> float:
        a = self._in_subtree(self._pu, u)
        b = self._in_subtree(self._pv, u)
        ledger.charge(work=float(self.graph.m), depth=1.0)
        return float(self.graph.w[a != b].sum())

    def cross_cost(self, u: int, v: int, ledger: Ledger = NULL_LEDGER) -> float:
        au, bu = self._in_subtree(self._pu, u), self._in_subtree(self._pv, u)
        av, bv = self._in_subtree(self._pu, v), self._in_subtree(self._pv, v)
        ledger.charge(work=float(self.graph.m), depth=1.0)
        return float(self.graph.w[(au & bv) | (av & bu)].sum())

    def down_cost(self, u: int, v: int, ledger: Ledger = NULL_LEDGER) -> float:
        au, bu = self._in_subtree(self._pu, u), self._in_subtree(self._pv, u)
        av, bv = self._in_subtree(self._pu, v), self._in_subtree(self._pv, v)
        ledger.charge(work=float(self.graph.m), depth=1.0)
        return float(self.graph.w[(au & ~bv) | (bu & ~av)].sum())

    def cut(self, u: int, v: int, ledger: Ledger = NULL_LEDGER) -> float:
        side = self.cut_side_mask_tree(u, v)
        cross = side[self.tree.post[self.graph.u]] != side[self.tree.post[self.graph.v]]
        ledger.charge(work=float(self.graph.m), depth=1.0)
        return float(self.graph.w[cross].sum())

    def cut_side_mask_tree(self, u: int, v: Optional[int]) -> np.ndarray:
        """Side mask indexed by *postorder rank* over all tree vertices."""
        t = self.tree
        ranks = np.arange(t.n)
        in_u = (t.start(u) <= ranks) & (ranks <= t.post[u])
        if v is None or v == u:
            return in_u
        in_v = (t.start(v) <= ranks) & (ranks <= t.post[v])
        return in_u ^ in_v
