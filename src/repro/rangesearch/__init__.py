"""Orthogonal range searching and the cut-query oracle (Section 4.3,
Appendix A)."""

from repro.rangesearch.cutqueries import CutOracle, NaiveCutOracle
from repro.rangesearch.tree1d import RangeQueryStats, RangeTree1D
from repro.rangesearch.tree2d import RangeTree2D

__all__ = [
    "RangeTree1D",
    "RangeTree2D",
    "RangeQueryStats",
    "CutOracle",
    "NaiveCutOracle",
]
