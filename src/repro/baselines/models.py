"""Asymptotic cost-model curves for Table 1.

[AB21] has no public implementation and GG18's full pipeline is
impractical to reproduce in full; Table 1's claims about them are
asymptotic, so the comparison benches plot these model curves (clearly
labelled as models) against our *measured* ledger work.  Constants are
deliberately 1 — the benches compare shapes and crossovers after
normalising at an anchor point, never absolute values.
"""

from __future__ import annotations

import math

__all__ = [
    "work_here",
    "work_gg18",
    "work_ab21",
    "work_sequential_gmw",
    "depth_all",
    "crossover_density",
]


def _lg(n: int) -> float:
    return math.log2(max(n, 2))


def work_here(m: int, n: int, eps: float = 0.25) -> float:
    """This paper: m log n / eps + n^{1+2eps} log^2 n / eps^2 + n log^5 n."""
    lg = _lg(n)
    return m * lg / eps + n ** (1 + 2 * eps) * lg**2 / eps**2 + n * lg**5


def work_gg18(m: int, n: int) -> float:
    """[GG18]: m log^4 n."""
    return m * _lg(n) ** 4


def work_ab21(m: int, n: int) -> float:
    """[AB21]: m log^2 n."""
    return m * _lg(n) ** 2


def work_here_best(m: int, n: int) -> float:
    """This paper's bound with eps tuned per instance (the paper
    "readjusts the parameter eps" in Section 4.3; we minimise over a
    grid eps in [1/log n, 0.5])."""
    lg = _lg(n)
    lo = max(1.0 / lg, 0.02)
    candidates = [lo + k * (0.5 - lo) / 24 for k in range(25)]
    return min(work_here(m, n, e) for e in candidates)


def work_sequential_gmw(m: int, n: int, eps: float = 0.25) -> float:
    """The matching sequential bound [MN20, GMW20]:
    m log n / eps + n^{1+2eps} log^2 n / eps^2 + n log^3 n."""
    lg = _lg(n)
    return m * lg / eps + n ** (1 + 2 * eps) * lg**2 / eps**2 + n * lg**3


def depth_all(n: int) -> float:
    """Every algorithm in Table 1 runs at O(log^3 n) depth."""
    return _lg(n) ** 3


def crossover_density(n: int) -> float:
    """Density m/n at which this paper's model work (eps tuned) first
    beats AB21's.  The paper's footnote 4 places it around
    m ~ n log^2 n; the returned density divided by log2(n)^2 should be
    O(1)."""
    lo, hi = 1.0, float(n)
    if work_here_best(int(n * hi), n) > work_ab21(int(n * hi), n):
        return float("inf")
    for _ in range(64):
        mid = (lo + hi) / 2
        if work_here_best(int(n * mid), n) <= work_ab21(int(n * mid), n):
            hi = mid
        else:
            lo = mid
    return hi
