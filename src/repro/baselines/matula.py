"""Deprecated alias: moved to :mod:`repro.arena.solvers.matula`."""

import warnings

from repro.arena.solvers.matula import matula_approx

__all__ = ["matula_approx"]

warnings.warn(
    "repro.baselines.matula moved to repro.arena.solvers.matula; "
    "this alias will be removed in the next release",
    DeprecationWarning,
    stacklevel=2,
)
