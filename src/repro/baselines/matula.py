"""Matula's deterministic (2+eps)-approximation of edge connectivity.

The paper's introduction cites this [Mat93] as the linear-time
*sequential* approximation whose parallel counterpart was missing —
the gap Section 3 fills.  We include it as the sequential baseline the
Theorem 3.1 experiments compare against.

The algorithm alternates two facts:

* the minimum weighted degree delta is itself a cut, so lambda <= delta;
* a sparse k-connectivity certificate with k = delta/(2+eps) contains
  every cut of value < k, so edges carrying weight *beyond* the
  certificate join endpoints that are >= k connected and can be
  contracted without touching any cut of value < k — in particular the
  minimum cut, unless lambda >= k = delta/(2+eps), in which case delta
  is already a (2+eps)-approximation.

Iterating until the graph collapses yields
``lambda <= min_iterations(delta) <= (2+eps) lambda``.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.errors import GraphFormatError
from repro.graphs.graph import Graph
from repro.pram.ledger import Ledger, NULL_LEDGER
from repro.results import CutResult
from repro.sparsify.certificate import certificate_forests

__all__ = ["matula_approx"]


def matula_approx(
    graph: Graph,
    epsilon: float = 0.5,
    ledger: Ledger = NULL_LEDGER,
) -> CutResult:
    """(2+eps)-approximate minimum cut value with a degree-cut witness.

    Returns a :class:`CutResult` whose value is the best (smallest)
    supervertex degree-cut seen — always >= lambda, and <= (2+eps)lambda
    — and whose side is that supervertex's preimage (a real cut of the
    input attaining the value).
    """
    if graph.n < 2:
        raise GraphFormatError("min cut needs at least 2 vertices")
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    k_comp, comp = graph.connected_components()
    if k_comp > 1:
        return CutResult(value=0.0, side=comp == comp[0])

    current = graph.coalesced()
    # orig_of[v] = mask of original vertices inside supervertex v
    mapping = np.arange(graph.n, dtype=np.int64)  # original -> current id
    best_value = math.inf
    best_vertex_preimage: Optional[np.ndarray] = None

    while current.n >= 2:
        degrees = current.weighted_degrees
        v_min = int(np.argmin(degrees))
        delta = float(degrees[v_min])
        ledger.charge(work=float(current.m + current.n), depth=1.0)
        if delta < best_value:
            best_value = delta
            best_vertex_preimage = mapping == v_min
        k = delta / (2.0 + epsilon)
        k_int = max(int(math.ceil(k)), 1)
        cert, _ = certificate_forests(current, k_int, ledger=ledger)
        # weight beyond the certificate == endpoints are > k connected
        cert_weight = {}
        for a, b, w in cert.edges():
            cert_weight[(min(a, b), max(a, b))] = w
        labels = np.arange(current.n, dtype=np.int64)
        merged_any = False
        from repro.primitives.dsu import DisjointSets

        dsu = DisjointSets(current.n)
        for i in range(current.m):
            a, b = int(current.u[i]), int(current.v[i])
            key = (min(a, b), max(a, b))
            extra = current.w[i] - cert_weight.get(key, 0.0)
            if extra > 1e-12:
                if dsu.union(a, b):
                    merged_any = True
        if not merged_any:
            break
        labels = dsu.labels()
        current, dense = current.contract(labels)
        # dense[v] is v's new compact id (labels already folded in)
        mapping = dense[mapping]
    assert best_vertex_preimage is not None
    side = best_vertex_preimage
    if side.all():  # pragma: no cover - defensive
        side = ~side
    return CutResult(value=float(best_value), side=side)
