"""Baselines: sequential exact (Stoer–Wagner), randomized (Karger–Stein),
the GG18-style parallel stand-in, and Table 1 cost models."""

from repro.baselines.gg18 import gg18_depth_model, gg18_two_respecting, gg18_work_model
from repro.baselines.karger_stein import karger_stein
from repro.baselines.matula import matula_approx
from repro.baselines.models import (
    crossover_density,
    depth_all,
    work_ab21,
    work_gg18,
    work_here,
    work_sequential_gmw,
)
from repro.baselines.stoer_wagner import stoer_wagner
from repro.baselines.two_out import two_out_contraction_min_cut

__all__ = [
    "stoer_wagner",
    "karger_stein",
    "matula_approx",
    "two_out_contraction_min_cut",
    "gg18_two_respecting",
    "gg18_work_model",
    "gg18_depth_model",
    "work_here",
    "work_gg18",
    "work_ab21",
    "work_sequential_gmw",
    "depth_all",
    "crossover_density",
]
