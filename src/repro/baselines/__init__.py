"""Baselines: the GG18-style parallel stand-in and Table 1 cost models.

The classical solver baselines (Stoer–Wagner, Karger–Stein, Matula,
2-out contraction) moved to :mod:`repro.arena.solvers` where the
arena registry wraps them as contenders.  Importing them from here
still works for one release, with a :class:`DeprecationWarning`.
"""

import warnings

from repro.baselines.gg18 import gg18_depth_model, gg18_two_respecting, gg18_work_model
from repro.baselines.models import (
    crossover_density,
    depth_all,
    work_ab21,
    work_gg18,
    work_here,
    work_sequential_gmw,
)

__all__ = [
    "stoer_wagner",
    "karger_stein",
    "matula_approx",
    "two_out_contraction_min_cut",
    "gg18_two_respecting",
    "gg18_work_model",
    "gg18_depth_model",
    "work_here",
    "work_gg18",
    "work_ab21",
    "work_sequential_gmw",
    "depth_all",
    "crossover_density",
]

#: names that now live in repro.arena.solvers (same public signatures)
_MOVED = {
    "stoer_wagner",
    "karger_stein",
    "matula_approx",
    "two_out_contraction_min_cut",
}


def __getattr__(name):
    if name in _MOVED:
        warnings.warn(
            f"repro.baselines.{name} moved to repro.arena.solvers.{name}; "
            "the repro.baselines alias will be removed in the next release",
            DeprecationWarning,
            stacklevel=2,
        )
        import repro.arena.solvers as _solvers

        return getattr(_solvers, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
