"""Deprecated alias: moved to :mod:`repro.arena.solvers.stoer_wagner`."""

import warnings

from repro.arena.solvers.stoer_wagner import stoer_wagner

__all__ = ["stoer_wagner"]

warnings.warn(
    "repro.baselines.stoer_wagner moved to repro.arena.solvers.stoer_wagner; "
    "this alias will be removed in the next release",
    DeprecationWarning,
    stacklevel=2,
)
