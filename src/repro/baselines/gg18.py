"""Geissmann–Gianinazzi-style parallel 2-respecting baseline.

[GG18] solve the cut-finding step with O(m log^3 n) work per tree by
evaluating, for every tree edge pair considered, cut values through a
mergeable "cut-tree" structure rather than through interest-guided
Monge searching; their total over Karger's framework is O(m log^4 n)
work at O(log^3 n) depth — the "old record" row of Table 1.

There is no public implementation of GG18; per DESIGN.md we substitute
an *executable cost-faithful stand-in*: the per-path and per-path-pair
divide-and-conquer is replaced by exhaustive Monge-free evaluation over
the same path decomposition, whose measured work reproduces the extra
O(log^2-3 n) factors relative to our algorithm (which is what Table 1
compares), while still returning exact 2-respecting minima for
correctness cross-checks.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from repro.graphs.graph import Graph
from repro.pram.combinators import log2ceil
from repro.pram.ledger import Ledger, NULL_LEDGER
from repro.primitives.euler import postorder
from repro.rangesearch.cutqueries import CutOracle
from repro.results import CutResult
from repro.trees.binary import binarize_parent
from repro.trees.paths import heavy_path_decomposition

__all__ = ["gg18_two_respecting", "gg18_work_model", "gg18_depth_model"]


def gg18_work_model(m: int, n: int) -> float:
    """Table 1's GG18 row: c * m log^4 n (full min-cut pipeline)."""
    lg = math.log2(max(n, 2))
    return m * lg**4


def gg18_depth_model(m: int, n: int) -> float:
    """GG18 depth: c * log^3 n."""
    return math.log2(max(n, 2)) ** 3


def gg18_two_respecting(
    graph: Graph,
    tree_parent: np.ndarray,
    ledger: Ledger = NULL_LEDGER,
) -> CutResult:
    """Exact 2-respecting min-cut at GG18-scale work.

    Every pair of decomposition paths is inspected (no interest
    filtering) and every pair of edges within the inspected block is
    evaluated (no Monge pruning); per-query work is charged at GG18's
    O(log^2 n) mergeable-structure cost via the same range-tree oracle.
    """
    bt = binarize_parent(tree_parent, ledger=ledger)
    rt = postorder(bt.parent, ledger=ledger)
    oracle = CutOracle(graph, rt, branching=2, ledger=ledger)
    dec = heavy_path_decomposition(rt, ledger=ledger)
    best: Tuple[float, int, int] = (float("inf"), -1, -1)
    # 1-respecting
    with ledger.parallel() as par:
        for u in range(rt.n):
            if rt.parent[u] < 0:
                continue
            with par.branch():
                val = oracle.cost(u, ledger=ledger)
                if val < best[0]:
                    best = (val, u, u)
    # all pairs, path-block by path-block (depth: one batch per block)
    paths = dec.paths
    with ledger.parallel() as par:
        for i in range(len(paths)):
            for j in range(i, len(paths)):
                with par.branch():
                    p = paths[i]
                    q = paths[j]
                    with ledger.batch(
                        depth=float(2 * oracle.query_depth + log2ceil(max(rt.n, 2)))
                    ):
                        for a in p:
                            a = int(a)
                            for b in q:
                                b = int(b)
                                if i == j and b <= a:
                                    continue
                                val = oracle.cut(a, b, ledger=ledger)
                                if val < best[0]:
                                    best = (val, a, b)
    value, eu, ev = best
    return CutResult(
        value=float(value),
        side=oracle.cut_side_mask(eu, ev),
        witness_edges=(int(eu), int(ev)),
        stats={"oracle_nodes_visited": float(oracle.total_nodes_visited)},
    )
