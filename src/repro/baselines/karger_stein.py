"""Deprecated alias: moved to :mod:`repro.arena.solvers.karger_stein`."""

import warnings

from repro.arena.solvers.karger_stein import karger_stein

__all__ = ["karger_stein"]

warnings.warn(
    "repro.baselines.karger_stein moved to repro.arena.solvers.karger_stein; "
    "this alias will be removed in the next release",
    DeprecationWarning,
    stacklevel=2,
)
