"""Karger–Stein recursive contraction — the classic randomized baseline.

Success probability Omega(1/log n) per run; ``repetitions`` independent
runs drive the failure probability down.  Used in tests as an
independent implementation to cross-check values, and in the benchmark
suite as a reference point for the randomized-baseline row.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from repro.errors import GraphFormatError
from repro.graphs.graph import Graph
from repro.primitives.dsu import DisjointSets
from repro.results import CutResult

__all__ = ["karger_stein"]


def _contract_to(
    u: np.ndarray,
    v: np.ndarray,
    w: np.ndarray,
    labels: np.ndarray,
    num_vertices: int,
    target: int,
    rng: np.random.Generator,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, int]:
    """Randomly contract (weight-proportional) down to ``target``
    supervertices.  Arrays are over surviving superedges; ``labels`` maps
    original vertices to supervertex ids."""
    n = num_vertices
    dsu = DisjointSets(labels.max() + 1 if labels.size else 1)
    # work on the current quotient
    while n > target and w.size:
        pick = rng.choice(w.size, p=w / w.sum())
        a, b = int(u[pick]), int(v[pick])
        if dsu.union(a, b):
            n -= 1
        lab = dsu.labels()
        u2, v2 = lab[u], lab[v]
        keep = u2 != v2
        u, v, w = u2[keep], v2[keep], w[keep]
    lab = dsu.labels()
    return u, v, w, lab[labels], n


def _recursive(
    u: np.ndarray,
    v: np.ndarray,
    w: np.ndarray,
    labels: np.ndarray,
    n: int,
    rng: np.random.Generator,
) -> Tuple[float, np.ndarray]:
    """Returns (cut value, side mask over original vertices)."""
    if n <= 6:
        # finish by exhaustive contraction trials
        best = (math.inf, labels == labels[0])
        for _ in range(16):
            uu, vv, ww, lab, k = _contract_to(u, v, w, labels, n, 2, rng)
            val = float(ww.sum())
            if val < best[0] and k == 2:
                roots = np.unique(lab)
                best = (val, lab == roots[0])
        return best
    target = max(int(math.ceil(1 + n / math.sqrt(2))), 2)
    results = []
    for _ in range(2):
        uu, vv, ww, lab, k = _contract_to(u, v, w, labels, n, target, rng)
        results.append(_recursive(uu, vv, ww, lab, k, rng))
    return min(results, key=lambda r: r[0])


def karger_stein(
    graph: Graph,
    repetitions: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
) -> CutResult:
    """Randomized min cut; exact with probability >= 1 - 1/poly(n) for
    ``repetitions ~ log^2 n`` (default)."""
    if graph.n < 2:
        raise GraphFormatError("min cut needs at least 2 vertices")
    k, labels = graph.connected_components()
    if k > 1:
        return CutResult(value=0.0, side=labels == labels[0])
    rng = rng if rng is not None else np.random.default_rng()
    if repetitions is None:
        lg = math.log2(max(graph.n, 2))
        repetitions = max(int(math.ceil(lg * lg / 2)), 3)
    g = graph.coalesced()
    labels0 = np.arange(g.n, dtype=np.int64)
    best_val, best_side = math.inf, None
    for _ in range(repetitions):
        val, side = _recursive(g.u, g.v, g.w.copy(), labels0, g.n, rng)
        if val < best_val:
            best_val, best_side = val, side
    assert best_side is not None
    return CutResult(value=float(best_val), side=best_side)
