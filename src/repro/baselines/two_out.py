"""Deprecated alias: moved to :mod:`repro.arena.solvers.two_out`."""

import warnings

from repro.arena.solvers.two_out import two_out_contraction_min_cut

__all__ = ["two_out_contraction_min_cut"]

warnings.warn(
    "repro.baselines.two_out moved to repro.arena.solvers.two_out; "
    "this alias will be removed in the next release",
    DeprecationWarning,
    stacklevel=2,
)
