"""Shared per-tree structure cache (fast kernels).

:class:`~repro.primitives.euler.RootedTree` is a frozen value object, so
derived structures (binary-lifting LCA tables, children lists) are pure
functions of the instance.  The helpers here memoise them directly on
the tree object — the cache dies with the instance, so invalidation is
by identity and a rebuilt tree never sees stale data.  This follows the
existing pattern of :func:`repro.trees.centroid._tree_children`.

Ledger note: the build charge is paid when the structure is first
built; later calls return the memo without charging, exactly like any
other cache hit in the library (e.g. the oracle's cost cache charges
the query cost once and (1, 1) thereafter — here repeat lookups are
free because the reference call sites never re-build either).

Cross-process note: the memo rides on the instance, and
:class:`RootedTree` deliberately strips ``_repro_*`` memo attributes
from its pickled state — a tree travelling to a pool worker (pickled or
attached zero-copy via :mod:`repro.shm`) arrives lean, and the worker
builds its own LCA table on first use.  Because the shm codec caches
the decoded context per worker process, that rebuild happens once per
worker, not once per shard.
"""

from __future__ import annotations

from repro.pram.ledger import Ledger, NULL_LEDGER
from repro.primitives.euler import RootedTree
from repro.primitives.lca import LCA

__all__ = ["shared_lca"]

_LCA_CACHE_KEY = "_repro_lca_cache"


def shared_lca(tree: RootedTree, ledger: Ledger = NULL_LEDGER) -> LCA:
    """The tree's binary-lifting LCA table, built (and charged) once.

    Subsequent calls on the same instance return the memoised table and
    charge nothing.
    """
    cached = getattr(tree, _LCA_CACHE_KEY, None)
    if cached is not None:
        return cached
    lca = LCA(tree, ledger=ledger)
    object.__setattr__(tree, _LCA_CACHE_KEY, lca)
    return lca
