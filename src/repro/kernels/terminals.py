"""Batched interest-terminal search (fast kernels).

The reference :func:`repro.tworespect.path_pairs.find_interest_terminals`
runs two centroid-guided searches per tree edge (Claim 4.13), each
probing the interest predicates one oracle call at a time — by far the
largest query volume of the 2-respecting pipeline.  The driver here runs
*every* edge's searches simultaneously as a masked NumPy state machine
over :func:`deepest_on_interest_path`'s control flow: probe-free
navigation steps (ancestor tests, child-toward walks, centroid component
descents) advance as vectorized rounds, and each round's pending
membership probes — both predicate kinds together — are answered by one
fused :meth:`CutOracle.interested_many` batch.

Parity argument
---------------
* Control flow: every search walks the exact decision sequence of
  ``deepest_on_interest_path`` — membership probe iff ``top`` is a
  proper ancestor of the current centroid, then the centroid's children
  probed in ``children_lists`` order with first-hit short-circuit (the
  short-circuit vertex of both member lambdas equals ``top``, which the
  search never probes, so every probe reaches the oracle).  Batched
  predicate values are bit-identical to the scalar ones, hence every
  search visits the same centroids and returns the same terminal.
* Stats: the probe multiset equals the union of the reference's per-edge
  probe sequences, so the tree's ``queries``/``nodes_visited`` counters
  advance by identical totals.
* Ledger: the reference opens one parallel branch per edge whose depth
  is the *sum* of its sequential charges (probe charges plus one
  navigation charge ``(log2ceil(n)+1, 1)`` per centroid step).  Every
  charge amount is an integer-valued float, so float accumulation order
  is exact and the per-search NumPy accumulators reproduce the per-edge
  (work, depth) pairs bit-for-bit; a single branch charging
  ``(sum_e w_e, max_e d_e)`` leaves the frame — and therefore the
  ledger — in the identical state.

Requires a prefilled cost cache (``prefill_costs``), like every batched
oracle entry point; the 2-respecting driver guarantees it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Tuple

import numpy as np

from repro.errors import GraphFormatError
from repro.pram.combinators import log2ceil
from repro.pram.ledger import Ledger, NULL_LEDGER

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (cutqueries -> kernels)
    from repro.rangesearch.cutqueries import CutOracle
    from repro.trees.centroid import CentroidDecomposition

__all__ = ["find_interest_terminals_batched"]


def _component_child_toward(
    cent_parent: np.ndarray, c: np.ndarray, y: np.ndarray
) -> np.ndarray:
    """Vectorized ``cd.child_component_toward(c[i], y[i])``: walk each
    ``y`` up the centroid tree until its parent is ``c``."""
    x = y.copy()
    while True:
        p = cent_parent[x]
        m = p != c
        if not m.any():
            return x
        if (p < 0)[m].any():
            raise GraphFormatError("target vertex is not in the centroid's component")
        x = np.where(m, p, x)


def find_interest_terminals_batched(
    oracle: "CutOracle",
    cd: "CentroidDecomposition",
    ledger: Ledger = NULL_LEDGER,
) -> Tuple[np.ndarray, np.ndarray]:
    """Drop-in for ``find_interest_terminals`` with batched probes."""
    tree = oracle.tree
    n = tree.n
    c_e = np.full(n, -1, dtype=np.int64)
    d_e = np.full(n, -1, dtype=np.int64)
    parent = np.asarray(tree.parent, dtype=np.int64)
    edges = np.flatnonzero(parent >= 0)
    ne = edges.shape[0]
    if ne == 0:
        with ledger.parallel():
            pass
        return c_e, d_e
    post = np.asarray(tree.post, dtype=np.int64)
    first = post - (np.asarray(tree.size, dtype=np.int64) - 1)
    cent_parent = np.asarray(cd.cent_parent, dtype=np.int64)
    maxlev = cd.height  # O(n) property — hoisted out of the round loop
    navw = float(log2ceil(max(n, 2)) + 1)

    # children in ``children_lists`` order: grouped by parent, each
    # group in increasing child index (the reference's probe order)
    korder = np.argsort(parent[edges], kind="stable")
    ch_flat = edges[korder]
    ch_cnt = np.bincount(parent[edges], minlength=n).astype(np.int64)
    ch_off = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(ch_cnt, out=ch_off[1:])

    # two searches per edge u: [0:ne] cross (top = root), [ne:) down
    # (top = u); both share the edge's reference branch, whose charges
    # are the *sum* of the two searches' — integer-valued, so per-search
    # accumulators recombine exactly
    k2 = 2 * ne
    edge = np.concatenate([edges, edges])
    top = np.concatenate([np.full(ne, tree.root, dtype=np.int64), edges])
    cur = np.full(k2, cd.cent_root, dtype=np.int64)
    kidx = np.zeros(k2, dtype=np.int64)
    iters = np.zeros(k2, dtype=np.int64)
    accw = np.zeros(k2, dtype=np.float64)
    accd = np.zeros(k2, dtype=np.float64)
    alive = np.ones(k2, dtype=bool)
    pending = np.full(k2, -1, dtype=np.int64)  # probe vertex, -1 = none
    in_scan = np.zeros(k2, dtype=bool)  # pending probe is a child probe
    out = np.full(k2, -1, dtype=np.int64)
    is_cross = np.zeros(k2, dtype=bool)
    is_cross[:ne] = True

    def finish(idx: np.ndarray) -> None:
        out[idx] = cur[idx]
        alive[idx] = False
        pending[idx] = -1

    def nav_step(idx: np.ndarray) -> None:
        """One off-path centroid move toward ``top`` (probe-free)."""
        if not idx.shape[0]:
            return
        c = cur[idx]
        t = top[idx]
        # proper ancestor of top: descend toward the child holding top
        anc_ct = (first[c] <= post[t]) & (post[t] <= post[c]) & (c != t)
        step = parent[c]
        bad = ~anc_ct & (step < 0)
        if bad.any():  # pragma: no cover - c can only be the root if top is too
            finish(idx[bad])
            out[idx[bad]] = t[bad]
            idx, c, t, anc_ct, step = (
                idx[~bad], c[~bad], t[~bad], anc_ct[~bad], step[~bad]
            )
        ai = np.flatnonzero(anc_ct)
        if ai.shape[0]:
            # _tree_child_toward: first child of c whose subtree holds top
            res = np.full(ai.shape[0], -1, dtype=np.int64)
            unresolved = np.ones(ai.shape[0], dtype=bool)
            kk = 0
            while unresolved.any():
                ui = np.flatnonzero(unresolved)
                cc = c[ai[ui]]
                has = ch_cnt[cc] > kk
                if not has.any():
                    raise GraphFormatError("target not under ancestor")
                ch = ch_flat[np.where(has, ch_off[cc] + kk, 0)]
                tt = post[t[ai[ui]]]
                hit = has & (first[ch] <= tt) & (tt <= post[ch])
                res[ui[hit]] = ch[hit]
                unresolved[ui[hit]] = False
                kk += 1
            step = step.copy()
            step[ai] = res
        cur[idx] = _component_child_toward(cent_parent, c, step)
        accw[idx] += navw
        accd[idx] += 1.0

    def enter_scan(idx: np.ndarray) -> None:
        """Centroid confirmed on-path: probe its first child or finish."""
        if not idx.shape[0]:
            return
        kidx[idx] = 0
        deg = ch_cnt[cur[idx]]
        leaf = deg == 0
        finish(idx[leaf])
        go = idx[~leaf]
        pending[go] = ch_flat[ch_off[cur[go]]]
        in_scan[go] = True

    while alive.any():
        # drive every probe-less search to its next probe (or its end)
        while True:
            di = np.flatnonzero(alive & (pending < 0))
            if not di.shape[0]:
                break
            iters[di] += 1
            if (iters[di] > maxlev + 2).any():  # pragma: no cover - safety net
                raise GraphFormatError("centroid search failed to converge")
            c = cur[di]
            t = top[di]
            eq = c == t
            anc_tc = (first[t] <= post[c]) & (post[c] <= post[t])
            member = ~eq & anc_tc  # proper ancestor: membership unknown
            mi = di[member]
            pending[mi] = cur[mi]
            in_scan[mi] = False
            enter_scan(di[eq])
            nav_step(di[~eq & ~anc_tc])
        live = np.flatnonzero(alive)
        if not live.shape[0]:
            break
        # both predicate kinds of the round answered by ONE fused batch
        vals, works, depths = oracle.interested_many(
            edge[live], pending[live], is_cross[live]
        )
        accw[live] += works
        accd[live] += depths
        yes = vals != 0.0
        scan = in_scan[live]
        # membership probes: interested -> child scan, else move on
        enter_scan(live[~scan & yes])
        off = live[~scan & ~yes]
        pending[off] = -1  # back to the drive loop after the move
        nav_step(off)
        # child probes: first interested child wins; else try the next
        # sibling, finishing at the centroid when none is left
        win = live[scan & yes]
        if win.shape[0]:
            nxt = pending[win]
            cur[win] = _component_child_toward(cent_parent, cur[win], nxt)
            accw[win] += navw
            accd[win] += 1.0
            pending[win] = -1
            in_scan[win] = False
        miss = live[scan & ~yes]
        if miss.shape[0]:
            kidx[miss] += 1
            done = kidx[miss] >= ch_cnt[cur[miss]]
            finish(miss[done])
            more = miss[~done]
            pending[more] = ch_flat[ch_off[cur[more]] + kidx[more]]

    c_e[edge[:ne]] = out[:ne]
    d_e[edge[ne:]] = out[ne:]
    with ledger.parallel() as par:
        with par.branch():
            ledger.charge(
                work=float(accw.sum()),
                depth=float((accd[:ne] + accd[ne:]).max()),
            )
    return c_e, d_e
