"""Fast-path kernels with a strict parity contract.

The reference implementations (range trees of Python node objects,
entry-at-a-time SMAWK, per-edge centroid searches) are the *instrument*
of this repro: their ledger charges are what the theorems are checked
against.  This package provides drop-in fast paths whose contract is

* **bit-identical answers** (cut values, oracle sums, side masks), and
* **identical ledger work/depth charges** (and identical structural
  visit counters)

to the reference paths, enforced by ``tests/test_kernels_parity.py``.
The fast paths win wall-clock by replacing per-entry Python callbacks
with flattened CSR-style array traversals (:mod:`repro.kernels.flat2d`),
batched oracle evaluation (the ``*_many`` methods of
:class:`repro.rangesearch.cutqueries.CutOracle`), batched
SMAWK drivers (:mod:`repro.kernels.monge`), a level-synchronous
interest-terminal search (:mod:`repro.kernels.terminals`) and shared
per-tree structures (:mod:`repro.kernels.treecache`).

Mode selection
--------------
``REPRO_KERNELS=fast`` (default) enables the fast paths;
``REPRO_KERNELS=reference`` forces the original per-entry code.  Tests
and the wall-clock harness flip modes programmatically with
:func:`force_kernels`.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Iterator, Optional

from repro.errors import InvalidParameterError

__all__ = ["kernels_mode", "use_fast_kernels", "force_kernels"]

_MODES = ("fast", "reference")

_override: ContextVar[Optional[str]] = ContextVar("repro_kernels_mode", default=None)


def kernels_mode() -> str:
    """The active kernel mode: ``"fast"`` or ``"reference"``.

    Resolution order: :func:`force_kernels` override, then the
    ``REPRO_KERNELS`` environment variable, then ``"fast"``.
    """
    forced = _override.get()
    if forced is not None:
        return forced
    mode = os.environ.get("REPRO_KERNELS", "fast").strip().lower() or "fast"
    if mode not in _MODES:
        raise InvalidParameterError(
            f"REPRO_KERNELS must be one of {_MODES}, got {mode!r}"
        )
    return mode


def use_fast_kernels() -> bool:
    """True when the fast-path kernels should be used."""
    return kernels_mode() == "fast"


@contextmanager
def force_kernels(mode: str) -> Iterator[None]:
    """Force the kernel mode for the duration of the block (contextvar
    scoped, so concurrent callers in other contexts are unaffected)."""
    if mode not in _MODES:
        raise InvalidParameterError(f"kernel mode must be one of {_MODES}, got {mode!r}")
    token = _override.set(mode)
    try:
        yield
    finally:
        _override.reset(token)
