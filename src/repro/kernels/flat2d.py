"""Flattened CSR-style 2-D range tree with batched NumPy traversal.

Drop-in fast path for :class:`repro.rangesearch.tree2d.RangeTree2D`
(Lemma 4.25): the same first-level b-ary tree over x with per-node
auxiliary 1-D trees over y, but stored as a handful of flat arrays
instead of ~n log n Python node objects:

* ``YS_ALL``  — every x-level's y-sorted keys, concatenated;
* ``AUX[j]``  — for every auxiliary depth j, the level-j cell arrays of
  *all* auxiliary trees (all x-levels, node-major), concatenated;
* per-x-level offset/size tables that turn (x-level, node, depth, index)
  into one flat position.

The parity contract (see :mod:`repro.kernels`): answers are
**bit-identical** to the reference — every query folds exactly the cells
the reference visits, in exactly the reference order (left-side cells
ascending, right-side cells descending, one independent partial per
auxiliary node, partials folded in x-descent order) — and visited-node
counts, stats counters and ledger charge amounts are identical.

:meth:`query` is a scalar port of the reference loops over the flat
arrays.  :meth:`query_many` answers a whole array of rectangles at once:
the x-descent and the auxiliary binary searches/folds run as masked
NumPy rounds across all queries simultaneously, so the per-query Python
overhead disappears.  Construction is also vectorised: each x-level's
per-node stable y-sorts and b-ary up-sweeps are single reshaped NumPy
operations (identical additions in identical order), ~20x faster than
building the node objects.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import List, Tuple

import numpy as np

from repro.obs.counters import counters
from repro.pram.combinators import log2ceil
from repro.pram.ledger import Ledger, NULL_LEDGER
from repro.primitives.sort import parallel_argsort
from repro.rangesearch.tree1d import RangeQueryStats

__all__ = ["FlatRangeTree2D"]

#: Batch sizes at or below this answer :meth:`FlatRangeTree2D.query_many`
#: with a scalar loop — the vectorized rounds carry ~1ms of fixed mask
#: cost, which a ~8us/rectangle scalar loop undercuts until roughly two
#: hundred rectangles.  Affects wall-clock only, never parity.
_SCALAR_BATCH_CUTOFF = 192


class _ChargeRecorder:
    """Captures the single (work, depth) charge of one scalar query."""

    __slots__ = ("work", "depth")

    def charge(self, work: float, depth: float = 1.0) -> None:
        self.work = work
        self.depth = depth


def _chain_sizes(s: int, b: int) -> List[int]:
    """Level sizes of a 1-D tree over ``s`` cells: s, ceil(s/b), ..., 1."""
    sizes = [s]
    while sizes[-1] > 1:
        sizes.append(-(-sizes[-1] // b))
    return sizes


def _chain_levels(mat: np.ndarray, b: int) -> List[np.ndarray]:
    """Per-node up-sweep, vectorised over the rows (= nodes) of ``mat``.

    Row-major reshape keeps every b-block inside one row, so the
    additions are the same ones the reference performs per node.
    """
    levels = [mat]
    while levels[-1].shape[1] > 1:
        cur = levels[-1]
        pad = (-cur.shape[1]) % b
        if pad:
            cur = np.concatenate(
                [cur, np.zeros((cur.shape[0], pad), dtype=cur.dtype)], axis=1
            )
        levels.append(cur.reshape(cur.shape[0], -1, b).sum(axis=2))
    return levels


class FlatRangeTree2D:
    """Query-compatible flat replacement for ``RangeTree2D``."""

    __slots__ = (
        "size",
        "branching",
        "stats",
        "aux_stats",
        "_x_depth",
        "xs_np",
        "leaf_ys_np",
        "leaf_ws_np",
        "YS_ALL",
        "AUX",
        "_xs_list",
        "_leaf_ys_list",
        "_leaf_ws_list",
        "_ys_list",
        "_nxt_py",
        "_kfull_py",
        "_ysbase_py",
        "_dfull_py",
        "_dtail_py",
        "_scfull_py",
        "_sctail_py",
        "_auxbase_py",
        "_sfull_py",
        "_aux_lists",
        "_int_keys",
        "_nxt",
        "_kfull",
        "_tail",
        "_ysbase",
        "_dfull",
        "_dtail",
        "_scfull",
        "_sctail",
        "_auxbase",
        "_sfull",
        "_num_levels",
        "_max_aux_depth",
    )

    def __init__(
        self,
        xs: np.ndarray,
        ys: np.ndarray,
        ws: np.ndarray,
        branching: int = 2,
        ledger: Ledger = NULL_LEDGER,
    ) -> None:
        if branching < 2:
            raise ValueError("branching must be >= 2")
        xs = np.asarray(xs)
        ys = np.asarray(ys)
        ws = np.asarray(ws, dtype=np.float64)
        if not (xs.shape == ys.shape == ws.shape):
            raise ValueError("point array length mismatch")
        order = parallel_argsort(xs, ledger=ledger)
        self.xs_np = xs[order]
        self.leaf_ys_np = ys[order]
        self.leaf_ws_np = ws[order]
        self.size = int(self.xs_np.shape[0])
        b = self.branching = int(branching)
        size = self.size

        # per-x-level tables (appended per level, frozen to arrays below)
        nxt_l: List[int] = []
        kfull_l: List[int] = []
        tail_l: List[int] = []
        ysbase_l: List[int] = []
        dfull_l: List[int] = []
        dtail_l: List[int] = []
        scfull_l: List[int] = []
        sctail_l: List[int] = []
        sfull_l: List[List[int]] = []
        # aux cell arrays, keyed by auxiliary depth j; each entry is a list
        # of (x-level chunks) concatenated at the end.  auxbase[L][j] is the
        # offset of x-level L's depth-j region inside AUX[j].
        aux_chunks: List[List[np.ndarray]] = []
        aux_sizes: List[int] = []
        auxbase_l: List[List[int]] = []
        ys_chunks: List[np.ndarray] = []
        ys_total = 0

        cur_ys = self.leaf_ys_np
        cur_ws = self.leaf_ws_np
        block = 1
        while block < max(size, 1):
            nxt = block * b
            k_full = size // nxt
            tail = size - k_full * nxt
            ny = cur_ys.copy()
            nw = cur_ws.copy()
            split = k_full * nxt
            if k_full:
                ym = ny[:split].reshape(k_full, nxt)
                o = np.argsort(ym, axis=1, kind="stable")
                ny[:split] = np.take_along_axis(ym, o, axis=1).ravel()
                nw[:split] = np.take_along_axis(
                    nw[:split].reshape(k_full, nxt), o, axis=1
                ).ravel()
            if tail:
                o = np.argsort(ny[split:], kind="stable")
                ny[split:] = ny[split:][o]
                nw[split:] = nw[split:][o]

            full_sizes = _chain_sizes(nxt, b)
            tail_sizes = _chain_sizes(tail, b) if tail else []
            full_levels = (
                _chain_levels(nw[:split].reshape(k_full, nxt), b) if k_full else []
            )
            tail_levels = (
                _chain_levels(nw[split:].reshape(1, tail), b) if tail else []
            )
            d_full = len(full_sizes)
            d_tail = len(tail_sizes)
            bases: List[int] = []
            for j in range(max(d_full if k_full else 0, d_tail)):
                while len(aux_chunks) <= j:
                    aux_chunks.append([])
                    aux_sizes.append(0)
                bases.append(aux_sizes[j])
                if k_full and j < d_full:
                    arr = full_levels[j].ravel()
                    aux_chunks[j].append(arr)
                    aux_sizes[j] += arr.shape[0]
                if tail and j < d_tail:
                    arr = tail_levels[j].ravel()
                    aux_chunks[j].append(arr)
                    aux_sizes[j] += arr.shape[0]

            nxt_l.append(nxt)
            kfull_l.append(k_full)
            tail_l.append(tail)
            ysbase_l.append(ys_total)
            dfull_l.append(d_full)
            dtail_l.append(d_tail if tail else 0)
            scfull_l.append(2 * log2ceil(max(nxt, 2)))
            sctail_l.append(2 * log2ceil(max(tail, 2)) if tail else 0)
            sfull_l.append(full_sizes)
            auxbase_l.append(bases)
            ys_chunks.append(ny)
            ys_total += size

            # the reference charges only the per-level merge here (its
            # per-node RangeTree1D builds go to NULL_LEDGER)
            ledger.charge(
                work=float(2 * max(size, 1)),
                depth=float(log2ceil(max(size, 2))),
            )
            cur_ys, cur_ws = ny, nw
            block = nxt

        nl = len(nxt_l)
        self._num_levels = nl
        self._x_depth = nl + 1
        self.YS_ALL = (
            np.concatenate(ys_chunks) if ys_chunks else np.empty(0, dtype=ys.dtype)
        )
        self.AUX = [
            np.concatenate(chunks) if chunks else np.empty(0, dtype=np.float64)
            for chunks in aux_chunks
        ]
        self._max_aux_depth = len(self.AUX)
        # list mirrors of the *keys* (bisect on a numpy array unboxes one
        # scalar per comparison; on a list it compares cached floats).
        # AUX cell mirrors are built lazily on the first scalar query —
        # batched-only workloads never pay for them.
        self._aux_lists: List[List[float]] | None = None
        self._int_keys = bool(np.issubdtype(self.YS_ALL.dtype, np.integer))
        self._xs_list = self.xs_np.tolist()
        self._leaf_ys_list = self.leaf_ys_np.tolist()
        self._leaf_ws_list = self.leaf_ws_np.tolist()
        self._ys_list = self.YS_ALL.tolist()
        self._nxt = np.asarray(nxt_l, dtype=np.int64)
        self._kfull = np.asarray(kfull_l, dtype=np.int64)
        self._tail = np.asarray(tail_l, dtype=np.int64)
        self._ysbase = np.asarray(ysbase_l, dtype=np.int64)
        self._dfull = np.asarray(dfull_l, dtype=np.int64)
        self._dtail = np.asarray(dtail_l, dtype=np.int64)
        self._scfull = np.asarray(scfull_l, dtype=np.int64)
        self._sctail = np.asarray(sctail_l, dtype=np.int64)
        auxbase = np.full((max(nl, 1), max(self._max_aux_depth, 1)), -1, dtype=np.int64)
        sfull = np.zeros((max(nl, 1), max(self._max_aux_depth, 1)), dtype=np.int64)
        for L in range(nl):
            for j, base in enumerate(auxbase_l[L]):
                auxbase[L, j] = base
            for j, s in enumerate(sfull_l[L]):
                sfull[L, j] = s
        self._auxbase = auxbase
        self._sfull = sfull
        # plain-int tables for the scalar path (numpy scalar indexing
        # would dominate a per-entry query)
        self._nxt_py = nxt_l
        self._kfull_py = kfull_l
        self._ysbase_py = ysbase_l
        self._dfull_py = dfull_l
        self._dtail_py = [d if t else 0 for d, t in zip(dtail_l, tail_l)]
        self._scfull_py = scfull_l
        self._sctail_py = sctail_l
        self._auxbase_py = auxbase_l
        self._sfull_py = sfull_l
        self.stats = RangeQueryStats()
        self.aux_stats = RangeQueryStats()

    # ------------------------------------------------------------------
    # pickling / shared-memory transport
    # ------------------------------------------------------------------
    # The Python-list mirrors (_xs_list & co.) are pure caches: exact
    # float images of the numpy arrays, kept only because bisect and the
    # scalar fold run faster over lists.  They are dropped from the
    # pickled state — they double the payload and a shared-memory worker
    # must not materialise per-process list copies of data it attached
    # zero-copy — and lazily rebuilt on the first scalar query
    # (float64 -> float is exact, so a rebuilt mirror is bit-identical).
    # With the repro.shm codec, unpickling is the buffer-backed
    # construction path: every ndarray slot comes back as a read-only
    # view into the published segment and no sort or level build reruns.
    _MIRROR_SLOTS = (
        "_xs_list",
        "_leaf_ys_list",
        "_leaf_ws_list",
        "_ys_list",
        "_aux_lists",
        "stats",
        "aux_stats",
    )

    def __getstate__(self) -> dict:
        return {
            name: getattr(self, name)
            for name in self.__slots__
            if name not in self._MIRROR_SLOTS
        }

    def __setstate__(self, state: dict) -> None:
        for name, value in state.items():
            object.__setattr__(self, name, value)
        self._xs_list = None
        self._leaf_ys_list = None
        self._leaf_ws_list = None
        self._ys_list = None
        self._aux_lists = None
        self.stats = RangeQueryStats()
        self.aux_stats = RangeQueryStats()

    def _ensure_scalar_mirrors(self) -> None:
        """Rebuild the list mirrors after unpickling (no-op otherwise)."""
        if self._xs_list is None:
            self._xs_list = self.xs_np.tolist()
            self._leaf_ys_list = self.leaf_ys_np.tolist()
            self._leaf_ws_list = self.leaf_ws_np.tolist()
            self._ys_list = self.YS_ALL.tolist()

    # ------------------------------------------------------------------
    # offsets
    # ------------------------------------------------------------------
    def _aux_offset(self, level: int, node: int, j: int) -> int:
        """Flat position of (x-level, node)'s depth-j cell 0 in AUX[j]."""
        k_full = self._kfull_py[level]
        base = self._auxbase_py[level][j]
        sfj = self._sfull_py[level][j]
        if node < k_full:
            return base + node * sfj
        return base + k_full * sfj

    # ------------------------------------------------------------------
    # scalar query (port of RangeTree2D.query over flat arrays)
    # ------------------------------------------------------------------
    def _aux_scalar(self, level: int, node: int, y1, y2) -> Tuple[float, int, int]:
        """One auxiliary 1-D query: ``(partial, visited, node_depth)``."""
        nxt = self._nxt_py[level]
        lo = node * nxt
        hi = lo + nxt
        if hi > self.size:
            hi = self.size
        s = hi - lo
        kfull = self._kfull_py[level]
        is_tail = node >= kfull
        d = self._dtail_py[level] if is_tail else self._dfull_py[level]
        st = self.aux_stats
        st.queries += 1
        if s == 0 or y2 < y1:
            return 0.0, 1, d
        base = self._ysbase_py[level] + lo
        ys_all = self._ys_list
        l = bisect_left(ys_all, y1, base, base + s) - base
        r = bisect_right(ys_all, y2, base, base + s) - base
        b = self.branching
        total = 0.0
        cells = 0
        aux = self._aux_lists
        if aux is None:
            # float64 -> Python float is exact, so list reads are
            # bit-identical to ndarray reads
            aux = self._aux_lists = [a.tolist() for a in self.AUX]
        bases = self._auxbase_py[level]
        sfull = self._sfull_py[level]
        nodeoff = kfull if is_tail else node
        j = 0
        while l < r:
            lst = aux[j]
            off = bases[j] + nodeoff * sfull[j]
            lm = l % b
            if lm:
                lend = l - lm + b
                if lend > r:
                    lend = r
                k = lend - l
                if k > 4:
                    # left-to-right fold of the same cells: sum() with a
                    # float start accumulates sequentially, bit-identical
                    # to the item-by-item loop
                    total = sum(lst[off + l : off + lend], total)
                else:
                    for p in range(off + l, off + lend):
                        total += lst[p]
                cells += k
                l = lend
            rm = r % b
            if rm and l < r:
                rnew = r - rm
                if rnew < l:
                    rnew = l
                k = r - rnew
                if k > 4:
                    total = sum(lst[off + rnew : off + r][::-1], total)
                else:
                    for p in range(off + r - 1, off + rnew - 1, -1):
                        total += lst[p]
                cells += k
                r = rnew
            if l >= r:
                break
            l //= b
            r //= b
            j += 1
        st.nodes_visited += cells
        sc = self._sctail_py[level] if is_tail else self._scfull_py[level]
        return total, cells + sc, d

    def query(self, x1, x2, y1, y2, ledger: Ledger = NULL_LEDGER) -> float:
        """Total weight of points with x in [x1, x2], y in [y1, y2]."""
        stats = self.stats
        stats.queries += 1
        if self.size == 0 or x2 < x1 or y2 < y1:
            ledger.charge(work=1.0, depth=1.0)
            return 0.0
        self._ensure_scalar_mirrors()
        l = bisect_left(self._xs_list, x1)
        r = bisect_right(self._xs_list, x2)
        total = 0.0
        visited = 2 * log2ceil(max(self.size, 2))
        b = self.branching
        leaf_ys, leaf_ws = self._leaf_ys_list, self._leaf_ws_list
        if l % b:
            lend = min(r, l - l % b + b)
            k = lend - l
            if k > 4:
                seg = self.leaf_ys_np[l:lend]
                take = (y1 <= seg) & (seg <= y2)
                total = sum(self.leaf_ws_np[l:lend][take].tolist(), total)
                visited += k
                l = lend
            else:
                while l < lend:
                    if y1 <= leaf_ys[l] <= y2:
                        total += leaf_ws[l]
                    visited += 1
                    l += 1
        if r % b and l < r:
            rnew = max(l, r - r % b)
            k = r - rnew
            if k > 4:
                seg = self.leaf_ys_np[rnew:r]
                take = (y1 <= seg) & (seg <= y2)
                total = sum(self.leaf_ws_np[rnew:r][take].tolist()[::-1], total)
                visited += k
                r = rnew
            else:
                while r > rnew:
                    r -= 1
                    if y1 <= leaf_ys[r] <= y2:
                        total += leaf_ws[r]
                    visited += 1
        l //= b
        r //= b
        level = 0
        aux_work = 0
        aux_depth = 0
        while l < r:
            while l % b and l < r:
                part, vis, d = self._aux_scalar(level, l, y1, y2)
                total += part
                aux_work += vis
                aux_depth = max(aux_depth, d)
                visited += 1
                l += 1
            while r % b and l < r:
                r -= 1
                part, vis, d = self._aux_scalar(level, r, y1, y2)
                total += part
                aux_work += vis
                aux_depth = max(aux_depth, d)
                visited += 1
            if l >= r:
                break
            l //= b
            r //= b
            level += 1
        stats.nodes_visited += visited
        ledger.charge(
            work=float(visited + aux_work), depth=float(self._x_depth + aux_depth)
        )
        return float(total)

    def query_pair_x(
        self, x1, x2, ya1, ya2, yb1, yb2, ledger: Ledger = NULL_LEDGER
    ) -> Tuple[float, float]:
        """Two scalar queries sharing one x-range, one x-descent.

        Returns ``(total_a, total_b)`` for rectangles
        ``[x1,x2] x [ya1,ya2]`` and ``[x1,x2] x [yb1,yb2]``; answers,
        ledger charges (one per rectangle, a then b) and stats advances
        are identical to two back-to-back :meth:`query` calls — the
        canonical x-decomposition is the same for both, so it is walked
        once.  ``down_cost`` is the intended caller: its two rectangles
        always share the subtree's x-span.
        """
        ea = self.size == 0 or x2 < x1 or ya2 < ya1
        eb = self.size == 0 or x2 < x1 or yb2 < yb1
        if ea or eb:
            # a degenerate side charges (1, 1); keep the reference call
            # sequence rather than special-casing the fused walk
            va = self.query(x1, x2, ya1, ya2, ledger=ledger)
            vb = self.query(x1, x2, yb1, yb2, ledger=ledger)
            return va, vb
        stats = self.stats
        stats.queries += 2
        self._ensure_scalar_mirrors()
        l = bisect_left(self._xs_list, x1)
        r = bisect_right(self._xs_list, x2)
        ta = 0.0
        tb = 0.0
        visited = 2 * log2ceil(max(self.size, 2))
        b = self.branching
        leaf_ys, leaf_ws = self._leaf_ys_list, self._leaf_ws_list
        if l % b:
            lend = min(r, l - l % b + b)
            while l < lend:
                y = leaf_ys[l]
                w = leaf_ws[l]
                if ya1 <= y <= ya2:
                    ta += w
                if yb1 <= y <= yb2:
                    tb += w
                visited += 1
                l += 1
        if r % b and l < r:
            rnew = max(l, r - r % b)
            while r > rnew:
                r -= 1
                y = leaf_ys[r]
                w = leaf_ws[r]
                if ya1 <= y <= ya2:
                    ta += w
                if yb1 <= y <= yb2:
                    tb += w
                visited += 1
        l //= b
        r //= b
        level = 0
        aux_wa = aux_wb = 0
        aux_da = aux_db = 0
        while l < r:
            while l % b and l < r:
                pa, wa, da = self._aux_scalar(level, l, ya1, ya2)
                pb, wb, db = self._aux_scalar(level, l, yb1, yb2)
                ta += pa
                tb += pb
                aux_wa += wa
                aux_wb += wb
                if da > aux_da:
                    aux_da = da
                if db > aux_db:
                    aux_db = db
                visited += 1
                l += 1
            while r % b and l < r:
                r -= 1
                pa, wa, da = self._aux_scalar(level, r, ya1, ya2)
                pb, wb, db = self._aux_scalar(level, r, yb1, yb2)
                ta += pa
                tb += pb
                aux_wa += wa
                aux_wb += wb
                if da > aux_da:
                    aux_da = da
                if db > aux_db:
                    aux_db = db
                visited += 1
            if l >= r:
                break
            l //= b
            r //= b
            level += 1
        stats.nodes_visited += 2 * visited
        ledger.charge(
            work=float(visited + aux_wa), depth=float(self._x_depth + aux_da)
        )
        ledger.charge(
            work=float(visited + aux_wb), depth=float(self._x_depth + aux_db)
        )
        return float(ta), float(tb)

    # ------------------------------------------------------------------
    # batched query
    # ------------------------------------------------------------------
    def _vec_bisect(
        self, base: np.ndarray, s: np.ndarray, target: np.ndarray, side: str
    ) -> np.ndarray:
        """Per-query binary search in ``YS_ALL[base : base + s]``.

        Branchless rounds: every round recomputes all rows with clipped
        gathers and ``where`` merges — converged rows (``lo == hi``) are
        carried through unchanged, which costs a few redundant wide ops
        but avoids the flatnonzero/fancy-index round trips of a masked
        loop (~2x faster on the mixed-segment batches the canonical
        decomposition produces).
        """
        lo = np.zeros(base.shape[0], dtype=np.int64)
        hi = s.astype(np.int64).copy()
        ys = self.YS_ALL
        left = side == "left"
        limit = ys.shape[0] - 1
        active = lo < hi
        while active.any():
            mid = (lo + hi) >> 1
            v = ys[np.minimum(base + mid, limit)]
            gr = (v < target) if left else (v <= target)
            adv = active & gr
            lo = np.where(adv, mid + 1, lo)
            hi = np.where(active & ~gr, mid, hi)
            active = lo < hi
        return lo

    def _aux_many(
        self,
        levels: np.ndarray,
        nodes: np.ndarray,
        y1: np.ndarray,
        y2: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Batched auxiliary 1-D queries: ``(partials, visited, depths)``.

        Each query's partial folds its cells in the reference order:
        per auxiliary level, left-side cells ascending then right-side
        cells descending.
        """
        n = levels.shape[0]
        nxt = self._nxt[levels]
        lo = nodes * nxt
        hi = np.minimum(lo + nxt, self.size)
        s = hi - lo
        is_tail = nodes >= self._kfull[levels]
        dep = np.where(is_tail, self._dtail[levels], self._dfull[levels])
        sc = np.where(is_tail, self._sctail[levels], self._scfull[levels])
        self.aux_stats.queries += n
        empty = (s == 0) | (y2 < y1)
        base = self._ysbase[levels] + lo
        if self._int_keys:
            # integer keys: bisect_right(a, y2) == bisect_left(a, y2+1),
            # so both boundary searches fuse into one doubled-row pass
            both = self._vec_bisect(
                np.concatenate([base, base]),
                np.concatenate([s, s]),
                np.concatenate([y1, y2 + 1]),
                "left",
            )
            l = both[:n]
            r = both[n:]
        else:
            l = self._vec_bisect(base, s, y1, "left")
            r = self._vec_bisect(base, s, y2, "right")
        l[empty] = 0
        r[empty] = 0
        b = self.branching
        parts = np.zeros(n, dtype=np.float64)
        cells = np.zeros(n, dtype=np.int64)
        kfull = self._kfull[levels]
        aux = self.AUX
        nodeoff = np.where(is_tail, kfull, nodes)
        j = 0
        while j < self._max_aux_depth and (l < r).any():
            off = self._auxbase[levels, j] + nodeoff * self._sfull[levels, j]
            arr = aux[j]
            if b == 2:
                # binary chains add at most one left and one right cell
                # per level — one branchless pass per side (same values,
                # same per-query left-then-right order as the loop below)
                ml = ((l & 1) == 1) & (l < r)
                parts += np.where(ml, arr[np.where(ml, off + l, 0)], 0.0)
                cells += ml
                l = l + ml
                mr = ((r & 1) == 1) & (l < r)
                r = r - mr
                parts += np.where(mr, arr[np.where(mr, off + r, 0)], 0.0)
                cells += mr
            else:
                while True:
                    m = (l % b != 0) & (l < r)
                    if not m.any():
                        break
                    mi = np.flatnonzero(m)
                    parts[mi] += arr[off[mi] + l[mi]]
                    cells[mi] += 1
                    l[mi] += 1
                while True:
                    m = (r % b != 0) & (l < r)
                    if not m.any():
                        break
                    mi = np.flatnonzero(m)
                    r[mi] -= 1
                    parts[mi] += arr[off[mi] + r[mi]]
                    cells[mi] += 1
            l //= b
            r //= b
            j += 1
        self.aux_stats.nodes_visited += int(cells.sum())
        vis = np.where(empty, 1, cells + sc)
        return parts, vis, dep

    def query_many(
        self,
        x1: np.ndarray,
        x2: np.ndarray,
        y1: np.ndarray,
        y2: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Batched rectangle queries.

        Returns ``(totals, works, depths)`` where ``works[i]`` and
        ``depths[i]`` are exactly the amounts one reference
        :meth:`query` call would charge for query i.  No ledger is
        charged here — callers emulate the reference charge structure
        (sequential sum, parallel max, or ``batch``-scoped) from the
        per-query arrays.  Stats counters update exactly as the
        equivalent scalar calls would.
        """
        x1 = np.asarray(x1, dtype=np.int64)
        x2 = np.asarray(x2, dtype=np.int64)
        y1 = np.asarray(y1, dtype=np.int64)
        y2 = np.asarray(y2, dtype=np.int64)
        q = x1.shape[0]
        reg = counters()
        if reg.enabled:
            # observability only — never part of the parity contract
            reg.add("kernels.batch_calls")
            reg.add("kernels.batch_entries", float(q))
        if 0 < q <= _SCALAR_BATCH_CUTOFF:
            # tiny batches: the vectorized rounds' fixed cost exceeds a
            # scalar loop; answers/charges/stats are identical either way
            totals = np.empty(q, dtype=np.float64)
            works = np.empty(q, dtype=np.float64)
            depths = np.empty(q, dtype=np.float64)
            rec = _ChargeRecorder()
            for i in range(q):
                totals[i] = self.query(
                    int(x1[i]), int(x2[i]), int(y1[i]), int(y2[i]), ledger=rec
                )
                works[i] = rec.work
                depths[i] = rec.depth
            return totals, works, depths
        totals = np.zeros(q, dtype=np.float64)
        works = np.ones(q, dtype=np.float64)
        depths = np.ones(q, dtype=np.float64)
        self.stats.queries += q
        if q == 0:
            return totals, works, depths
        nonempty = np.ones(q, dtype=bool) if self.size else np.zeros(q, dtype=bool)
        if self.size:
            nonempty = (x2 >= x1) & (y2 >= y1)
        if not nonempty.any():
            return totals, works, depths
        idx = np.flatnonzero(nonempty)
        qy1 = y1[idx]
        qy2 = y2[idx]
        l = np.searchsorted(self.xs_np, x1[idx], side="left").astype(np.int64)
        r = np.searchsorted(self.xs_np, x2[idx], side="right").astype(np.int64)
        nq = idx.shape[0]
        tot = np.zeros(nq, dtype=np.float64)
        visited = np.full(nq, 2 * log2ceil(max(self.size, 2)), dtype=np.int64)
        b = self.branching
        leaf_ys, leaf_ws = self.leaf_ys_np, self.leaf_ws_np
        # level 0: leaves
        if b == 2:
            ml = ((l & 1) == 1) & (l < r)
            pos = np.where(ml, l, 0)
            yv = leaf_ys[pos]
            take = ml & (qy1 <= yv) & (yv <= qy2)
            tot += np.where(take, leaf_ws[pos], 0.0)
            visited += ml
            l = l + ml
            mr = ((r & 1) == 1) & (l < r)
            r = r - mr
            pos = np.where(mr, r, 0)
            yv = leaf_ys[pos]
            take = mr & (qy1 <= yv) & (yv <= qy2)
            tot += np.where(take, leaf_ws[pos], 0.0)
            visited += mr
        else:
            while True:
                m = (l % b != 0) & (l < r)
                if not m.any():
                    break
                mi = np.flatnonzero(m)
                pos = l[mi]
                yv = leaf_ys[pos]
                take = (qy1[mi] <= yv) & (yv <= qy2[mi])
                ti = mi[take]
                tot[ti] += leaf_ws[pos[take]]
                visited[mi] += 1
                l[mi] += 1
            while True:
                m = (r % b != 0) & (l < r)
                if not m.any():
                    break
                mi = np.flatnonzero(m)
                r[mi] -= 1
                pos = r[mi]
                yv = leaf_ys[pos]
                take = (qy1[mi] <= yv) & (yv <= qy2[mi])
                ti = mi[take]
                tot[ti] += leaf_ws[pos[take]]
                visited[mi] += 1
        l //= b
        r //= b
        # x-descent: collect the auxiliary queries each query makes, in
        # visit order (seq), then answer them all in one batched pass
        aq_query: List[np.ndarray] = []
        aq_level: List[np.ndarray] = []
        aq_node: List[np.ndarray] = []
        aq_seq: List[np.ndarray] = []
        seq = np.zeros(nq, dtype=np.int64)
        level = 0
        while level < self._num_levels and (l < r).any():
            if b == 2:
                mi = np.flatnonzero(((l & 1) == 1) & (l < r))
                if mi.shape[0]:
                    aq_query.append(mi)
                    aq_level.append(np.full(mi.shape[0], level, dtype=np.int64))
                    aq_node.append(l[mi].copy())
                    aq_seq.append(seq[mi].copy())
                    seq[mi] += 1
                    visited[mi] += 1
                    l[mi] += 1
                mi = np.flatnonzero(((r & 1) == 1) & (l < r))
                if mi.shape[0]:
                    r[mi] -= 1
                    aq_query.append(mi)
                    aq_level.append(np.full(mi.shape[0], level, dtype=np.int64))
                    aq_node.append(r[mi].copy())
                    aq_seq.append(seq[mi].copy())
                    seq[mi] += 1
                    visited[mi] += 1
            else:
                while True:
                    m = (l % b != 0) & (l < r)
                    if not m.any():
                        break
                    mi = np.flatnonzero(m)
                    aq_query.append(mi)
                    aq_level.append(np.full(mi.shape[0], level, dtype=np.int64))
                    aq_node.append(l[mi].copy())
                    aq_seq.append(seq[mi].copy())
                    seq[mi] += 1
                    visited[mi] += 1
                    l[mi] += 1
                while True:
                    m = (r % b != 0) & (l < r)
                    if not m.any():
                        break
                    mi = np.flatnonzero(m)
                    r[mi] -= 1
                    aq_query.append(mi)
                    aq_level.append(np.full(mi.shape[0], level, dtype=np.int64))
                    aq_node.append(r[mi].copy())
                    aq_seq.append(seq[mi].copy())
                    seq[mi] += 1
                    visited[mi] += 1
            l //= b
            r //= b
            level += 1
        aux_work = np.zeros(nq, dtype=np.int64)
        aux_depth = np.zeros(nq, dtype=np.int64)
        if aq_query:
            AQ_q = np.concatenate(aq_query)
            AQ_L = np.concatenate(aq_level)
            AQ_k = np.concatenate(aq_node)
            AQ_s = np.concatenate(aq_seq)
            parts, vis, dep = self._aux_many(AQ_L, AQ_k, qy1[AQ_q], qy2[AQ_q])
            np.add.at(aux_work, AQ_q, vis)
            np.maximum.at(aux_depth, AQ_q, dep)
            # fold partials into totals in per-query visit order
            for s_pos in range(int(AQ_s.max()) + 1):
                mm = AQ_s == s_pos
                tot[AQ_q[mm]] += parts[mm]
        self.stats.nodes_visited += int(visited.sum())
        totals[idx] = tot
        works[idx] = (visited + aux_work).astype(np.float64)
        depths[idx] = (self._x_depth + aux_depth).astype(np.float64)
        return totals, works, depths

    # ------------------------------------------------------------------
    def collect_aux_stats(self) -> RangeQueryStats:
        """Aggregate auxiliary-tree counters (flat arrays keep one shared
        aggregate instead of per-node counters; totals are identical)."""
        agg = RangeQueryStats()
        agg.merge(self.aux_stats)
        return agg

    @property
    def total_nodes_visited(self) -> int:
        """First-level + auxiliary visited nodes across all queries."""
        return self.stats.nodes_visited + self.aux_stats.nodes_visited
