"""Batched SMAWK drivers over the cut oracle (fast kernels).

The reference SMAWK (:mod:`repro.monge.smawk`) evaluates Monge entries
one ``lookup(i, j)`` call at a time; with cut-oracle entries each call
is a fresh 2-D range query.  The drivers here keep the *identical*
algorithm — same reduce-phase comparisons, same recursion, same
per-call entry cache semantics — but evaluate each recursion level's
whole interpolate-phase column windows in one :meth:`CutOracle.cut_many`
batch (the windows are fully known once the odd-row recursion returns).
The reduce phase is inherently sequential (a stack whose comparisons
depend on previous answers) and keeps scalar evaluation through the
shared per-call cache.

Parity: entries are evaluated exactly once per distinct (row, col) per
top-level call, exactly as the reference's ``_CountingLookup``; the
batched evaluations charge the sum of the per-entry (work, depth) the
scalar calls would charge — sequential scalar charges and one summed
charge are indistinguishable to the :class:`Ledger` — and the oracle's
stats counters advance identically.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.obs.counters import counters
from repro.pram.combinators import log2ceil
from repro.pram.ledger import Ledger, NULL_LEDGER
from repro.rangesearch.cutqueries import CutOracle

__all__ = ["matrix_minimum_batched", "triangle_minimum_batched"]

#: Below this many uncached entries a prefetch evaluates scalar cut
#: calls (the reference path) instead of one cut_many batch (each pair
#: is two rectangles; the batched tree path needs ~200 rectangles to
#: amortize its fixed mask cost).  Wall-clock tuning only — values,
#: charges and stats are identical either way.
_SCALAR_PREFETCH_CUTOFF = 96


class _BatchedCutLookup:
    """Per-call entry cache (the reference's ``_CountingLookup``
    semantics) with a batched prefetch path."""

    __slots__ = ("oracle", "ledger", "cache")

    def __init__(self, oracle: CutOracle, ledger: Ledger) -> None:
        self.oracle = oracle
        self.ledger = ledger
        self.cache: Dict[Tuple[int, int], float] = {}

    def __call__(self, a: int, b: int) -> float:
        key = (a, b)
        hit = self.cache.get(key)
        if hit is not None:
            return hit
        val = self.oracle.cut(a, b, ledger=self.ledger)
        self.cache[key] = val
        return val

    def prefetch(self, pairs: Sequence[Tuple[int, int]]) -> None:
        """Evaluate (and cache) every uncached pair in one batch."""
        todo = [k for k in dict.fromkeys(pairs) if k not in self.cache]
        if not todo:
            return
        if len(todo) <= _SCALAR_PREFETCH_CUTOFF:
            # small windows: the batched masks cost more than they save;
            # fall through to the reference's scalar evaluation order
            for a, b in todo:
                self.cache[(a, b)] = self.oracle.cut(a, b, ledger=self.ledger)
            return
        us = np.fromiter((a for a, _ in todo), dtype=np.int64, count=len(todo))
        vs = np.fromiter((b for _, b in todo), dtype=np.int64, count=len(todo))
        vals, works, depths = self.oracle.cut_many(us, vs)
        self.ledger.charge(work=float(works.sum()), depth=float(depths.sum()))
        reg = counters()
        if reg.enabled:
            reg.add("kernels.smawk_prefetches")
            reg.add("kernels.smawk_prefetched_entries", float(len(todo)))
        for key, val in zip(todo, vals.tolist()):
            self.cache[key] = val


def _smawk_batched(
    rows: List[int],
    cols: List[int],
    lookup: _BatchedCutLookup,
    result: Dict[int, Tuple[float, int]],
) -> None:
    if not rows:
        return
    # REDUCE: identical to the reference — sequential, demand-driven
    stack: List[int] = []
    for c in cols:
        while stack:
            r = rows[len(stack) - 1]
            if lookup(r, stack[-1]) <= lookup(r, c):
                break
            stack.pop()
        if len(stack) < len(rows):
            stack.append(c)
    cols2 = stack
    _smawk_batched(rows[1::2], cols2, lookup, result)
    # INTERPOLATE: the scan windows are fixed once the odd rows are
    # solved — prefetch every uncached entry of this level in one batch,
    # then replay the reference's min-scans on cached values
    col_pos = {c: k for k, c in enumerate(cols2)}
    windows: List[Tuple[int, int, int]] = []
    start = 0
    for i in range(0, len(rows), 2):
        r = rows[i]
        stop = col_pos[result[rows[i + 1]][1]] if i + 1 < len(rows) else len(cols2) - 1
        windows.append((r, start, stop))
        start = stop
    lookup.prefetch(
        [(r, c) for r, s0, s1 in windows for c in cols2[s0 : s1 + 1]]
    )
    for r, s0, s1 in windows:
        best_val = None
        best_col = None
        for c in cols2[s0 : s1 + 1]:
            val = lookup(r, c)
            if best_val is None or val < best_val:
                best_val, best_col = val, c
        assert best_col is not None
        result[r] = (best_val, best_col)


def matrix_minimum_batched(
    oracle: CutOracle,
    rows: Sequence[int],
    cols: Sequence[int],
    ledger: Ledger = NULL_LEDGER,
) -> Tuple[float, int, int]:
    """Drop-in for ``matrix_minimum(rows, cols, oracle.cut, ledger)``
    with batched interpolate-phase evaluation."""
    if not rows or not cols:
        return float("inf"), -1, -1
    lookup = _BatchedCutLookup(oracle, ledger)
    result: Dict[int, Tuple[float, int]] = {}
    _smawk_batched(list(rows), list(cols), lookup, result)
    n = len(rows) + len(cols)
    ledger.charge(work=float(max(n, 1)), depth=float(log2ceil(max(n, 2)) + 1))
    best_val, best_r, best_c = float("inf"), -1, -1
    for r, (val, c) in result.items():
        if val < best_val:
            best_val, best_r, best_c = val, r, c
    ledger.charge(work=float(len(rows)), depth=float(log2ceil(max(len(rows), 2))))
    return best_val, best_r, best_c


def triangle_minimum_batched(
    oracle: CutOracle,
    labels: Sequence[int],
    ledger: Ledger = NULL_LEDGER,
    *,
    inverse: bool = True,
) -> Tuple[float, int, int]:
    """Drop-in for ``triangle_minimum(labels, oracle.cut, ...)`` using
    the batched SMAWK driver per block (same blocks, same charges)."""
    labels = list(labels)
    best: Tuple[float, int, int] = (float("inf"), -1, -1)
    if len(labels) < 2:
        return best
    stack = [labels]
    while stack:
        seg = stack.pop()
        ell = len(seg)
        if ell < 2:
            continue
        if ell == 2:
            # direct (uncached) lookup, exactly like the reference
            val = oracle.cut(seg[0], seg[1], ledger=ledger)
            if val < best[0]:
                best = (val, seg[0], seg[1])
            continue
        mid = ell // 2
        rows = seg[:mid]
        cols = seg[mid:]
        if inverse:
            cols = cols[::-1]
        val, r, c = matrix_minimum_batched(oracle, rows, cols, ledger=ledger)
        if val < best[0]:
            best = (val, r, c)
        stack.append(seg[:mid])
        stack.append(seg[mid:])
    ledger.charge(work=0.0, depth=float(log2ceil(max(len(labels), 2))))
    return best
