"""Cheap post-hoc certificates for candidate minimum cuts.

The exact pipeline is correct w.h.p., not always; a production service
needs a cheap detector for the unlucky runs.  Every check here exploits
the one-sided failure mode of the algorithm — each inspected value is a
*genuine* cut of G, so a failed run can only report a value that is
**too high**:

* ``finite-value`` / ``side-consistency`` — the mask is a proper
  bipartition whose crossing weight really equals the reported value
  (O(m)); catches corrupted results outright.
* ``degree-bound`` — the min cut is at most the minimum weighted degree
  (each single-vertex star is a cut), so a candidate above it is wrong
  (O(m)).
* ``one-respecting`` — Karger's batch subtree trick on one fresh
  spanning tree gives the minimum 1-respecting cut of that tree, another
  genuine-cut upper bound, in O(m log n) work / O(log n) depth
  (:func:`repro.primitives.treesums.all_subtree_costs`).
* ``stoer-wagner`` — exact deterministic spot-check, enabled only below
  ``spot_check_max_n`` where its O(n^3) is cheap.

A report with ``ok=False`` marks the run *suspect*: the resilient driver
retries with a fresh seed and escalated constants.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from repro.graphs.graph import Graph
from repro.pram.ledger import Ledger, NULL_LEDGER
from repro.results import CutResult, VerificationReport

__all__ = ["VerificationReport", "verify_cut", "one_respecting_upper_bound"]

#: absolute slack for floating-point cut comparisons
_ATOL = 1e-6


def one_respecting_upper_bound(
    graph: Graph, ledger: Ledger = NULL_LEDGER
) -> float:
    """Minimum 1-respecting cut of one fresh spanning tree of ``graph``.

    A genuine cut of G, hence an upper bound on the min cut.  Infinite
    for disconnected inputs (where the bound is useless anyway).
    """
    from repro.primitives.connectivity import spanning_forest_graph
    from repro.primitives.euler import postorder, root_tree
    from repro.primitives.treesums import all_subtree_costs
    from repro.trees.binary import binarize_parent

    fids, labels = spanning_forest_graph(graph, ledger=ledger)
    if fids.shape[0] != graph.n - 1:
        return math.inf
    parent = root_tree(graph.n, graph.u[fids], graph.v[fids], 0, ledger=ledger)
    rt = postorder(binarize_parent(parent, ledger=ledger).parent, ledger=ledger)
    costs = all_subtree_costs(graph, rt, ledger=ledger)
    non_root = rt.parent >= 0
    if not non_root.any():
        return math.inf
    return float(costs[non_root].min())


def verify_cut(
    graph: Graph,
    result: CutResult,
    *,
    spot_check_max_n: int = 200,
    ledger: Ledger = NULL_LEDGER,
    atol: float = _ATOL,
) -> VerificationReport:
    """Cross-check ``result`` against the cheap certificates above.

    ``spot_check_max_n`` gates the exact Stoer–Wagner comparison; set it
    to 0 to keep verification strictly near-linear.
    """
    checks: list[Tuple[str, bool]] = []
    detail = ""
    upper = math.inf

    def fail(name: str, why: str) -> VerificationReport:
        checks.append((name, False))
        return VerificationReport(
            ok=False, checks=tuple(checks), detail=why, upper_bound=upper
        )

    # finite value ----------------------------------------------------------
    if not math.isfinite(result.value) or result.value < -atol:
        return fail("finite-value", f"non-finite or negative value {result.value!r}")
    checks.append(("finite-value", True))

    # side consistency ------------------------------------------------------
    side = np.asarray(result.side, dtype=bool)
    if side.shape != (graph.n,):
        return fail("side-consistency", "side mask has wrong length")
    k = int(side.sum())
    if k == 0 or k == graph.n:
        return fail("side-consistency", "side mask is not a proper subset")
    actual = graph.cut_value(side)
    if not math.isclose(actual, result.value, rel_tol=1e-9, abs_tol=atol):
        return fail(
            "side-consistency",
            f"mask induces cut {actual:g}, result claims {result.value:g}",
        )
    checks.append(("side-consistency", True))

    # degree upper bound ----------------------------------------------------
    if graph.m:
        upper = float(graph.weighted_degrees[graph.weighted_degrees > 0].min())
        ledger.charge(work=float(graph.m), depth=1.0)
    if result.value > upper + atol:
        return fail(
            "degree-bound",
            f"value {result.value:g} exceeds min weighted degree {upper:g}",
        )
    checks.append(("degree-bound", True))

    # 1-respecting upper bound ---------------------------------------------
    one_r = one_respecting_upper_bound(graph, ledger=ledger)
    upper = min(upper, one_r)
    if result.value > one_r + atol:
        return fail(
            "one-respecting",
            f"value {result.value:g} exceeds 1-respecting bound {one_r:g}",
        )
    checks.append(("one-respecting", True))

    # exact spot-check ------------------------------------------------------
    if 2 <= graph.n <= spot_check_max_n:
        from repro.arena.solvers.stoer_wagner import stoer_wagner

        exact = stoer_wagner(graph).value
        upper = min(upper, float(exact))
        if not math.isclose(exact, result.value, rel_tol=1e-9, abs_tol=atol):
            return fail(
                "stoer-wagner",
                f"exact min cut is {exact:g}, result claims {result.value:g}",
            )
        checks.append(("stoer-wagner", True))

    return VerificationReport(ok=True, checks=tuple(checks), upper_bound=upper)
