"""Phase-level checkpoint/resume for the resilient driver.

``resilient_minimum_cut(..., checkpoint=PATH)`` persists completed-phase
artifacts after every pipeline stage — the Section 3 approximation
value, the packed candidate trees (plus skeleton/packing statistics),
each finished per-tree 2-respecting search, and every completed
attempt's outcome — so a run killed mid-pipeline resumes from the last
persisted point and produces a **bit-identical** result to an
uninterrupted run with the same seed.  Two ingredients make that exact
rather than best-effort:

* every stage snapshot carries the NumPy generator state taken *after*
  the stage ran; restoring a stage rewinds the generator to it, so the
  resumed pipeline consumes exactly the draws the uninterrupted one
  would (see :func:`repro.core.mincut._minimum_cut_impl`);
* the file records a fingerprint of the graph, seed, and pipeline
  parameters; resuming against different inputs is refused with a typed
  :class:`repro.errors.CheckpointError` instead of silently producing a
  chimera result.

File format (versioned, hash-verified)
--------------------------------------
The file is a pickle of ``{"version", "sha256", "payload"}`` where
``payload`` holds the pickled driver state and ``sha256`` is its
content hash.  Loads verify the version and the hash before unpickling
the payload; any mismatch — truncation, bit rot, or the
``checkpoint.corrupt`` fault site — raises
:class:`~repro.errors.CheckpointError`.  Writes are atomic
(temp file + ``os.replace``), so a kill during a save leaves the
previous consistent snapshot in place.  The file is deleted when the
driver returns a result (the run no longer needs resuming).

Fault sites
-----------
``checkpoint.corrupt`` flips bytes of the payload after hashing, so the
next load detects corruption; ``checkpoint.kill`` raises
:class:`~repro.errors.SimulatedCrash` right after a successful save —
the deterministic stand-in for ``kill -9`` used by the kill/resume
tests and ``scripts/chaos_soak.py``.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from pathlib import Path
from typing import List, Optional, Tuple, Union

import numpy as np

from repro.errors import CheckpointError, SimulatedCrash
from repro.obs.counters import counters
from repro.resilience.faults import (
    SITE_CHECKPOINT_CORRUPT,
    SITE_CHECKPOINT_KILL,
    active_plan as _active_plan,
    poll as _poll_fault,
)

__all__ = [
    "CHECKPOINT_VERSION",
    "PipelineHooks",
    "DriverCheckpoint",
    "run_fingerprint",
]

#: bump on any incompatible change to the persisted state layout
CHECKPOINT_VERSION = 1


class PipelineHooks:
    """Stage-persistence interface consumed by the core pipeline.

    The base class is a no-op; the pipeline treats ``hooks=None`` and an
    instance of this base identically.  :class:`DriverCheckpoint` hands
    the pipeline a live implementation via :meth:`DriverCheckpoint.stage_hooks`.
    """

    def load_stage(self, name: str) -> Optional[dict]:
        """The persisted payload of stage ``name``, or None."""
        return None

    def save_stage(
        self, name: str, payload: dict, rng: Optional[np.random.Generator] = None
    ) -> None:
        """Persist ``payload`` as stage ``name``'s completed artifact."""


def run_fingerprint(
    graph,
    seed: Optional[int],
    params,
    max_attempts: int,
    spot_check_max_n: int,
) -> str:
    """Content hash binding a checkpoint to one (graph, seed, parameters)
    run — resuming anything else is refused."""
    h = hashlib.sha256()
    h.update(np.int64(graph.n).tobytes())
    h.update(np.int64(graph.m).tobytes())
    h.update(np.ascontiguousarray(graph.u).tobytes())
    h.update(np.ascontiguousarray(graph.v).tobytes())
    h.update(np.ascontiguousarray(graph.w).tobytes())
    h.update(repr(seed).encode())
    h.update(repr(params).encode())
    h.update(repr((max_attempts, spot_check_max_n)).encode())
    return h.hexdigest()


def _corrupt(raw: bytes, seed: int) -> bytes:
    """Deterministically flip a few payload bytes (the ``checkpoint.corrupt``
    fault): enough to break the content hash, reproducible under ``seed``."""
    data = bytearray(raw)
    rng = np.random.default_rng(seed)
    for pos in rng.integers(0, len(data), size=min(8, len(data))):
        data[int(pos)] ^= 0xFF
    return bytes(data)


def _read_state(path: Path) -> dict:
    """Load, verify (version + content hash), and unpickle a checkpoint."""
    try:
        blob = pickle.loads(path.read_bytes())
    except Exception as exc:  # noqa: BLE001 - any parse failure is corruption
        raise CheckpointError(f"unreadable checkpoint {path}: {exc}") from exc
    if not isinstance(blob, dict) or "version" not in blob:
        raise CheckpointError(f"{path} is not a repro checkpoint file")
    if blob["version"] != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint {path} has format version {blob['version']!r}; "
            f"this build reads version {CHECKPOINT_VERSION}"
        )
    raw = blob.get("payload", b"")
    digest = hashlib.sha256(raw).hexdigest()
    if digest != blob.get("sha256"):
        raise CheckpointError(
            f"checkpoint {path} failed content-hash verification (corrupt)"
        )
    try:
        return pickle.loads(raw)
    except Exception as exc:  # noqa: BLE001 - hash passed but payload bad
        raise CheckpointError(f"undecodable checkpoint payload in {path}: {exc}") from exc


class DriverCheckpoint:
    """The resilient driver's persisted progress: attempt outcomes plus
    the in-flight attempt's completed pipeline stages."""

    def __init__(self, path: Union[str, Path], fingerprint: str) -> None:
        self.path = Path(path)
        self.fingerprint = fingerprint
        self.resumed = False
        self.state: dict = {
            "outcomes": [],  # [["suspect", value] | ["budget", reason], ...]
            "pipeline": {"attempt": -1, "stages": {}},
        }

    @classmethod
    def open(
        cls, path: Union[str, Path], fingerprint: str, resume: bool = True
    ) -> "DriverCheckpoint":
        """Open a checkpoint: load an existing file when ``resume`` (raising
        :class:`CheckpointError` on corruption or fingerprint mismatch),
        otherwise start fresh (an existing file is overwritten on the
        first save)."""
        inst = cls(path, fingerprint)
        if resume and inst.path.exists():
            payload = _read_state(inst.path)
            if payload.get("fingerprint") != fingerprint:
                raise CheckpointError(
                    f"checkpoint {inst.path} was written by a different run "
                    "(graph/seed/parameter fingerprint mismatch)"
                )
            inst.state = payload["state"]
            inst.resumed = True
            counters().add("checkpoint.resumes")
            # restore the armed fault plan's firing record as-of the last
            # save, so an injected-fault run resumes with exactly the
            # faults (and hit counters) the crashed run had left — polls
            # re-executed after the save replay identically
            plan = _active_plan()
            snap = inst.state.get("fault_plan")
            if plan is not None and snap is not None:
                plan._hits.clear()
                plan._hits.update(snap["hits"])
                plan._spent[:] = list(snap["spent"])
                plan.fired[:] = [tuple(t) for t in snap["fired"]]
        return inst

    # -- driver-level records ----------------------------------------------
    @property
    def outcomes(self) -> List[Tuple[str, Optional[float]]]:
        """Completed attempts' outcomes, oldest first."""
        return [tuple(o) for o in self.state["outcomes"]]

    def record_outcome(self, kind: str, value: Optional[float] = None) -> None:
        """Persist one finished attempt (``"suspect"`` or ``"budget"``) and
        clear the in-flight pipeline stages."""
        self.state["outcomes"].append([kind, value])
        self.state["pipeline"] = {"attempt": -1, "stages": {}}
        self._save()

    def stage_hooks(self, attempt: int) -> "_StageHooks":
        """Hooks persisting attempt ``attempt``'s pipeline stages.  Stale
        state from a different attempt is discarded."""
        if self.state["pipeline"]["attempt"] != attempt:
            self.state["pipeline"] = {"attempt": attempt, "stages": {}}
        return _StageHooks(self)

    def finalize(self) -> None:
        """Delete the checkpoint — the run produced its result."""
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass
        counters().add("checkpoint.finalized")

    # -- persistence --------------------------------------------------------
    def _save(self) -> None:
        # poll the checkpoint fault sites *before* snapshotting the plan,
        # so the persisted firing record already counts them: a resumed
        # run (which restores that record) will not re-fire a kill that
        # already crashed the previous process
        corrupt = _poll_fault(SITE_CHECKPOINT_CORRUPT)
        kill = _poll_fault(SITE_CHECKPOINT_KILL)
        plan = _active_plan()
        if plan is not None:
            self.state["fault_plan"] = {
                "hits": dict(plan._hits),
                "spent": list(plan._spent),
                "fired": list(plan.fired),
            }
        raw = pickle.dumps(
            {"fingerprint": self.fingerprint, "state": self.state},
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        digest = hashlib.sha256(raw).hexdigest()
        if corrupt is not None:
            raw = _corrupt(raw, corrupt.seed)
        blob = pickle.dumps(
            {"version": CHECKPOINT_VERSION, "sha256": digest, "payload": raw},
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        tmp = self.path.with_name(self.path.name + ".tmp")
        tmp.write_bytes(blob)
        os.replace(tmp, self.path)
        counters().add("checkpoint.saves")
        if kill is not None:
            raise SimulatedCrash(
                f"simulated process death after checkpoint save ({self.path})"
            )


class _StageHooks(PipelineHooks):
    """Live hooks bound to one :class:`DriverCheckpoint`'s in-flight attempt."""

    def __init__(self, store: DriverCheckpoint) -> None:
        self.store = store

    def load_stage(self, name: str) -> Optional[dict]:
        payload = self.store.state["pipeline"]["stages"].get(name)
        if payload is not None:
            counters().add("checkpoint.stage_loads")
        return payload

    def save_stage(
        self, name: str, payload: dict, rng: Optional[np.random.Generator] = None
    ) -> None:
        payload = dict(payload)
        if rng is not None:
            payload["rng_state"] = rng.bit_generator.state
        self.store.state["pipeline"]["stages"][name] = payload
        self.store._save()
