"""Deterministic fault injection for the resilient execution layer.

A :class:`FaultPlan` arms a set of :class:`Fault` descriptors, each bound
to a named *site* inside the pipeline.  Product code polls its site via
:func:`poll` at well-defined points; when the armed fault's hit counter
matches, the site applies the fault (drop a packed tree, corrupt the
skeleton sample, raise inside an executor branch, blow the deadline,
corrupt the reported cut value).  Every fault fires **at most once** and
every trigger is a pure function of the plan — no wall clock, no global
randomness — so a faulted run is exactly reproducible under a fixed
seed.

Sites instrumented in the pipeline
----------------------------------
``packing.drop_tree``
    :func:`repro.packing.karger.pack_trees` silently loses one candidate
    tree (keeps at least one).
``skeleton.corrupt``
    :func:`repro.sparsify.skeleton.build_skeleton` deterministically
    perturbs the sampled weights (seeded by ``Fault.seed``), simulating
    an unlucky sample outside the w.h.p. regime.
``executor.branch``
    :func:`repro.pram.executor.parallel_map` raises
    :class:`repro.errors.FaultInjected` inside the branch whose item
    index equals ``Fault.index``.
``budget.blowout``
    :func:`repro.resilience.budget.checkpoint` raises
    :class:`repro.errors.BudgetExceeded` as if the deadline had expired.
``driver.corrupt_value``
    :func:`repro.resilience.driver.resilient_minimum_cut` perturbs the
    candidate value before verification — a deterministic stand-in for a
    w.h.p. failure of the randomized pipeline.
``executor.pool_break``
    :func:`repro.pram.executor.parallel_map` loses its shared process
    pool mid-dispatch (every in-flight branch fails with
    ``BrokenExecutor``, the pool is evicted) — the supervisor's
    degradation chain takes over.
``executor.worker_hang``
    The branch whose item index equals ``Fault.index`` is recorded as a
    ``TimeoutError`` (a hung worker detected by heartbeat stall) without
    consuming wall clock, so hang handling is deterministic to test.
``checkpoint.corrupt``
    :mod:`repro.resilience.checkpointing` flips bytes of the payload it
    is about to persist, so the next load fails the content-hash check
    with a typed :class:`repro.errors.CheckpointError`.
``checkpoint.kill``
    Raises :class:`repro.errors.SimulatedCrash` immediately *after* a
    successful checkpoint save — an abrupt process death at a persisted
    point, used by the kill/resume determinism tests.
``serve.accept_drop``
    The :mod:`repro.serve` TCP acceptor closes an incoming connection
    before reading a single frame — the client sees a clean
    connection-reset *before* any request was accepted, so the
    exactly-one-response contract is untouched.
``serve.queue_stall``
    A :mod:`repro.serve` dispatch worker stalls (``Fault.scale`` ×
    50 ms, capped) before draining its next admitted request,
    simulating a wedged worker; queued requests must still be shed or
    answered, never hung.
``serve.handler_crash``
    A :mod:`repro.serve` request handler raises mid-query; the daemon
    must convert it into a typed ``error`` response on the same
    connection instead of dropping the client.
``serve.slow_client``
    The :mod:`repro.serve` connection writer delays flushing one
    response (``Fault.scale`` × 50 ms, capped), simulating a client
    draining slowly; the response must still arrive intact.
``wal.torn_write``
    :meth:`repro.durability.wal.WriteAheadLog.append` writes only a
    prefix of the framed record, fsyncs the torn bytes, and raises
    :class:`repro.errors.SimulatedCrash` — a process death mid-write.
    Recovery must truncate the torn tail and continue.
``wal.corrupt_record``
    The append writes a frame whose body bytes are deterministically
    flipped *after* the CRC32 was computed (bit rot on the way to
    disk); the in-memory log advances as if the write were clean.  A
    later open must refuse the log with a typed
    :class:`repro.errors.WalCorruptionError` when valid records follow
    the damage (never a silent skip), or truncate it as a torn tail
    when it is the final record.
``snapshot.partial``
    :func:`repro.durability.snapshot.write_snapshot` persists a
    truncated payload (a crash mid-snapshot that still won the
    ``os.replace``); the write-time verify-back fails, the previous
    snapshot/WAL generation is retained, and recovery falls back to the
    newest snapshot that passes its content hash.
``shm.segment_lost``
    :func:`repro.pram.executor.parallel_map` (shm backend) genuinely
    unlinks the published shared-memory context segment at dispatch
    time: every branch of the round fails with
    :class:`repro.shm.arena.ShmSegmentLost` (a ``BrokenExecutor``), the
    executor's published-ref cache drops the key so a retry republishes,
    and the supervisor degrades ``shm → process``.

Activation is scoped (:func:`inject` context manager, contextvar-backed)
so concurrent un-faulted callers are unaffected.  Site names are
validated against the :data:`ALL_SITES` registry at plan construction —
a typo'd site raises :class:`repro.errors.InvalidParameterError` instead
of silently never firing.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import InvalidParameterError

__all__ = [
    "SITE_DROP_TREE",
    "SITE_CORRUPT_SKELETON",
    "SITE_EXECUTOR_BRANCH",
    "SITE_BUDGET_BLOWOUT",
    "SITE_CORRUPT_VALUE",
    "SITE_POOL_BREAK",
    "SITE_WORKER_HANG",
    "SITE_CHECKPOINT_CORRUPT",
    "SITE_CHECKPOINT_KILL",
    "SITE_SERVE_ACCEPT_DROP",
    "SITE_SERVE_QUEUE_STALL",
    "SITE_SERVE_HANDLER_CRASH",
    "SITE_SERVE_SLOW_CLIENT",
    "SITE_SHM_SEGMENT_LOST",
    "SITE_DELTA_FORCE_REBASE",
    "SITE_WAL_TORN_WRITE",
    "SITE_WAL_CORRUPT_RECORD",
    "SITE_SNAPSHOT_PARTIAL",
    "ALL_SITES",
    "SERVICE_SITES",
    "DURABILITY_SITES",
    "Fault",
    "FaultPlan",
    "canonical_plans",
    "inject",
    "poll",
    "active_plan",
]

SITE_DROP_TREE = "packing.drop_tree"
SITE_CORRUPT_SKELETON = "skeleton.corrupt"
SITE_EXECUTOR_BRANCH = "executor.branch"
SITE_BUDGET_BLOWOUT = "budget.blowout"
SITE_CORRUPT_VALUE = "driver.corrupt_value"
SITE_POOL_BREAK = "executor.pool_break"
SITE_WORKER_HANG = "executor.worker_hang"
SITE_CHECKPOINT_CORRUPT = "checkpoint.corrupt"
SITE_CHECKPOINT_KILL = "checkpoint.kill"
SITE_SERVE_ACCEPT_DROP = "serve.accept_drop"
SITE_SERVE_QUEUE_STALL = "serve.queue_stall"
SITE_SERVE_HANDLER_CRASH = "serve.handler_crash"
SITE_SERVE_SLOW_CLIENT = "serve.slow_client"
SITE_SHM_SEGMENT_LOST = "shm.segment_lost"
#: force the engine's next :meth:`CutEngine.update` onto the rebase path
#: regardless of its triggers (exercises the rebase fallback mid-sequence)
SITE_DELTA_FORCE_REBASE = "delta.force_rebase"
SITE_WAL_TORN_WRITE = "wal.torn_write"
SITE_WAL_CORRUPT_RECORD = "wal.corrupt_record"
SITE_SNAPSHOT_PARTIAL = "snapshot.partial"

#: The service-layer sites, polled only by the :mod:`repro.serve` daemon
#: (never by the one-shot pipeline or the resilient driver).
SERVICE_SITES: Tuple[str, ...] = (
    SITE_SERVE_ACCEPT_DROP,
    SITE_SERVE_QUEUE_STALL,
    SITE_SERVE_HANDLER_CRASH,
    SITE_SERVE_SLOW_CLIENT,
)

#: The durable-state sites, polled only by :mod:`repro.durability`
#: (the WAL append path and the snapshot writer).
DURABILITY_SITES: Tuple[str, ...] = (
    SITE_WAL_TORN_WRITE,
    SITE_WAL_CORRUPT_RECORD,
    SITE_SNAPSHOT_PARTIAL,
)

#: The known-site registry.  Plan construction validates against it.
ALL_SITES: Tuple[str, ...] = (
    SITE_DROP_TREE,
    SITE_CORRUPT_SKELETON,
    SITE_EXECUTOR_BRANCH,
    SITE_BUDGET_BLOWOUT,
    SITE_CORRUPT_VALUE,
    SITE_POOL_BREAK,
    SITE_WORKER_HANG,
    SITE_CHECKPOINT_CORRUPT,
    SITE_CHECKPOINT_KILL,
    SITE_SHM_SEGMENT_LOST,
    SITE_DELTA_FORCE_REBASE,
) + SERVICE_SITES + DURABILITY_SITES


@dataclass(frozen=True)
class Fault:
    """One armed fault.

    Attributes
    ----------
    site:
        Which instrumentation point applies it (one of :data:`ALL_SITES`).
    at:
        Fire on the ``at``-th poll of the site (0-based), exactly once.
    index:
        Site-specific target (tree index to drop, executor item index).
    seed:
        Seed for any randomness the site needs to apply the corruption.
    scale:
        Site-specific magnitude (e.g. value-corruption factor).
    """

    site: str
    at: int = 0
    index: int = 0
    seed: int = 0
    scale: float = 2.0

    def __post_init__(self) -> None:
        if self.site not in ALL_SITES:
            raise InvalidParameterError(
                f"unknown fault site {self.site!r}; known sites: {ALL_SITES}"
            )
        if self.at < 0:
            raise InvalidParameterError("fault trigger index must be >= 0")


@dataclass
class FaultPlan:
    """A seedable, deterministic set of faults plus its firing record.

    ``fired`` (``[(site, hit_number), ...]``) lets tests assert that the
    plan actually exercised the intended recovery path.
    """

    faults: Sequence[Fault] = ()
    name: str = ""
    _hits: Dict[str, int] = field(default_factory=dict, repr=False)
    _spent: List[int] = field(default_factory=list, repr=False)
    fired: List[Tuple[str, int]] = field(default_factory=list)
    #: the serve daemon polls one plan from its event loop and several
    #: worker threads at once; the lock keeps "fires at most once" exact
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        # defense in depth: Fault validates its own site, but a plan can
        # be handed duck-typed descriptors — reject unknown sites here
        # too, so a typo'd site fails loudly instead of never firing
        for f in self.faults:
            site = getattr(f, "site", None)
            if site not in ALL_SITES:
                raise InvalidParameterError(
                    f"fault plan {self.name or '<unnamed>'!r} arms unknown "
                    f"site {site!r}; known sites: {ALL_SITES}"
                )

    def poll(self, site: str) -> Optional[Fault]:
        """Record one hit of ``site``; return the fault to apply, if any."""
        with self._lock:
            hit = self._hits.get(site, 0)
            self._hits[site] = hit + 1
            for i, f in enumerate(self.faults):
                if f.site == site and f.at == hit and i not in self._spent:
                    self._spent.append(i)
                    self.fired.append((site, hit))
                    return f
            return None

    def poll_indexed(self, site: str, index: int) -> Optional[Fault]:
        """Like :meth:`poll`, but match on ``Fault.index`` instead of hit
        order — for sites whose invocations carry a stable identity (e.g.
        executor branches, where thread scheduling makes hit order
        nondeterministic)."""
        with self._lock:
            hit = self._hits.get(site, 0)
            self._hits[site] = hit + 1
            for i, f in enumerate(self.faults):
                if f.site == site and f.index == index and i not in self._spent:
                    self._spent.append(i)
                    self.fired.append((site, index))
                    return f
            return None

    @property
    def exhausted(self) -> bool:
        """True once every armed fault has fired."""
        return len(self._spent) == len(self.faults)

    def reset(self) -> None:
        with self._lock:
            self._hits.clear()
            self._spent.clear()
            self.fired.clear()


_active: ContextVar[Optional[FaultPlan]] = ContextVar("repro_fault_plan", default=None)


def active_plan() -> Optional[FaultPlan]:
    """The fault plan armed in the current context, if any."""
    return _active.get()


@contextmanager
def inject(plan: Optional[FaultPlan]) -> Iterator[Optional[FaultPlan]]:
    """Arm ``plan`` for the duration of the block (``None`` disarms)."""
    token = _active.set(plan)
    try:
        yield plan
    finally:
        _active.reset(token)


def poll(site: str) -> Optional[Fault]:
    """Site hook: the armed fault for ``site`` in this context, or None.

    Free when no plan is armed (one contextvar read).
    """
    plan = _active.get()
    if plan is None:
        return None
    return plan.poll(site)


def poll_indexed(site: str, index: int) -> Optional[Fault]:
    """Site hook for index-identified invocations (executor branches)."""
    plan = _active.get()
    if plan is None:
        return None
    return plan.poll_indexed(site, index)


def canonical_plans(seed: int = 0) -> Dict[str, FaultPlan]:
    """One representative plan per fault kind, used by the recovery test
    matrix (`tests/test_resilience.py`) to prove every recovery path."""
    return {
        "drop_tree": FaultPlan([Fault(SITE_DROP_TREE, seed=seed)], name="drop_tree"),
        "corrupt_skeleton": FaultPlan(
            [Fault(SITE_CORRUPT_SKELETON, seed=seed)], name="corrupt_skeleton"
        ),
        "executor_branch": FaultPlan(
            [Fault(SITE_EXECUTOR_BRANCH, index=0, seed=seed)], name="executor_branch"
        ),
        "budget_blowout": FaultPlan(
            [Fault(SITE_BUDGET_BLOWOUT, seed=seed)], name="budget_blowout"
        ),
        "corrupt_value": FaultPlan(
            [Fault(SITE_CORRUPT_VALUE, seed=seed)], name="corrupt_value"
        ),
        "pool_break": FaultPlan(
            [Fault(SITE_POOL_BREAK, seed=seed)], name="pool_break"
        ),
        "worker_hang": FaultPlan(
            [Fault(SITE_WORKER_HANG, index=0, seed=seed)], name="worker_hang"
        ),
        "checkpoint_corrupt": FaultPlan(
            [Fault(SITE_CHECKPOINT_CORRUPT, seed=seed)], name="checkpoint_corrupt"
        ),
        "checkpoint_kill": FaultPlan(
            [Fault(SITE_CHECKPOINT_KILL, seed=seed)], name="checkpoint_kill"
        ),
        # only fires when the shm backend is actually dispatching; on
        # other backends the plan runs clean, which the matrix tolerates
        "shm_segment_lost": FaultPlan(
            [Fault(SITE_SHM_SEGMENT_LOST, seed=seed)], name="shm_segment_lost"
        ),
        # the serve.* sites live in the daemon's request path; armed
        # against the bare driver they simply never fire (the driver
        # runs clean), which the recovery matrix tolerates by design
        "serve_accept_drop": FaultPlan(
            [Fault(SITE_SERVE_ACCEPT_DROP, seed=seed)], name="serve_accept_drop"
        ),
        "serve_queue_stall": FaultPlan(
            [Fault(SITE_SERVE_QUEUE_STALL, seed=seed)], name="serve_queue_stall"
        ),
        "serve_handler_crash": FaultPlan(
            [Fault(SITE_SERVE_HANDLER_CRASH, seed=seed)], name="serve_handler_crash"
        ),
        "serve_slow_client": FaultPlan(
            [Fault(SITE_SERVE_SLOW_CLIENT, seed=seed)], name="serve_slow_client"
        ),
        # fires inside CutEngine.update(); against the bare driver it
        # never triggers and the plan runs clean, like the serve.* sites
        "delta_force_rebase": FaultPlan(
            [Fault(SITE_DELTA_FORCE_REBASE, seed=seed)], name="delta_force_rebase"
        ),
        # the wal.* / snapshot.* sites live in the durability layer's
        # write path; against a run with no --state-dir they never fire
        # and the plan runs clean, like the serve.* sites
        "wal_torn_write": FaultPlan(
            [Fault(SITE_WAL_TORN_WRITE, seed=seed)], name="wal_torn_write"
        ),
        "wal_corrupt_record": FaultPlan(
            [Fault(SITE_WAL_CORRUPT_RECORD, seed=seed)], name="wal_corrupt_record"
        ),
        "snapshot_partial": FaultPlan(
            [Fault(SITE_SNAPSHOT_PARTIAL, seed=seed)], name="snapshot_partial"
        ),
    }
