"""The resilient exact-min-cut driver: verified retries, seed
escalation, health-aware execution, checkpoint/resume, and the
graceful-degradation fallback chain.

Strategy (``exact`` → ``exact escalated`` → ``stoer_wagner``):

1. run the exact pipeline under a per-attempt slice of the overall
   budget (each slice is a geometric share of the budget **still
   remaining**, so a fast failed attempt donates its unused time and
   work to the escalated attempts that follow);
2. cross-check the candidate against the cheap certificates of
   :mod:`repro.resilience.verify`; a suspect answer (w.h.p. failure or
   injected fault) triggers a retry with a **fresh seed** (spawned from
   an independent ``SeedSequence`` stream) and **escalated constants**
   (thorough tree scan, denser skeleton);
3. once attempts or the overall budget are exhausted, fall back to the
   deterministic O(n^3) :func:`repro.arena.solvers.stoer_wagner.stoer_wagner`
   baseline.

The whole run executes under a
:class:`repro.resilience.supervisor.Supervisor` — every
:func:`repro.pram.executor.parallel_map` round consults it, so broken
pools and worker hangs degrade the backend chain ``process → thread →
sync`` with seeded backoff instead of failing the run; the collected
:class:`repro.results.DegradationEvent` records are returned on
:attr:`repro.results.CutResult.degradations`.

``checkpoint=PATH`` persists completed-phase artifacts (see
:mod:`repro.resilience.checkpointing`); a killed run re-invoked with the
same arguments resumes mid-pipeline and returns a **bit-identical**
result to an uninterrupted run.

The returned :class:`repro.results.CutResult` carries provenance —
``attempts``, ``fallback_used``, ``verification``, ``degradations`` —
so callers can see how the answer was produced and alert on degraded
service.  With ``trace=True`` the attached
:class:`repro.obs.RunReport` additionally shows every attempt (and its
verification) as a span, with ``resilience.*`` counters.
"""

from __future__ import annotations

import dataclasses
import time
from pathlib import Path
from typing import Callable, Literal, Optional, Union

import numpy as np

from repro import obs
from repro.arena.solvers.stoer_wagner import stoer_wagner
from repro.errors import BudgetExceeded, InvalidParameterError
from repro.graphs.graph import Graph
from repro.graphs.validate import ensure_finite_weights
from repro.params import CutPipelineParams
from repro.pram.executor import parallel_map
from repro.pram.ledger import Ledger, NULL_LEDGER
from repro.resilience.budget import Budget, budget_scope
from repro.resilience.checkpointing import DriverCheckpoint, run_fingerprint
from repro.resilience.faults import SITE_CORRUPT_VALUE, poll as _poll_fault
from repro.resilience.supervisor import (
    Supervisor,
    active_supervisor,
    supervised_scope,
)
from repro.resilience.verify import verify_cut
from repro.results import CutResult
from repro.sparsify.hierarchy import HierarchyParams
from repro.sparsify.skeleton import SkeletonParams

__all__ = ["resilient_minimum_cut", "escalated_params"]

#: geometric growth factor for per-attempt budget slices and skeleton density
_ESCALATION = 2.0


def escalated_params(base: SkeletonParams, attempt: int) -> SkeletonParams:
    """Skeleton constants for retry ``attempt`` (0 = the caller's own).

    Each retry doubles the sampling constant — a denser skeleton whose
    packing is exponentially less likely to miss the min cut again.
    """
    if attempt <= 0:
        return base
    return dataclasses.replace(
        base, sample_constant=base.sample_constant * _ESCALATION**attempt
    )


def _probe_unit(i: int) -> int:
    """Executor health-probe payload (module-level so the process backend
    can pickle it)."""
    return i


def _probe_executors() -> None:
    """Dispatch a trivial round through :func:`repro.pram.executor.parallel_map`
    before committing an attempt to the substrate.

    The probe exercises the real executor path (pool creation, dispatch,
    collection) under the armed supervisor: a broken pool or hung worker
    is detected *here*, recorded into the backend health model, and the
    retry round — like all later dispatches — runs on the next healthy
    stage of the degradation chain.  Failures are swallowed: the probe's
    only product is health state.
    """
    try:
        parallel_map(_probe_unit, (0, 1), retries=1, on_error="aggregate")
    except Exception:  # noqa: BLE001 - health already recorded by the hook
        pass


def _attempt_slice(
    remaining: Optional[float], attempt: int, max_attempts: int
) -> Optional[float]:
    """Attempt ``attempt``'s geometric share of the budget **still
    remaining**: ``remaining * 2^a / (2^A - 2^a)`` — i.e. weight ``2^a``
    against the weights of every attempt not yet run.

    Computed from the live remainder rather than the original total, so
    an attempt that fails quickly (e.g. an injected fault on its first
    phase) donates its unused slice to the escalated attempts after it;
    the final attempt's share is the whole remainder.
    """
    if remaining is None:
        return None
    denom = _ESCALATION**max_attempts - _ESCALATION**attempt
    if denom <= 0:  # attempt == max_attempts (defensive): take it all
        return max(remaining, 1e-9)
    return max(remaining, 1e-9) * _ESCALATION**attempt / denom


def resilient_minimum_cut(
    graph: Graph,
    *,
    deadline: Optional[float] = None,
    max_work: Optional[float] = None,
    max_attempts: int = 3,
    seed: Optional[int] = None,
    spot_check_max_n: int = 200,
    epsilon: Optional[float] = None,
    max_trees: "int | None | Literal['auto']" = "auto",
    decomposition: Literal["heavy", "bough"] = "heavy",
    skeleton_params: SkeletonParams = SkeletonParams(),
    hierarchy_params: Optional[HierarchyParams] = None,
    pipeline: Optional[CutPipelineParams] = None,
    checkpoint: Optional[Union[str, Path]] = None,
    resume: bool = True,
    supervisor: Optional[Supervisor] = None,
    ledger: Ledger = NULL_LEDGER,
    clock: Callable[[], float] = time.monotonic,
    trace: bool = False,
) -> CutResult:
    """Exact minimum cut with budgets, verified retries, and fallback.

    Parameters
    ----------
    deadline:
        Overall wall-clock budget in seconds (None = unbounded).  The
        run terminates — possibly via the Stoer–Wagner fallback — soon
        after it expires (checkpoints are cooperative).
    max_work:
        Overall ledger-work budget; needs a real ``ledger``.
    max_attempts:
        Exact-pipeline attempts before falling back (>= 1).
    seed:
        Seeds an independent stream per attempt via
        ``np.random.SeedSequence(seed).spawn``; the whole driver is
        deterministic given it.
    spot_check_max_n:
        Below this size verification includes the exact Stoer–Wagner
        comparison (0 disables it).
    epsilon, max_trees, decomposition, skeleton_params, hierarchy_params:
        The pipeline knobs forwarded to
        :func:`repro.core.mincut.minimum_cut`; see
        :class:`repro.params.CutPipelineParams` for the documented
        reference.  Skeleton constants escalate on retries.
    pipeline:
        The bundled spelling of those knobs (mutually exclusive with
        passing a non-default individual knob).
    checkpoint:
        Path of a checkpoint file to persist completed-phase artifacts
        to (see :mod:`repro.resilience.checkpointing`).  A run killed
        mid-pipeline and re-invoked with the same graph/seed/parameters
        resumes from the last persisted phase and returns a result
        bit-identical to an uninterrupted run.  The file is deleted on
        success.
    resume:
        When False an existing checkpoint file at ``checkpoint`` is
        ignored and overwritten (fresh run).  Resuming a corrupt file or
        one written by a different run raises
        :class:`repro.errors.CheckpointError`.
    supervisor:
        The health supervisor to route executor backends through.  None
        reuses the ambient :func:`~repro.resilience.supervisor.active_supervisor`
        if one is armed, else arms a fresh
        ``Supervisor(seed=seed or 0, clock=clock)`` for this run.
    clock:
        Monotonic-seconds source, injectable for deterministic tests.
    trace:
        Attach a :class:`repro.obs.RunReport` as ``.report``, with one
        span per attempt / verification / fallback stage.

    Returns
    -------
    CutResult with provenance: ``attempts`` (exact attempts consumed),
    ``fallback_used`` (None or ``"stoer_wagner"``), ``verification``
    (the final :class:`repro.results.VerificationReport`), and
    ``degradations`` (typed backend-downgrade events).
    """
    if max_attempts < 1:
        raise InvalidParameterError("max_attempts must be >= 1")
    params = CutPipelineParams.resolve(
        pipeline,
        epsilon=epsilon,
        max_trees=max_trees,
        decomposition=decomposition,
        skeleton=skeleton_params,
        hierarchy=hierarchy_params,
    )
    if trace and not obs.tracing_active():
        if ledger is NULL_LEDGER:
            ledger = Ledger()
        tracer = obs.Tracer(ledger=ledger)
        with tracer.activate():
            res = _resilient_impl(
                graph, params, deadline, max_work, max_attempts, seed,
                spot_check_max_n, checkpoint, resume, supervisor, ledger, clock,
            )
        report = tracer.report(
            algorithm="resilient_minimum_cut", n=graph.n, m=graph.m
        )
        return dataclasses.replace(res, report=report)
    return _resilient_impl(
        graph, params, deadline, max_work, max_attempts, seed,
        spot_check_max_n, checkpoint, resume, supervisor, ledger, clock,
    )


def _resilient_impl(
    graph: Graph,
    params: CutPipelineParams,
    deadline: Optional[float],
    max_work: Optional[float],
    max_attempts: int,
    seed: Optional[int],
    spot_check_max_n: int,
    checkpoint: Optional[Union[str, Path]],
    resume: bool,
    supervisor: Optional[Supervisor],
    ledger: Ledger,
    clock: Callable[[], float],
) -> CutResult:
    from repro.core.mincut import _minimum_cut_impl

    ensure_finite_weights(graph)

    work_ledger = ledger
    if max_work is not None and isinstance(ledger, type(NULL_LEDGER)):
        # the null ledger never accumulates; meter work privately
        work_ledger = Ledger()
    overall = Budget(
        deadline=deadline,
        max_work=max_work,
        ledger=work_ledger if max_work is not None else None,
        clock=clock,
    ).start()

    if supervisor is None:
        supervisor = active_supervisor() or Supervisor(
            seed=0 if seed is None else int(seed), clock=clock
        )
    event_mark = len(supervisor.events)

    store: Optional[DriverCheckpoint] = None
    if checkpoint is not None:
        fingerprint = run_fingerprint(
            graph, seed, params, max_attempts, spot_check_max_n
        )
        store = DriverCheckpoint.open(checkpoint, fingerprint, resume=resume)

    seed_stream = np.random.SeedSequence(seed)
    attempt_seeds = seed_stream.spawn(max_attempts)
    attempts_made = 0
    suspects: list[float] = []
    first_attempt = 0
    if store is not None:
        # replay the outcomes of attempts completed before the kill, so
        # the resumed run's provenance (attempts, suspect list) matches
        # an uninterrupted run's exactly without re-executing them
        for kind, value in store.outcomes:
            attempts_made += 1
            if kind == "suspect":
                suspects.append(value)
        first_attempt = min(attempts_made, max_attempts)
    tracer = obs.current_tracer()
    reg = obs.counters()

    with supervised_scope(supervisor):
        for attempt in range(first_attempt, max_attempts):
            if overall.exhausted_reason() is not None:
                break
            _probe_executors()
            # satellite (a): slice from what is actually left, so a fast
            # failed attempt donates its unused budget to later attempts
            remaining = overall.remaining_time()
            slice_deadline = _attempt_slice(remaining, attempt, max_attempts)
            remaining_work = None
            if max_work is not None:
                remaining_work = max(max_work - overall.work_spent(), 1e-9)
            slice_work = _attempt_slice(remaining_work, attempt, max_attempts)
            attempt_budget = Budget(
                deadline=slice_deadline,
                max_work=slice_work,
                ledger=work_ledger if slice_work is not None else None,
                clock=clock,
            )
            attempt_params = dataclasses.replace(
                params,
                skeleton=escalated_params(params.skeleton, attempt),
                # retries scan thoroughly
                max_trees=params.max_trees if attempt == 0 else None,
            )
            attempts_made += 1
            reg.add("resilience.attempts")
            hooks = store.stage_hooks(attempt) if store is not None else None
            try:
                with tracer.span(f"attempt[{attempt}]"):
                    with budget_scope(attempt_budget):
                        res = _minimum_cut_impl(
                            graph,
                            attempt_params,
                            None,
                            np.random.default_rng(attempt_seeds[attempt]),
                            ledger if ledger is not NULL_LEDGER else work_ledger,
                            hooks=hooks,
                        )
            except BudgetExceeded:
                # slice (or overall) budget blown: next attempt gets a bigger
                # slice, unless the overall budget is gone — then fall back
                reg.add("resilience.budget_exceeded")
                if store is not None:
                    store.record_outcome("budget")
                continue

            fault = _poll_fault(SITE_CORRUPT_VALUE)
            if fault is not None:
                res = dataclasses.replace(res, value=res.value * fault.scale + 1.0)

            with tracer.span("verify"):
                report = verify_cut(
                    graph, res, spot_check_max_n=spot_check_max_n, ledger=ledger
                )
            if report.ok:
                degradations = supervisor.events_since(event_mark)
                stats = dict(res.stats)
                stats["resilience_suspect_values"] = float(len(suspects))
                stats["resilience_degradations"] = float(len(degradations))
                if store is not None:
                    store.finalize()
                return dataclasses.replace(
                    res,
                    stats=stats,
                    attempts=attempts_made,
                    fallback_used=None,
                    verification=report,
                    degradations=degradations,
                )
            suspects.append(res.value)
            reg.add("resilience.suspect_results")
            if store is not None:
                store.record_outcome("suspect", res.value)

        # ---- graceful degradation: deterministic sequential baseline ------
        reg.add("resilience.fallbacks")
        with tracer.span("fallback:stoer_wagner"):
            fallback = stoer_wagner(graph)
            report = verify_cut(
                graph, fallback, spot_check_max_n=0, ledger=ledger
            )
    reason = overall.exhausted_reason()
    degradations = supervisor.events_since(event_mark)
    stats = dict(fallback.stats)
    stats["resilience_suspect_values"] = float(len(suspects))
    stats["resilience_budget_exhausted"] = 1.0 if reason is not None else 0.0
    stats["resilience_degradations"] = float(len(degradations))
    if store is not None:
        store.finalize()
    return dataclasses.replace(
        fallback,
        stats=stats,
        attempts=attempts_made,
        fallback_used="stoer_wagner",
        verification=report,
        degradations=degradations,
    )
