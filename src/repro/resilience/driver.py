"""The resilient exact-min-cut driver: verified retries, seed
escalation, and the graceful-degradation fallback chain.

Strategy (``exact`` → ``exact escalated`` → ``stoer_wagner``):

1. run the exact pipeline under a per-attempt slice of the overall
   budget (slices grow geometrically — exponential backoff — so early
   unlucky attempts cannot starve later, escalated ones);
2. cross-check the candidate against the cheap certificates of
   :mod:`repro.resilience.verify`; a suspect answer (w.h.p. failure or
   injected fault) triggers a retry with a **fresh seed** (spawned from
   an independent ``SeedSequence`` stream) and **escalated constants**
   (thorough tree scan, denser skeleton);
3. once attempts or the overall budget are exhausted, fall back to the
   deterministic O(n^3) :func:`repro.baselines.stoer_wagner.stoer_wagner`
   baseline.

The returned :class:`repro.results.CutResult` carries provenance —
``attempts``, ``fallback_used``, ``verification`` — so callers can see
how the answer was produced and alert on degraded service.  With
``trace=True`` the attached :class:`repro.obs.RunReport` additionally
shows every attempt (and its verification) as a span, with
``resilience.*`` counters.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Callable, Literal, Optional

import numpy as np

from repro import obs
from repro.baselines.stoer_wagner import stoer_wagner
from repro.errors import BudgetExceeded, InvalidParameterError
from repro.graphs.graph import Graph
from repro.graphs.validate import ensure_finite_weights
from repro.params import CutPipelineParams
from repro.pram.ledger import Ledger, NULL_LEDGER
from repro.resilience.budget import Budget, budget_scope
from repro.resilience.faults import SITE_CORRUPT_VALUE, poll as _poll_fault
from repro.resilience.verify import verify_cut
from repro.results import CutResult
from repro.sparsify.hierarchy import HierarchyParams
from repro.sparsify.skeleton import SkeletonParams

__all__ = ["resilient_minimum_cut", "escalated_params"]

#: geometric growth factor for per-attempt budget slices and skeleton density
_ESCALATION = 2.0


def escalated_params(base: SkeletonParams, attempt: int) -> SkeletonParams:
    """Skeleton constants for retry ``attempt`` (0 = the caller's own).

    Each retry doubles the sampling constant — a denser skeleton whose
    packing is exponentially less likely to miss the min cut again.
    """
    if attempt <= 0:
        return base
    return dataclasses.replace(
        base, sample_constant=base.sample_constant * _ESCALATION**attempt
    )


def _attempt_slice(total: Optional[float], attempt: int, max_attempts: int) -> Optional[float]:
    """Geometric slice of ``total`` for ``attempt`` (slices double and sum
    to the whole: total * 2^k / (2^A - 1))."""
    if total is None:
        return None
    denom = _ESCALATION**max_attempts - 1.0
    return total * _ESCALATION**attempt / denom


def resilient_minimum_cut(
    graph: Graph,
    *,
    deadline: Optional[float] = None,
    max_work: Optional[float] = None,
    max_attempts: int = 3,
    seed: Optional[int] = None,
    spot_check_max_n: int = 200,
    epsilon: Optional[float] = None,
    max_trees: "int | None | Literal['auto']" = "auto",
    decomposition: Literal["heavy", "bough"] = "heavy",
    skeleton_params: SkeletonParams = SkeletonParams(),
    hierarchy_params: Optional[HierarchyParams] = None,
    pipeline: Optional[CutPipelineParams] = None,
    ledger: Ledger = NULL_LEDGER,
    clock: Callable[[], float] = time.monotonic,
    trace: bool = False,
) -> CutResult:
    """Exact minimum cut with budgets, verified retries, and fallback.

    Parameters
    ----------
    deadline:
        Overall wall-clock budget in seconds (None = unbounded).  The
        run terminates — possibly via the Stoer–Wagner fallback — soon
        after it expires (checkpoints are cooperative).
    max_work:
        Overall ledger-work budget; needs a real ``ledger``.
    max_attempts:
        Exact-pipeline attempts before falling back (>= 1).
    seed:
        Seeds an independent stream per attempt via
        ``np.random.SeedSequence(seed).spawn``; the whole driver is
        deterministic given it.
    spot_check_max_n:
        Below this size verification includes the exact Stoer–Wagner
        comparison (0 disables it).
    epsilon, max_trees, decomposition, skeleton_params, hierarchy_params:
        The pipeline knobs forwarded to
        :func:`repro.core.mincut.minimum_cut`; see
        :class:`repro.params.CutPipelineParams` for the documented
        reference.  Skeleton constants escalate on retries.
    pipeline:
        The bundled spelling of those knobs (mutually exclusive with
        passing a non-default individual knob).
    clock:
        Monotonic-seconds source, injectable for deterministic tests.
    trace:
        Attach a :class:`repro.obs.RunReport` as ``.report``, with one
        span per attempt / verification / fallback stage.

    Returns
    -------
    CutResult with provenance: ``attempts`` (exact attempts consumed),
    ``fallback_used`` (None or ``"stoer_wagner"``), ``verification``
    (the final :class:`repro.results.VerificationReport`).
    """
    if max_attempts < 1:
        raise InvalidParameterError("max_attempts must be >= 1")
    params = CutPipelineParams.resolve(
        pipeline,
        epsilon=epsilon,
        max_trees=max_trees,
        decomposition=decomposition,
        skeleton=skeleton_params,
        hierarchy=hierarchy_params,
    )
    if trace and not obs.tracing_active():
        if ledger is NULL_LEDGER:
            ledger = Ledger()
        tracer = obs.Tracer(ledger=ledger)
        with tracer.activate():
            res = _resilient_impl(
                graph, params, deadline, max_work, max_attempts, seed,
                spot_check_max_n, ledger, clock,
            )
        report = tracer.report(
            algorithm="resilient_minimum_cut", n=graph.n, m=graph.m
        )
        return dataclasses.replace(res, report=report)
    return _resilient_impl(
        graph, params, deadline, max_work, max_attempts, seed,
        spot_check_max_n, ledger, clock,
    )


def _resilient_impl(
    graph: Graph,
    params: CutPipelineParams,
    deadline: Optional[float],
    max_work: Optional[float],
    max_attempts: int,
    seed: Optional[int],
    spot_check_max_n: int,
    ledger: Ledger,
    clock: Callable[[], float],
) -> CutResult:
    from repro.core.mincut import minimum_cut

    ensure_finite_weights(graph)

    work_ledger = ledger
    if max_work is not None and isinstance(ledger, type(NULL_LEDGER)):
        # the null ledger never accumulates; meter work privately
        work_ledger = Ledger()
    overall = Budget(
        deadline=deadline,
        max_work=max_work,
        ledger=work_ledger if max_work is not None else None,
        clock=clock,
    ).start()

    seed_stream = np.random.SeedSequence(seed)
    attempt_seeds = seed_stream.spawn(max_attempts)
    attempts_made = 0
    suspects: list[float] = []
    tracer = obs.current_tracer()
    reg = obs.counters()

    for attempt in range(max_attempts):
        if overall.exhausted_reason() is not None:
            break
        slice_deadline = _attempt_slice(deadline, attempt, max_attempts)
        remaining = overall.remaining_time()
        if slice_deadline is not None and remaining is not None:
            slice_deadline = min(max(remaining, 1e-9), slice_deadline)
        slice_work = _attempt_slice(max_work, attempt, max_attempts)
        attempt_budget = Budget(
            deadline=slice_deadline,
            max_work=slice_work,
            ledger=work_ledger if slice_work is not None else None,
            clock=clock,
        )
        attempt_params = dataclasses.replace(
            params,
            skeleton=escalated_params(params.skeleton, attempt),
            # retries scan thoroughly
            max_trees=params.max_trees if attempt == 0 else None,
        )
        attempts_made += 1
        reg.add("resilience.attempts")
        try:
            with tracer.span(f"attempt[{attempt}]"):
                with budget_scope(attempt_budget):
                    res = minimum_cut(
                        graph,
                        pipeline=attempt_params,
                        rng=np.random.default_rng(attempt_seeds[attempt]),
                        ledger=ledger if ledger is not NULL_LEDGER else work_ledger,
                    )
        except BudgetExceeded:
            # slice (or overall) budget blown: next attempt gets a bigger
            # slice, unless the overall budget is gone — then fall back
            reg.add("resilience.budget_exceeded")
            continue

        fault = _poll_fault(SITE_CORRUPT_VALUE)
        if fault is not None:
            res = dataclasses.replace(res, value=res.value * fault.scale + 1.0)

        with tracer.span("verify"):
            report = verify_cut(
                graph, res, spot_check_max_n=spot_check_max_n, ledger=ledger
            )
        if report.ok:
            stats = dict(res.stats)
            stats["resilience_suspect_values"] = float(len(suspects))
            return dataclasses.replace(
                res,
                stats=stats,
                attempts=attempts_made,
                fallback_used=None,
                verification=report,
            )
        suspects.append(res.value)
        reg.add("resilience.suspect_results")

    # ---- graceful degradation: deterministic sequential baseline ----------
    reg.add("resilience.fallbacks")
    with tracer.span("fallback:stoer_wagner"):
        fallback = stoer_wagner(graph)
        report = verify_cut(
            graph, fallback, spot_check_max_n=0, ledger=ledger
        )
    reason = overall.exhausted_reason()
    stats = dict(fallback.stats)
    stats["resilience_suspect_values"] = float(len(suspects))
    stats["resilience_budget_exhausted"] = 1.0 if reason is not None else 0.0
    return dataclasses.replace(
        fallback,
        stats=stats,
        attempts=attempts_made,
        fallback_used="stoer_wagner",
        verification=report,
    )
