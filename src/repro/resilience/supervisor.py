"""Health-aware execution supervision: the backend degradation chain.

PR 2 gave :func:`repro.pram.executor.parallel_map` three real backends
(``process``/``thread``/``sync``); PR 1 made the *algorithmic* pipeline
resilient.  What was missing is a health model for the execution
substrate itself: a broken process pool used to be evicted and then
retried on the same backend forever.  A :class:`Supervisor` closes that
gap:

* it records backend failures (broken pools, timeouts, injected faults)
  per backend, applying **exponential backoff with deterministic seeded
  jitter** — two supervisors built with the same seed block and recover
  on identical schedules, so faulted runs stay reproducible;
* :meth:`Supervisor.select` routes a requested backend to the first
  healthy stage of the degradation chain ``process → thread → sync``
  (the final stage is always eligible — an in-line loop cannot break),
  emitting a typed :class:`repro.results.DegradationEvent` and
  ``supervisor.*`` counters whenever it downgrades;
* once a backend's backoff expires the next selection is a **recovery
  probe**: one attempt is allowed through, a success resets the health
  record (``supervisor.recoveries``), a failure re-enters backoff with
  a doubled delay.

:func:`repro.pram.executor.parallel_map` consults the ambient supervisor
(:func:`active_supervisor`) before every dispatch round, and
:func:`repro.resilience.driver.resilient_minimum_cut` arms one for the
whole run (:func:`supervised_scope`) and surfaces the collected events
as :attr:`repro.results.CutResult.degradations`.
"""

from __future__ import annotations

import random
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.errors import InvalidParameterError
from repro.obs.counters import counters
from repro.results import DegradationEvent

__all__ = [
    "BackendHealth",
    "Supervisor",
    "DegradationEvent",
    "supervised_scope",
    "active_supervisor",
]

#: the degradation chain, most capable first; the last stage never
#: degrades further (a sequential in-line loop cannot break).  ``shm``
#: is the zero-copy shared-memory process backend — a lost segment or
#: broken pool there degrades to the plain pickling ``process`` backend
#: before falling back to threads.
DEGRADATION_CHAIN: Tuple[str, ...] = ("shm", "process", "thread", "sync")


@dataclass
class BackendHealth:
    """Mutable health record of one executor backend.

    ``consecutive`` counts failures since the last success and drives
    the exponential backoff; ``failures`` is the lifetime total.
    ``blocked_until`` is a supervisor-clock timestamp; while it lies in
    the future :meth:`Supervisor.select` skips the backend.  ``probing``
    marks the one attempt allowed through after a backoff expires.
    """

    failures: int = 0
    consecutive: int = 0
    blocked_until: float = 0.0
    probing: bool = False
    last_reason: str = ""


class Supervisor:
    """Per-backend health model with backoff, probes, and degradation.

    Parameters
    ----------
    chain:
        The ordered degradation chain; selection walks it left-to-right
        starting at the requested backend.  The final element is always
        eligible.
    base_backoff:
        Seconds a backend is blocked after its first consecutive
        failure; doubles per further consecutive failure.
    max_backoff:
        Cap on the un-jittered backoff.
    jitter:
        Uniform multiplicative jitter fraction: the applied backoff is
        ``backoff * (1 + jitter * u)`` with ``u ~ U[0, 1)`` drawn from a
        ``random.Random(seed)`` stream — deterministic given ``seed``.
    seed:
        Seed of the jitter stream.
    clock:
        Monotonic-seconds source, injectable for deterministic tests.
    """

    def __init__(
        self,
        *,
        chain: Tuple[str, ...] = DEGRADATION_CHAIN,
        base_backoff: float = 0.25,
        max_backoff: float = 30.0,
        jitter: float = 0.25,
        seed: int = 0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if not chain:
            raise InvalidParameterError("supervisor chain must not be empty")
        if base_backoff <= 0 or max_backoff <= 0:
            raise InvalidParameterError("backoff bounds must be positive seconds")
        if jitter < 0:
            raise InvalidParameterError("jitter fraction must be >= 0")
        self.chain = tuple(chain)
        self.base_backoff = float(base_backoff)
        self.max_backoff = float(max_backoff)
        self.jitter = float(jitter)
        self.clock = clock
        self._rng = random.Random(seed)
        self.health: Dict[str, BackendHealth] = {b: BackendHealth() for b in self.chain}
        self.events: List[DegradationEvent] = []

    # -- selection ----------------------------------------------------------
    def healthy(self, backend: str) -> bool:
        """True when ``backend`` is eligible for dispatch right now."""
        h = self.health.get(backend)
        if h is None:
            return True  # unsupervised backend: nothing known against it
        return h.blocked_until <= self.clock() or backend == self.chain[-1]

    def select(self, requested: str) -> str:
        """The first healthy backend at or below ``requested`` in the chain.

        Emits a :class:`DegradationEvent` (and the
        ``supervisor.degradations`` counter) when the answer differs
        from ``requested``; marks an expired-backoff selection as a
        recovery probe (``supervisor.probes``).
        """
        if requested not in self.chain:
            return requested  # not part of the supervised chain
        now = self.clock()
        start = self.chain.index(requested)
        for backend in self.chain[start:]:
            h = self.health[backend]
            if h.blocked_until > now and backend != self.chain[-1]:
                continue
            if h.consecutive > 0 and not h.probing and h.blocked_until <= now:
                # backoff expired: let exactly this attempt probe recovery
                h.probing = True
                counters().add("supervisor.probes")
            if backend != requested:
                blocked = self.health[requested]
                event = DegradationEvent(
                    backend_from=requested,
                    backend_to=backend,
                    reason=blocked.last_reason or "backoff",
                    at=now,
                    detail=f"{requested} blocked for "
                    f"{max(blocked.blocked_until - now, 0.0):.3g}s more",
                )
                self.events.append(event)
                counters().add("supervisor.degradations")
            return backend
        return self.chain[-1]  # unreachable: the last stage always matches

    # -- health reporting ---------------------------------------------------
    def record_failure(self, backend: str, reason: str, detail: str = "") -> None:
        """Record a backend-level failure and enter (or extend) backoff.

        ``reason`` is a short slug (``"broken_pool"``, ``"timeout"``,
        ``"injected"``).  The final chain stage records the failure but
        is never blocked — there is nothing to degrade to.
        """
        h = self.health.get(backend)
        if h is None:
            return
        h.failures += 1
        h.consecutive += 1
        h.probing = False
        h.last_reason = reason
        counters().add("supervisor.failures")
        if backend == self.chain[-1]:
            return
        backoff = min(self.max_backoff, self.base_backoff * 2.0 ** (h.consecutive - 1))
        backoff *= 1.0 + self.jitter * self._rng.random()
        h.blocked_until = self.clock() + backoff

    def record_success(self, backend: str) -> None:
        """Record a healthy dispatch; a successful probe fully recovers
        the backend (``supervisor.recoveries``)."""
        h = self.health.get(backend)
        if h is None:
            return
        if h.probing:
            counters().add("supervisor.recoveries")
        h.consecutive = 0
        h.probing = False
        h.blocked_until = 0.0

    def events_since(self, mark: int) -> Tuple[DegradationEvent, ...]:
        """Degradation events recorded after position ``mark`` (from
        ``len(supervisor.events)`` taken earlier)."""
        return tuple(self.events[mark:])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        sick = [b for b in self.chain if not self.healthy(b)]
        return f"Supervisor(chain={self.chain}, blocked={sick or 'none'})"


_active: ContextVar[Optional[Supervisor]] = ContextVar(
    "repro_supervisor", default=None
)


def active_supervisor() -> Optional[Supervisor]:
    """The supervisor armed in the current context, if any."""
    return _active.get()


@contextmanager
def supervised_scope(supervisor: Optional[Supervisor]) -> Iterator[Optional[Supervisor]]:
    """Arm ``supervisor`` for the duration of the block (``None`` disarms).

    Scoped through a contextvar, so concurrent unsupervised callers are
    unaffected and worker threads (which run in a copy of the caller's
    context) see the same supervisor.
    """
    token = _active.set(supervisor)
    try:
        yield supervisor
    finally:
        _active.reset(token)
