"""Resilient execution layer: budgets, verified retries, fallback chain,
health-aware execution supervision, checkpoint/resume, and deterministic
fault injection.

See ``docs/robustness.md`` for the budget/retry/fallback contract, the
``process → thread → sync`` degradation chain, and the checkpoint file
format.

Only the leaf modules (:mod:`~repro.resilience.budget`,
:mod:`~repro.resilience.faults`, :mod:`~repro.resilience.supervisor`)
load eagerly — they are imported by the PRAM substrate's
checkpoint/fault/routing hooks, so anything heavier here would be an
import cycle.  The driver, verifier, and checkpoint store re-export
lazily.
"""

from repro.resilience.budget import Budget, active_budget, budget_scope, checkpoint
from repro.resilience.faults import (
    ALL_SITES,
    SERVICE_SITES,
    Fault,
    FaultPlan,
    canonical_plans,
    inject,
)
from repro.resilience.supervisor import (
    DEGRADATION_CHAIN,
    DegradationEvent,
    Supervisor,
    active_supervisor,
    supervised_scope,
)

__all__ = [
    "Budget",
    "active_budget",
    "budget_scope",
    "checkpoint",
    "resilient_minimum_cut",
    "escalated_params",
    "Fault",
    "FaultPlan",
    "ALL_SITES",
    "SERVICE_SITES",
    "canonical_plans",
    "inject",
    "Supervisor",
    "DegradationEvent",
    "DEGRADATION_CHAIN",
    "supervised_scope",
    "active_supervisor",
    "DriverCheckpoint",
    "PipelineHooks",
    "run_fingerprint",
    "VerificationReport",
    "verify_cut",
    "one_respecting_upper_bound",
]

_LAZY = {
    "resilient_minimum_cut": "repro.resilience.driver",
    "escalated_params": "repro.resilience.driver",
    "DriverCheckpoint": "repro.resilience.checkpointing",
    "PipelineHooks": "repro.resilience.checkpointing",
    "run_fingerprint": "repro.resilience.checkpointing",
    "VerificationReport": "repro.resilience.verify",
    "verify_cut": "repro.resilience.verify",
    "one_respecting_upper_bound": "repro.resilience.verify",
}


def __getattr__(name: str):
    # Lazy: the driver/verifier import the algorithm layers, which import
    # the PRAM substrate, whose hooks import this package's leaf modules.
    target = _LAZY.get(name)
    if target is None:
        raise AttributeError(f"module 'repro.resilience' has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(target), name)
