"""Wall-clock deadlines and ledger work budgets with cooperative
cancellation.

A :class:`Budget` bounds one computation by wall-clock seconds and/or
ledger work units.  The pipeline's long-running loops (``pmap`` items,
skeleton rebuilds, hierarchy layers, 2-respecting stages) call
:func:`checkpoint`, which raises :class:`repro.errors.BudgetExceeded`
once the budget armed in the current context is exhausted.  Checkpoints
charge **nothing** to the ledger — work/depth accounting of a budgeted
run is bit-identical to an unbudgeted one (tested in
``tests/test_resilience.py``).

Budgets are scoped through a contextvar (:func:`budget_scope`), so
library code deep in the pipeline needs no extra parameters and
concurrent unbudgeted callers are unaffected.  The clock is injectable
for deterministic tests.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional

from repro.errors import BudgetExceeded, InvalidParameterError
from repro.obs.counters import counters
from repro.pram.ledger import Ledger
from repro.resilience.faults import SITE_BUDGET_BLOWOUT, poll as _poll_fault

__all__ = ["Budget", "budget_scope", "checkpoint", "active_budget"]


@dataclass
class Budget:
    """A cooperative wall-clock / ledger-work budget.

    Parameters
    ----------
    deadline:
        Wall-clock seconds allowed from :meth:`start` (None = unbounded).
    max_work:
        Ledger work units allowed from :meth:`start`; requires ``ledger``
        (None = unbounded).
    ledger:
        The ledger whose ``work`` counter the work budget reads.
    clock:
        Monotonic-seconds source (injectable for tests).
    """

    deadline: Optional[float] = None
    max_work: Optional[float] = None
    ledger: Optional[Ledger] = None
    clock: Callable[[], float] = time.monotonic
    _t0: Optional[float] = field(default=None, repr=False)
    _w0: float = field(default=0.0, repr=False)

    def __post_init__(self) -> None:
        if self.deadline is not None and self.deadline <= 0:
            raise InvalidParameterError("deadline must be positive seconds")
        if self.max_work is not None:
            if self.max_work <= 0:
                raise InvalidParameterError("max_work must be positive")
            if self.ledger is None:
                raise InvalidParameterError("a work budget needs a ledger to read")

    def start(self) -> "Budget":
        """Anchor the budget at the current clock/ledger readings."""
        self._t0 = self.clock()
        if self.ledger is not None:
            self._w0 = self.ledger.work
        return self

    @property
    def started(self) -> bool:
        return self._t0 is not None

    def elapsed(self) -> float:
        if self._t0 is None:
            return 0.0
        return self.clock() - self._t0

    def work_spent(self) -> float:
        if self.ledger is None:
            return 0.0
        return self.ledger.work - self._w0

    def remaining_time(self) -> Optional[float]:
        """Seconds left, or None when no deadline is set."""
        if self.deadline is None:
            return None
        return self.deadline - self.elapsed()

    def exhausted_reason(self) -> Optional[str]:
        """``"deadline"`` / ``"work"`` if over budget, else None.

        The deadline comparison is inclusive: a checkpoint landing
        *exactly* at expiry has zero time left and must raise rather
        than let one more slice of work return a partial result (the
        boundary-race regression in ``tests/test_resilience.py``).
        """
        if self.deadline is not None and self.started and self.elapsed() >= self.deadline:
            return "deadline"
        if self.max_work is not None and self.work_spent() > self.max_work:
            return "work"
        return None

    def checkpoint(self, site: str = "") -> None:
        """Raise :class:`BudgetExceeded` if the budget is exhausted."""
        reason = self.exhausted_reason()
        if reason == "deadline":
            raise BudgetExceeded(
                f"deadline of {self.deadline:g}s exceeded "
                f"(elapsed {self.elapsed():.3g}s)",
                reason="deadline",
                site=site,
            )
        if reason == "work":
            raise BudgetExceeded(
                f"work budget of {self.max_work:g} exceeded "
                f"(spent {self.work_spent():g})",
                reason="work",
                site=site,
            )


_active: ContextVar[Optional[Budget]] = ContextVar("repro_budget", default=None)


def active_budget() -> Optional[Budget]:
    """The budget armed in the current context, if any."""
    return _active.get()


@contextmanager
def budget_scope(budget: Optional[Budget]) -> Iterator[Optional[Budget]]:
    """Arm ``budget`` (starting it if fresh) for the duration of the block.

    ``None`` disarms, letting inner code run unbudgeted."""
    if budget is not None and not budget.started:
        budget.start()
    token = _active.set(budget)
    try:
        yield budget
    finally:
        _active.reset(token)


def checkpoint(site: str = "") -> None:
    """Cooperative cancellation point.

    Called from the pipeline's loops; near-free when no budget, fault
    plan, or counter registry is armed (three contextvar reads, no
    ledger charges ever).
    """
    counters().add("resilience.checkpoints")
    fault = _poll_fault(SITE_BUDGET_BLOWOUT)
    if fault is not None:
        raise BudgetExceeded(
            f"injected deadline blowout at {site or 'checkpoint'}",
            reason="injected",
            site=site,
        )
    budget = _active.get()
    if budget is not None:
        budget.checkpoint(site)
