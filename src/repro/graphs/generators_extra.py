"""Additional structured workload generators used by examples/benches."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.graphs.generators import RngLike, as_rng, random_connected_graph
from repro.graphs.graph import Graph

__all__ = ["community_graph", "power_law_graph", "reliability_network"]


def community_graph(
    sizes: Tuple[int, ...],
    intra_degree: int = 6,
    inter_edges: int = 3,
    *,
    rng: RngLike = None,
    max_weight: int = 5,
) -> Graph:
    """Several dense communities chained by sparse inter-community links.

    The minimum cut typically isolates the community pair joined by the
    lightest link bundle — the motivating shape for community-boundary
    detection via min-cut (example application).
    """
    rng = as_rng(rng)
    n = sum(sizes)
    parts = []
    offset = 0
    offsets = []
    for size in sizes:
        sub = random_connected_graph(
            size, size * intra_degree // 2, rng=rng, max_weight=max_weight
        )
        parts.append((sub.u + offset, sub.v + offset, sub.w))
        offsets.append(offset)
        offset += size
    # chain communities i -> i+1 with `inter_edges` unit edges
    cu, cv = [], []
    for i in range(len(sizes) - 1):
        a0, b0 = offsets[i], offsets[i + 1]
        cu.append(a0 + rng.integers(0, sizes[i], size=inter_edges))
        cv.append(b0 + rng.integers(0, sizes[i + 1], size=inter_edges))
    u = np.concatenate([p[0] for p in parts] + cu)
    v = np.concatenate([p[1] for p in parts] + cv)
    w = np.concatenate([p[2] for p in parts] + [np.ones(inter_edges)] * (len(sizes) - 1))
    return Graph(n, u.astype(np.int64), v.astype(np.int64), w, validate=False).coalesced()


def power_law_graph(n: int, m: int, *, rng: RngLike = None, gamma: float = 2.5) -> Graph:
    """Connected graph with power-law-ish degree skew (hub-heavy).

    Endpoints are drawn proportional to ``rank^{-1/(gamma-1)}`` — a
    Zipf-flavoured attachment that yields hub vertices, the hard case
    for naive per-vertex parallelisation.
    """
    rng = as_rng(rng)
    from repro.graphs.generators import random_spanning_tree_edges

    tu, tv = random_spanning_tree_edges(n, rng)
    weights = (np.arange(1, n + 1, dtype=np.float64)) ** (-1.0 / (gamma - 1.0))
    probs = weights / weights.sum()
    extra = max(m - (n - 1), 0)
    eu = rng.choice(n, size=extra, p=probs)
    ev = rng.choice(n, size=extra, p=probs)
    keep = eu != ev
    u = np.concatenate([tu, eu[keep]])
    v = np.concatenate([tv, ev[keep]])
    return Graph(n, u.astype(np.int64), v.astype(np.int64), None, validate=False).coalesced()


def reliability_network(
    n_core: int,
    n_edge_sites: int,
    *,
    rng: RngLike = None,
    core_capacity: int = 40,
    uplink_capacity: int = 3,
) -> Graph:
    """A backbone/edge network whose min cut is a site's uplink bundle.

    Models the "where does the network partition first" reliability
    question: a dense high-capacity core plus many lightly-uplinked edge
    sites; the minimum cut isolates the most weakly attached site.
    """
    rng = as_rng(rng)
    core = random_connected_graph(
        n_core, n_core * 4, rng=rng, max_weight=core_capacity
    )
    n = n_core + n_edge_sites
    su = []
    sv = []
    sw = []
    for site in range(n_edge_sites):
        sid = n_core + site
        uplinks = int(rng.integers(2, 4))
        targets = rng.choice(n_core, size=uplinks, replace=False)
        for t in targets:
            su.append(sid)
            sv.append(int(t))
            sw.append(float(rng.integers(1, uplink_capacity + 1)))
    u = np.concatenate([core.u, np.asarray(su, dtype=np.int64)])
    v = np.concatenate([core.v, np.asarray(sv, dtype=np.int64)])
    w = np.concatenate([core.w, np.asarray(sw, dtype=np.float64)])
    return Graph(n, u, v, w, validate=False).coalesced()
